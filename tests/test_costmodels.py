"""Tests for the heterogeneous link-cost subsystem (repro.costmodels).

The headline contract: with :class:`UniformCost` every weighted quantity —
player and social costs, stability decisions and intervals, the UCG Nash
set — reduces **float-exactly** to the scalar-α code.  Heterogeneous models
are pinned down on hand-computed small cases (star, cycle, K4).
"""

import random

import pytest

from repro.core import (
    BilateralConnectionGame,
    UnilateralConnectionGame,
    all_player_costs_bcg,
    all_player_costs_ucg,
    is_nash_profile_bcg,
    is_nash_profile_ucg,
    pairwise_stability_profile,
    player_cost_graph,
    profile_from_graph_bcg,
    social_cost_bcg,
    social_cost_ucg,
    ucg_nash_alpha_set,
)
from repro.costmodels import (
    CostModel,
    PerEdgeCost,
    PerPlayerCost,
    ScaledCost,
    UniformCost,
    WeightedBilateralGame,
    WeightedUnilateralGame,
    as_cost_model,
    is_weighted_nash_profile_bcg,
    is_weighted_nash_profile_ucg,
    is_weighted_pairwise_stable,
    weighted_player_cost_graph,
    weighted_social_cost_bcg,
    weighted_social_cost_ucg,
    weighted_stability_profile,
    weighted_ucg_nash_t_set,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)

INF = float("inf")


# --------------------------------------------------------------------------- #
# The model hierarchy
# --------------------------------------------------------------------------- #


class TestModels:

    def test_uniform_weight_and_alpha(self):
        model = UniformCost(2.5)
        assert model.weight(0, 7) == 2.5
        assert model.weight(7, 0) == 2.5
        assert model.uniform_alpha() == 2.5
        assert model.n is None

    def test_uniform_scaled_stays_uniform(self):
        scaled = UniformCost(2.0).scaled(3.0)
        assert isinstance(scaled, UniformCost)
        assert scaled.alpha == 6.0

    def test_positive_weights_enforced(self):
        with pytest.raises(ValueError):
            UniformCost(0.0)
        with pytest.raises(ValueError):
            PerPlayerCost([1.0, -2.0])
        with pytest.raises(ValueError):
            PerEdgeCost([[0.0, 0.0], [0.0, 0.0]])

    def test_zero_and_negative_weight_matrices_rejected(self):
        """Regression: a zero/negative coefficient must raise, not NaN later."""
        zero = [[0.0, 0.0, 1.0], [0.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        negative = [[0.0, -1.0, 1.0], [-1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        for weights in (zero, negative):
            with pytest.raises(ValueError, match="strictly positive"):
                PerEdgeCost(weights)
        with pytest.raises(ValueError, match="strictly positive"):
            PerPlayerCost([0.0, 1.0])

    def test_nonfinite_weights_rejected(self):
        inf, nan = float("inf"), float("nan")
        for bad in (inf, nan):
            with pytest.raises(ValueError):
                UniformCost(bad)
            with pytest.raises(ValueError):
                PerPlayerCost([1.0, bad])
            with pytest.raises(ValueError):
                PerEdgeCost([[0.0, bad], [bad, 0.0]])
        with pytest.raises(ValueError):
            UniformCost(1.0).scaled(inf)

    def test_coefficient_matrix_guards_rogue_subclasses(self):
        """The kernel extraction API validates what ``weight`` returns."""

        class FreeLinkToZero(CostModel):
            def weight(self, player, other):
                return 0.0 if other == 0 else 1.0

        with pytest.raises(ValueError, match="strictly positive"):
            FreeLinkToZero().coefficient_matrix(4)
        matrix = PerPlayerCost([1.0, 2.0]).coefficient_matrix()
        assert matrix == [[0.0, 1.0], [2.0, 0.0]]

    def test_per_player_weights(self):
        model = PerPlayerCost([0.5, 2.0, 3.0])
        assert model.n == 3
        assert model.weight(0, 2) == 0.5
        assert model.weight(2, 0) == 3.0
        assert model.weight_pair(0, 2) == (0.5, 3.0)
        assert model.uniform_alpha() is None
        scaled = model.scaled(2.0)
        assert isinstance(scaled, PerPlayerCost)
        assert scaled.weight(1, 0) == 4.0

    def test_per_edge_validation(self):
        with pytest.raises(ValueError):
            PerEdgeCost([[0.0, 1.0], [2.0, 0.0]])  # asymmetric
        with pytest.raises(ValueError):
            PerEdgeCost([[1.0, 1.0], [1.0, 0.0]])  # nonzero diagonal
        with pytest.raises(ValueError):
            PerEdgeCost([[0.0, 1.0]])  # not square

    def test_per_edge_from_pairs(self):
        model = PerEdgeCost.from_pairs(3, {(0, 1): 2.0}, default=1.0)
        assert model.weight(0, 1) == 2.0 == model.weight(1, 0)
        assert model.weight(1, 2) == 1.0
        with pytest.raises(ValueError):
            PerEdgeCost.from_pairs(3, {(0, 1): 2.0})  # gaps, no default
        scaled = model.scaled(3.0)
        assert isinstance(scaled, PerEdgeCost)
        assert scaled.weight(0, 1) == 6.0

    def test_scaled_view_composes(self):
        class Custom(CostModel):
            def weight(self, player, other):
                return 1.0 + player

        view = Custom().scaled(2.0)
        assert isinstance(view, ScaledCost)
        assert view.weight(3, 0) == 8.0
        assert view.scaled(0.5).weight(3, 0) == 8.0 * 0.5

    def test_matrix_and_binding(self):
        model = PerPlayerCost([1.0, 2.0])
        assert model.matrix() == [[0.0, 1.0], [2.0, 0.0]]
        with pytest.raises(ValueError):
            model.matrix(3)
        assert UniformCost(1.5).matrix(2) == [[0.0, 1.5], [1.5, 0.0]]
        with pytest.raises(ValueError):
            UniformCost(1.5).matrix()  # unbound, n required

    def test_as_cost_model(self):
        assert isinstance(as_cost_model(2.0), UniformCost)
        model = PerPlayerCost([1.0, 2.0, 3.0])
        assert as_cost_model(model, 3) is model
        with pytest.raises(ValueError):
            as_cost_model(model, 4)
        with pytest.raises(TypeError):
            as_cost_model("cheap")


# --------------------------------------------------------------------------- #
# Uniform-weight ⇒ scalar-α float-exact reductions (costs)
# --------------------------------------------------------------------------- #


class TestUniformCostReduction:

    @pytest.mark.parametrize("alpha", [0.3, 1.0, 2.0, 7.7])
    def test_costs_match_scalar_exactly(self, small_random_graphs, alpha):
        model = UniformCost(alpha)
        for graph in small_random_graphs:
            assert weighted_social_cost_bcg(graph, model) == social_cost_bcg(
                graph, alpha
            )
            assert weighted_social_cost_ucg(graph, model) == social_cost_ucg(
                graph, alpha
            )
            for player in range(graph.n):
                assert weighted_player_cost_graph(
                    graph, player, model
                ) == player_cost_graph(graph, player, alpha)

    @pytest.mark.parametrize("alpha", [0.5, 1.3, 4.0])
    def test_profile_costs_match_scalar_exactly(self, small_random_graphs, alpha):
        model = UniformCost(alpha)
        for graph in small_random_graphs[:4]:
            profile = profile_from_graph_bcg(graph)
            wb = WeightedBilateralGame(graph.n, model)
            wu = WeightedUnilateralGame(graph.n, model)
            scalar_bcg = all_player_costs_bcg(profile, alpha)
            scalar_ucg = all_player_costs_ucg(profile, alpha)
            for player in range(graph.n):
                assert wb.player_cost(profile, player) == scalar_bcg[player]
                assert wu.player_cost(profile, player) == scalar_ucg[player]


# --------------------------------------------------------------------------- #
# Uniform-weight ⇒ scalar-α equivalence: stability (property-based, n ≤ 7)
# --------------------------------------------------------------------------- #


class TestUniformStabilityEquivalence:

    def test_t_intervals_equal_scalar_intervals(self):
        rng = random.Random(4251)
        for _ in range(20):
            graph = random_connected_graph(
                rng.randint(4, 7), rng.uniform(0.2, 0.8), rng
            )
            scalar = pairwise_stability_profile(graph)
            weighted = weighted_stability_profile(graph, UniformCost(1.0))
            # Float-exact: same deltas divided by w = 1.0.
            assert weighted.stability_t_interval() == scalar.stability_interval()

    def test_stability_decisions_equal_scalar(self):
        rng = random.Random(505)
        alphas = [0.25, 0.8, 1.0, 1.5, 3.0, 9.0]
        for _ in range(15):
            graph = random_connected_graph(
                rng.randint(4, 7), rng.uniform(0.2, 0.8), rng
            )
            scalar = pairwise_stability_profile(graph)
            unit = weighted_stability_profile(graph, UniformCost(1.0))
            for alpha in alphas:
                expected = scalar.is_stable_at(alpha)
                # w = 1 scaled by t = α ...
                assert unit.is_stable_at(alpha) == expected
                # ... and w = α at t = 1.
                assert is_weighted_pairwise_stable(
                    graph, UniformCost(alpha)
                ) == expected

    def test_t_interval_set_matches_window(self):
        graph = cycle_graph(5)
        profile = weighted_stability_profile(graph, UniformCost(1.0))
        interval_set = profile.t_interval_set()
        lo, hi = profile.stability_t_interval()
        assert not interval_set.is_empty()
        assert interval_set.min_alpha() == lo
        assert interval_set.max_alpha() == hi
        # A never-stable graph has an empty set: two disjoint edges on 4
        # vertices (disconnected => t_min = inf).
        from repro.graphs import Graph

        unstable = Graph(4, [(0, 1), (2, 3)])
        empty = weighted_stability_profile(unstable, UniformCost(1.0))
        assert empty.t_interval_set().is_empty()

    def test_ucg_t_set_equals_scalar_alpha_set(self):
        rng = random.Random(77)
        cases = [
            random_connected_graph(rng.randint(3, 6), rng.uniform(0.3, 0.8), rng)
            for _ in range(8)
        ]
        cases.append(path_graph(7))  # an n = 7 case on the UCG path too
        cases.append(star_graph(7))
        for graph in cases:
            scalar = ucg_nash_alpha_set(graph)
            weighted = weighted_ucg_nash_t_set(graph, UniformCost(1.0))
            assert [
                (iv.lo, iv.hi) for iv in weighted.intervals
            ] == [(iv.lo, iv.hi) for iv in scalar.intervals]

    def test_nash_profile_checks_reduce_to_scalar(self):
        rng = random.Random(11)
        for _ in range(6):
            graph = random_connected_graph(rng.randint(3, 5), 0.6, rng)
            profile = profile_from_graph_bcg(graph)
            for alpha in (0.5, 1.0, 2.0):  # dyadic: α·k is exact either way
                model = UniformCost(alpha)
                assert is_weighted_nash_profile_bcg(
                    profile, model
                ) == is_nash_profile_bcg(profile, alpha)
                assert is_weighted_nash_profile_ucg(
                    profile, model
                ) == is_nash_profile_ucg(profile, alpha)


# --------------------------------------------------------------------------- #
# Hand-computed weighted interval endpoints (star, cycle, K4)
# --------------------------------------------------------------------------- #


class TestHandComputedIntervals:

    def test_complete_graph_per_edge(self):
        # K4: no non-edges => t_min = 0.  Severing any edge raises each
        # endpoint's distance cost by exactly 1, so t_max = min 1/w = 1/4
        # through the expensive (0,1) pair.
        model = PerEdgeCost.from_pairs(4, {(0, 1): 4.0}, default=1.0)
        profile = weighted_stability_profile(complete_graph(4), model)
        assert profile.stability_t_interval() == (0.0, 0.25)
        assert profile.is_stable_at(0.25)
        assert not profile.is_stable_at(0.2500001)

    def test_star_per_edge(self):
        # Star on 5 (center 0): every edge is a bridge => t_max = inf.  A
        # missing leaf pair saves 1 to each endpoint, so t_min is 1 over the
        # cheapest leaf-pair price: pairs cost 2 except (1, 2) at 0.5.
        pairs = {(1, 2): 0.5}
        model = PerEdgeCost.from_pairs(5, pairs, default=2.0)
        profile = weighted_stability_profile(star_graph(5), model)
        assert profile.t_max == INF
        assert profile.t_min == 1.0 / 0.5
        assert profile.is_stable_at(2.0 + 1e-6)
        # Below t_min players 1 and 2 would bilaterally add their cheap link.
        assert any(
            "bilaterally add missing edge (1, 2)" in v
            for v in profile.violations_at(1.9)
        )

    def test_cycle_per_player(self):
        # C4 (0-1-2-3-0): severing an edge costs each endpoint Δ = 2, so
        # t_max = 2 / max α_i; a diagonal saves 1 to each endpoint, so
        # t_min = max over diagonals of 1 / max(α_u, α_v).
        alphas = [0.5, 1.0, 2.0, 4.0]
        model = PerPlayerCost(alphas)
        profile = weighted_stability_profile(cycle_graph(4), model)
        assert profile.t_max == 2.0 / 4.0
        expected_t_min = max(
            min(1.0 / alphas[0], 1.0 / alphas[2]),
            min(1.0 / alphas[1], 1.0 / alphas[3]),
        )
        assert profile.t_min == expected_t_min
        assert profile.stability_t_interval() == (0.5, 0.5)
        # Degenerate window: no scale stabilises this pricing of C4.
        assert profile.t_interval_set().is_empty()

    def test_cycle_uniform_per_edge_matches_known_window(self):
        # With every pair at price 2 the scalar (1, 2] window halves.
        model = PerEdgeCost.from_pairs(4, {}, default=2.0)
        profile = weighted_stability_profile(cycle_graph(4), model)
        assert profile.stability_t_interval() == (0.5, 1.0)

    def test_probe_records_carry_coefficient_pairs(self):
        model = PerPlayerCost([0.5, 2.0, 3.0, 4.0])
        graph = star_graph(4)
        profile = weighted_stability_profile(graph, model)
        # Removal probe of edge (0, 1): endpoint 0 pays α_0, endpoint 1 α_1;
        # severing a bridge costs both infinitely much distance.
        assert profile.removal[((0, 1), 0)] == (0.5, INF)
        assert profile.removal[((0, 1), 1)] == (2.0, INF)
        # Addition probe of leaf pair (1, 2): each endpoint saves exactly 1.
        assert profile.addition[((1, 2), 1)] == (2.0, 1.0)
        assert profile.addition[((1, 2), 2)] == (3.0, 1.0)


# --------------------------------------------------------------------------- #
# Weighted games
# --------------------------------------------------------------------------- #


class TestWeightedGames:

    def test_uniform_bilateral_game_matches_scalar(self):
        alpha = 1.75
        weighted = WeightedBilateralGame(5, UniformCost(alpha))
        scalar = BilateralConnectionGame(5, alpha)
        assert weighted.alpha == alpha
        for graph in (star_graph(5), cycle_graph(5), complete_graph(5)):
            assert weighted.social_cost(graph) == scalar.social_cost(graph)
            assert weighted.is_pairwise_stable(graph) == scalar.is_pairwise_stable(
                graph
            )
            assert weighted.is_equilibrium_network(
                graph
            ) == scalar.is_equilibrium_network(graph)
            assert weighted.price_of_anarchy(graph) == scalar.price_of_anarchy(graph)
        assert weighted.efficient_social_cost() == scalar.efficient_social_cost()
        assert weighted.efficient_graph() == scalar.efficient_graph()

    def test_uniform_unilateral_game_matches_scalar(self):
        alpha = 2.5
        weighted = WeightedUnilateralGame(5, UniformCost(alpha))
        scalar = UnilateralConnectionGame(5, alpha)
        for graph in (star_graph(5), cycle_graph(5)):
            assert weighted.social_cost(graph) == scalar.social_cost(graph)
            assert weighted.is_nash_network(graph) == scalar.is_nash_network(graph)
        assert weighted.efficient_social_cost() == scalar.efficient_social_cost()

    def test_scale_parameter(self):
        # UniformCost(1.0) at scale t is the scalar game at α = t.
        weighted = WeightedBilateralGame(5, UniformCost(1.0), t=3.0)
        scalar = BilateralConnectionGame(5, 3.0)
        star = star_graph(5)
        assert weighted.alpha == 3.0
        assert weighted.social_cost(star) == scalar.social_cost(star)
        assert weighted.is_pairwise_stable(star) == scalar.is_pairwise_stable(star)
        rescaled = weighted.with_scale(0.5)
        assert rescaled.t == 0.5
        assert rescaled.alpha == 0.5

    def test_heterogeneous_alpha_is_undefined(self):
        game = WeightedBilateralGame(3, PerPlayerCost([1.0, 2.0, 3.0]))
        with pytest.raises(AttributeError):
            game.alpha

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedBilateralGame(0, UniformCost(1.0))
        with pytest.raises(ValueError):
            WeightedBilateralGame(3, UniformCost(1.0), t=0.0)
        with pytest.raises(ValueError):
            WeightedBilateralGame(4, PerPlayerCost([1.0, 2.0]))  # n mismatch

    def test_exhaustive_weighted_optimum(self):
        # Hub-discounted pricing on 4 players, expensive enough that sparse
        # graphs win: the optimum must beat both the hub star and K4, and
        # the game's own optimum is by construction the global arg-min.
        model = PerEdgeCost.from_pairs(4, {}, default=3.0)
        game = WeightedBilateralGame(4, model)
        optimum = game.efficient_social_cost()
        assert optimum <= game.social_cost(star_graph(4))
        assert optimum <= game.social_cost(complete_graph(4))
        assert game.social_cost(game.efficient_graph()) == optimum
        # n above the exhaustive guard raises a clear error.
        big = WeightedBilateralGame(7, PerPlayerCost([1.0] * 7))
        with pytest.raises(ValueError):
            big.efficient_social_cost()

    def test_heterogeneous_stability_two_tier(self):
        # Two-tier pricing on the star: the hub pays the cheap core rate, so
        # a star centred on a tier-1 player stays stable for every scale
        # above the leaf-pair threshold (bridges make t_max infinite).
        model = PerPlayerCost([0.5, 2.0, 2.0, 2.0, 2.0])
        game = WeightedBilateralGame(5, model)
        t_min, t_max = game.stability_t_interval(star_graph(5))
        assert t_max == INF
        assert t_min == 0.5  # leaf pair: min(1/2, 1/2) = 0.5
        assert game.with_scale(1.0).is_pairwise_stable(star_graph(5))
        assert not game.with_scale(0.25).is_pairwise_stable(star_graph(5))

    def test_weighted_ucg_game_nash_set(self):
        model = PerPlayerCost([0.5, 1.0, 1.0, 1.0])
        game = WeightedUnilateralGame(4, model)
        star = star_graph(4)
        t_set = game.nash_t_set(star)
        assert not t_set.is_empty()
        assert game.with_scale(1.0).is_nash_network(star) == t_set.contains(1.0)
