"""Tests for the telemetry spine (:mod:`repro.obs`).

Covers the instrument basics (counters, gauges, histograms with exact and
P² quantiles), the Prometheus/JSON exports, hierarchical span tracing,
the ``REPRO_METRICS`` kill-switch, and — most importantly — the
exactly-once drain/merge transport that piggybacks worker telemetry onto
``parallel_map`` chunk results and ``run_shards`` deliveries, including a
real worker crash with re-queue.
"""

import json
import math
import random
import threading

import pytest

from repro import obs
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    _exact_quantile,
)


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    """Every test starts and ends with an empty, enabled registry."""
    previous = obs.set_metrics_enabled(True)
    obs.reset_telemetry()
    yield
    obs.reset_telemetry()
    obs.set_metrics_enabled(previous)


# --------------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------------- #


def test_counter_accumulates_and_rejects_negative():
    c = obs.counter("t_total", "help text")
    c.inc()
    c.inc(2.5)
    assert obs.counter("t_total").value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_labelled_series_are_distinct_instruments():
    a = obs.counter("t_total", "h", kind="a")
    b = obs.counter("t_total", "h", kind="b")
    a.inc(1)
    b.inc(2)
    assert a is not b
    assert a.value == 1 and b.value == 2
    # Same labels in any keyword order resolve to the same instrument.
    assert obs.counter("t_total", kind="a") is a


def test_kind_mismatch_is_an_error():
    obs.counter("t_shape", "h").inc()
    with pytest.raises(ValueError):
        obs.gauge("t_shape", "h")


def test_gauge_set_inc_dec():
    g = obs.gauge("t_depth", "h")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13


def test_histogram_buckets_count_sum_min_max():
    h = obs.histogram("t_seconds", "h")
    for value in (0.002, 0.02, 0.02, 5.0):
        h.observe(value)
    snap = h._snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(5.042)
    assert snap["min"] == pytest.approx(0.002)
    assert snap["max"] == pytest.approx(5.0)
    # Per-bucket (non-cumulative) counts line up with the observations.
    totals = dict(zip(snap["buckets"], snap["bucket_counts"]))
    assert totals[0.01] == 1    # 0.002 lands in (0.001, 0.01]
    assert totals[0.1] == 2     # the two 0.02s land in (0.01, 0.1]
    assert totals[10.0] == 1    # 5.0 lands in (1, 10]


def test_histogram_exact_quantiles_small_samples():
    h = obs.histogram("t_exact", "h")
    values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
    for value in values:
        h.observe(value)
    ordered = sorted(values)
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert h.quantile(q) == pytest.approx(_exact_quantile(ordered, q))
    assert h.quantile(0.5) == pytest.approx(3.0)


def test_histogram_p2_quantiles_close_to_exact():
    pytest.importorskip("numpy")
    rng = random.Random(7)
    values = [rng.lognormvariate(0.0, 1.0) for _ in range(4000)]
    # A tiny exact buffer forces the P² sketch path almost immediately.
    h = obs.histogram("t_p2", "h", exact_buffer=8)
    for value in values:
        h.observe(value)
    ordered = sorted(values)
    for q in (0.5, 0.9, 0.99):
        exact = _exact_quantile(ordered, q)
        estimate = h.quantile(q)
        assert estimate == pytest.approx(exact, rel=0.15), q


def test_histogram_time_context_manager():
    h = obs.histogram("t_timer", "h")
    with h.time():
        pass
    snap = h._snapshot()
    assert snap["count"] == 1
    assert 0 <= snap["sum"] < 5.0


# --------------------------------------------------------------------------- #
# Exposition
# --------------------------------------------------------------------------- #


def test_prometheus_exposition_shape():
    obs.counter("t_reqs_total", "Requests", route="/a").inc(3)
    obs.gauge("t_depth", "Depth").set(2)
    h = obs.histogram("t_lat_seconds", "Latency")
    h.observe(0.01)
    h.observe(0.5)
    text = obs.to_prometheus()
    lines = text.splitlines()
    assert "# HELP t_reqs_total Requests" in lines
    assert "# TYPE t_reqs_total counter" in lines
    assert 't_reqs_total{route="/a"} 3' in lines
    assert "t_depth 2" in lines
    assert "# TYPE t_lat_seconds histogram" in lines
    # Cumulative buckets, terminated by +Inf == count.
    inf_lines = [l for l in lines if 'le="+Inf"' in l]
    assert inf_lines == ['t_lat_seconds_bucket{le="+Inf"} 2']
    assert "t_lat_seconds_count 2" in lines
    bucket_values = [
        float(l.rsplit(" ", 1)[1]) for l in lines
        if l.startswith("t_lat_seconds_bucket")
    ]
    assert bucket_values == sorted(bucket_values)


def test_json_snapshot_roundtrips_and_renders():
    obs.counter("t_total", "h", shard="0").inc(4)
    with obs.span("outer"):
        with obs.span("inner"):
            pass
    payload = json.loads(json.dumps(obs.snapshot()))
    assert payload["schema"] == "repro-metrics"
    assert payload["metrics"][0]["value"] == 4
    # The same renderer serves live registries and reloaded snapshots.
    assert obs.prometheus_from_snapshot(payload) == obs.to_prometheus()
    tree = obs.render_span_tree(payload["spans"])
    assert "outer" in tree and "inner" in tree


# --------------------------------------------------------------------------- #
# Spans
# --------------------------------------------------------------------------- #


def test_span_nesting_and_reentrancy():
    with obs.span("a"):
        with obs.span("b"):
            pass
        with obs.span("b"):
            pass
        with obs.span("a"):  # re-entrant: records as a/a, not a sibling
            pass
    snap = obs.get_tracer().snapshot()
    (a,) = snap["children"]
    assert a["name"] == "a" and a["count"] == 1
    children = {node["name"]: node for node in a["children"]}
    assert children["b"]["count"] == 2
    assert children["a"]["count"] == 1
    assert a["wall"] >= children["b"]["wall"] + children["a"]["wall"]


def test_spans_on_threads_do_not_nest_into_each_other():
    def worker():
        with obs.span("thread_side"):
            pass

    with obs.span("main_side"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    names = {node["name"] for node in obs.get_tracer().snapshot()["children"]}
    assert names == {"main_side", "thread_side"}


# --------------------------------------------------------------------------- #
# Kill-switch
# --------------------------------------------------------------------------- #


def test_disabled_factories_return_shared_noops():
    live = obs.counter("t_total", "h")
    live.inc()
    obs.set_metrics_enabled(False)
    assert obs.counter("anything") is NOOP_COUNTER
    assert obs.gauge("anything") is NOOP_GAUGE
    assert obs.histogram("anything") is NOOP_HISTOGRAM
    # No-ops swallow every operation, including timing.
    NOOP_COUNTER.inc()
    NOOP_GAUGE.set(5)
    with NOOP_HISTOGRAM.time():
        pass
    # A stale live handle from before the switch refuses to record.
    live.inc(100)
    assert live.value == 1
    # Spans and transport go quiet too.
    with obs.span("ignored"):
        pass
    assert obs.drain_telemetry() is None
    obs.set_metrics_enabled(True)
    assert obs.get_tracer().snapshot().get("children", []) == []


# --------------------------------------------------------------------------- #
# Drain / merge transport
# --------------------------------------------------------------------------- #


def test_drain_is_empty_after_drain():
    obs.counter("t_total", "h").inc(2)
    first = obs.drain_telemetry()
    assert first["metrics"] is not None
    assert obs.drain_telemetry() is None  # nothing pending anymore
    obs.counter("t_total", "h").inc(1)
    second = obs.drain_telemetry()
    ((_, delta),) = second["metrics"].items()
    assert delta["value"] == 1  # only the post-drain increment


def test_merge_creates_missing_instruments():
    obs.counter("t_total", "Help", shard="3").inc(5)
    h = obs.histogram("t_seconds", "H")
    h.observe(0.1)
    payload = obs.drain_telemetry()
    obs.reset_telemetry()
    obs.merge_telemetry(payload)
    assert obs.counter("t_total", shard="3").value == 5
    snap = obs.histogram("t_seconds")._snapshot()
    assert snap["count"] == 1 and snap["sum"] == pytest.approx(0.1)
    assert snap["help"] == "H"


def test_merge_none_is_noop():
    obs.merge_telemetry(None)
    assert len(obs.get_registry()) == 0


def test_gauge_merge_is_last_write_wins():
    obs.gauge("t_depth", "h").set(7)
    payload = obs.drain_telemetry()
    obs.reset_telemetry()
    obs.gauge("t_depth", "h").set(3)
    obs.get_registry().drain_deltas()
    obs.merge_telemetry(payload)
    assert obs.gauge("t_depth").value == 7


def _histogram_merge_case(observations):
    h = obs.histogram("t_m", "h")
    for value in observations:
        h.observe(value)
    return obs.drain_telemetry()


def test_histogram_merge_bucket_exact():
    left = _histogram_merge_case([0.001, 0.5])
    obs.reset_telemetry()
    right = _histogram_merge_case([0.5, 20.0])
    obs.reset_telemetry()
    obs.merge_telemetry(left)
    obs.merge_telemetry(right)
    snap = obs.histogram("t_m")._snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(21.001)
    assert snap["min"] == pytest.approx(0.001)
    assert snap["max"] == pytest.approx(20.0)
    assert sum(snap["bucket_counts"]) == 4


# --------------------------------------------------------------------------- #
# Worker piggyback: parallel_map and run_shards
# --------------------------------------------------------------------------- #


def _counted_square(item):
    obs.counter("t_pool_items_total", "items processed").inc()
    return item * item


def test_parallel_map_merges_worker_deltas_exactly_once():
    items = list(range(24))
    results = obs_pool_map(items)
    assert results == [item * item for item in items]
    assert obs.counter("t_pool_items_total").value == len(items)


def obs_pool_map(items):
    from repro.engine import parallel_map

    return parallel_map(_counted_square, items, jobs=2)


def _counted_shard(payload):
    import numpy as np

    obs.counter("t_shard_calls_total", "shard worker calls").inc()
    return {"values": np.arange(int(payload), dtype=np.int64) * 2}


def test_run_shards_crash_requeue_does_not_double_count(tmp_path):
    pytest.importorskip("numpy")
    from repro.engine.faults import parse_plan
    from repro.engine.shardwork import run_shards

    payloads = [3, 1, 4, 1, 5]
    plan = parse_plan("crash@1", spool=str(tmp_path / "spool"))
    report = run_shards(
        _counted_shard,
        payloads,
        jobs=2,
        fingerprint={"kind": "obs-test", "n": 5},
        fault_plan=plan,
    )
    assert report.retries >= 1  # the crash really fired and was re-queued
    assert len(report.parts) == len(payloads)
    # The crashed attempt died before its shard ran; the retry recorded
    # afresh; every delivered result merged exactly once.
    assert obs.counter("t_shard_calls_total").value == len(payloads)
    computed = obs.counter("repro_shards_computed_total", prefix="shard")
    assert computed.value == len(payloads)
    assert computed.value == report.manifest["computed"]


def test_run_shards_metrics_match_manifest_on_resume(tmp_path):
    pytest.importorskip("numpy")
    from repro.engine.shardwork import run_shards

    payloads = [2, 3, 4]
    fingerprint = {"kind": "obs-resume", "n": 3}
    shard_dir = str(tmp_path / "shards")
    run_shards(_counted_shard, payloads, shard_dir=shard_dir, fingerprint=fingerprint)
    obs.reset_telemetry()
    report = run_shards(
        _counted_shard, payloads, shard_dir=shard_dir, fingerprint=fingerprint
    )
    resumed = obs.counter("repro_shards_resumed_total", prefix="shard")
    assert resumed.value == report.manifest["resumed"] == len(payloads)
    assert obs.counter("t_shard_calls_total").value == 0


def _raising_progress(snapshot):
    raise RuntimeError("progress sink exploded")


def test_run_shards_survives_raising_progress_callback():
    pytest.importorskip("numpy")
    from repro.engine.shardwork import run_shards

    payloads = [2, 3]
    with pytest.warns(RuntimeWarning, match="progress callback raised"):
        report = run_shards(
            _counted_shard,
            payloads,
            fingerprint={"kind": "obs-progress", "n": 2},
            progress=_raising_progress,
        )
    assert len(report.parts) == len(payloads)
    assert report.manifest["computed"] == len(payloads)


# --------------------------------------------------------------------------- #
# Progress reporter
# --------------------------------------------------------------------------- #


def test_progress_reporter_renders_rate_and_eta():
    import io

    stream = io.StringIO()
    reporter = obs.ProgressReporter(stream=stream)
    reporter(
        {
            "prefix": "shard", "total": 8, "done": 4, "resumed": 1,
            "computed": 3, "retries": 2, "timeouts": 0,
            "started_at": 100.0, "updated_at": 102.0,
        }
    )
    line = stream.getvalue()
    assert "[shard] 4/8 done" in line
    assert "resumed 1" in line and "retries 2" in line
    assert "rate 1.50/s" in line  # 3 computed over 2 seconds
    assert "eta" in line


def test_exact_quantile_reference():
    ordered = [1.0, 2.0, 3.0, 4.0]
    assert _exact_quantile(ordered, 0.0) == 1.0
    assert _exact_quantile(ordered, 1.0) == 4.0
    assert _exact_quantile(ordered, 0.5) == pytest.approx(2.5)
    assert math.isnan(_exact_quantile([], 0.5)) or _exact_quantile([], 0.5) is None
