"""Unit tests for exhaustive graph enumeration up to isomorphism."""

import os

import pytest

from repro.graphs import (
    are_isomorphic,
    canonical_form,
    class_sort_key,
    count_connected_graphs,
    count_graphs,
    count_trees,
    enumerate_connected_graphs,
    enumerate_graphs,
    enumerate_graphs_with_edge_count,
    enumerate_labeled_graphs,
    enumerate_trees,
    is_connected,
    is_tree,
    iter_connected_graphs,
    iter_graphs,
    iter_graphs_from,
)
from repro.graphs.enumeration import (
    _augment_dedup_level,
    _canonical_augment_level,
    clear_cache,
)

# OEIS A000088: number of graphs on n unlabelled nodes.
GRAPH_COUNTS = {0: 1, 1: 1, 2: 2, 3: 4, 4: 11, 5: 34, 6: 156, 7: 1044, 8: 12346}
# OEIS A001349: number of connected graphs on n unlabelled nodes.
CONNECTED_COUNTS = {1: 1, 2: 1, 3: 2, 4: 6, 5: 21, 6: 112, 7: 853, 8: 11117}
# OEIS A000055: number of trees with n unlabelled nodes.
TREE_COUNTS = {
    1: 1, 2: 1, 3: 1, 4: 2, 5: 3, 6: 6, 7: 11, 8: 23, 9: 47, 10: 106,
    11: 235, 12: 551,
}


@pytest.mark.parametrize("n,expected", sorted(GRAPH_COUNTS.items()))
def test_graph_counts_match_oeis(n, expected):
    assert count_graphs(n) == expected


@pytest.mark.parametrize("n,expected", sorted(CONNECTED_COUNTS.items()))
def test_connected_graph_counts_match_oeis(n, expected):
    assert count_connected_graphs(n) == expected


@pytest.mark.parametrize("n,expected", sorted(TREE_COUNTS.items()))
def test_tree_counts_match_oeis(n, expected):
    assert count_trees(n) == expected


def test_enumerated_graphs_are_pairwise_non_isomorphic():
    graphs = enumerate_graphs(5)
    forms = {canonical_form(g) for g in graphs}
    assert len(forms) == len(graphs)


def test_enumerated_connected_graphs_are_connected():
    assert all(is_connected(g) for g in enumerate_connected_graphs(6))


def test_enumerated_trees_are_trees():
    assert all(is_tree(t) for t in enumerate_trees(7))


def test_every_labeled_graph_has_a_representative():
    representatives = enumerate_graphs(4)
    for labelled in enumerate_labeled_graphs(4):
        assert any(are_isomorphic(labelled, rep) for rep in representatives)


def test_labeled_graph_count():
    assert sum(1 for _ in enumerate_labeled_graphs(4)) == 2 ** 6


def test_edge_count_filter():
    # Unlabelled graphs on 5 vertices with 4 edges: 6 of them.
    graphs = enumerate_graphs_with_edge_count(5, 4)
    assert len(graphs) == 6
    assert all(g.num_edges == 4 for g in graphs)


def test_enumeration_cache_survives_clear():
    clear_cache()
    first = enumerate_graphs(4)
    second = enumerate_graphs(4)
    assert [g.edge_key() for g in first] == [g.edge_key() for g in second]


def test_negative_n_rejected():
    with pytest.raises(ValueError):
        enumerate_graphs(-1)
    with pytest.raises(ValueError):
        enumerate_trees(-1)
    with pytest.raises(ValueError):
        list(iter_graphs(-1))


def test_tree_cache_survives_clear():
    clear_cache()
    first = enumerate_trees(6)
    cached = enumerate_trees(6)
    assert [t.edge_key() for t in first] == [t.edge_key() for t in cached]
    clear_cache()
    cold = enumerate_trees(6)
    assert [t.edge_key() for t in first] == [t.edge_key() for t in cold]


class TestStreaming:
    @pytest.mark.parametrize("n", range(0, 7))
    def test_streamed_classes_match_materialised(self, n):
        streamed = sorted(canonical_form(g) for g in iter_graphs(n))
        materialised = sorted(canonical_form(g) for g in enumerate_graphs(n))
        assert streamed == materialised

    def test_streamed_connected_filter(self):
        streamed = sorted(canonical_form(g) for g in iter_connected_graphs(6))
        materialised = sorted(
            canonical_form(g) for g in enumerate_connected_graphs(6)
        )
        assert streamed == materialised

    def test_streaming_yields_no_duplicates_cold(self):
        clear_cache()
        forms = [canonical_form(g) for g in iter_graphs(6)]
        assert len(forms) == len(set(forms)) == 156

    def test_sharded_subtrees_partition_the_level(self):
        # Every level-7 class must be generated below exactly one level-4 root.
        roots = enumerate_graphs(4)
        forms = [
            canonical_form(g)
            for root in roots
            for g in iter_graphs_from(root, 7)
        ]
        assert len(forms) == len(set(forms)) == 1044

    def test_iter_graphs_from_level_boundaries(self):
        roots = enumerate_graphs(3)
        assert [canonical_form(g) for root in roots for g in iter_graphs_from(root, 3)] == [
            canonical_form(root) for root in roots
        ]
        with pytest.raises(ValueError):
            list(iter_graphs_from(enumerate_graphs(4)[0], 3))


def test_canonical_augmentation_matches_augment_dedup():
    # The orderly generator must produce exactly the classes of the retained
    # PR-1 augment-and-deduplicate path, in the same order.
    parents = enumerate_graphs(5)
    legacy = _augment_dedup_level(parents)
    orderly = _canonical_augment_level(parents)
    assert [g.edge_key() for g in legacy] == [g.edge_key() for g in orderly]


@pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW_TESTS"),
    reason="n=9 sweep takes ~30s; set REPRO_SLOW_TESTS=1 to run",
)
def test_oeis_counts_n9():
    total = 0
    connected = 0
    for g in iter_graphs(9):
        total += 1
        if is_connected(g):
            connected += 1
    assert total == 274668  # A000088
    assert connected == 261080  # A001349


def test_class_sort_key_is_public_and_orders_enumerations():
    graphs = enumerate_graphs(5)
    keys = [class_sort_key(g) for g in graphs]
    assert keys == sorted(keys)
    # Edge count is the primary key, edge-list lexicographic order the tie-break.
    assert class_sort_key(graphs[0])[0] == 0
    assert class_sort_key(graphs[-1])[0] == 10
