"""Unit tests for the high-level game classes."""

import pytest

from repro.core import (
    BilateralConnectionGame,
    UnilateralConnectionGame,
    profile_from_graph_bcg,
)
from repro.core.strategies import profile_from_ownership_ucg
from repro.graphs import complete_graph, cycle_graph, is_star, star_graph


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BilateralConnectionGame(n=0, alpha=1.0)
        with pytest.raises(ValueError):
            UnilateralConnectionGame(n=5, alpha=0.0)

    def test_repr(self):
        game = BilateralConnectionGame(n=5, alpha=2.0)
        assert "BilateralConnectionGame" in repr(game)
        assert game.name == "bcg"
        assert UnilateralConnectionGame(5, 2.0).name == "ucg"


class TestBilateralGame:
    def test_linking_rule_and_costs(self):
        game = BilateralConnectionGame(n=4, alpha=2.0)
        profile = profile_from_graph_bcg(star_graph(4))
        graph = game.resulting_graph(profile)
        assert is_star(graph)
        assert game.player_cost(profile, 0) == 2.0 * 3 + 3
        assert game.social_cost(graph) == 2 * 2.0 * 3 + (6 + 12)

    def test_equilibrium_interface(self):
        game = BilateralConnectionGame(n=6, alpha=3.0)
        star = star_graph(6)
        assert game.is_pairwise_stable(star)
        assert game.is_pairwise_nash(star)
        assert game.is_equilibrium_network(star)
        assert game.is_nash(profile_from_graph_bcg(star))
        assert game.stability_violations(star) == []
        assert not game.is_equilibrium_network(complete_graph(6))

    def test_efficiency_and_poa(self):
        game = BilateralConnectionGame(n=6, alpha=3.0)
        assert is_star(game.efficient_graph())
        assert game.price_of_anarchy(star_graph(6)) == pytest.approx(1.0)
        equilibria = game.equilibrium_networks([star_graph(6), cycle_graph(6), complete_graph(6)])
        assert star_graph(6) in equilibria
        assert complete_graph(6) not in equilibria
        assert game.worst_case_price_of_anarchy(equilibria) >= 1.0
        assert game.average_price_of_anarchy(equilibria) >= 1.0

    def test_static_stability_interval(self):
        lo, hi = BilateralConnectionGame.stability_interval(star_graph(6))
        assert (lo, hi) == (1.0, float("inf"))


class TestUnilateralGame:
    def test_linking_rule_and_costs(self):
        game = UnilateralConnectionGame(n=4, alpha=2.0)
        star = star_graph(4)
        ownership = {edge: max(edge) for edge in star.edges}
        profile = profile_from_ownership_ucg(star, ownership)
        assert game.resulting_graph(profile) == star
        assert game.player_cost(profile, 0) == 0 + 3          # centre bought nothing
        assert game.player_cost(profile, 1) == 2.0 + (1 + 2 * 2)
        assert game.social_cost(star) == 2.0 * 3 + 18

    def test_equilibrium_interface(self):
        game = UnilateralConnectionGame(n=5, alpha=2.0)
        star = star_graph(5)
        assert game.is_nash_network(star)
        assert game.is_equilibrium_network(star)
        ownership = game.nash_supporting_ownership(star)
        assert ownership is not None
        profile = profile_from_ownership_ucg(star, ownership)
        assert game.is_nash(profile)
        assert not game.is_nash_network(complete_graph(5))

    def test_nash_alpha_set_static(self):
        alpha_set = UnilateralConnectionGame.nash_alpha_set(complete_graph(4))
        assert alpha_set.contains(0.5)
        assert not alpha_set.contains(2.0)

    def test_efficiency_threshold_differs_from_bcg(self):
        ucg = UnilateralConnectionGame(n=6, alpha=1.5)
        bcg = BilateralConnectionGame(n=6, alpha=1.5)
        assert ucg.efficient_graph().num_edges == 15   # complete graph below α = 2
        assert bcg.efficient_graph().num_edges == 5    # star above α = 1
