"""Unit tests for the decentralised dynamics of both games."""

import random

import pytest

from repro.core import (
    best_response_dynamics_ucg,
    is_nash_graph_ucg,
    is_nash_profile_ucg,
    is_pairwise_stable,
    pairwise_dynamics_bcg,
    sample_nash_networks_ucg,
    sample_stable_networks_bcg,
)
from repro.core.dynamics import DynamicsResult
from repro.graphs import Graph, complete_graph, is_connected, random_graph, star_graph


class TestUCGBestResponseDynamics:
    def test_converges_from_empty_start(self):
        result = best_response_dynamics_ucg(6, alpha=2.0, rng=random.Random(1))
        assert isinstance(result, DynamicsResult)
        assert result.converged
        assert is_connected(result.graph)
        assert is_nash_profile_ucg(result.profile, 2.0)

    def test_fixed_point_is_a_nash_network(self):
        for seed in range(4):
            result = best_response_dynamics_ucg(7, alpha=3.0, rng=random.Random(seed))
            assert result.converged
            assert is_nash_graph_ucg(result.graph, 3.0)

    def test_cheap_links_produce_dense_networks(self):
        result = best_response_dynamics_ucg(6, alpha=0.5, rng=random.Random(2))
        assert result.converged
        # For α < 1 the (essentially unique) Nash network is the complete graph.
        assert result.graph.num_edges == 15

    def test_expensive_links_produce_sparse_networks(self):
        result = best_response_dynamics_ucg(6, alpha=30.0, rng=random.Random(3))
        assert result.converged
        assert result.graph.num_edges == 5  # a tree

    def test_deterministic_order_option(self):
        a = best_response_dynamics_ucg(5, alpha=2.0, randomize_order=False)
        b = best_response_dynamics_ucg(5, alpha=2.0, randomize_order=False)
        assert a.graph == b.graph

    def test_history_and_rounds_recorded(self):
        result = best_response_dynamics_ucg(5, alpha=2.0, rng=random.Random(4))
        assert len(result.history) == result.rounds

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            best_response_dynamics_ucg(5, alpha=0.0)
        from repro.core import StrategyProfile

        with pytest.raises(ValueError):
            best_response_dynamics_ucg(5, alpha=1.0, initial=StrategyProfile(4))


class TestBCGPairwiseDynamics:
    def test_converges_to_pairwise_stable_network(self):
        for seed in range(4):
            rng = random.Random(seed)
            start = random_graph(7, 0.3, rng)
            result = pairwise_dynamics_bcg(7, alpha=2.0, initial=start, rng=rng)
            assert result.converged
            assert is_pairwise_stable(result.graph, 2.0)

    def test_cheap_links_reach_complete_graph(self):
        # Start from a connected network: from the empty network single-link
        # additions cannot reduce an infinite distance cost, so the dynamics
        # would freeze there (the empty network is itself pairwise stable).
        result = pairwise_dynamics_bcg(
            6, alpha=0.5, initial=star_graph(6), rng=random.Random(5)
        )
        assert result.converged
        assert result.graph == complete_graph(6)

    def test_empty_start_freezes_by_mutual_blocking(self):
        result = pairwise_dynamics_bcg(6, alpha=0.5, rng=random.Random(5))
        assert result.converged
        assert result.graph.num_edges == 0
        assert is_pairwise_stable(result.graph, 0.5)

    def test_star_start_is_already_stable(self):
        star = star_graph(6)
        result = pairwise_dynamics_bcg(6, alpha=3.0, initial=star, rng=random.Random(6))
        assert result.converged
        assert result.graph == star
        assert result.rounds == 1

    def test_profile_is_mutual_consent_form(self):
        result = pairwise_dynamics_bcg(5, alpha=2.0, rng=random.Random(7))
        assert result.profile is not None
        assert result.profile.bilateral_graph() == result.graph

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            pairwise_dynamics_bcg(5, alpha=-1.0)
        with pytest.raises(ValueError):
            pairwise_dynamics_bcg(5, alpha=1.0, initial=Graph(4))


class TestSampling:
    def test_sampled_bcg_networks_are_stable(self):
        graphs = sample_stable_networks_bcg(6, alpha=2.0, num_samples=4, seed=1)
        assert graphs
        assert all(is_pairwise_stable(g, 2.0) for g in graphs)

    def test_sampled_ucg_networks_are_nash(self):
        graphs = sample_nash_networks_ucg(6, alpha=2.0, num_samples=4, seed=1)
        assert graphs
        assert all(is_nash_graph_ucg(g, 2.0) for g in graphs)
