"""Shared fixtures for the test suite."""

import random

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    star_graph,
)


@pytest.fixture
def triangle() -> Graph:
    """The triangle K_3."""
    return complete_graph(3)


@pytest.fixture
def p4() -> Graph:
    """The path on four vertices."""
    return path_graph(4)


@pytest.fixture
def star6() -> Graph:
    """The star on six vertices."""
    return star_graph(6)


@pytest.fixture
def c6() -> Graph:
    """The cycle on six vertices."""
    return cycle_graph(6)


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph."""
    return petersen_graph()


@pytest.fixture
def small_random_graphs():
    """A deterministic batch of small connected random graphs."""
    rng = random.Random(20050717)  # the PODC'05 dates, for flavour
    return [
        random_connected_graph(n, p, rng)
        for n in (4, 5, 6, 7)
        for p in (0.2, 0.5)
    ]
