"""Integration tests: every experiment reproduces its paper claims."""

import pytest

from repro.experiments import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)
from repro.experiments import figure1, figure2, figure3, lemmas, propositions
from repro.experiments.base import ClaimCheck


class TestRegistry:
    def test_expected_ids_registered(self):
        ids = available_experiments()
        for expected in (
            "figure1",
            "figure2",
            "figure3",
            "lemma4",
            "lemma5",
            "lemma6",
            "prop1",
            "prop3",
            "prop4",
            "prop5",
        ):
            assert expected in ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")


class TestResultTypes:
    def test_claim_rendering(self):
        claim = ClaimCheck("d", "e", "o", True)
        assert claim.render().startswith("[PASS]")
        assert ClaimCheck("d", "e", "o", False).render().startswith("[FAIL]")

    def test_experiment_result_render_and_summary(self):
        result = ExperimentResult("x", "Title")
        result.add_claim("a", "b", "c", True)
        result.notes.append("a note")
        result.tables.append("a table")
        text = result.render()
        assert "Title" in text and "a note" in text and "a table" in text
        assert result.summary() == "x: 1/1 claims reproduced"
        assert result.all_passed


class TestFigureExperiments:
    def test_figure1_claims_reproduce(self):
        result = figure1.run(include_hoffman_singleton=False)
        assert result.all_passed
        assert result.tables

    def test_figure2_claims_reproduce_on_default_census(self):
        # n = 6 (the default) is the smallest census on which the paper's
        # high-cost reversal is visible; at n = 5 the two games' stable sets
        # coincide for very expensive links and the gap is exactly zero.
        result = figure2.run()
        assert result.all_passed

    def test_figure3_claims_reproduce_on_default_census(self):
        result = figure3.run()
        assert result.all_passed

    def test_figure2_compute_returns_aligned_series(self):
        figure = figure2.compute_figure2(n=5, total_edge_costs=[2.0, 8.0])
        assert len(figure.ucg.points) == 2
        assert figure.bcg.points[0].alpha == 1.0


class TestLemmaExperiments:
    def test_lemma4(self):
        assert lemmas.run_lemma4(n=5).all_passed

    def test_lemma5(self):
        assert lemmas.run_lemma5(n=5).all_passed

    def test_lemma6(self):
        result = lemmas.run_lemma6(sizes=(5, 6, 8, 12))
        assert result.all_passed

    def test_merged_runner(self):
        result = lemmas.run(n=5)
        assert result.all_passed
        assert len(result.tables) >= 3


class TestPropositionExperiments:
    def test_prop1(self):
        assert propositions.run_proposition1(n=5, alphas=(0.5, 2.0, 5.0)).all_passed

    def test_prop3(self):
        assert propositions.run_proposition3().all_passed

    def test_prop4(self):
        assert propositions.run_proposition4(n=5, alphas=(1.5, 3.0, 8.0)).all_passed

    def test_prop5(self):
        result = propositions.run_proposition5(max_n=6)
        assert result.all_passed
