"""Unit tests for link-cost grids and axis conventions."""

import math

import pytest

from repro.analysis import (
    aligned_cost_grid,
    aligned_link_costs,
    default_alpha_grid,
    linear_alphas,
    log_spaced_alphas,
    per_edge_cost_axis,
)


class TestGrids:
    def test_log_spaced_endpoints(self):
        grid = log_spaced_alphas(0.5, 32.0, 7)
        assert grid[0] == pytest.approx(0.5)
        assert grid[-1] == pytest.approx(32.0)
        assert len(grid) == 7
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_log_spaced_validation(self):
        with pytest.raises(ValueError):
            log_spaced_alphas(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            log_spaced_alphas(2.0, 1.0, 5)
        with pytest.raises(ValueError):
            log_spaced_alphas(1.0, 2.0, 1)

    def test_linear_grid(self):
        assert linear_alphas(0.0, 1.0, 5) == [0.0, 0.25, 0.5, 0.75, 1.0]
        with pytest.raises(ValueError):
            linear_alphas(0.0, 1.0, 1)

    def test_default_grid_spans_the_interesting_range(self):
        grid = default_alpha_grid(6)
        assert grid[0] < 1.0
        assert grid[-1] == pytest.approx(36.0)


class TestAxisConventions:
    def test_per_edge_cost_axis(self):
        assert per_edge_cost_axis(math.e, "ucg") == pytest.approx(1.0)
        assert per_edge_cost_axis(math.e / 2, "bcg") == pytest.approx(1.0)
        with pytest.raises(ValueError):
            per_edge_cost_axis(1.0, "xyz")

    def test_aligned_link_costs(self):
        alpha_ucg, alpha_bcg = aligned_link_costs(8.0)
        assert alpha_ucg == 8.0
        assert alpha_bcg == 4.0
        with pytest.raises(ValueError):
            aligned_link_costs(0.0)

    def test_aligned_axes_coincide(self):
        alpha_ucg, alpha_bcg = aligned_link_costs(5.0)
        assert per_edge_cost_axis(alpha_ucg, "ucg") == pytest.approx(
            per_edge_cost_axis(alpha_bcg, "bcg")
        )

    def test_aligned_cost_grid_shape(self):
        grid = aligned_cost_grid(6, count=10)
        assert len(grid) == 10
        for cost, alpha_ucg, alpha_bcg in grid:
            assert alpha_ucg == pytest.approx(cost)
            assert alpha_bcg == pytest.approx(cost / 2)
