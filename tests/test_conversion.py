"""Unit tests for graph format conversions."""

import pytest

from repro.graphs import (
    Graph,
    are_isomorphic,
    complete_graph,
    from_edge_list_string,
    from_graph6,
    from_networkx,
    petersen_graph,
    star_graph,
    to_edge_list_string,
    to_graph6,
    to_networkx,
)


class TestEdgeListString:
    def test_round_trip(self):
        g = Graph(5, [(0, 1), (2, 4)])
        assert from_edge_list_string(to_edge_list_string(g)) == g

    def test_format(self):
        assert to_edge_list_string(Graph(3, [(2, 0)])) == "3; 0-2"
        assert to_edge_list_string(Graph(2)) == "2;"

    def test_parse(self):
        g = from_edge_list_string("4; 0-1 2-3")
        assert g.n == 4
        assert g.edges == {(0, 1), (2, 3)}


class TestGraph6:
    def test_round_trip_small_graphs(self):
        for g in (Graph(0), Graph(1), star_graph(5), complete_graph(6), petersen_graph()):
            assert from_graph6(to_graph6(g)) == g

    def test_known_encoding(self):
        # The path 0-1-2 has graph6 encoding "Bg" (n=2+? ...): verify against networkx.
        networkx = pytest.importorskip("networkx")
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        expected = networkx.to_graph6_bytes(to_networkx(g), header=False).decode().strip()
        assert to_graph6(g) == expected

    def test_decode_networkx_output(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.petersen_graph()
        text = networkx.to_graph6_bytes(nx_graph, header=False).decode().strip()
        assert are_isomorphic(from_graph6(text), petersen_graph())

    def test_size_limit(self):
        with pytest.raises(ValueError):
            to_graph6(Graph(63))
        with pytest.raises(ValueError):
            from_graph6("")

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            from_graph6("C" + chr(200))


class TestNetworkxConversion:
    def test_round_trip(self):
        pytest.importorskip("networkx")
        g = petersen_graph()
        assert from_networkx(to_networkx(g)) == g

    def test_from_networkx_with_arbitrary_labels(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(["c", "a", "b"])
        nx_graph.add_edge("a", "c")
        g = from_networkx(nx_graph)
        assert g.n == 3
        assert g.edges == {(0, 2)}

    def test_to_networkx_preserves_isolated_vertices(self):
        networkx = pytest.importorskip("networkx")
        g = Graph(4, [(0, 1)])
        nx_graph = to_networkx(g)
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 1
