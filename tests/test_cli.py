"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    output = capsys.readouterr().out
    assert "figure1" in output and "prop5" in output


def test_no_arguments_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_unknown_experiment(capsys):
    assert main(["nonexistent"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment_summary_only(capsys):
    exit_code = main(["lemma4", "--summary-only"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "lemma4" in output
    assert "claims reproduced" in output


def test_run_single_experiment_full_render(capsys):
    exit_code = main(["prop1"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "Proposition 1" in output
    assert "[PASS]" in output


def test_parser_has_expected_flags():
    parser = build_parser()
    args = parser.parse_args(["--all", "--summary-only"])
    assert args.all and args.summary_only and args.experiments == []
