"""Tests for the command-line interface."""

import importlib.util

import pytest

from repro.cli import build_parser, main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    output = capsys.readouterr().out
    assert "figure1" in output and "prop5" in output


def test_no_arguments_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_unknown_experiment(capsys):
    assert main(["nonexistent"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment_summary_only(capsys):
    exit_code = main(["lemma4", "--summary-only"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "lemma4" in output
    assert "claims reproduced" in output


def test_run_single_experiment_full_render(capsys):
    exit_code = main(["prop1"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "Proposition 1" in output
    assert "[PASS]" in output


def test_parser_has_expected_flags():
    parser = build_parser()
    args = parser.parse_args(["--all", "--summary-only"])
    assert args.all and args.summary_only and args.experiments == []


@pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="the census store subcommand requires NumPy",
)
class TestCensusSubcommand:

    def test_build_save_load_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "census4.npz")
        assert main(["census", "--n", "4", "--save", path]) == 0
        output = capsys.readouterr().out
        assert "census store: n = 4" in output
        assert f"saved to {path}" in output

        assert main(["census", "--load", path, "--grid", "4"]) == 0
        output = capsys.readouterr().out
        assert "census store: n = 4" in output
        assert "average_poa" in output

    def test_streamed_build_without_ucg(self, capsys):
        assert main(["census", "--n", "4", "--streamed", "--no-ucg", "--grid", "3"]) == 0
        output = capsys.readouterr().out
        assert "ucg = no" in output
        assert "BCG only" in output

    def test_requires_exactly_one_source(self, capsys):
        assert main(["census"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_dir_format_with_mmap(self, capsys, tmp_path):
        path = str(tmp_path / "census4_dir")
        assert main(["census", "--n", "4", "--no-ucg", "--save", path, "--format", "dir"]) == 0
        capsys.readouterr()
        assert main(["census", "--load", path, "--mmap"]) == 0
        assert "census store: n = 4" in capsys.readouterr().out

    def test_shard_dir_requires_streamed(self, capsys):
        assert main(["census", "--n", "4", "--shard-dir", "/tmp/x"]) == 2
        assert "--shard-dir requires --streamed" in capsys.readouterr().err

    def test_shard_knobs_require_streamed(self, capsys):
        for extra in (
            ["--shard-timeout", "5"],
            ["--shard-retries", "1"],
            ["--progress"],
        ):
            assert main(["census", "--n", "4"] + extra) == 2
            assert "requires --streamed" in capsys.readouterr().err

    def test_verify_reports_ok_on_a_healthy_build(self, capsys):
        assert main(["census", "--n", "4", "--streamed", "--verify"]) == 0
        output = capsys.readouterr().out
        assert "verify built in-process (n = 4): ok" in output

    def test_verify_catches_a_corrupted_artifact(self, capsys, tmp_path):
        from repro.engine.faults import flip_byte

        path = tmp_path / "census4_dir"
        assert main(
            ["census", "--n", "4", "--no-ucg", "--save", str(path), "--format", "dir"]
        ) == 0
        capsys.readouterr()
        assert main(["census", "--load", str(path), "--verify"]) == 0
        assert "checksum ok" in capsys.readouterr().out

        # Flip inside the data payload (a tiny .npy is mostly header).
        import os

        column = path / "dist_total.npy"
        flip_byte(str(column), offset=os.path.getsize(column) - 5)
        assert main(["census", "--load", str(path), "--verify"]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err

    def test_progress_flag_streams_manifest_lines(self, capsys):
        assert main(["census", "--n", "4", "--streamed", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[shard]" in captured.err
        assert "done" in captured.err and "rate" in captured.err

    def test_load_errors_exit_cleanly(self, capsys, tmp_path):
        assert main(["census", "--load", str(tmp_path / "missing.npz")]) == 2
        assert "cannot load" in capsys.readouterr().err
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(b"PK\x03\x04 not actually a zip")
        assert main(["census", "--load", str(truncated)]) == 2
        assert "cannot load" in capsys.readouterr().err
        import numpy

        foreign = tmp_path / "foreign.npz"
        numpy.savez(str(foreign), data=numpy.arange(3))
        assert main(["census", "--load", str(foreign)]) == 2
        assert "cannot load" in capsys.readouterr().err


def test_scenarios_parser_has_expected_flags():
    from repro.cli import build_scenarios_parser

    parser = build_scenarios_parser()
    args = parser.parse_args(
        ["--name", "two_tier_isp", "--n", "6", "--grid", "4", "--seed", "7", "--ucg"]
    )
    assert args.name == "two_tier_isp"
    assert args.n == 6 and args.grid == 4 and args.seed == 7 and args.ucg


def test_scenarios_dispatch_from_main(capsys):
    assert main(["scenarios", "--list"]) == 0
    assert "line_metric" in capsys.readouterr().out


def test_scenarios_verify_requires_an_artifact(capsys):
    assert main(["scenarios", "--name", "line_metric", "--verify"]) == 2
    assert "--verify audits an artifact" in capsys.readouterr().err


@pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="weighted-store artifacts require NumPy",
)
def test_scenarios_verify_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "line4.npz")
    assert main(
        ["scenarios", "--name", "line_metric", "--n", "4", "--save", path,
         "--verify", "--grid", "3"]
    ) == 0
    output = capsys.readouterr().out
    assert f"verify {path}: ok" in output

    assert main(["scenarios", "--load", path, "--verify", "--grid", "3"]) == 0
    assert "checksum ok" in capsys.readouterr().out


@pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="UCG store columns require NumPy",
)
class TestUcgFlags:

    def test_census_includes_ucg_by_default(self, capsys):
        assert main(["census", "--n", "4", "--grid", "3"]) == 0
        assert "ucg = yes" in capsys.readouterr().out

    def test_census_explicit_ucg_flag(self, capsys):
        assert main(["census", "--n", "4", "--ucg", "--grid", "3", "--verify"]) == 0
        output = capsys.readouterr().out
        assert "ucg = yes" in output
        assert ": ok" in output  # --verify audits the UCG CSR columns too

    def test_scenarios_ucg_save_load_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "ucg4.npz")
        assert main(
            ["scenarios", "--name", "random_weights", "--n", "4", "--ucg",
             "--save", path, "--verify", "--grid", "3"]
        ) == 0
        output = capsys.readouterr().out
        assert "#nash_ucg" in output
        assert f"verify {path}: ok" in output

        assert main(
            ["scenarios", "--load", path, "--ucg", "--verify", "--grid", "3"]
        ) == 0
        output = capsys.readouterr().out
        assert "#nash_ucg" in output
        assert "ucg_lo" in output  # the artifact carries the UCG columns
        assert "checksum ok" in output

    def test_scenarios_load_without_ucg_columns_errors(self, capsys, tmp_path):
        path = str(tmp_path / "bcg4.npz")
        assert main(
            ["scenarios", "--name", "random_weights", "--n", "4",
             "--save", path, "--grid", "3"]
        ) == 0
        capsys.readouterr()
        assert main(["scenarios", "--load", path, "--ucg", "--grid", "3"]) == 2
        assert "no UCG columns" in capsys.readouterr().err


@pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="the ensemble subcommand requires NumPy",
)
class TestEnsembleSubcommand:

    def test_summary_reports_resume_tally(self, capsys):
        assert main(
            ["ensemble", "--n", "4", "--draws", "3", "--grid", "4"]
        ) == 0
        output = capsys.readouterr().out
        assert "3 draws" in output
        assert "resumed 0, computed 3" in output

    def test_delta_cache_flag_builds_then_reuses(self, capsys, tmp_path):
        cache = str(tmp_path / "deltas")
        argv = [
            "ensemble", "--n", "4", "--draws", "2", "--grid", "4",
            "--delta-cache", cache,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert f"delta cache: {cache}" in first
        import os

        assert os.path.isdir(cache)
        stamp = os.path.getmtime(os.path.join(cache, "meta.json"))
        assert main(argv) == 0
        capsys.readouterr()
        assert os.path.getmtime(os.path.join(cache, "meta.json")) == stamp

    def test_batch_draws_flag_changes_nothing(self, capsys):
        assert main(
            ["ensemble", "--n", "4", "--draws", "4", "--grid", "4",
             "--batch-draws", "1"]
        ) == 0
        small = capsys.readouterr().out
        assert main(
            ["ensemble", "--n", "4", "--draws", "4", "--grid", "4",
             "--batch-draws", "4"]
        ) == 0
        large = capsys.readouterr().out
        assert small == large

    def test_rejects_bad_batch_draws(self, capsys):
        assert main(
            ["ensemble", "--n", "4", "--draws", "2", "--batch-draws", "0"]
        ) == 2
        assert "--batch-draws" in capsys.readouterr().err

    def test_save_dir_resume_summary(self, capsys, tmp_path):
        save_dir = str(tmp_path / "draws")
        argv = [
            "ensemble", "--n", "4", "--draws", "2", "--grid", "4",
            "--save-dir", save_dir,
        ]
        assert main(argv) == 0
        assert "resumed 0, computed 2" in capsys.readouterr().out
        assert main(argv) == 0
        assert "resumed 2, computed 0" in capsys.readouterr().out

    def test_census_save_deltas(self, capsys, tmp_path):
        path = str(tmp_path / "deltas_n4.npz")
        assert main(
            ["census", "--n", "4", "--no-ucg", "--save-deltas", path]
        ) == 0
        output = capsys.readouterr().out
        assert "delta artifact" in output and f"saved to {path}" in output
        from repro.analysis.delta_store import DeltaStore

        assert len(DeltaStore.load(path)) == 6


@pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="the instrumented subcommands require NumPy",
)
class TestTelemetryCLI:
    @pytest.fixture(autouse=True)
    def _fresh_telemetry(self):
        from repro import obs

        previous = obs.set_metrics_enabled(True)
        obs.reset_telemetry()
        yield
        obs.reset_telemetry()
        obs.set_metrics_enabled(previous)

    def test_census_metrics_out_prometheus(self, capsys, tmp_path):
        path = str(tmp_path / "census.prom")
        assert main(
            ["census", "--n", "4", "--no-ucg", "--metrics-out", path]
        ) == 0
        capsys.readouterr()
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert "# TYPE repro_kernel_seconds histogram" in text
        assert 'repro_kernel_seconds_count{kernel="batch_stability_deltas"}' in text
        assert 'repro_kernel_graphs_total{kernel="batch_stability_deltas"} 6' in text

    def test_census_trace_prints_span_tree(self, capsys):
        assert main(["census", "--n", "4", "--no-ucg", "--trace"]) == 0
        err = capsys.readouterr().err
        assert "cli:census" in err
        assert "wall" in err and "count" in err

    def test_stats_renders_json_snapshot(self, capsys, tmp_path):
        path = str(tmp_path / "census.json")
        assert main(
            ["census", "--n", "4", "--no-ucg", "--metrics-out", path]
        ) == 0
        capsys.readouterr()
        assert main(["stats", path]) == 0
        table = capsys.readouterr().out
        assert "repro_kernel_graphs_total" in table
        assert "cli:census" in table  # span tree rides along in the snapshot
        assert main(["stats", path, "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_kernel_graphs_total counter" in prom

    def test_stats_rejects_non_snapshot_file(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        assert main(["stats", str(path)]) == 2
        assert "not a repro telemetry snapshot" in capsys.readouterr().err

    def test_scenarios_progress_requires_streamed(self, capsys):
        assert main(
            ["scenarios", "--name", "random_weights", "--progress"]
        ) == 2
        assert "--progress requires --streamed" in capsys.readouterr().err

    def test_scenarios_streamed_save_with_progress(self, capsys, tmp_path):
        path = str(tmp_path / "ws.npz")
        assert main(
            [
                "scenarios", "--name", "random_weights", "--n", "4",
                "--save", path, "--streamed", "--progress",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "saved to" in captured.out
        assert "[wshard]" in captured.err

    def test_shard_counters_match_manifest(self, capsys, tmp_path):
        import json as jsonlib

        shard_dir = str(tmp_path / "shards")
        path = str(tmp_path / "census.json")
        argv = [
            "census", "--n", "5", "--streamed", "--no-ucg",
            "--shard-dir", shard_dir, "--metrics-out", path,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        with open(f"{shard_dir}/manifest.json", encoding="utf-8") as handle:
            manifest = jsonlib.load(handle)
        with open(path, encoding="utf-8") as handle:
            snapshot = jsonlib.load(handle)
        series = {
            (entry["name"], entry["labels"].get("prefix")): entry.get("value")
            for entry in snapshot["metrics"]
        }
        assert series[("repro_shards_computed_total", "shard")] == manifest["computed"]
        assert series[("repro_shards_resumed_total", "shard")] == manifest["resumed"]
        assert series[("repro_shard_retries_total", "shard")] == manifest["retries"]


class TestVersionFlag:
    def test_version_flag_prints_the_library_version(self, capsys):
        from repro import __version__

        assert main(["--version"]) == 0
        assert capsys.readouterr().out.strip() == __version__


class TestServeAndQuery:
    """The 'query' client renders byte-identical tables to local commands."""

    @pytest.fixture()
    def served(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.analysis.store import CensusStore, clear_store_cache
        from repro.service import ArtifactCatalog, GridBatcher, QueryAPI
        from repro.service.http import start_in_thread

        clear_store_cache()
        CensusStore.build(4, include_ucg=True).save(str(tmp_path / "c4.npz"))
        api = QueryAPI(
            ArtifactCatalog(root=str(tmp_path)),
            batcher=GridBatcher(window=0.005),
        )
        server, thread = start_in_thread(api=api)
        yield f"http://127.0.0.1:{server.port}", str(tmp_path / "c4.npz")
        server.shutdown()
        thread.join(timeout=10)
        clear_store_cache()

    def test_query_grid_equals_census_load_grid(self, served, capsys):
        url, artifact = served
        assert main(["census", "--load", artifact, "--grid", "10"]) == 0
        local = capsys.readouterr().out
        assert (
            main([
                "query", "grid", "--url", url,
                "--artifact", "c4.npz", "--points", "10",
            ])
            == 0
        )
        remote = capsys.readouterr().out
        # census prints summary + blank line + figure; query prints the figure.
        assert remote == local.split("\n\n", 1)[1]

    def test_query_health_and_artifacts(self, served, capsys):
        from repro import __version__

        url, _artifact = served
        assert main(["query", "health", "--url", url]) == 0
        assert __version__ in capsys.readouterr().out
        assert main(["query", "artifacts", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "c4.npz" in out and "census" in out

    def test_query_requires_artifact_for_grid(self, capsys):
        assert main(["query", "grid"]) == 2
        assert "--artifact" in capsys.readouterr().err

    def test_query_unreachable_server(self, capsys):
        assert (
            main(["query", "health", "--url", "http://127.0.0.1:9"]) == 2
        )
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_rejects_missing_directory(self, capsys, tmp_path):
        assert main(["serve", "--dir", str(tmp_path / "missing")]) == 2
        assert "does not exist" in capsys.readouterr().err
