"""Tests for the command-line interface."""

import importlib.util

import pytest

from repro.cli import build_parser, main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    output = capsys.readouterr().out
    assert "figure1" in output and "prop5" in output


def test_no_arguments_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_unknown_experiment(capsys):
    assert main(["nonexistent"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment_summary_only(capsys):
    exit_code = main(["lemma4", "--summary-only"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "lemma4" in output
    assert "claims reproduced" in output


def test_run_single_experiment_full_render(capsys):
    exit_code = main(["prop1"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "Proposition 1" in output
    assert "[PASS]" in output


def test_parser_has_expected_flags():
    parser = build_parser()
    args = parser.parse_args(["--all", "--summary-only"])
    assert args.all and args.summary_only and args.experiments == []


@pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="the census store subcommand requires NumPy",
)
class TestCensusSubcommand:

    def test_build_save_load_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "census4.npz")
        assert main(["census", "--n", "4", "--save", path]) == 0
        output = capsys.readouterr().out
        assert "census store: n = 4" in output
        assert f"saved to {path}" in output

        assert main(["census", "--load", path, "--grid", "4"]) == 0
        output = capsys.readouterr().out
        assert "census store: n = 4" in output
        assert "average_poa" in output

    def test_streamed_build_without_ucg(self, capsys):
        assert main(["census", "--n", "4", "--streamed", "--no-ucg", "--grid", "3"]) == 0
        output = capsys.readouterr().out
        assert "ucg = no" in output
        assert "BCG only" in output

    def test_requires_exactly_one_source(self, capsys):
        assert main(["census"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_dir_format_with_mmap(self, capsys, tmp_path):
        path = str(tmp_path / "census4_dir")
        assert main(["census", "--n", "4", "--no-ucg", "--save", path, "--format", "dir"]) == 0
        capsys.readouterr()
        assert main(["census", "--load", path, "--mmap"]) == 0
        assert "census store: n = 4" in capsys.readouterr().out

    def test_shard_dir_requires_streamed(self, capsys):
        assert main(["census", "--n", "4", "--shard-dir", "/tmp/x"]) == 2
        assert "--shard-dir requires --streamed" in capsys.readouterr().err

    def test_load_errors_exit_cleanly(self, capsys, tmp_path):
        assert main(["census", "--load", str(tmp_path / "missing.npz")]) == 2
        assert "cannot load" in capsys.readouterr().err
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(b"PK\x03\x04 not actually a zip")
        assert main(["census", "--load", str(truncated)]) == 2
        assert "cannot load" in capsys.readouterr().err
        import numpy

        foreign = tmp_path / "foreign.npz"
        numpy.savez(str(foreign), data=numpy.arange(3))
        assert main(["census", "--load", str(foreign)]) == 2
        assert "cannot load" in capsys.readouterr().err


def test_scenarios_parser_has_expected_flags():
    from repro.cli import build_scenarios_parser

    parser = build_scenarios_parser()
    args = parser.parse_args(
        ["--name", "two_tier_isp", "--n", "6", "--grid", "4", "--seed", "7", "--ucg"]
    )
    assert args.name == "two_tier_isp"
    assert args.n == 6 and args.grid == 4 and args.seed == 7 and args.ucg


def test_scenarios_dispatch_from_main(capsys):
    assert main(["scenarios", "--list"]) == 0
    assert "line_metric" in capsys.readouterr().out
