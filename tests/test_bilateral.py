"""Unit tests for the BCG solution concepts (Definitions 1-3, Lemmas 4-6)."""

import pytest

from repro.core import (
    best_deviation_delta_bcg,
    is_nash_profile_bcg,
    is_pairwise_nash,
    is_pairwise_stable,
    pairwise_nash_graphs,
    pairwise_stability_violations,
    pairwise_stable_graphs,
    profile_from_graph_bcg,
)
from repro.core import StrategyProfile, empty_profile
from repro.core.theory import cycle_stability_window
from repro.graphs import (
    complete_graph,
    cycle_graph,
    enumerate_connected_graphs,
    is_complete,
    is_star,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestPairwiseStability:
    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            is_pairwise_stable(star_graph(4), 0.0)

    def test_lemma4_complete_graph_unique_for_cheap_links(self):
        graphs = enumerate_connected_graphs(5)
        stable = pairwise_stable_graphs(graphs, 0.5)
        assert len(stable) == 1
        assert is_complete(stable[0])

    def test_lemma5_star_stable_but_not_unique_for_alpha_above_one(self):
        graphs = enumerate_connected_graphs(5)
        stable = pairwise_stable_graphs(graphs, 1.5)
        assert any(is_star(g) for g in stable)
        assert len(stable) > 1

    def test_star_stable_for_every_alpha_above_one(self):
        for alpha in (1.01, 2.0, 10.0, 100.0):
            assert is_pairwise_stable(star_graph(8), alpha)

    def test_star_not_stable_below_one(self):
        assert not is_pairwise_stable(star_graph(8), 0.5)

    def test_complete_graph_stable_only_below_one(self):
        assert is_pairwise_stable(complete_graph(6), 0.5)
        assert is_pairwise_stable(complete_graph(6), 1.0)
        assert not is_pairwise_stable(complete_graph(6), 1.5)

    def test_cycle_stable_inside_lemma6_window(self):
        for n in (6, 8, 10, 12):
            lo, hi = cycle_stability_window(n)
            alpha = (lo + hi) / 2.0
            assert is_pairwise_stable(cycle_graph(n), alpha)
            assert not is_pairwise_stable(cycle_graph(n), hi + 1.0)

    def test_petersen_stable_in_its_window(self):
        assert is_pairwise_stable(petersen_graph(), 3.0)
        assert not is_pairwise_stable(petersen_graph(), 0.5)
        assert not is_pairwise_stable(petersen_graph(), 10.0)

    def test_path_unstable_for_small_alpha(self):
        assert not is_pairwise_stable(path_graph(5), 1.0)
        assert is_pairwise_stable(path_graph(5), 10.0)

    def test_violation_messages(self):
        messages = pairwise_stability_violations(path_graph(4), 1.0)
        assert messages and all(isinstance(m, str) for m in messages)
        assert pairwise_stability_violations(star_graph(5), 2.0) == []


class TestNashProfilesBCG:
    def test_empty_network_is_nash(self):
        # The coordination failure the paper highlights: with mutual consent,
        # "nobody proposes anything" is always a Nash equilibrium.
        assert is_nash_profile_bcg(empty_profile(5), alpha=2.0)

    def test_wasted_request_is_never_nash(self):
        profile = StrategyProfile(3, [[1], [], []])
        assert not is_nash_profile_bcg(profile, alpha=2.0)

    def test_star_profile_is_nash_for_alpha_above_one(self):
        profile = profile_from_graph_bcg(star_graph(5))
        assert is_nash_profile_bcg(profile, alpha=2.0)

    def test_complete_graph_profile_not_nash_for_large_alpha(self):
        profile = profile_from_graph_bcg(complete_graph(5))
        assert not is_nash_profile_bcg(profile, alpha=3.0)
        assert is_nash_profile_bcg(profile, alpha=0.5)

    def test_best_deviation_delta_sign(self):
        profile = profile_from_graph_bcg(complete_graph(4))
        # With expensive links each player wants to drop edges: negative delta.
        assert best_deviation_delta_bcg(profile, 0, alpha=5.0) < 0
        # With cheap links the complete graph is a best response: no improvement.
        assert best_deviation_delta_bcg(profile, 0, alpha=0.5) == 0.0

    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            is_nash_profile_bcg(empty_profile(3), 0.0)


class TestPairwiseNash:
    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            is_pairwise_nash(star_graph(4), -1.0)

    def test_star_is_pairwise_nash_above_one(self):
        assert is_pairwise_nash(star_graph(6), 2.0)
        assert not is_pairwise_nash(star_graph(6), 0.5)

    def test_empty_network_is_not_pairwise_nash(self):
        # Unlike plain Nash, pairwise Nash rules out the mutual-blocking
        # equilibria: two players would jointly add a link.
        from repro.graphs import Graph

        assert not is_pairwise_nash(Graph(2), 0.5)

    def test_proposition1_on_exhaustive_census(self):
        """Pairwise stable ⟺ pairwise Nash on every connected 5-vertex graph."""
        graphs = enumerate_connected_graphs(5)
        for alpha in (0.5, 1.0, 1.7, 3.0, 6.0, 12.0):
            stable = {g.edge_key() for g in pairwise_stable_graphs(graphs, alpha)}
            nash = {g.edge_key() for g in pairwise_nash_graphs(graphs, alpha)}
            assert stable == nash

    def test_proposition1_on_named_graphs(self):
        for graph, alpha in ((petersen_graph(), 3.0), (cycle_graph(8), 7.0), (star_graph(7), 4.0)):
            assert is_pairwise_stable(graph, alpha) == is_pairwise_nash(graph, alpha)
