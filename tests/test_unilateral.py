"""Unit tests for the UCG machinery (best responses, Nash profiles, Nash graphs)."""

import pytest

from repro.core import (
    StrategyProfile,
    best_response_ucg,
    empty_profile,
    is_nash_graph_ucg,
    is_nash_profile_ucg,
    nash_graphs_ucg,
    nash_supporting_ownership,
    ownership_best_response_interval,
    profile_from_ownership_ucg,
    ucg_nash_alpha_set,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    enumerate_connected_graphs,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestBestResponse:
    def test_isolated_player_buys_hub_link_when_cheap(self):
        # Others form a star 1-2, 1-3, 1-4; player 0 starts with nothing.
        others = Graph(5, [(1, 2), (1, 3), (1, 4)])
        cost, targets = best_response_ucg(others, 0, alpha=1.0)
        assert targets == frozenset({1})
        assert cost == 1.0 + (1 + 2 + 2 + 2)

    def test_player_buys_everything_when_links_are_nearly_free(self):
        others = Graph(4, [(1, 2), (2, 3)])
        _, targets = best_response_ucg(others, 0, alpha=0.1)
        assert targets == frozenset({1, 2, 3})

    def test_player_buys_nothing_when_already_connected(self):
        others = Graph(3, [(0, 1), (1, 2)])
        cost, targets = best_response_ucg(others, 0, alpha=5.0)
        assert targets == frozenset()
        assert cost == 1 + 2

    def test_disconnected_best_response_still_minimises(self):
        others = Graph(3, [(1, 2)])
        cost, targets = best_response_ucg(others, 0, alpha=2.0)
        assert targets in (frozenset({1}), frozenset({2}))
        assert cost == 2.0 + 1 + 2


class TestNashProfiles:
    def test_star_bought_by_leaves_is_nash_for_alpha_in_range(self):
        star = star_graph(5)
        ownership = {edge: max(edge) for edge in star.edges}  # every leaf buys its link
        profile = profile_from_ownership_ucg(star, ownership)
        assert is_nash_profile_ucg(profile, alpha=2.0)

    def test_star_bought_by_center_is_not_nash_for_large_alpha(self):
        star = star_graph(5)
        ownership = {edge: 0 for edge in star.edges}  # the centre pays for everything
        profile = profile_from_ownership_ucg(star, ownership)
        # The centre would drop links once they cost more than the infinite
        # connectivity benefit... they never do; but a leaf-bought star is
        # cheaper for the centre, so deviations of the centre (dropping all
        # links) disconnect it: still Nash.  For a genuinely non-Nash profile
        # give one player a wasted duplicate request.
        assert is_nash_profile_ucg(profile, alpha=3.0)
        wasteful = profile.with_request(1, 0)
        assert not is_nash_profile_ucg(wasteful, alpha=3.0)

    def test_empty_profile_is_never_nash_in_the_ucg(self):
        # Unlike the BCG (where mutual blocking makes the empty network a
        # Nash equilibrium), a UCG player can unilaterally buy links to
        # everyone and make its distance cost finite, so the empty profile is
        # not an equilibrium.
        assert not is_nash_profile_ucg(empty_profile(2), alpha=1.0)
        assert not is_nash_profile_ucg(empty_profile(3), alpha=1.0)
        assert not is_nash_profile_ucg(empty_profile(4), alpha=10.0)

    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            is_nash_profile_ucg(empty_profile(3), 0.0)


class TestOwnershipIntervals:
    def test_leaf_owned_star_edge_interval(self):
        star = star_graph(4)
        interval = ownership_best_response_interval(star, 1, frozenset({(0, 1)}))
        # The leaf must keep its only link (otherwise it is disconnected) and
        # must not want to buy links to the other leaves: α ≥ 1.
        assert interval.lo == 1.0
        assert interval.hi == float("inf")

    def test_center_owned_edges_interval(self):
        star = star_graph(4)
        owned = frozenset({(0, 1), (0, 2), (0, 3)})
        interval = ownership_best_response_interval(star, 0, owned)
        # The centre keeps its links for any α (dropping any disconnects it).
        assert interval.lo == 0.0
        assert interval.hi == float("inf")

    def test_validation(self):
        star = star_graph(4)
        with pytest.raises(ValueError):
            ownership_best_response_interval(star, 1, frozenset({(2, 3)}))
        with pytest.raises(ValueError):
            ownership_best_response_interval(star, 1, frozenset({(1, 2)}))


class TestNashGraphs:
    def test_complete_graph_nash_iff_alpha_at_most_one(self):
        alpha_set = ucg_nash_alpha_set(complete_graph(5))
        assert alpha_set.contains(0.5)
        assert alpha_set.contains(1.0)
        assert not alpha_set.contains(1.5)

    def test_star_nash_iff_alpha_at_least_one(self):
        alpha_set = ucg_nash_alpha_set(star_graph(5))
        assert not alpha_set.contains(0.5)
        assert alpha_set.contains(1.0)
        assert alpha_set.contains(100.0)

    def test_cycle5_nash_window(self):
        alpha_set = ucg_nash_alpha_set(cycle_graph(5))
        assert alpha_set.contains(1.0)
        assert alpha_set.contains(4.0)
        assert not alpha_set.contains(0.5)
        assert not alpha_set.contains(5.0)

    def test_petersen_nash_for_small_alpha(self):
        # Footnote 7 of the paper: the Petersen graph is a Nash equilibrium of
        # the UCG for 1 ≤ α ≤ 4.
        assert is_nash_graph_ucg(petersen_graph(), 2.0)
        assert is_nash_graph_ucg(petersen_graph(), 4.0)
        assert not is_nash_graph_ucg(petersen_graph(), 6.0)

    def test_cycle_large_not_nash_but_pairwise_stable(self):
        # Footnote 5: long cycles are pairwise stable in the BCG but not
        # Nash-supportable in the UCG.
        from repro.core import is_pairwise_stable
        from repro.core.theory import cycle_stability_window

        cycle = cycle_graph(8)
        lo, hi = cycle_stability_window(8)
        alpha = (lo + hi) / 2.0
        assert is_pairwise_stable(cycle, alpha)
        assert not is_nash_graph_ucg(cycle, alpha)

    def test_nash_graphs_filter(self):
        graphs = enumerate_connected_graphs(4)
        nash_at_half = nash_graphs_ucg(graphs, 0.5)
        assert any(g.num_edges == 6 for g in nash_at_half)  # K4 present

    def test_supporting_ownership_witness(self):
        star = star_graph(5)
        ownership = nash_supporting_ownership(star, 3.0)
        assert ownership is not None
        profile = profile_from_ownership_ucg(star, ownership)
        assert is_nash_profile_ucg(profile, 3.0)
        assert profile.unilateral_graph() == star

    def test_supporting_ownership_absent_when_not_nash(self):
        assert nash_supporting_ownership(complete_graph(5), 3.0) is None

    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            is_nash_graph_ucg(star_graph(4), 0.0)
        with pytest.raises(ValueError):
            nash_supporting_ownership(star_graph(4), -2.0)

    def test_alpha_set_consistent_with_explicit_profile_check(self):
        """Cross-validate the interval search against brute-force profile checks."""
        for graph in enumerate_connected_graphs(4):
            alpha_set = ucg_nash_alpha_set(graph)
            for alpha in (0.5, 1.0, 2.0, 3.5, 6.0):
                expected = alpha_set.contains(alpha)
                witness = nash_supporting_ownership(graph, alpha)
                assert (witness is not None) == expected
                if witness is not None:
                    profile = profile_from_ownership_ucg(graph, witness)
                    assert is_nash_profile_ucg(profile, alpha)
