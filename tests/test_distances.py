"""Unit tests for BFS distances and derived quantities."""

import pytest

from repro.graphs import (
    INFINITY,
    Graph,
    all_pairs_distances,
    average_distance,
    bfs_distances,
    bfs_distances_with_extra_edge,
    bfs_distances_with_forbidden_edge,
    complete_graph,
    cycle_graph,
    diameter,
    distance_sum,
    distance_vector_sums,
    eccentricity,
    path_graph,
    radius,
    shortest_path,
    star_graph,
    total_distance,
)


class TestBFS:
    def test_path_distances(self, p4):
        assert bfs_distances(p4, 0) == [0, 1, 2, 3]
        assert bfs_distances(p4, 3) == [3, 2, 1, 0]

    def test_disconnected_distances_are_infinite(self):
        g = Graph(4, [(0, 1), (2, 3)])
        dist = bfs_distances(g, 0)
        assert dist[1] == 1
        assert dist[2] == INFINITY
        assert dist[3] == INFINITY

    def test_all_pairs_symmetric(self, c6):
        matrix = all_pairs_distances(c6)
        for i in range(6):
            for j in range(6):
                assert matrix[i][j] == matrix[j][i]

    def test_forbidden_edge_matches_removal(self, c6):
        for edge in c6.sorted_edges():
            removed = c6.remove_edge(*edge)
            for source in range(c6.n):
                assert bfs_distances_with_forbidden_edge(c6, source, edge) == bfs_distances(
                    removed, source
                )

    def test_extra_edge_matches_addition(self, c6):
        for non_edge in c6.non_edges():
            added = c6.add_edge(*non_edge)
            for source in range(c6.n):
                assert bfs_distances_with_extra_edge(c6, source, non_edge) == bfs_distances(
                    added, source
                )


class TestAggregates:
    def test_distance_sum_star_center_vs_leaf(self, star6):
        assert distance_sum(star6, 0) == 5          # centre: five leaves at distance 1
        assert distance_sum(star6, 1) == 1 + 2 * 4  # leaf: centre at 1, four leaves at 2

    def test_total_distance_complete_graph(self):
        assert total_distance(complete_graph(5)) == 5 * 4

    def test_total_distance_cycle_matches_formula(self):
        for n in (4, 5, 6, 7, 8):
            expected = n * (n * n // 4 if n % 2 == 0 else (n * n - 1) // 4)
            assert total_distance(cycle_graph(n)) == expected

    def test_distance_vector_sums(self, p4):
        assert distance_vector_sums(p4) == [6, 4, 4, 6]

    def test_average_distance(self):
        assert average_distance(complete_graph(4)) == 1.0
        assert average_distance(Graph(1)) == 0.0


class TestEccentricityDiameterRadius:
    def test_path(self, p4):
        assert eccentricity(p4, 0) == 3
        assert eccentricity(p4, 1) == 2
        assert diameter(p4) == 3
        assert radius(p4) == 2

    def test_star(self, star6):
        assert diameter(star6) == 2
        assert radius(star6) == 1

    def test_disconnected_graph(self):
        g = Graph(3, [(0, 1)])
        assert diameter(g) == INFINITY

    def test_empty_graph(self):
        assert diameter(Graph(0)) == 0.0
        assert radius(Graph(0)) == 0.0


class TestShortestPath:
    def test_path_endpoints(self, p4):
        assert shortest_path(p4, 0, 3) == [0, 1, 2, 3]

    def test_same_vertex(self, p4):
        assert shortest_path(p4, 2, 2) == [2]

    def test_disconnected_returns_none(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert shortest_path(g, 0, 3) is None

    def test_path_length_matches_distance(self, petersen):
        for target in range(1, petersen.n):
            path = shortest_path(petersen, 0, target)
            assert path is not None
            assert len(path) - 1 == bfs_distances(petersen, 0)[target]
            for a, b in zip(path, path[1:]):
                assert petersen.has_edge(a, b)
