"""Unit tests for Moore bound and cage helpers."""

import pytest

from repro.graphs import (
    cycle_graph,
    heawood_graph,
    hoffman_singleton_graph,
    is_moore_graph,
    mcgee_graph,
    moore_bound,
    moore_bound_girth,
    path_graph,
    petersen_graph,
    regular_graph_profile,
    star_graph,
    tutte_coxeter_graph,
)


class TestMooreBound:
    def test_degree_diameter_values(self):
        assert moore_bound(3, 2) == 10     # attained by the Petersen graph
        assert moore_bound(7, 2) == 50     # attained by Hoffman–Singleton
        assert moore_bound(3, 3) == 22
        assert moore_bound(2, 4) == 9      # odd cycle C_9
        assert moore_bound(1, 1) == 2
        assert moore_bound(5, 0) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            moore_bound(0, 2)
        with pytest.raises(ValueError):
            moore_bound_girth(1, 5)

    def test_girth_based_bound(self):
        assert moore_bound_girth(3, 5) == 10    # (3,5)-cage: Petersen
        assert moore_bound_girth(3, 6) == 14    # (3,6)-cage: Heawood
        assert moore_bound_girth(3, 8) == 30    # (3,8)-cage: Tutte–Coxeter
        assert moore_bound_girth(7, 5) == 50    # (7,5)-cage: Hoffman–Singleton
        assert moore_bound_girth(2, 6) == 6     # the hexagon


class TestProfiles:
    def test_petersen_is_a_moore_graph(self):
        profile = regular_graph_profile(petersen_graph())
        assert profile.is_moore_graph
        assert profile.is_cage_candidate
        assert profile.moore_ratio == 1.0

    def test_hoffman_singleton_is_a_moore_graph(self):
        assert is_moore_graph(hoffman_singleton_graph())

    def test_bipartite_cages_attain_girth_bound_not_diameter_bound(self):
        for builder in (heawood_graph, tutte_coxeter_graph):
            profile = regular_graph_profile(builder())
            assert profile.is_cage_candidate
            assert not profile.is_moore_graph

    def test_mcgee_is_not_at_the_girth_bound(self):
        # The (3,7)-cage has 24 vertices, strictly above the Moore girth bound of 22.
        profile = regular_graph_profile(mcgee_graph())
        assert profile.moore_bound_girth == 22
        assert not profile.is_cage_candidate
        assert profile.moore_ratio < 1.0

    def test_cycles_are_moore_graphs_when_odd(self):
        assert is_moore_graph(cycle_graph(9))
        assert not is_moore_graph(cycle_graph(8))

    def test_profile_requires_connected_regular_graph(self):
        with pytest.raises(ValueError):
            regular_graph_profile(star_graph(5))
        assert not is_moore_graph(path_graph(4))
