"""Unit tests for the Figure 2/3 data-series builders and text reports."""

import pytest

from repro.analysis import (
    EquilibriumCensus,
    census_figure_series,
    format_ascii_series,
    format_figure,
    format_table,
    sampled_figure_series,
)
from repro.graphs import cycle_graph, star_graph


@pytest.fixture(scope="module")
def census5():
    return EquilibriumCensus.build(5)


class TestCensusSeries:
    def test_series_alignment(self, census5):
        figure = census_figure_series(census5, "average_poa", [2.0, 8.0])
        assert [p.alpha for p in figure.ucg.points] == [2.0, 8.0]
        assert [p.alpha for p in figure.bcg.points] == [1.0, 4.0]
        assert figure.n == 5
        assert figure.quantity == "average_poa"

    def test_unaligned_series(self, census5):
        figure = census_figure_series(
            census5, "average_links", [2.0], align_per_edge_cost=False
        )
        assert figure.ucg.points[0].alpha == 2.0
        assert figure.bcg.points[0].alpha == 2.0

    def test_quantities(self, census5):
        for quantity in ("average_poa", "worst_poa", "average_links"):
            figure = census_figure_series(census5, quantity, [3.0])
            assert figure.quantity == quantity
            assert len(figure.ucg.points) == 1
        with pytest.raises(ValueError):
            census_figure_series(census5, "median_poa", [3.0])

    def test_point_row_and_series_accessors(self, census5):
        figure = census_figure_series(census5, "average_poa", [2.0, 4.0])
        assert len(figure.ucg.values()) == 2
        assert figure.bcg.alphas() == [1.0, 2.0]
        row = figure.ucg.points[0].as_row()
        assert len(row) == 4

    def test_default_grid(self, census5):
        figure = census_figure_series(census5, "average_poa")
        assert len(figure.ucg.points) > 10

    def test_crossover_detection(self, census5):
        figure = census_figure_series(census5, "average_poa")
        crossover = figure.crossover_cost()
        # On the 5-vertex census the BCG eventually becomes (weakly) worse.
        assert crossover is None or crossover > 0


class TestSampledSeries:
    def test_sampled_series_from_explicit_graphs(self):
        equilibria = {
            4.0: {"ucg": [star_graph(6)], "bcg": [star_graph(6), cycle_graph(6)]},
            16.0: {"ucg": [star_graph(6)], "bcg": [star_graph(6)]},
        }
        figure = sampled_figure_series(6, "average_links", equilibria)
        assert figure.bcg.points[0].value == pytest.approx((5 + 6) / 2)
        assert figure.ucg.points[1].num_equilibria == 1

    def test_sampled_series_handles_empty_sets(self):
        figure = sampled_figure_series(6, "average_poa", {4.0: {"ucg": [], "bcg": []}})
        assert figure.ucg.points[0].value != figure.ucg.points[0].value  # NaN

    def test_unknown_quantity(self):
        with pytest.raises(ValueError):
            sampled_figure_series(6, "oops", {4.0: {"ucg": [], "bcg": []}})


class TestReports:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2.34567], ["x", "y"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.346" in table

    def test_format_figure_contains_series(self, census5):
        figure = census_figure_series(census5, "average_poa", [2.0, 8.0])
        text = format_figure(figure, title="Figure 2 test")
        assert "Figure 2 test" in text
        assert "alpha_ucg" in text
        assert "population" in text

    def test_format_ascii_series(self):
        text = format_ascii_series([1.0, 2.0, float("nan"), 3.0], label="demo ")
        assert text.startswith("demo ")
        assert "?" in text
        assert "min=1" in text

    def test_format_ascii_series_all_nan(self):
        assert "no finite data" in format_ascii_series([float("nan")])
