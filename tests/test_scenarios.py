"""Tests for the heterogeneous-cost scenario library and its CLI surface."""

import pytest

from repro.analysis.scenarios import (
    SCENARIOS,
    Scenario,
    available_scenarios,
    build_scenario,
    default_t_grid,
    scenario_from_params,
    scenario_sweep,
)
from repro.cli import main
from repro.costmodels import PerEdgeCost, PerPlayerCost


class TestScenarioFactories:

    def test_registry_names(self):
        assert available_scenarios() == sorted(SCENARIOS)
        assert {
            "two_tier_isp",
            "hub_discounted",
            "line_metric",
            "random_weights",
        } <= set(SCENARIOS)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            build_scenario("free_lunch", 5)

    def test_two_tier_structure(self):
        scenario = build_scenario(
            "two_tier_isp", 6, core=2, core_alpha=0.5, stub_alpha=2.0
        )
        model = scenario.model
        assert isinstance(model, PerPlayerCost)
        assert model.weight(0, 5) == 0.5
        assert model.weight(1, 0) == 0.5
        assert model.weight(2, 0) == 2.0
        with pytest.raises(ValueError):
            build_scenario("two_tier_isp", 4, core=5)

    def test_hub_discount_structure(self):
        scenario = build_scenario(
            "hub_discounted", 5, hub=1, alpha=2.0, discount=0.5
        )
        model = scenario.model
        assert isinstance(model, PerEdgeCost)
        assert model.weight(1, 3) == 1.0 == model.weight(3, 1)
        assert model.weight(0, 3) == 2.0

    def test_line_metric_structure(self):
        model = build_scenario("line_metric", 5, alpha=0.5).model
        assert model.weight(0, 4) == 2.0
        assert model.weight(2, 3) == 0.5
        assert model.weight(3, 2) == 0.5

    def test_random_weights_determinism(self):
        a = build_scenario("random_weights", 6, seed=4).model
        b = build_scenario("random_weights", 6, seed=4).model
        c = build_scenario("random_weights", 6, seed=5).model
        assert a.weights == b.weights
        assert a.weights != c.weights
        assert all(
            0.5 <= a.weight(i, j) <= 2.0 for i in range(6) for j in range(6) if i != j
        )

    def test_default_t_grid(self):
        grid = default_t_grid(6, 10)
        assert len(grid) == 10
        assert grid[0] == pytest.approx(0.2)
        assert grid[-1] == pytest.approx(36.0)


class TestParamsRoundTrip:
    """Scenario.params is the single source of truth for reproduction."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_every_registry_entry_roundtrips_bit_for_bit(self, name, seed):
        """Regression: ``seed`` used to live outside params, so a recipe
        round trip re-applied the factory default and rebuilt a different
        weight matrix."""
        scenario = build_scenario(name, 6, seed=seed)
        for key in ("name", "n", "seed"):
            assert key in scenario.params, key
        assert scenario.params["seed"] == seed
        rebuilt = scenario_from_params(scenario.params)
        assert rebuilt.name == scenario.name
        assert rebuilt.n == scenario.n
        assert rebuilt.params == scenario.params
        # Bit-for-bit: every coefficient of the weight matrix is identical.
        assert rebuilt.model.matrix(6) == scenario.model.matrix(6)

    def test_roundtrip_preserves_non_default_family_params(self):
        scenario = build_scenario(
            "random_weights", 5, seed=3, low=0.25, high=9.0
        )
        rebuilt = scenario_from_params(scenario.params)
        assert rebuilt.params["low"] == 0.25 and rebuilt.params["high"] == 9.0
        assert rebuilt.model.weights == scenario.model.weights

    def test_build_scenario_accepts_full_recipe(self):
        scenario = build_scenario("line_metric", 4, alpha=2.5)
        again = build_scenario(scenario.name, scenario.n, **scenario.params)
        assert again.params == scenario.params

    def test_conflicting_recipe_rejected(self):
        scenario = build_scenario("line_metric", 4)
        with pytest.raises(ValueError):
            build_scenario("line_metric", 5, **scenario.params)
        with pytest.raises(ValueError):
            build_scenario("two_tier_isp", 4, **scenario.params)

    def test_params_missing_identity_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_params({"seed": 0, "alpha": 1.0})

    def test_scenario_checks_param_mirrors(self):
        from repro.costmodels import UniformCost

        with pytest.raises(ValueError):
            Scenario(
                name="x", description="", n=4, model=UniformCost(1.0),
                params={"name": "y", "n": 4},
            )


class TestScenarioSweep:

    def test_sweep_shapes_and_monotone_links(self):
        result = scenario_sweep(build_scenario("two_tier_isp", 5), grid=6)
        assert len(result.ts) == 6
        assert len(result.graphs) == 21  # connected classes on 5 vertices
        assert len(result.bcg_counts) == 6
        # Cheap links: the complete graph is the unique stable topology at
        # tiny scales; expensive links thin the stable networks out.
        assert result.average_links[0] == 10.0
        finite = [x for x in result.average_links if x == x]
        assert finite[0] >= finite[-1]

    def test_sweep_accepts_explicit_grid(self):
        result = scenario_sweep(build_scenario("line_metric", 4), ts=[0.5, 2.0])
        assert result.ts == [0.5, 2.0]
        assert len(result.bcg_counts) == 2


class TestScenariosCLI:

    def test_list(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        output = capsys.readouterr().out
        assert "two_tier_isp" in output and "random_weights" in output

    def test_sweep_table(self, capsys):
        assert main(["scenarios", "--name", "two_tier_isp", "--n", "5", "--grid", "6"]) == 0
        output = capsys.readouterr().out
        assert "scenario two_tier_isp: n = 5" in output
        assert "per-player cost model" in output
        assert "#stable_bcg" in output

    def test_sweep_with_ucg_column(self, capsys):
        exit_code = main(
            [
                "scenarios",
                "--name",
                "random_weights",
                "--n",
                "4",
                "--grid",
                "4",
                "--seed",
                "1",
                "--ucg",
            ]
        )
        assert exit_code == 0
        assert "#nash_ucg" in capsys.readouterr().out

    def test_missing_name(self, capsys):
        assert main(["scenarios"]) == 2
        assert "one of --list, --name and --load" in capsys.readouterr().err

    def test_unknown_name(self, capsys):
        assert main(["scenarios", "--name", "free_lunch", "--n", "5"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_too_few_players(self, capsys):
        assert main(["scenarios", "--name", "line_metric", "--n", "1"]) == 2
        assert "at least two players" in capsys.readouterr().err

    def test_save_then_load_artifact(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        path = str(tmp_path / "w4.npz")
        assert main(
            ["scenarios", "--name", "random_weights", "--n", "4",
             "--seed", "3", "--grid", "4", "--save", path]
        ) == 0
        saved = capsys.readouterr().out
        assert f"saved to {path}" in saved and "#stable_bcg" in saved
        assert main(["scenarios", "--load", path, "--grid", "4"]) == 0
        loaded = capsys.readouterr().out
        assert "weighted store: n = 4" in loaded
        assert "scenario = random_weights (seed 3)" in loaded
        # Same grid, same columns: the table rows must be identical.
        assert saved.split("\n\n")[-1] == loaded.split("\n\n")[-1]

    def test_load_rejects_build_flags(self, capsys, tmp_path):
        """--load must not silently ignore --n/--seed/--jobs."""
        pytest.importorskip("numpy")
        path = str(tmp_path / "w4.npz")
        assert main(
            ["scenarios", "--name", "line_metric", "--n", "4", "--save", path]
        ) == 0
        capsys.readouterr()
        for flags in (
            ["--n", "7"],
            ["--seed", "5"],
            ["--jobs", "2"],
            ["--format", "dir"],
        ):
            assert main(["scenarios", "--load", path] + flags) == 2
            err = capsys.readouterr().err
            assert "takes no" in err and flags[0] in err

    def test_load_rejects_garbage(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        path = tmp_path / "nonsense.npz"
        path.write_bytes(b"not an artifact")
        assert main(["scenarios", "--load", str(path)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_save_persists_ucg_columns(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        from repro.analysis.weighted_store import WeightedStore

        path = str(tmp_path / "x.npz")
        assert main(
            ["scenarios", "--name", "line_metric", "--n", "4",
             "--ucg", "--save", path, "--grid", "3"]
        ) == 0
        assert "#nash_ucg" in capsys.readouterr().out
        assert WeightedStore.load(path).include_ucg


class TestEnsembleCLI:

    def test_summary_table(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        save_dir = str(tmp_path / "draws")
        exit_code = main(
            ["ensemble", "--scenario", "random_weights", "--n", "4",
             "--draws", "3", "--seed", "2", "--grid", "4",
             "--save-dir", save_dir]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ensemble random_weights: n = 4, 3 draws (seeds 2..4)" in output
        assert "median" in output and "q75" in output
        assert "artifacts: 3" in output

    def test_unknown_scenario(self, capsys):
        assert main(["ensemble", "--scenario", "free_lunch"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_rejects_zero_draws(self, capsys):
        assert main(["ensemble", "--draws", "0"]) == 2
        assert "at least one draw" in capsys.readouterr().err
