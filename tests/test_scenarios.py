"""Tests for the heterogeneous-cost scenario library and its CLI surface."""

import pytest

from repro.analysis.scenarios import (
    SCENARIOS,
    available_scenarios,
    build_scenario,
    default_t_grid,
    scenario_sweep,
)
from repro.cli import main
from repro.costmodels import PerEdgeCost, PerPlayerCost


class TestScenarioFactories:

    def test_registry_names(self):
        assert available_scenarios() == sorted(SCENARIOS)
        assert {
            "two_tier_isp",
            "hub_discounted",
            "line_metric",
            "random_weights",
        } <= set(SCENARIOS)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            build_scenario("free_lunch", 5)

    def test_two_tier_structure(self):
        scenario = build_scenario(
            "two_tier_isp", 6, core=2, core_alpha=0.5, stub_alpha=2.0
        )
        model = scenario.model
        assert isinstance(model, PerPlayerCost)
        assert model.weight(0, 5) == 0.5
        assert model.weight(1, 0) == 0.5
        assert model.weight(2, 0) == 2.0
        with pytest.raises(ValueError):
            build_scenario("two_tier_isp", 4, core=5)

    def test_hub_discount_structure(self):
        scenario = build_scenario(
            "hub_discounted", 5, hub=1, alpha=2.0, discount=0.5
        )
        model = scenario.model
        assert isinstance(model, PerEdgeCost)
        assert model.weight(1, 3) == 1.0 == model.weight(3, 1)
        assert model.weight(0, 3) == 2.0

    def test_line_metric_structure(self):
        model = build_scenario("line_metric", 5, alpha=0.5).model
        assert model.weight(0, 4) == 2.0
        assert model.weight(2, 3) == 0.5
        assert model.weight(3, 2) == 0.5

    def test_random_weights_determinism(self):
        a = build_scenario("random_weights", 6, seed=4).model
        b = build_scenario("random_weights", 6, seed=4).model
        c = build_scenario("random_weights", 6, seed=5).model
        assert a.weights == b.weights
        assert a.weights != c.weights
        assert all(
            0.5 <= a.weight(i, j) <= 2.0 for i in range(6) for j in range(6) if i != j
        )

    def test_default_t_grid(self):
        grid = default_t_grid(6, 10)
        assert len(grid) == 10
        assert grid[0] == pytest.approx(0.2)
        assert grid[-1] == pytest.approx(36.0)


class TestScenarioSweep:

    def test_sweep_shapes_and_monotone_links(self):
        result = scenario_sweep(build_scenario("two_tier_isp", 5), grid=6)
        assert len(result.ts) == 6
        assert len(result.graphs) == 21  # connected classes on 5 vertices
        assert len(result.bcg_counts) == 6
        # Cheap links: the complete graph is the unique stable topology at
        # tiny scales; expensive links thin the stable networks out.
        assert result.average_links[0] == 10.0
        finite = [x for x in result.average_links if x == x]
        assert finite[0] >= finite[-1]

    def test_sweep_accepts_explicit_grid(self):
        result = scenario_sweep(build_scenario("line_metric", 4), ts=[0.5, 2.0])
        assert result.ts == [0.5, 2.0]
        assert len(result.bcg_counts) == 2


class TestScenariosCLI:

    def test_list(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        output = capsys.readouterr().out
        assert "two_tier_isp" in output and "random_weights" in output

    def test_sweep_table(self, capsys):
        assert main(["scenarios", "--name", "two_tier_isp", "--n", "5", "--grid", "6"]) == 0
        output = capsys.readouterr().out
        assert "scenario two_tier_isp: n = 5" in output
        assert "per-player cost model" in output
        assert "#stable_bcg" in output

    def test_sweep_with_ucg_column(self, capsys):
        exit_code = main(
            [
                "scenarios",
                "--name",
                "random_weights",
                "--n",
                "4",
                "--grid",
                "4",
                "--seed",
                "1",
                "--ucg",
            ]
        )
        assert exit_code == 0
        assert "#nash_ucg" in capsys.readouterr().out

    def test_missing_name(self, capsys):
        assert main(["scenarios"]) == 2
        assert "one of --list and --name" in capsys.readouterr().err

    def test_unknown_name(self, capsys):
        assert main(["scenarios", "--name", "free_lunch", "--n", "5"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_too_few_players(self, capsys):
        assert main(["scenarios", "--name", "line_metric", "--n", "1"]) == 2
        assert "at least two players" in capsys.readouterr().err
