"""Unit tests for α-interval machinery and pairwise-stability profiles."""

import pytest

from repro.core import (
    AlphaInterval,
    AlphaIntervalSet,
    FULL_ALPHA_RANGE,
    distance_delta,
    has_stabilizing_alpha,
    is_pairwise_stable,
    pairwise_stability_interval,
    pairwise_stability_profile,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestAlphaInterval:
    def test_contains_and_empty(self):
        interval = AlphaInterval(1.0, 3.0)
        assert interval.contains(1.0)
        assert interval.contains(3.0)
        assert not interval.contains(3.5)
        assert not interval.is_empty()
        assert AlphaInterval(2.0, 1.0).is_empty()

    def test_intersection(self):
        a = AlphaInterval(1.0, 5.0)
        b = AlphaInterval(3.0, 8.0)
        assert a.intersect(b) == AlphaInterval(3.0, 5.0)
        assert a.intersect(AlphaInterval(6.0, 7.0)).is_empty()

    def test_full_range(self):
        assert FULL_ALPHA_RANGE.contains(1e-6)
        assert FULL_ALPHA_RANGE.contains(1e9)


class TestAlphaIntervalSet:
    def test_merging_overlapping_intervals(self):
        s = AlphaIntervalSet([AlphaInterval(1, 3), AlphaInterval(2, 5), AlphaInterval(8, 9)])
        assert len(s.intervals) == 2
        assert s.contains(4)
        assert not s.contains(6)
        assert s.min_alpha() == 1
        assert s.max_alpha() == 9

    def test_empty_set(self):
        s = AlphaIntervalSet([AlphaInterval(3, 1)])
        assert s.is_empty()
        assert s.min_alpha() is None
        assert s.max_alpha() is None
        assert not s.contains(2)

    def test_add(self):
        s = AlphaIntervalSet()
        s.add(AlphaInterval(0, 1))
        s.add(AlphaInterval(1, 2))
        assert len(s.intervals) == 1
        s.add(AlphaInterval(5, 4))  # empty, ignored
        assert len(s.intervals) == 1

    def test_repr(self):
        assert "AlphaIntervalSet" in repr(AlphaIntervalSet([AlphaInterval(0, 1)]))


class TestDistanceDelta:
    def test_finite(self):
        assert distance_delta(5.0, 3.0) == 2.0

    def test_both_infinite(self):
        assert distance_delta(float("inf"), float("inf")) == 0.0

    def test_one_infinite(self):
        assert distance_delta(float("inf"), 3.0) == float("inf")
        assert distance_delta(3.0, float("inf")) == float("-inf")


class TestPairwiseStabilityProfile:
    def test_star_interval(self):
        lo, hi = pairwise_stability_interval(star_graph(6))
        assert lo == 1.0        # two leaves save 1 each by linking directly
        assert hi == float("inf")  # severing disconnects: infinite distance increase

    def test_complete_graph_interval(self):
        lo, hi = pairwise_stability_interval(complete_graph(5))
        assert lo == 0.0   # no missing links
        assert hi == 1.0   # severing any edge costs exactly one extra hop

    def test_cycle_intervals_match_hand_computation(self):
        assert pairwise_stability_interval(cycle_graph(5)) == (1.0, 4.0)
        assert pairwise_stability_interval(cycle_graph(8)) == (5.0, 12.0)

    def test_path_graph(self):
        # The centre edge of P_4 is essential; the missing chords are attractive
        # for small α, so the path is stable only for large α.
        profile = pairwise_stability_profile(path_graph(4))
        assert profile.alpha_max == float("inf")
        assert profile.alpha_min == 2.0

    def test_profile_consistency_with_exact_checks(self, small_random_graphs):
        for graph in small_random_graphs:
            profile = pairwise_stability_profile(graph)
            lo, hi = profile.stability_interval()
            if lo < hi:
                midpoint = (lo + hi) / 2.0 if hi != float("inf") else lo + 1.0
                assert profile.is_stable_at(midpoint)
                assert is_pairwise_stable(graph, midpoint)
            if hi != float("inf"):
                assert not profile.is_stable_at(hi + 1.0)

    def test_violations_messages(self):
        violations = pairwise_stability_profile(path_graph(4)).violations_at(1.0)
        assert violations
        assert any("bilaterally add" in message for message in violations)
        severance = pairwise_stability_profile(complete_graph(4)).violations_at(3.0)
        assert any("severing" in message for message in severance)

    def test_disconnected_graph_has_no_stabilizing_alpha(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert not has_stabilizing_alpha(g)

    def test_petersen_has_stabilizing_alpha(self):
        assert has_stabilizing_alpha(petersen_graph())

    def test_edgeless_graph_boundary_conventions(self):
        # Two isolated vertices: adding the single missing link brings the
        # distance from infinity to 1, an infinite saving.
        two = pairwise_stability_profile(Graph(2))
        assert two.alpha_max == float("inf")
        assert two.alpha_min == float("inf")
        # Three isolated vertices: adding any one link still leaves a third
        # vertex unreachable, so under the ∞ - ∞ = 0 convention the measured
        # saving is zero.
        three = pairwise_stability_profile(Graph(3))
        assert three.alpha_max == float("inf")
        assert three.alpha_min == 0.0
