"""Unit tests for α-interval machinery and pairwise-stability profiles."""

import pytest

from repro.core import (
    AlphaInterval,
    AlphaIntervalSet,
    FULL_ALPHA_RANGE,
    distance_delta,
    has_stabilizing_alpha,
    is_pairwise_stable,
    pairwise_stability_interval,
    pairwise_stability_profile,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestAlphaInterval:
    def test_contains_and_empty(self):
        interval = AlphaInterval(1.0, 3.0)
        assert interval.contains(1.0)
        assert interval.contains(3.0)
        assert not interval.contains(3.5)
        assert not interval.is_empty()
        assert AlphaInterval(2.0, 1.0).is_empty()

    def test_intersection(self):
        a = AlphaInterval(1.0, 5.0)
        b = AlphaInterval(3.0, 8.0)
        assert a.intersect(b) == AlphaInterval(3.0, 5.0)
        assert a.intersect(AlphaInterval(6.0, 7.0)).is_empty()

    def test_full_range(self):
        assert FULL_ALPHA_RANGE.contains(1e-6)
        assert FULL_ALPHA_RANGE.contains(1e9)


class TestAlphaIntervalSet:
    def test_merging_overlapping_intervals(self):
        s = AlphaIntervalSet([AlphaInterval(1, 3), AlphaInterval(2, 5), AlphaInterval(8, 9)])
        assert len(s.intervals) == 2
        assert s.contains(4)
        assert not s.contains(6)
        assert s.min_alpha() == 1
        assert s.max_alpha() == 9

    def test_empty_set(self):
        s = AlphaIntervalSet([AlphaInterval(3, 1)])
        assert s.is_empty()
        assert s.min_alpha() is None
        assert s.max_alpha() is None
        assert not s.contains(2)

    def test_add(self):
        s = AlphaIntervalSet()
        s.add(AlphaInterval(0, 1))
        s.add(AlphaInterval(1, 2))
        assert len(s.intervals) == 1
        s.add(AlphaInterval(5, 4))  # empty, ignored
        assert len(s.intervals) == 1

    def test_repr(self):
        assert "AlphaIntervalSet" in repr(AlphaIntervalSet([AlphaInterval(0, 1)]))

    def test_touching_interval_merge_tolerance(self):
        # Gaps at or below the 1e-12 merge tolerance close; larger gaps stay.
        s = AlphaIntervalSet([AlphaInterval(0.0, 1.0), AlphaInterval(1.0 + 1e-13, 2.0)])
        assert len(s.intervals) == 1
        assert s.intervals[0] == AlphaInterval(0.0, 2.0)
        s = AlphaIntervalSet([AlphaInterval(0.0, 1.0), AlphaInterval(1.0 + 1e-6, 2.0)])
        assert len(s.intervals) == 2

    def test_add_empty_interval_is_noop(self):
        s = AlphaIntervalSet()
        s.add(AlphaInterval(2.0, 1.0))
        assert s.is_empty()
        assert s.intervals == []
        # ... and an empty add does not disturb existing components.
        s.add(AlphaInterval(3.0, 4.0))
        s.add(AlphaInterval(9.0, 8.0))
        assert s.intervals == [AlphaInterval(3.0, 4.0)]

    def test_min_max_alpha_on_unbounded_intervals(self):
        infinity = float("inf")
        s = AlphaIntervalSet([AlphaInterval(3.0, infinity)])
        assert s.min_alpha() == 3.0
        assert s.max_alpha() == infinity
        assert s.contains(1e18)
        s.add(AlphaInterval(0.0, 1.0))
        assert s.min_alpha() == 0.0
        assert s.max_alpha() == infinity
        # Unbounded components merge with overlapping finite ones.
        s.add(AlphaInterval(0.5, 5.0))
        assert s.intervals == [AlphaInterval(0.0, infinity)]

    def test_contains_at_exact_endpoints(self):
        s = AlphaIntervalSet([AlphaInterval(1.0, 2.0)])
        assert s.contains(1.0) and s.contains(2.0)
        # The default tolerance is 1e-9 on either side of the endpoints.
        assert s.contains(1.0 - 0.5e-9) and s.contains(2.0 + 0.5e-9)
        assert not s.contains(1.0 - 2e-9) and not s.contains(2.0 + 2e-9)
        assert s.contains(2.0 + 2e-9, tol=1e-8)
        assert not s.contains(2.0 + 2e-9, tol=0.0)

    def test_degenerate_point_interval(self):
        s = AlphaIntervalSet([AlphaInterval(1.5, 1.5)])
        assert not s.is_empty()
        assert s.contains(1.5)
        assert s.min_alpha() == s.max_alpha() == 1.5


class TestDistanceDelta:
    def test_finite(self):
        assert distance_delta(5.0, 3.0) == 2.0

    def test_both_infinite(self):
        assert distance_delta(float("inf"), float("inf")) == 0.0

    def test_one_infinite(self):
        assert distance_delta(float("inf"), 3.0) == float("inf")
        assert distance_delta(3.0, float("inf")) == float("-inf")


class TestAlphaMinCaching:
    def test_alpha_min_computed_once_and_memoised(self):
        profile = pairwise_stability_profile(cycle_graph(6))
        first = profile.alpha_min
        assert profile._alpha_min_cache == first
        assert profile.alpha_min == first  # second read served from the memo

    def test_mutating_inputs_is_not_silently_stale(self):
        """The deviation tables are frozen after the first alpha_min read.

        Mutating ``addition_saving`` afterwards must not silently change an
        already-published ``alpha_min`` (callers may have cached decisions
        on it); a profile built from the mutated tables sees the new value.
        This test is the explicit record of that contract.
        """
        profile = pairwise_stability_profile(cycle_graph(6))
        frozen = profile.alpha_min
        bumped = dict(profile.addition_saving)
        for key in bumped:
            bumped[key] = 1e6
        profile.addition_saving.update(bumped)
        # The memo holds: no silent change after mutation...
        assert profile.alpha_min == frozen
        # ...while a fresh profile over the mutated tables recomputes.
        from repro.core.stability_intervals import PairwiseStabilityProfile

        fresh = PairwiseStabilityProfile(
            graph=profile.graph,
            removal_increase=dict(profile.removal_increase),
            addition_saving=bumped,
        )
        assert fresh.alpha_min == 1e6
        assert fresh.alpha_min != frozen

    def test_cache_not_shared_between_profiles(self):
        a = pairwise_stability_profile(cycle_graph(6))
        b = pairwise_stability_profile(star_graph(6))
        assert a.alpha_min != b.alpha_min


class TestPairwiseStabilityProfile:
    def test_star_interval(self):
        lo, hi = pairwise_stability_interval(star_graph(6))
        assert lo == 1.0        # two leaves save 1 each by linking directly
        assert hi == float("inf")  # severing disconnects: infinite distance increase

    def test_complete_graph_interval(self):
        lo, hi = pairwise_stability_interval(complete_graph(5))
        assert lo == 0.0   # no missing links
        assert hi == 1.0   # severing any edge costs exactly one extra hop

    def test_cycle_intervals_match_hand_computation(self):
        assert pairwise_stability_interval(cycle_graph(5)) == (1.0, 4.0)
        assert pairwise_stability_interval(cycle_graph(8)) == (5.0, 12.0)

    def test_path_graph(self):
        # The centre edge of P_4 is essential; the missing chords are attractive
        # for small α, so the path is stable only for large α.
        profile = pairwise_stability_profile(path_graph(4))
        assert profile.alpha_max == float("inf")
        assert profile.alpha_min == 2.0

    def test_profile_consistency_with_exact_checks(self, small_random_graphs):
        for graph in small_random_graphs:
            profile = pairwise_stability_profile(graph)
            lo, hi = profile.stability_interval()
            if lo < hi:
                midpoint = (lo + hi) / 2.0 if hi != float("inf") else lo + 1.0
                assert profile.is_stable_at(midpoint)
                assert is_pairwise_stable(graph, midpoint)
            if hi != float("inf"):
                assert not profile.is_stable_at(hi + 1.0)

    def test_violations_messages(self):
        violations = pairwise_stability_profile(path_graph(4)).violations_at(1.0)
        assert violations
        assert any("bilaterally add" in message for message in violations)
        severance = pairwise_stability_profile(complete_graph(4)).violations_at(3.0)
        assert any("severing" in message for message in severance)

    def test_disconnected_graph_has_no_stabilizing_alpha(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert not has_stabilizing_alpha(g)

    def test_petersen_has_stabilizing_alpha(self):
        assert has_stabilizing_alpha(petersen_graph())

    def test_edgeless_graph_boundary_conventions(self):
        # Two isolated vertices: adding the single missing link brings the
        # distance from infinity to 1, an infinite saving.
        two = pairwise_stability_profile(Graph(2))
        assert two.alpha_max == float("inf")
        assert two.alpha_min == float("inf")
        # Three isolated vertices: adding any one link still leaves a third
        # vertex unreachable, so under the ∞ - ∞ = 0 convention the measured
        # saving is zero.
        three = pairwise_stability_profile(Graph(3))
        assert three.alpha_max == float("inf")
        assert three.alpha_min == 0.0
