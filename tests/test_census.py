"""Unit tests for the equilibrium census."""

import math

import pytest

from repro.analysis import EquilibriumCensus, cached_census, clear_census_cache
from repro.core import is_nash_graph_ucg, is_pairwise_stable, price_of_anarchy
from repro.graphs import is_complete, is_star


@pytest.fixture(scope="module")
def census5():
    return EquilibriumCensus.build(5)


class TestBuild:
    def test_covers_all_connected_topologies(self, census5):
        assert len(census5) == 21  # OEIS A001349 for n = 5
        assert census5.n == 5
        assert census5.include_ucg

    def test_records_expose_edge_counts(self, census5):
        assert {r.num_edges for r in census5.records} == set(range(4, 11))

    def test_build_without_ucg(self):
        census = EquilibriumCensus.build(4, include_ucg=False)
        assert not census.include_ucg
        with pytest.raises(ValueError):
            census.nash_graphs_ucg(1.0)


class TestEquilibriumSets:
    def test_matches_direct_stability_checks(self, census5):
        for alpha in (0.5, 1.5, 3.0, 7.0):
            expected = {
                r.graph.edge_key()
                for r in census5.records
                if is_pairwise_stable(r.graph, alpha)
            }
            observed = {g.edge_key() for g in census5.stable_graphs_bcg(alpha)}
            assert observed == expected

    def test_matches_direct_nash_checks(self, census5):
        for alpha in (0.5, 1.5, 3.0):
            expected = {
                r.graph.edge_key()
                for r in census5.records
                if is_nash_graph_ucg(r.graph, alpha)
            }
            observed = {g.edge_key() for g in census5.nash_graphs_ucg(alpha)}
            assert observed == expected

    def test_cheap_links_select_complete_graph_only(self, census5):
        stable = census5.stable_graphs_bcg(0.5)
        assert len(stable) == 1 and is_complete(stable[0])

    def test_expensive_links_select_trees(self, census5):
        for graph in census5.stable_graphs_bcg(30.0):
            assert graph.num_edges == 4

    def test_star_in_every_stable_set_above_one(self, census5):
        for alpha in (1.5, 3.0, 10.0):
            assert any(is_star(g) for g in census5.stable_graphs_bcg(alpha))

    def test_invalid_game_name(self, census5):
        with pytest.raises(ValueError):
            census5.equilibrium_graphs(1.0, "xyz")


class TestAggregates:
    def test_average_poa_matches_manual_computation(self, census5):
        alpha = 2.0
        stable = census5.stable_graphs_bcg(alpha)
        expected = sum(price_of_anarchy(g, alpha, "bcg") for g in stable) / len(stable)
        assert census5.average_price_of_anarchy(alpha, "bcg") == pytest.approx(expected)

    def test_worst_poa_at_least_average(self, census5):
        for alpha in (1.5, 3.0, 8.0):
            assert census5.worst_price_of_anarchy(alpha, "bcg") >= census5.average_price_of_anarchy(
                alpha, "bcg"
            ) - 1e-12

    def test_average_links_between_tree_and_complete(self, census5):
        for alpha in (1.5, 3.0, 8.0):
            links = census5.average_num_links(alpha, "bcg")
            assert 4 <= links <= 10

    def test_histogram_counts_sum_to_equilibrium_count(self, census5):
        histogram = census5.edge_count_histogram(2.0, "bcg")
        assert sum(histogram.values()) == census5.equilibrium_count(2.0, "bcg")

    def test_empty_equilibrium_set_gives_nan(self):
        census = EquilibriumCensus.build(3)
        # No connected 3-vertex graph is UCG-Nash at a huge link cost?  The
        # star/path is, so use the BCG at an impossible α instead: α below
        # every stability window except the complete graph's and above it.
        value = census.average_price_of_anarchy(1.0 + 1e-9, "ucg")
        assert value == value or math.isnan(value)  # simply must not raise


def _assert_identical(first, second):
    """Element-for-element census equality (graphs, profiles, UCG sets)."""
    assert first.n == second.n
    assert first.include_ucg == second.include_ucg
    assert len(first.records) == len(second.records)
    for a, b in zip(first.records, second.records):
        assert a.graph == b.graph
        assert a.bcg_profile.removal_increase == b.bcg_profile.removal_increase
        assert a.bcg_profile.addition_saving == b.bcg_profile.addition_saving
        if first.include_ucg:
            assert a.ucg_alpha_set.intervals == b.ucg_alpha_set.intervals
        else:
            assert a.ucg_alpha_set is None and b.ucg_alpha_set is None


class TestStreamedBuild:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_identical_to_materialised_build(self, n):
        _assert_identical(
            EquilibriumCensus.build(n),
            EquilibriumCensus.build_streamed(n),
        )

    def test_identical_without_ucg(self):
        _assert_identical(
            EquilibriumCensus.build(7, include_ucg=False),
            EquilibriumCensus.build_streamed(7, include_ucg=False),
        )

    def test_identical_for_any_shard_level_and_jobs(self):
        reference = EquilibriumCensus.build(6, include_ucg=False)
        for shard_level in (0, 2, 4, 6):
            _assert_identical(
                reference,
                EquilibriumCensus.build_streamed(
                    6, include_ucg=False, shard_level=shard_level, batch_size=17
                ),
            )
        _assert_identical(
            reference,
            EquilibriumCensus.build_streamed(6, include_ucg=False, jobs=2),
        )

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            EquilibriumCensus.build_streamed(-1)


class TestCaching:
    def test_cached_census_reuses_instances(self):
        clear_census_cache()
        first = cached_census(4)
        second = cached_census(4)
        assert first is second
        different = cached_census(4, include_ucg=False)
        assert different is not first
        clear_census_cache()
