"""Census-as-a-service: catalog, query API, batcher and HTTP server.

The contract under test is bit-exactness at every layer: a query answered
through :class:`~repro.service.QueryAPI` — with or without request
coalescing, from one thread or many, over HTTP or in process — must equal
the direct single-threaded store/kernel call element for element.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.delta_store import DeltaStore
from repro.analysis.scenarios import build_scenario, default_t_grid
from repro.analysis.store import CensusStore, clear_store_cache
from repro.analysis.sweeps import log_spaced_alphas
from repro.analysis.weighted_store import WeightedStore
from repro.service import (
    ArtifactCatalog,
    GridBatcher,
    QueryAPI,
    start_in_thread,
)
from repro.service.batching import _merge_grids, _slice_columns


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    """A serve directory holding one artifact of every kind (n = 4)."""
    root = tmp_path_factory.mktemp("artifacts")
    CensusStore.build(4, include_ucg=True).save(str(root / "census4.npz"))
    WeightedStore.from_scenario(
        build_scenario("random_weights", 4, seed=3), include_ucg=True
    ).save(str(root / "weighted4.npz"))
    DeltaStore.build(4).save(str(root / "delta4.npz"))
    (root / "notes.txt").write_text("not an artifact")
    return root


@pytest.fixture()
def api(artifact_dir):
    clear_store_cache()
    yield QueryAPI(ArtifactCatalog(root=str(artifact_dir)))
    clear_store_cache()


class TestCatalog:
    def test_discovers_every_kind_and_skips_foreign_files(self, artifact_dir):
        catalog = ArtifactCatalog(root=str(artifact_dir))
        kinds = {info.id: info.kind for info in catalog.list()}
        assert kinds == {
            "census4.npz": "census",
            "weighted4.npz": "weighted",
            "delta4.npz": "delta",
        }
        assert all(info.n == 4 for info in catalog.list())

    def test_get_is_kind_checked(self, artifact_dir):
        catalog = ArtifactCatalog(root=str(artifact_dir))
        with pytest.raises(ValueError, match="weighted"):
            catalog.get_census("weighted4.npz")
        assert catalog.get_census("census4.npz").n == 4

    def test_unknown_ref_raises_keyerror(self, artifact_dir):
        catalog = ArtifactCatalog(root=str(artifact_dir))
        with pytest.raises(KeyError):
            catalog.info("missing.npz")

    def test_bare_path_resolution_without_root(self, artifact_dir):
        catalog = ArtifactCatalog()
        info = catalog.info(str(artifact_dir / "census4.npz"))
        assert info.kind == "census"
        assert len(catalog) == 1

    def test_refresh_tracks_the_directory(self, tmp_path):
        CensusStore.build(3, include_ucg=False).save(str(tmp_path / "c3.npz"))
        catalog = ArtifactCatalog(root=str(tmp_path))
        assert len(catalog) == 1
        CensusStore.build(4, include_ucg=False).save(str(tmp_path / "c4.npz"))
        catalog.refresh()
        assert {info.id for info in catalog.list()} == {"c3.npz", "c4.npz"}


class TestQueryAPIParity:
    """Every QueryAPI answer equals the direct store/kernel call exactly."""

    def test_grid_mask_and_aggregates(self, api, artifact_dir):
        store = CensusStore.load(str(artifact_dir / "census4.npz"))
        alphas = log_spaced_alphas(0.5, 20.0, 9)
        for game in ("bcg", "ucg"):
            np.testing.assert_array_equal(
                api.grid_mask("census4.npz", alphas, game),
                store.stable_mask(alphas, game),
            )
            served = api.grid_aggregates("census4.npz", alphas, game)
            direct = store.grid_aggregates(alphas, game)
            for key, values in direct.items():
                assert served[key] == values

    def test_figure_matches_cli_construction(self, api, artifact_dir):
        from repro.analysis.figure_series import (
            census_figure_series,
            figure_from_payload,
        )

        store = CensusStore.load(str(artifact_dir / "census4.npz"))
        costs = log_spaced_alphas(0.4, 2.0 * store.n * store.n, 12)
        direct = census_figure_series(store, "average_poa", costs)
        payload = api.figure("census4.npz", "average_poa", 12)
        assert payload["points"] == 12
        assert figure_from_payload(payload) == direct

    def test_windows_census_and_weighted(self, api, artifact_dir):
        census = CensusStore.load(str(artifact_dir / "census4.npz"))
        lo, hi = census.stability_windows()
        served = api.windows("census4.npz")
        assert served["alpha_min"] == list(lo)
        assert served["alpha_max"] == list(hi)
        weighted = WeightedStore.load(str(artifact_dir / "weighted4.npz"))
        for game, (wlo, whi) in (
            ("bcg", weighted.stability_windows()),
            ("ucg", weighted.ucg_windows()),
        ):
            served = api.windows("weighted4.npz", game)
            assert served["t_min"] == [float(v) for v in wlo]
            assert served["t_max"] == [float(v) for v in whi]

    def test_windows_rejects_delta_artifacts(self, api):
        with pytest.raises(ValueError, match="model-free"):
            api.windows("delta4.npz")

    def test_weighted_grid(self, api, artifact_dir):
        store = WeightedStore.load(str(artifact_dir / "weighted4.npz"))
        ts = default_t_grid(store.n, 6)
        direct = store.aggregates(ts)
        served = api.weighted_grid("weighted4.npz", points=6, ucg=True)
        for key, values in direct.items():
            assert served[key] == values
        assert served["ucg_counts"] == store.ucg_nash_counts(ts)
        assert served["scenario"] == "random_weights"

    def test_delta_counts_match_per_draw_weighted_builds(self, api):
        seeds = [0, 1, 2]
        served = api.delta_counts(
            "delta4.npz", "random_weights", seeds, points=5
        )
        ts = served["ts"]
        for row, seed in zip(served["counts"], seeds):
            scenario = build_scenario("random_weights", 4, seed=seed)
            reference = WeightedStore.from_scenario(scenario)
            assert row == reference.aggregates(ts)["bcg_counts"]

    def test_ensemble_stats_match_run_ensemble(self, api):
        from repro.analysis.ensembles import run_ensemble

        direct = run_ensemble(
            scenario="random_weights", n=4, draws=3, seed=7, grid=5
        )
        served = api.ensemble_stats(
            scenario="random_weights", n=4, draws=3, seed=7, grid=5,
            delta="delta4.npz",
        )
        assert served["counts"] == direct.counts.tolist()
        assert served["count_stats"]["mean"] == list(
            direct.count_stats["mean"]
        )
        assert set(served["count_stats"]["quantiles"]) == {
            str(q) for q in direct.count_stats["quantiles"]
        }

    def test_summary_and_verify(self, api, artifact_dir):
        summary = api.summary("census4.npz")
        assert summary["kind"] == "census"
        assert summary["source"] == str(artifact_dir / "census4.npz")
        assert api.summary("weighted4.npz")["kind"] == "weighted"
        assert api.summary("delta4.npz")["kind"] == "delta"
        for ref in ("census4.npz", "weighted4.npz", "delta4.npz"):
            assert api.verify(ref)["ok"] is True

    def test_stats_and_version(self, api):
        from repro import __version__

        assert api.version() == __version__
        snapshot = api.stats()
        assert snapshot["repro_version"] == __version__
        assert "metrics" in snapshot


class TestGridBatcher:
    def test_merge_grids_dedups_exact_floats(self):
        merged, slices = _merge_grids([[1.0, 2.0], [2.0, 3.0], [1.0]])
        assert merged == [1.0, 2.0, 3.0]
        assert slices == [[0, 1], [1, 2], [0]]

    def test_slice_columns_on_arrays_and_dicts(self):
        array = np.arange(6).reshape(2, 3)
        np.testing.assert_array_equal(
            _slice_columns(array, [2, 0]), array[:, [2, 0]]
        )
        sliced = _slice_columns({"a": [10, 11, 12], "b": "keep"}, [1])
        assert sliced == {"a": [11], "b": "keep"}

    def test_coalesced_equals_uncoalesced_bitwise(self, artifact_dir):
        """≥8 concurrent requests share kernels yet answer bit-identically."""
        store = CensusStore.load(str(artifact_dir / "census4.npz"))
        grids = [
            log_spaced_alphas(0.4 + 0.1 * k, 16.0 + k, 7) for k in range(10)
        ]
        expected = [store.grid_aggregates(grid, "bcg") for grid in grids]

        batcher = GridBatcher(window=0.05)
        barrier = threading.Barrier(len(grids))
        results = [None] * len(grids)

        def worker(k):
            barrier.wait()
            results[k] = batcher.submit(
                ("census4", "agg", "bcg"),
                grids[k],
                lambda merged: store.grid_aggregates(merged, "bcg"),
            )

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(len(grids))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert results == expected
        stats = batcher.stats()
        assert stats.requests == len(grids)
        assert stats.coalesced >= 8, "requests did not actually coalesce"
        assert stats.batches < len(grids)

    def test_zero_window_disables_coalescing(self):
        batcher = GridBatcher(window=0.0)
        calls = []
        out = batcher.submit("k", [1.0, 2.0], lambda g: {"v": list(g)})
        assert out == {"v": [1.0, 2.0]}
        stats = batcher.stats()
        assert (stats.batches, stats.requests, stats.coalesced) == (1, 1, 0)
        assert calls == []

    def test_errors_propagate_to_every_caller(self):
        batcher = GridBatcher(window=0.05)
        barrier = threading.Barrier(3)
        errors = []

        def worker():
            barrier.wait()
            try:
                batcher.submit(
                    "k", [1.0], lambda g: (_ for _ in ()).throw(
                        RuntimeError("kernel broke")
                    )
                )
            except RuntimeError as error:
                errors.append(str(error))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == ["kernel broke"] * 3


class TestConcurrentMixedQueries:
    def test_hammer_matches_single_threaded_references(self, artifact_dir):
        """N threads × {census, weighted, delta} == direct kernel calls."""
        clear_store_cache()
        census = CensusStore.load(str(artifact_dir / "census4.npz"))
        weighted = WeightedStore.load(str(artifact_dir / "weighted4.npz"))
        alphas = log_spaced_alphas(0.5, 24.0, 8)
        ts = default_t_grid(4, 6)
        reference = {
            "census": census.grid_aggregates(alphas, "bcg"),
            "weighted": weighted.aggregates(ts),
            "delta": None,  # filled below
        }
        matrices = [
            build_scenario("random_weights", 4, seed=s)
            .model.coefficient_matrix(4)
            for s in range(3)
        ]
        delta = DeltaStore.load(str(artifact_dir / "delta4.npz"))
        reference["delta"] = delta.stable_counts_multi(matrices, ts).tolist()

        api = QueryAPI(
            ArtifactCatalog(root=str(artifact_dir)),
            batcher=GridBatcher(window=0.01),
        )
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(12)

        def worker(k):
            barrier.wait()
            kind = ("census", "weighted", "delta")[k % 3]
            if kind == "census":
                got = api.grid_aggregates("census4.npz", alphas, "bcg")
                ok = all(
                    got[key] == values
                    for key, values in reference["census"].items()
                )
            elif kind == "weighted":
                got = api.weighted_grid("weighted4.npz", ts=ts)
                ok = all(
                    got[key] == values
                    for key, values in reference["weighted"].items()
                )
            else:
                got = api.delta_counts(
                    "delta4.npz", "random_weights", [0, 1, 2], ts=ts
                )
                ok = got["counts"] == reference["delta"]
            with lock:
                outcomes.append(ok)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == [True] * 12
        clear_store_cache()


class TestHTTPServer:
    @pytest.fixture()
    def server(self, artifact_dir):
        clear_store_cache()
        api = QueryAPI(
            ArtifactCatalog(root=str(artifact_dir)),
            batcher=GridBatcher(window=0.005),
        )
        server, thread = start_in_thread(api=api)
        yield server
        server.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        clear_store_cache()

    def _get(self, server, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}{path}"
        ) as response:
            return response.read()

    def _post(self, server, path, payload):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read().decode("utf-8"))

    def test_healthz_reports_version_and_artifacts(self, server):
        from repro import __version__

        health = json.loads(self._get(server, "/healthz"))
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["artifacts"] == 3

    def test_artifacts_listing_and_detail(self, server):
        listing = json.loads(self._get(server, "/artifacts"))
        assert {a["id"] for a in listing["artifacts"]} == {
            "census4.npz", "weighted4.npz", "delta4.npz",
        }
        detail = json.loads(self._get(server, "/artifacts/census4.npz"))
        assert detail["artifact"]["kind"] == "census"
        assert detail["summary"]["n"] == 4

    def test_metrics_exposition_contains_request_series(self, server):
        self._get(server, "/healthz")
        text = self._get(server, "/metrics").decode("utf-8")
        assert "repro_http_requests_total" in text
        assert "repro_http_request_seconds" in text

    def test_grid_query_equals_in_process_figure(self, server, artifact_dir):
        from repro.analysis.figure_series import (
            census_figure_series,
            figure_from_payload,
        )

        store = CensusStore.load(str(artifact_dir / "census4.npz"))
        costs = log_spaced_alphas(0.4, 2.0 * 16, 10)
        direct = census_figure_series(store, "average_poa", costs)
        served = self._post(
            server,
            "/v1/query/grid",
            {"artifact": "census4.npz", "points": 10},
        )
        assert figure_from_payload(served) == direct

    def test_concurrent_grid_queries_identical_payloads(self, server):
        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(k):
            barrier.wait()
            results[k] = self._post(
                server,
                "/v1/query/grid",
                {"artifact": "census4.npz", "points": 8},
            )

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result == results[0] for result in results)

    def test_windows_and_ensemble_endpoints(self, server, artifact_dir):
        weighted = WeightedStore.load(str(artifact_dir / "weighted4.npz"))
        lo, hi = weighted.stability_windows()
        served = self._post(
            server,
            "/v1/query/windows",
            {"artifact": "weighted4.npz"},
        )
        assert served["t_min"] == [float(v) for v in lo]
        assert served["t_max"] == [float(v) for v in hi]
        stats = self._post(
            server,
            "/v1/query/ensemble-stats",
            {"n": 4, "draws": 2, "grid": 4, "delta": "delta4.npz"},
        )
        assert stats["draws"] == 2
        assert len(stats["counts"]) == 2

    def test_error_statuses(self, server):
        with pytest.raises(urllib.error.HTTPError) as not_found:
            self._get(server, "/nope")
        assert not_found.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as missing_field:
            self._post(server, "/v1/query/grid", {})
        assert missing_field.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as unknown:
            self._post(server, "/v1/query/grid", {"artifact": "ghost.npz"})
        assert unknown.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as wrong_method:
            self._get(server, "/v1/query/grid")
        assert wrong_method.value.code == 405
