"""Element-for-element parity tests for the columnar census store.

The contract under test: every answer of :class:`repro.analysis.store.CensusStore`
— stability masks, Nash masks, equilibrium counts, PoA and link-count
aggregates, reconstructed graphs — equals the retained
:class:`repro.analysis.census.EquilibriumCensus` record path **exactly**
(float equality, not approximate), including after a save → load round trip
in a separate process.
"""

import json
import math
import os
import subprocess
import sys

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.census import EquilibriumCensus
from repro.analysis.figure_series import census_figure_series
from repro.analysis.store import (
    CensusStore,
    bcg_alpha_columns,
    cached_store,
    clear_store_cache,
)
from repro.core.stability_intervals import pairwise_stability_profile
from repro.graphs import cycle_graph, petersen_graph, star_graph

#: All store columns (UCG ones included when present).
COLUMNS = (
    "num_edges",
    "dist_total",
    "cert_words",
    "rem_values",
    "rem_indptr",
    "add_lo",
    "add_hi",
    "add_indptr",
    "ucg_lo",
    "ucg_hi",
    "ucg_indptr",
)


def assert_columns_equal(first: CensusStore, second: CensusStore) -> None:
    assert first.n == second.n
    assert first.include_ucg == second.include_ucg
    for name in COLUMNS:
        a, b = getattr(first, name), getattr(second, name)
        if a is None or b is None:
            assert a is None and b is None, name
            continue
        assert np.array_equal(a, b), name


def alpha_grid(census: EquilibriumCensus):
    """A log grid plus the exact window endpoints of a few classes.

    Querying *at* α_min/α_max exercises the tolerance folding of the
    Definition 3 comparisons, where an off-by-one-ulp kernel would diverge
    from the record path.
    """
    grid = [0.2 * (36 / 0.2) ** (k / 8) for k in range(9)]
    grid += [1.0, 1.0 + 1e-9, 1.0 - 1e-9]
    for record in census.records[:: max(1, len(census.records) // 7)]:
        for endpoint in record.bcg_profile.stability_interval():
            if endpoint == endpoint and endpoint not in (float("inf"),):
                grid.append(endpoint)
                grid.append(endpoint + 1e-13)
    return [alpha for alpha in grid if alpha > 0]


@pytest.fixture(scope="module")
def census6():
    return EquilibriumCensus.build(6)


@pytest.fixture(scope="module")
def store6(census6):
    return CensusStore.from_census(census6)


@pytest.fixture(scope="module")
def census7():
    return EquilibriumCensus.build(7, include_ucg=False)


@pytest.fixture(scope="module")
def store7(census7):
    return CensusStore.build(7, include_ucg=False)


class TestBuildPaths:
    def test_build_equals_from_census(self, census6, store6):
        assert_columns_equal(store6, CensusStore.build(6))

    def test_build_identical_for_any_jobs(self, store6):
        assert_columns_equal(store6, CensusStore.build(6, jobs=2))

    @pytest.mark.parametrize("n", range(0, 6))
    def test_streamed_equals_build(self, n):
        assert_columns_equal(
            CensusStore.build(n), CensusStore.build_streamed(n)
        )

    def test_streamed_any_shard_level_and_jobs(self):
        reference = CensusStore.build(6, include_ucg=False)
        for shard_level in (0, 3, 6):
            assert_columns_equal(
                reference,
                CensusStore.build_streamed(
                    6, include_ucg=False, shard_level=shard_level, batch_size=17
                ),
            )
        assert_columns_equal(
            reference, CensusStore.build_streamed(6, include_ucg=False, jobs=2)
        )

    def test_shard_dir_resume(self, tmp_path):
        shard_dir = tmp_path / "shards"
        first = CensusStore.build_streamed(
            5, include_ucg=False, shard_dir=str(shard_dir)
        )
        shards = sorted(
            name for name in os.listdir(shard_dir) if name.startswith("shard_")
        )
        assert shards and all(name.endswith(".npz") for name in shards)
        assert (shard_dir / "manifest.json").exists()
        # Second run consumes the persisted shards instead of recomputing.
        resumed = CensusStore.build_streamed(
            5, include_ucg=False, shard_dir=str(shard_dir)
        )
        assert_columns_equal(first, resumed)
        assert_columns_equal(first, CensusStore.build(5, include_ucg=False))

    def test_shard_dir_recovers_from_truncated_shard(self, tmp_path):
        """A shard torn by a crash is recomputed, not fatal and not trusted."""
        shard_dir = tmp_path / "shards"
        reference = CensusStore.build_streamed(
            5, include_ucg=False, shard_dir=str(shard_dir)
        )
        victim = sorted(shard_dir.glob("shard_*.npz"))[0]
        victim.write_bytes(victim.read_bytes()[:40])  # truncate mid-archive
        with pytest.warns(RuntimeWarning, match="failed validation"):
            resumed = CensusStore.build_streamed(
                5, include_ucg=False, shard_dir=str(shard_dir)
            )
        assert_columns_equal(reference, resumed)

    def test_cached_store_reuses_cached_census(self):
        """cached_store converts an already-built record census in place."""
        from unittest import mock

        from repro.analysis.census import cached_census, clear_census_cache

        clear_store_cache()
        clear_census_cache()
        census = cached_census(4)
        with mock.patch.object(
            CensusStore, "build", side_effect=AssertionError("rebuilt from scratch")
        ):
            store = cached_store(4)
        assert_columns_equal(store, CensusStore.from_census(census))
        clear_store_cache()
        clear_census_cache()

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            CensusStore.build_streamed(-1)

    def test_shard_dir_rejects_foreign_shards(self, tmp_path):
        """Shards carry n/include_ucg metadata; a reused dir must not merge.

        ``shard_level`` is pinned so both builds produce colliding
        ``shard_XXXX_of_YYYY.npz`` names — the silent-corruption shape the
        metadata check exists for.
        """
        shard_dir = str(tmp_path / "shards")
        CensusStore.build_streamed(
            4, include_ucg=False, shard_level=2, shard_dir=shard_dir
        )
        with pytest.raises(ValueError):
            CensusStore.build_streamed(
                5, include_ucg=False, shard_level=2, shard_dir=shard_dir
            )
        with pytest.raises(ValueError):
            CensusStore.build_streamed(
                4, include_ucg=True, shard_level=2, shard_dir=shard_dir
            )

    def test_graph_reconstruction_roundtrip(self, census6, store6):
        for index, record in enumerate(census6.records):
            assert store6.graph_at(index) == record.graph

    def test_cached_store_reuses_instances(self):
        clear_store_cache()
        first = cached_store(4)
        assert cached_store(4) is first
        assert cached_store(4, include_ucg=False) is not first
        clear_store_cache()


class TestStoreCache:
    """Regression: the cache is bounded and keys carry the load options."""

    def test_load_options_are_part_of_the_key(self, tmp_path):
        """A resident load and a mapped load of one artifact must not
        collide — a cache hit used to hand back whichever came first."""
        from repro.analysis import store as store_module

        path = CensusStore.build(4, include_ucg=False).save(
            str(tmp_path / "census4_dir"), format="dir"
        )
        clear_store_cache()
        resident = cached_store(path=path)
        mapped = cached_store(path=path, mmap=True)
        assert resident is not mapped
        assert isinstance(mapped.num_edges, np.memmap)
        assert not isinstance(resident.num_edges, np.memmap)
        assert cached_store(path=path) is resident
        assert cached_store(path=path, mmap=True) is mapped
        assert len(store_module._STORE_CACHE) == 2
        clear_store_cache()

    def test_rewritten_artifact_misses_the_cache(self, tmp_path):
        """An artifact regenerated in place must not serve stale columns."""
        path = str(tmp_path / "census.npz")
        CensusStore.build(3, include_ucg=False).save(path)
        clear_store_cache()
        assert cached_store(path=path).n == 3
        os.utime(path, ns=(1, 1))  # decouple from filesystem mtime granularity
        CensusStore.build(4, include_ucg=False).save(path)
        assert cached_store(path=path).n == 4
        clear_store_cache()

    def test_build_and_load_keys_do_not_collide(self, tmp_path):
        path = CensusStore.build(4, include_ucg=False).save(
            str(tmp_path / "census4.npz")
        )
        clear_store_cache()
        built = cached_store(4, include_ucg=False)
        loaded = cached_store(path=path)
        assert built is not loaded
        assert_columns_equal(built, loaded)
        clear_store_cache()

    def test_cache_is_lru_bounded(self, tmp_path, monkeypatch):
        from repro.analysis import store as store_module

        path = CensusStore.build(3, include_ucg=False).save(
            str(tmp_path / "census3.npz")
        )
        monkeypatch.setattr(store_module, "STORE_CACHE_MAX", 2)
        clear_store_cache()
        first = cached_store(3, include_ucg=False)
        second = cached_store(path=path)
        assert len(store_module._STORE_CACHE) == 2
        # Touch `first` so `second` is the least recently used entry…
        assert cached_store(3, include_ucg=False) is first
        cached_store(4, include_ucg=False)  # …and gets evicted here.
        assert len(store_module._STORE_CACHE) == 2
        assert cached_store(3, include_ucg=False) is first
        assert cached_store(path=path) is not second
        clear_store_cache()

    def test_clear_store_cache_empties(self):
        from repro.analysis import store as store_module

        clear_store_cache()
        cached_store(4)
        assert store_module._STORE_CACHE
        clear_store_cache()
        assert not store_module._STORE_CACHE

    def test_requires_exactly_one_of_n_and_path(self, tmp_path):
        with pytest.raises(ValueError):
            cached_store()
        path = CensusStore.build(3, include_ucg=False).save(
            str(tmp_path / "census3.npz")
        )
        with pytest.raises(ValueError):
            cached_store(3, path=path)


class TestMaskParity:
    def test_bcg_mask_matches_records(self, census6, store6):
        alphas = alpha_grid(census6)
        mask = store6.stable_mask(alphas, "bcg")
        assert mask.shape == (len(census6), len(alphas))
        for column, alpha in enumerate(alphas):
            expected = [r.is_bcg_stable_at(alpha) for r in census6.records]
            assert mask[:, column].tolist() == expected, alpha

    def test_ucg_mask_matches_records(self, census6, store6):
        alphas = alpha_grid(census6)
        mask = store6.stable_mask(alphas, "ucg")
        for column, alpha in enumerate(alphas):
            expected = [r.is_ucg_nash_at(alpha) for r in census6.records]
            assert mask[:, column].tolist() == expected, alpha

    def test_bcg_mask_matches_records_n7(self, census7, store7):
        alphas = alpha_grid(census7)
        mask = store7.stable_mask(alphas, "bcg")
        for column, alpha in enumerate(alphas):
            expected = [r.is_bcg_stable_at(alpha) for r in census7.records]
            assert mask[:, column].tolist() == expected, alpha

    def test_ucg_query_requires_ucg_columns(self, store7):
        with pytest.raises(ValueError):
            store7.stable_mask([1.0], "ucg")
        with pytest.raises(ValueError):
            store7.nash_graphs_ucg(1.0)

    def test_invalid_game_name(self, store6):
        with pytest.raises(ValueError):
            store6.stable_mask([1.0], "xyz")

    def test_stability_windows_match_profiles(self, census6, store6):
        alpha_min, alpha_max = store6.stability_windows()
        for index, record in enumerate(census6.records):
            assert alpha_min[index] == record.bcg_profile.alpha_min
            assert alpha_max[index] == record.bcg_profile.alpha_max


class TestAggregateParity:
    @staticmethod
    def same(a: float, b: float) -> bool:
        """Exact equality, with nan == nan."""
        return (a != a and b != b) or a == b

    def test_aggregates_identical(self, census6, store6):
        alphas = alpha_grid(census6)
        for game in ("bcg", "ucg"):
            aggregates = store6.grid_aggregates(alphas, game)
            for k, alpha in enumerate(alphas):
                assert aggregates["counts"][k] == census6.equilibrium_count(
                    alpha, game
                )
                assert self.same(
                    aggregates["average_poa"][k],
                    census6.average_price_of_anarchy(alpha, game),
                ), (alpha, game)
                assert self.same(
                    aggregates["worst_poa"][k],
                    census6.worst_price_of_anarchy(alpha, game),
                ), (alpha, game)
                assert self.same(
                    aggregates["average_links"][k],
                    census6.average_num_links(alpha, game),
                ), (alpha, game)

    def test_scalar_compat_methods(self, census6, store6):
        alpha = 2.5
        for game in ("bcg", "ucg"):
            assert store6.equilibrium_count(alpha, game) == census6.equilibrium_count(
                alpha, game
            )
            assert self.same(
                store6.average_price_of_anarchy(alpha, game),
                census6.average_price_of_anarchy(alpha, game),
            )
            assert self.same(
                store6.worst_price_of_anarchy(alpha, game),
                census6.worst_price_of_anarchy(alpha, game),
            )
            assert self.same(
                store6.average_num_links(alpha, game),
                census6.average_num_links(alpha, game),
            )
            assert store6.edge_count_histogram(
                alpha, game
            ) == census6.edge_count_histogram(alpha, game)

    def test_equilibrium_graphs_identical(self, census6, store6):
        for alpha in (0.5, 1.5, 3.0, 12.0):
            for game in ("bcg", "ucg"):
                expected = [
                    g.edge_key() for g in census6.equilibrium_graphs(alpha, game)
                ]
                observed = [
                    g.edge_key() for g in store6.equilibrium_graphs(alpha, game)
                ]
                assert observed == expected

    def test_figure_series_identical(self, census6, store6):
        costs = [0.5, 1.0, 2.0, 7.0, 40.0]
        for quantity in ("average_poa", "worst_poa", "average_links"):
            record_fig = census_figure_series(census6, quantity, costs)
            store_fig = census_figure_series(store6, quantity, costs)
            assert record_fig == store_fig

    def test_figure_series_rejects_unknown_quantity(self, store6):
        with pytest.raises(ValueError):
            census_figure_series(store6, "median_poa", [1.0])


class TestPersistence:
    def test_npz_roundtrip(self, store6, tmp_path):
        path = store6.save(str(tmp_path / "census6.npz"))
        assert_columns_equal(store6, CensusStore.load(path))

    def test_verify_and_checksum_stamp(self, store6, tmp_path):
        audit = store6.verify()
        assert audit["ok"] and audit["errors"] == []
        assert audit["checksum"] == "absent"  # in-memory build, no stamp
        path = store6.save(str(tmp_path / "census6.npz"))
        loaded = CensusStore.load(path)
        assert loaded.verify()["checksum"] == "ok"
        # In-place corruption flips the audit, not just the load.
        loaded.dist_total = loaded.dist_total.copy()
        loaded.dist_total[0] += 1
        audit = loaded.verify()
        assert not audit["ok"]
        assert audit["checksum"] == "mismatch"

    def test_npz_suffix_added(self, store6, tmp_path):
        path = store6.save(str(tmp_path / "census6"), format="npz")
        assert path.endswith(".npz") and os.path.exists(path)

    def test_dir_roundtrip_with_mmap(self, store6, tmp_path):
        path = store6.save(str(tmp_path / "census6_dir"), format="dir")
        assert os.path.isdir(path)
        loaded = CensusStore.load(path, mmap=True)
        assert_columns_equal(store6, loaded)
        # mmap-backed columns answer queries like resident ones.
        assert loaded.stable_mask([2.0], "bcg").tolist() == store6.stable_mask(
            [2.0], "bcg"
        ).tolist()

    def test_mmap_requires_dir_format(self, store6, tmp_path):
        path = store6.save(str(tmp_path / "census6.npz"))
        with pytest.raises(ValueError):
            CensusStore.load(path, mmap=True)

    def test_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, data=np.arange(3))
        with pytest.raises(ValueError):
            CensusStore.load(path)

    def test_rejects_future_format_version(self, store6, tmp_path):
        path = str(tmp_path / "dir_v999")
        store6.save(path, format="dir")
        meta_path = os.path.join(path, "meta.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["format_version"] = 999
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        with pytest.raises(ValueError):
            CensusStore.load(path)

    def test_roundtrip_in_fresh_process(self, census6, store6, tmp_path):
        """build → save → load in a separate interpreter → query parity."""
        path = store6.save(str(tmp_path / "census6.npz"))
        alphas = [0.4, 1.0, 2.0, 5.0, 20.0]
        script = (
            "import json, sys\n"
            "from repro.analysis.store import CensusStore\n"
            f"store = CensusStore.load({path!r})\n"
            f"alphas = {alphas!r}\n"
            "out = {\n"
            "    'bcg': store.stable_mask(alphas, 'bcg').tolist(),\n"
            "    'ucg': store.stable_mask(alphas, 'ucg').tolist(),\n"
            "    'agg': store.grid_aggregates(alphas, 'bcg'),\n"
            "}\n"
            "json.dump(out, sys.stdout)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        out = json.loads(result.stdout)
        assert out["bcg"] == [
            [r.is_bcg_stable_at(alpha) for alpha in alphas]
            for r in census6.records
        ]
        assert out["ucg"] == [
            [r.is_ucg_nash_at(alpha) for alpha in alphas]
            for r in census6.records
        ]
        for k, alpha in enumerate(alphas):
            assert out["agg"]["counts"][k] == census6.equilibrium_count(alpha, "bcg")
            expected = census6.average_price_of_anarchy(alpha, "bcg")
            observed = out["agg"]["average_poa"][k]
            assert (observed != observed and expected != expected) or (
                observed == expected
            )


class TestOrdering:
    def test_permute_then_sort_restores_order(self, store6):
        rng = np.random.default_rng(0)
        order = rng.permutation(len(store6))
        shuffled = store6.permute(order)
        assert_columns_equal(shuffled.sort_canonical(), store6)

    def test_canonical_order_matches_class_sort_key(self, store6):
        from repro.graphs import class_sort_key

        keys = [class_sort_key(store6.graph_at(i)) for i in range(len(store6))]
        assert keys == sorted(keys)


class TestSegmentKernels:
    def test_trailing_and_interior_empty_segments(self):
        """Empty CSR segments must not truncate their neighbours' reductions.

        Regression: clipping an out-of-range start of a trailing empty
        segment used to end the *previous* segment's reduceat one element
        early, silently corrupting every mask/window built from a batch
        whose last class had an empty payload (e.g. a complete graph's
        non-edge column).
        """
        from repro.engine.columnar import segment_any, segment_max, segment_min

        flags = np.array([False, False, True])
        indptr = np.array([0, 3, 3])
        assert segment_any(flags, indptr).tolist() == [True, False]
        assert segment_any(
            np.array([True, False]), np.array([0, 0, 1, 1, 2, 2])
        ).tolist() == [False, True, False, False, False]
        values = np.array([5.0, 2.0, 7.0])
        assert segment_min(values, np.array([0, 2, 2, 3])).tolist() == [
            2.0,
            float("inf"),
            7.0,
        ]
        assert segment_max(values, np.array([0, 3, 3]), empty=0.0).tolist() == [
            7.0,
            0.0,
        ]

    def test_batch_ending_with_complete_graph(self):
        """End-to-end shape of the regression: complete graph last in batch."""
        from repro.engine.columnar import bcg_stable_mask, stability_windows
        from repro.graphs import Graph, complete_graph

        graphs = [Graph(5, [(0, 3), (0, 1), (1, 2), (2, 4)]), complete_graph(4)]
        profiles = [pairwise_stability_profile(g) for g in graphs]
        rem_min, add_lo, add_hi, add_indptr = bcg_alpha_columns(profiles)
        alpha_min, alpha_max = stability_windows(rem_min, add_lo, add_indptr)
        mask = bcg_stable_mask(
            rem_min, add_lo, add_hi, add_indptr, [0.5, 1.0, 3.5, 4.0, 10.0]
        )
        for i, profile in enumerate(profiles):
            assert alpha_min[i] == profile.alpha_min
            assert alpha_max[i] == profile.alpha_max
            for a, alpha in enumerate([0.5, 1.0, 3.5, 4.0, 10.0]):
                assert bool(mask[i, a]) == profile.is_stable_at(alpha), (i, alpha)


class TestAdHocColumns:
    def test_bcg_alpha_columns_heterogeneous_n(self):
        graphs = [star_graph(8), cycle_graph(5), petersen_graph()]
        profiles = [pairwise_stability_profile(g) for g in graphs]
        rem_min, add_lo, add_hi, add_indptr = bcg_alpha_columns(profiles)
        from repro.engine.columnar import bcg_stable_mask, stability_windows

        alpha_min, alpha_max = stability_windows(rem_min, add_lo, add_indptr)
        for i, profile in enumerate(profiles):
            assert alpha_min[i] == profile.alpha_min
            assert alpha_max[i] == profile.alpha_max
        alphas = [0.5, 1.0, 2.0, 5.0]
        mask = bcg_stable_mask(rem_min, add_lo, add_hi, add_indptr, alphas)
        for i, profile in enumerate(profiles):
            for a, alpha in enumerate(alphas):
                assert bool(mask[i, a]) == profile.is_stable_at(alpha)


class TestTinyN:
    @pytest.mark.parametrize("n", (0, 1, 2))
    def test_degenerate_sizes(self, n):
        store = CensusStore.build(n)
        census = EquilibriumCensus.build(n)
        assert len(store) == len(census)
        for alpha in (0.5, 2.0):
            assert store.equilibrium_count(alpha, "bcg") == census.equilibrium_count(
                alpha, "bcg"
            )
            avg_s = store.average_price_of_anarchy(alpha, "bcg")
            avg_c = census.average_price_of_anarchy(alpha, "bcg")
            assert (avg_s != avg_s and avg_c != avg_c) or avg_s == avg_c


class TestCacheThreadSafety:
    """The shared store LRU stays exact under concurrent hammering."""

    def _lookup_totals(self, cache: str):
        """(hits, misses) recorded for one cache label so far."""
        from repro import obs

        totals = {"repro_cache_hits_total": 0.0, "repro_cache_misses_total": 0.0}
        for entry in obs.snapshot()["metrics"]:
            if entry["name"] in totals and entry["labels"].get("cache") == cache:
                totals[entry["name"]] = entry["value"]
        return totals["repro_cache_hits_total"], totals["repro_cache_misses_total"]

    def test_hammered_cached_store_counts_every_lookup_exactly(self, tmp_path):
        """N threads × M lookups: one shared object, hits+misses == lookups.

        Without the cache lock two racing misses would both build (object
        identity breaks) and the hit/miss counters would drift from the
        true lookup count; holding the lock across the whole miss keeps
        both exact.
        """
        import threading
        from concurrent.futures import ThreadPoolExecutor

        path = str(tmp_path / "census4.npz")
        CensusStore.build(4, include_ucg=False).save(path)
        clear_store_cache()
        hits_before, misses_before = self._lookup_totals("census-store")

        threads, lookups_each = 8, 25
        barrier = threading.Barrier(threads)

        def hammer(_):
            barrier.wait()
            return [cached_store(path=path) for _ in range(lookups_each)]

        with ThreadPoolExecutor(max_workers=threads) as pool:
            batches = list(pool.map(hammer, range(threads)))

        stores = {id(store) for batch in batches for store in batch}
        assert len(stores) == 1, "concurrent misses built duplicate stores"

        hits, misses = self._lookup_totals("census-store")
        total = (hits - hits_before) + (misses - misses_before)
        assert total == threads * lookups_each
        assert misses - misses_before == 1.0
        clear_store_cache()

    def test_hammered_delta_and_weighted_caches(self, tmp_path):
        """The delta and weighted twins share the same lock discipline."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.analysis.delta_store import DeltaStore, cached_delta_store
        from repro.analysis.weighted_store import (
            WeightedStore,
            cached_weighted_store,
        )
        from repro.analysis.scenarios import build_scenario

        delta_path = str(tmp_path / "delta4.npz")
        DeltaStore.build(4).save(delta_path)
        weighted_path = str(tmp_path / "weighted4.npz")
        WeightedStore.from_scenario(
            build_scenario("random_weights", 4, seed=0)
        ).save(weighted_path)
        clear_store_cache()

        with ThreadPoolExecutor(max_workers=8) as pool:
            deltas = list(
                pool.map(lambda _: cached_delta_store(path=delta_path), range(40))
            )
            weighteds = list(
                pool.map(lambda _: cached_weighted_store(weighted_path), range(40))
            )
        assert len({id(store) for store in deltas}) == 1
        assert len({id(store) for store in weighteds}) == 1
        clear_store_cache()
