"""Unit tests for dynamics-based equilibrium sampling."""

from repro.analysis import (
    deduplicate_up_to_isomorphism,
    sample_equilibria_at_cost,
    sample_equilibria_over_grid,
)
from repro.core import is_nash_graph_ucg, is_pairwise_stable
from repro.graphs import cycle_graph, star_graph


def test_deduplicate_up_to_isomorphism():
    star_a = star_graph(5)
    star_b = star_graph(5, center=2)
    cycle = cycle_graph(5)
    unique = deduplicate_up_to_isomorphism([star_a, star_b, cycle, star_a])
    assert len(unique) == 2
    assert unique[0] == star_a


def test_sample_equilibria_at_cost_small_n():
    sampled = sample_equilibria_at_cost(6, total_edge_cost=4.0, num_samples=5, seed=3)
    assert sampled.alpha_ucg == 4.0
    assert sampled.alpha_bcg == 2.0
    assert sampled.ucg, "best-response dynamics should converge for small n"
    assert sampled.bcg, "pairwise dynamics should converge for small n"
    # Every sampled network really is an equilibrium of its game.
    assert all(is_nash_graph_ucg(g, 4.0) for g in sampled.ucg)
    assert all(is_pairwise_stable(g, 2.0) for g in sampled.bcg)


def test_sample_equilibria_with_verification_filter():
    sampled = sample_equilibria_at_cost(
        5, total_edge_cost=3.0, num_samples=4, seed=1, verify=True
    )
    assert all(is_pairwise_stable(g, 1.5) for g in sampled.bcg)


def test_sample_equilibria_over_grid_keys():
    grid = sample_equilibria_over_grid(5, [2.0, 10.0], num_samples=3, seed=2)
    assert set(grid) == {2.0, 10.0}
    assert set(grid[2.0]) == {"ucg", "bcg"}
