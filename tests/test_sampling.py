"""Unit tests for dynamics-based equilibrium sampling."""

from repro.analysis import (
    deduplicate_up_to_isomorphism,
    sample_equilibria_at_cost,
    sample_equilibria_over_grid,
    sampled_bcg_columns,
    sampled_bcg_profiles,
    sampled_stable_counts,
    sampled_stable_mask,
)
from repro.core import is_nash_graph_ucg, is_pairwise_stable, pairwise_stability_profile
from repro.graphs import cycle_graph, star_graph


def test_deduplicate_up_to_isomorphism():
    star_a = star_graph(5)
    star_b = star_graph(5, center=2)
    cycle = cycle_graph(5)
    unique = deduplicate_up_to_isomorphism([star_a, star_b, cycle, star_a])
    assert len(unique) == 2
    assert unique[0] == star_a


def test_sample_equilibria_at_cost_small_n():
    sampled = sample_equilibria_at_cost(6, total_edge_cost=4.0, num_samples=5, seed=3)
    assert sampled.alpha_ucg == 4.0
    assert sampled.alpha_bcg == 2.0
    assert sampled.ucg, "best-response dynamics should converge for small n"
    assert sampled.bcg, "pairwise dynamics should converge for small n"
    # Every sampled network really is an equilibrium of its game.
    assert all(is_nash_graph_ucg(g, 4.0) for g in sampled.ucg)
    assert all(is_pairwise_stable(g, 2.0) for g in sampled.bcg)


def test_sample_equilibria_with_verification_filter():
    sampled = sample_equilibria_at_cost(
        5, total_edge_cost=3.0, num_samples=4, seed=1, verify=True
    )
    assert all(is_pairwise_stable(g, 1.5) for g in sampled.bcg)


def test_sample_equilibria_over_grid_keys():
    grid = sample_equilibria_over_grid(5, [2.0, 10.0], num_samples=3, seed=2)
    assert set(grid) == {2.0, 10.0}
    assert set(grid[2.0]) == {"ucg", "bcg"}


# --------------------------------------------------------------------------- #
# Store-backed sampling: columnar α-grid queries over sampled graph lists
# --------------------------------------------------------------------------- #


def test_sampled_profiles_match_per_graph_analysis(small_random_graphs):
    profiles = sampled_bcg_profiles(small_random_graphs)
    for graph, batched in zip(small_random_graphs, profiles):
        reference = pairwise_stability_profile(graph)
        assert batched.removal_increase == reference.removal_increase
        assert batched.addition_saving == reference.addition_saving


def test_sampled_stable_mask_matches_exact_checks():
    sampled = sample_equilibria_at_cost(6, total_edge_cost=4.0, num_samples=6, seed=3)
    alphas = [0.5, 1.0, 2.0, 4.0, 9.0]
    mask = sampled_stable_mask(sampled.bcg, alphas)
    for i, graph in enumerate(sampled.bcg):
        for j, alpha in enumerate(alphas):
            assert bool(mask[i][j]) == is_pairwise_stable(graph, alpha)
    # Every sampled BCG network is stable at the cost it was sampled at.
    counts = sampled_stable_counts(sampled.bcg, [sampled.alpha_bcg])
    assert counts == [len(sampled.bcg)]


def test_sampled_columns_feed_the_columnar_kernels():
    import importlib.util

    import pytest

    if importlib.util.find_spec("numpy") is None:
        pytest.skip("sampled_bcg_columns requires NumPy")
    graphs = [star_graph(6), cycle_graph(6), star_graph(5)]  # mixed n is fine
    rem_min, add_lo, add_hi, add_indptr = sampled_bcg_columns(graphs)
    assert rem_min.shape[0] == len(graphs)
    assert add_indptr.shape[0] == len(graphs) + 1
    counts = sampled_stable_counts(graphs, [3.0])
    expected = sum(1 for g in graphs if is_pairwise_stable(g, 3.0))
    assert counts == [expected]
