"""Unit tests for the basic Graph type."""

import pytest

from repro.graphs import Graph, normalize_edge


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(4)
        assert g.n == 4
        assert g.num_edges == 0
        assert list(g.vertices) == [0, 1, 2, 3]

    def test_edges_are_normalized_and_deduplicated(self):
        g = Graph(3, [(1, 0), (0, 1), (2, 1)])
        assert g.num_edges == 2
        assert g.edges == {(0, 1), (1, 2)}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 3)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_from_edge_list_infers_size(self):
        g = Graph.from_edge_list([(0, 4), (2, 3)])
        assert g.n == 5
        assert g.num_edges == 2

    def test_from_and_to_adjacency_matrix(self):
        matrix = [
            [0, 1, 0],
            [1, 0, 1],
            [0, 1, 0],
        ]
        g = Graph.from_adjacency_matrix(matrix)
        assert g.edges == {(0, 1), (1, 2)}
        assert g.to_adjacency_matrix() == matrix

    def test_non_square_adjacency_matrix_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_adjacency_matrix([[0, 1], [1, 0, 0]])


class TestAccessors:
    def test_neighbors_and_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.neighbors(0) == {1, 2, 3}
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_degree_sequence_sorted_descending(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree_sequence() == (3, 1, 1, 1)
        assert g.degrees() == (3, 1, 1, 1)

    def test_has_edge(self):
        g = Graph(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 1)

    def test_non_edges(self):
        g = Graph(3, [(0, 1)])
        assert g.non_edges() == [(0, 2), (1, 2)]

    def test_sorted_edges_deterministic(self):
        g = Graph(4, [(3, 2), (1, 0), (0, 3)])
        assert g.sorted_edges() == [(0, 1), (0, 3), (2, 3)]

    def test_len_and_iter(self):
        g = Graph(3, [(0, 1)])
        assert len(g) == 3
        assert list(g) == [0, 1, 2]


class TestImmutableOperations:
    def test_add_edge_returns_new_graph(self):
        g = Graph(3, [(0, 1)])
        h = g.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_add_existing_edge_is_identity(self):
        g = Graph(3, [(0, 1)])
        assert g.add_edge(0, 1) is g

    def test_remove_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        h = g.remove_edge(0, 1)
        assert h.edges == {(1, 2)}
        assert g.num_edges == 2

    def test_remove_missing_edge_is_identity(self):
        g = Graph(3, [(0, 1)])
        assert g.remove_edge(0, 2) is g

    def test_toggle_edge(self):
        g = Graph(3, [(0, 1)])
        assert not g.toggle_edge(0, 1).has_edge(0, 1)
        assert g.toggle_edge(1, 2).has_edge(1, 2)

    def test_add_and_remove_multiple_edges(self):
        g = Graph(4)
        h = g.add_edges([(0, 1), (2, 3)])
        assert h.num_edges == 2
        assert h.remove_edges([(0, 1), (2, 3)]).num_edges == 0

    def test_relabel(self):
        g = Graph(3, [(0, 1)])
        h = g.relabel([2, 0, 1])
        assert h.edges == {(0, 2)}

    def test_relabel_requires_permutation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.relabel([0, 0, 1])

    def test_induced_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        h = g.induced_subgraph([1, 2, 3])
        assert h.n == 3
        assert h.edges == {(0, 1), (1, 2)}

    def test_induced_subgraph_requires_distinct_vertices(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.induced_subgraph([0, 0])

    def test_complement(self):
        g = Graph(3, [(0, 1)])
        assert g.complement().edges == {(0, 2), (1, 2)}

    def test_add_vertex(self):
        g = Graph(2, [(0, 1)])
        h = g.add_vertex([0])
        assert h.n == 3
        assert h.has_edge(0, 2)


class TestEqualityAndHashing:
    def test_equality(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])
        assert Graph(3) != Graph(4)

    def test_hash_consistency(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_edge_key(self):
        g = Graph(3, [(2, 1), (1, 0)])
        assert g.edge_key() == (3, ((0, 1), (1, 2)))

    def test_adjacency_bitstring_distinguishes_labelled_graphs(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 2)])
        assert a.adjacency_bitstring() != b.adjacency_bitstring()

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1)"


def test_normalize_edge():
    assert normalize_edge(3, 1) == (1, 3)
    with pytest.raises(ValueError):
        normalize_edge(2, 2)
