"""Property-based tests (hypothesis) for the core invariants of the paper.

These cover the paper's structural claims on *random* inputs rather than a
fixed list of examples:

* metric properties of BFS distances;
* the ``Λ`` profile algebra round-trips;
* Lemma 1: cost convexity of the BCG on every graph;
* Proposition 1: pairwise stability ⟺ pairwise Nash;
* Lemma 2: the (α_min, α_max] window really is a stability window;
* canonical-form invariance under relabelling;
* the UCG α-interval search agrees with explicit profile checks on trees.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    is_cost_convex,
    is_pairwise_nash,
    is_pairwise_stable,
    pairwise_stability_profile,
    profile_from_graph_bcg,
    social_cost_bcg,
    ucg_nash_alpha_set,
)
from repro.core.strategies import profile_from_ownership_ucg
from repro.core.unilateral import is_nash_profile_ucg
from repro.graphs import (
    Graph,
    all_pairs_distances,
    canonical_form,
    is_connected,
    total_distance,
)

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


@st.composite
def graphs(draw, min_n=2, max_n=7, connected=False):
    """Random small graphs (optionally forced connected by adding a spanning tree)."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [pair for pair, keep in zip(pairs, mask) if keep]
    graph = Graph(n, edges)
    if connected and not is_connected(graph):
        seed = draw(st.integers(min_value=0, max_value=2 ** 16))
        rng = random.Random(seed)
        order = list(range(n))
        rng.shuffle(order)
        graph = graph.add_edges((order[i], order[i + 1]) for i in range(n - 1))
    return graph


@st.composite
def trees(draw, min_n=2, max_n=8):
    """Random labelled trees via random attachment."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    edges = []
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.append((parent, v))
    return Graph(n, edges)


alphas = st.floats(min_value=0.1, max_value=50.0, allow_nan=False, allow_infinity=False)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# --------------------------------------------------------------------------- #
# Graph substrate invariants
# --------------------------------------------------------------------------- #


@_SETTINGS
@given(graphs())
def test_distances_form_a_metric(graph):
    matrix = all_pairs_distances(graph)
    n = graph.n
    for i in range(n):
        assert matrix[i][i] == 0
        for j in range(n):
            assert matrix[i][j] == matrix[j][i]
            for k in range(n):
                assert matrix[i][k] <= matrix[i][j] + matrix[j][k]


@_SETTINGS
@given(graphs(), st.randoms(use_true_random=False))
def test_canonical_form_invariant_under_relabelling(graph, rng):
    permutation = list(range(graph.n))
    rng.shuffle(permutation)
    assert canonical_form(graph) == canonical_form(graph.relabel(permutation))


@_SETTINGS
@given(graphs(connected=True))
def test_adding_an_edge_never_increases_total_distance(graph):
    for (u, v) in graph.non_edges():
        assert total_distance(graph.add_edge(u, v)) <= total_distance(graph)


# --------------------------------------------------------------------------- #
# Cost-function invariants
# --------------------------------------------------------------------------- #


@_SETTINGS
@given(graphs(connected=True), alphas)
def test_social_cost_equals_sum_of_player_costs(graph, alpha):
    profile = profile_from_graph_bcg(graph)
    from pytest import approx

    from repro.core import all_player_costs_bcg

    assert sum(all_player_costs_bcg(profile, alpha)) == approx(
        social_cost_bcg(graph, alpha)
    )


@_SETTINGS
@given(graphs(max_n=6))
def test_lemma1_cost_convexity_holds_on_random_graphs(graph):
    assert is_cost_convex(graph)


# --------------------------------------------------------------------------- #
# Equilibrium invariants
# --------------------------------------------------------------------------- #


@_SETTINGS
@given(graphs(connected=True, max_n=6), alphas)
def test_proposition1_pairwise_stable_iff_pairwise_nash(graph, alpha):
    assert is_pairwise_stable(graph, alpha) == is_pairwise_nash(graph, alpha)


@_SETTINGS
@given(graphs(connected=True, max_n=7))
def test_lemma2_window_is_a_stability_window(graph):
    profile = pairwise_stability_profile(graph)
    lo, hi = profile.stability_interval()
    if lo < hi:
        midpoint = (lo + hi) / 2.0 if hi != float("inf") else lo + 1.0
        assert is_pairwise_stable(graph, midpoint)
    if hi != float("inf"):
        assert not is_pairwise_stable(graph, hi * 2.0 + 1.0)


@_SETTINGS
@given(graphs(connected=True, max_n=6), alphas)
def test_stability_profile_agrees_with_direct_definition(graph, alpha):
    profile = pairwise_stability_profile(graph)
    assert profile.is_stable_at(alpha) == is_pairwise_stable(graph, alpha)


@_SETTINGS
@given(trees(max_n=6), alphas)
def test_ucg_alpha_set_agrees_with_profile_check_on_trees(tree, alpha):
    """Cross-validate the orientation search against explicit profile checks.

    For trees a Nash-supporting orientation, when it exists, can be validated
    directly; and when the α-set search says "not Nash" no orientation should
    pass the profile check either (trees are small enough to enumerate all
    2^(n-1) orientations).
    """
    from hypothesis import assume

    alpha_set = ucg_nash_alpha_set(tree)
    # Avoid link costs within float-tolerance distance of an interval
    # boundary, where the two implementations' tie-breaking tolerances could
    # legitimately disagree.
    for interval in alpha_set.intervals:
        assume(abs(alpha - interval.lo) > 1e-6)
        if interval.hi != float("inf"):
            assume(abs(alpha - interval.hi) > 1e-6)
    expected = alpha_set.contains(alpha)
    edges = tree.sorted_edges()
    found = False
    for mask in range(2 ** len(edges)):
        ownership = {
            edge: (edge[0] if mask >> index & 1 else edge[1])
            for index, edge in enumerate(edges)
        }
        profile = profile_from_ownership_ucg(tree, ownership)
        if is_nash_profile_ucg(profile, alpha):
            found = True
            break
    assert found == expected


@_SETTINGS
@given(trees(max_n=8), alphas)
def test_proposition5_ucg_nash_trees_are_pairwise_stable(tree, alpha):
    if ucg_nash_alpha_set(tree).contains(alpha):
        assert is_pairwise_stable(tree, alpha)
