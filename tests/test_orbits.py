"""Unit tests for automorphism groups, orbits and orbit-pruned probing."""

import random

import pytest

from repro.engine import DistanceOracle, batch_stability_deltas
from repro.graphs import (
    Graph,
    automorphism_count_brute_force,
    automorphism_generators,
    automorphism_group_order,
    canonical_graph,
    canonical_record,
    complete_graph,
    cycle_graph,
    edge_orbits,
    enumerate_connected_graphs,
    enumerate_graphs,
    nonedge_orbits,
    ordered_pair_orbits,
    path_graph,
    petersen_graph,
    random_graph,
    star_graph,
    vertex_orbits,
)


class TestGroupOrder:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_matches_brute_force_on_all_graphs(self, n):
        for graph in enumerate_graphs(n):
            assert automorphism_group_order(graph) == automorphism_count_brute_force(
                graph
            ), sorted(graph.edges)

    def test_known_groups(self):
        assert automorphism_group_order(complete_graph(5)) == 120
        assert automorphism_group_order(cycle_graph(6)) == 12
        assert automorphism_group_order(path_graph(5)) == 2
        assert automorphism_group_order(star_graph(6)) == 120
        assert automorphism_group_order(petersen_graph()) == 120

    def test_huge_groups_never_materialised(self):
        # Orbit-stabilizer recursion: these orders (12! ≈ 4.8e8) would be
        # impossible to enumerate element by element.
        import math

        assert automorphism_group_order(star_graph(12)) == math.factorial(11)
        assert automorphism_group_order(complete_graph(12)) == math.factorial(12)

    def test_generators_are_automorphisms(self):
        for graph in (cycle_graph(7), petersen_graph(), star_graph(5)):
            edges = graph.edges
            for g in automorphism_generators(graph):
                mapped = {
                    (min(g[u], g[v]), max(g[u], g[v])) for u, v in edges
                }
                assert mapped == edges


class TestOrbits:
    def test_orbits_partition_their_domains(self):
        rng = random.Random(5)
        for _ in range(15):
            graph = random_graph(7, rng.uniform(0.2, 0.8), rng)
            assert sorted(v for orbit in vertex_orbits(graph) for v in orbit) == list(
                range(7)
            )
            assert sorted(e for orbit in edge_orbits(graph) for e in orbit) == sorted(
                graph.edges
            )
            assert sorted(
                e for orbit in nonedge_orbits(graph) for e in orbit
            ) == graph.non_edges()

    def test_vertex_transitive_graphs_have_one_orbit(self):
        for graph in (cycle_graph(5), complete_graph(6), petersen_graph()):
            assert len(vertex_orbits(graph)) == 1
        assert len(edge_orbits(cycle_graph(6))) == 1
        assert len(edge_orbits(petersen_graph())) == 1

    def test_star_orbits(self):
        star = star_graph(6)  # centre 0, five leaves
        orbits = vertex_orbits(star)
        assert [len(orbit) for orbit in orbits] == [1, 5]
        assert len(edge_orbits(star)) == 1
        assert len(nonedge_orbits(star)) == 1

    def test_orbit_size_multiset_is_isomorphism_invariant(self):
        rng = random.Random(9)
        for seed in range(10):
            graph = random_graph(7, 0.5, random.Random(seed))
            perm = list(range(7))
            rng.shuffle(perm)
            relabelled = graph.relabel(perm)
            assert sorted(len(o) for o in vertex_orbits(graph)) == sorted(
                len(o) for o in vertex_orbits(relabelled)
            )

    def test_ordered_pair_orbits_cover_all_pairs_and_respect_adjacency(self):
        graph = cycle_graph(6)
        orbits = ordered_pair_orbits(graph)
        pairs = sorted(p for orbit in orbits for p in orbit)
        assert pairs == [(u, v) for u in range(6) for v in range(6) if u != v]
        for orbit in orbits:
            adjacency = {graph.has_edge(u, v) for u, v in orbit}
            assert len(adjacency) == 1

    def test_orbit_stabilizer_consistency(self):
        # |orbit of v| * |stabiliser| = |group|; check via counting: the sum
        # over orbits of their size equals n, and each orbit size divides the
        # group order.
        for graph in (cycle_graph(6), star_graph(5), path_graph(6)):
            order = automorphism_group_order(graph)
            for orbit in vertex_orbits(graph):
                assert order % len(orbit) == 0


class TestCanonicalRecord:
    def test_memoised_per_instance(self):
        graph = cycle_graph(8)
        first = canonical_record(graph)
        assert canonical_record(graph) is first

    def test_canonical_graph_inherits_conjugated_record(self):
        graph = cycle_graph(7).relabel([3, 1, 4, 0, 2, 6, 5])
        canon = canonical_graph(graph)
        record = canon._canon
        assert record is not None
        assert record.ordering == tuple(range(7))
        assert automorphism_group_order(canon) == 14

    def test_pickling_strips_the_record(self):
        import pickle

        graph = cycle_graph(5)
        canonical_record(graph)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        assert clone._canon is None


class TestOrbitPrunedProbes:
    @pytest.mark.parametrize("n", range(2, 8))
    def test_equal_to_full_probing_on_all_connected_graphs(self, n):
        graphs = enumerate_connected_graphs(n)
        full = batch_stability_deltas(graphs, use_orbits=False)
        pruned = batch_stability_deltas(graphs, use_orbits=True)
        assert full == pruned

    def test_auto_mode_prunes_only_cached_records(self):
        # A fresh graph without a memoised record must not trigger a
        # canonical search in auto mode ...
        fresh = cycle_graph(6)
        assert fresh._canon is None
        batch_stability_deltas([fresh])
        assert fresh._canon is None
        # ... but the values agree with forced pruning regardless.
        assert batch_stability_deltas([cycle_graph(6)]) == batch_stability_deltas(
            [cycle_graph(6)], use_orbits=True
        )

    def test_fallback_path_without_numpy(self, monkeypatch):
        import repro.engine.batch as batch_module

        graphs = enumerate_connected_graphs(5)
        expected = batch_stability_deltas(graphs, use_orbits=False)
        monkeypatch.setattr(batch_module, "_np", None)
        oracle = DistanceOracle()
        assert (
            batch_module.batch_stability_deltas(graphs, oracle=oracle, use_orbits=True)
            == expected
        )
        assert (
            batch_module.batch_stability_deltas(graphs, oracle=oracle, use_orbits=False)
            == expected
        )

    def test_disconnected_graphs(self):
        two_triangles = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert batch_stability_deltas([two_triangles], use_orbits=True) == (
            batch_stability_deltas([two_triangles], use_orbits=False)
        )
