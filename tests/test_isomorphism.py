"""Unit tests for canonical labelling and isomorphism."""

import random

import pytest

from repro.graphs import (
    Graph,
    are_isomorphic,
    automorphism_count_brute_force,
    canonical_form,
    canonical_graph,
    canonical_labeling,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    random_graph,
    star_graph,
)


def _random_permutation(n: int, seed: int):
    perm = list(range(n))
    random.Random(seed).shuffle(perm)
    return perm


class TestCanonicalForm:
    def test_empty_graph(self):
        assert canonical_form(Graph(0)) == (0, 0)
        assert canonical_labeling(Graph(0)) == []

    def test_invariant_under_relabelling(self):
        for seed in range(10):
            g = random_graph(7, 0.4, random.Random(seed))
            relabelled = g.relabel(_random_permutation(7, seed + 100))
            assert canonical_form(g) == canonical_form(relabelled)

    def test_distinguishes_non_isomorphic_graphs(self):
        a = path_graph(5)
        b = star_graph(5)
        assert a.degree_sequence() != b.degree_sequence() or canonical_form(a) != canonical_form(b)
        # Same degree sequence, different graphs: C6 vs two triangles.
        c6 = cycle_graph(6)
        two_triangles = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert c6.degree_sequence() == two_triangles.degree_sequence()
        assert canonical_form(c6) != canonical_form(two_triangles)

    def test_canonical_graph_is_isomorphic_to_original(self):
        g = petersen_graph()
        canon = canonical_graph(g)
        assert canon.n == g.n
        assert canon.num_edges == g.num_edges
        assert are_isomorphic(g, canon)
        # Canonicalising twice is idempotent.
        assert canonical_graph(canon) == canon

    def test_canonical_labeling_is_a_permutation(self):
        g = random_graph(8, 0.5, random.Random(3))
        ordering = canonical_labeling(g)
        assert sorted(ordering) == list(range(8))


class TestIsomorphism:
    def test_relabelled_graphs_are_isomorphic(self):
        g = petersen_graph()
        relabelled = g.relabel(_random_permutation(10, 42))
        assert are_isomorphic(g, relabelled)

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(path_graph(4), path_graph(5))

    def test_different_edge_counts_not_isomorphic(self):
        assert not are_isomorphic(cycle_graph(5), path_graph(5))

    def test_same_invariants_different_structure(self):
        c6 = cycle_graph(6)
        two_triangles = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert not are_isomorphic(c6, two_triangles)

    def test_agreement_with_networkx_on_random_pairs(self):
        networkx = pytest.importorskip("networkx")
        rng = random.Random(11)
        for _ in range(25):
            n = rng.randint(4, 7)
            a = random_graph(n, rng.random(), random.Random(rng.randint(0, 10 ** 6)))
            b = random_graph(n, rng.random(), random.Random(rng.randint(0, 10 ** 6)))
            ga = networkx.Graph()
            ga.add_nodes_from(range(n))
            ga.add_edges_from(a.edges)
            gb = networkx.Graph()
            gb.add_nodes_from(range(n))
            gb.add_edges_from(b.edges)
            assert are_isomorphic(a, b) == networkx.is_isomorphic(ga, gb)


class TestAutomorphisms:
    def test_known_automorphism_counts(self):
        assert automorphism_count_brute_force(complete_graph(4)) == 24
        assert automorphism_count_brute_force(cycle_graph(5)) == 10
        assert automorphism_count_brute_force(path_graph(4)) == 2
        assert automorphism_count_brute_force(star_graph(5)) == 24
