"""Parity and persistence tests for the weighted scenario store.

The contract under test: every answer of
:class:`repro.analysis.weighted_store.WeightedStore` — stability masks,
``(t_min, t_max)`` windows, sweep aggregates, reconstructed graphs — equals
the in-memory :func:`repro.analysis.weighted.weighted_census` sweep
**exactly** (float equality, not approximate), including after a save →
load round trip in a separate process, for both on-disk formats.
"""

import json
import os
import subprocess
import sys

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.scenarios import build_scenario, default_t_grid
from repro.analysis.weighted import weighted_census, weighted_sweep
from repro.analysis.weighted_store import (
    FORMAT_VERSION,
    WeightedStore,
)
from repro.costmodels import PerPlayerCost, UniformCost
from repro.graphs import enumerate_connected_graphs

#: Every column of the artifact.
COLUMNS = (
    "num_edges",
    "dist_total",
    "edge_cost_total",
    "cert_words",
    "rem_w",
    "rem_delta",
    "rem_indptr",
    "add_w_u",
    "add_s_u",
    "add_w_v",
    "add_s_v",
    "add_indptr",
    "weight_matrix",
)


def assert_stores_equal(first: WeightedStore, second: WeightedStore) -> None:
    assert first.n == second.n
    for name in COLUMNS:
        assert np.array_equal(getattr(first, name), getattr(second, name)), name
    assert first.scenario_params == second.scenario_params


def same(a: float, b: float) -> bool:
    return (a != a and b != b) or a == b


def t_grid(n: int, store: WeightedStore):
    """A log grid plus exact per-class window endpoints (tolerance folding)."""
    grid = default_t_grid(n, 9)
    t_min, t_max = store.stability_windows()
    for column in (t_min, t_max):
        for endpoint in column.tolist()[:: max(1, len(column.tolist()) // 6)]:
            if endpoint > 0 and endpoint != float("inf"):
                grid.append(endpoint)
                grid.append(endpoint + 1e-13)
    return grid


@pytest.fixture(scope="module")
def scenario6():
    return build_scenario("random_weights", 6, seed=11)


@pytest.fixture(scope="module")
def store6(scenario6):
    return WeightedStore.from_scenario(scenario6)


class TestSweepParity:
    """The artifact answers exactly what the in-memory sweep answers."""

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_masks_and_windows_equal_sweep_all_classes(self, n):
        scenario = build_scenario("random_weights", n, seed=3)
        store = WeightedStore.from_scenario(scenario)
        ts = t_grid(n, store)
        sweep = weighted_census(n, scenario.model, ts)
        assert len(store) == len(sweep.graphs)
        mask = store.stable_mask(ts)
        assert np.array_equal(mask, np.asarray(sweep.bcg_mask))
        t_min, t_max = store.stability_windows()
        assert t_min.tolist() == sweep.t_min
        assert t_max.tolist() == sweep.t_max

    def test_aggregates_equal_sweep(self, scenario6, store6):
        ts = t_grid(6, store6)
        sweep = weighted_census(6, scenario6.model, ts)
        aggregates = store6.aggregates(ts)
        assert aggregates["bcg_counts"] == sweep.bcg_counts
        for key, expected in (
            ("average_links", sweep.average_links),
            ("average_social_cost", sweep.average_social_cost),
        ):
            assert all(same(a, b) for a, b in zip(aggregates[key], expected)), key

    def test_stable_counts_match_mask(self, store6):
        ts = [0.5, 2.0, 9.0]
        assert store6.stable_counts(ts) == [
            int(c) for c in store6.stable_mask(ts).sum(axis=0)
        ]

    def test_per_player_model_and_uniform_closed_form(self):
        """Non-symmetric weights and the uniform exact closed forms survive."""
        for model in (
            PerPlayerCost([0.5, 0.5, 2.0, 2.0, 3.0]),
            UniformCost(1.0),
        ):
            store = WeightedStore.build(5, model)
            ts = [0.3, 1.0, 4.0, 12.0]
            sweep = weighted_census(5, model, ts)
            assert np.array_equal(
                store.stable_mask(ts), np.asarray(sweep.bcg_mask)
            )
            assert store.edge_cost_total.tolist() == sweep.edge_cost_totals

    def test_graph_reconstruction(self, store6):
        graphs = enumerate_connected_graphs(6)
        for index in range(0, len(store6), 17):
            assert store6.graph_at(index) == graphs[index]

    def test_stable_graphs_at(self, scenario6, store6):
        t = 2.5
        sweep = weighted_sweep(
            enumerate_connected_graphs(6), scenario6.model, [t]
        )
        assert store6.stable_graphs_at(t) == sweep.stable_graphs_at(0)


class TestBuildPaths:
    def test_build_identical_for_any_jobs(self, store6, scenario6):
        assert_stores_equal(
            store6, WeightedStore.from_scenario(scenario6, jobs=2)
        )

    def test_streamed_equals_build(self, store6, scenario6):
        assert_stores_equal(
            store6, WeightedStore.from_scenario(scenario6, streamed=True)
        )

    def test_streamed_shard_dir_resume(self, tmp_path, scenario6, store6):
        shard_dir = str(tmp_path / "shards")
        first = WeightedStore.build_streamed(
            6,
            scenario6.model,
            shard_dir=shard_dir,
            scenario_params=dict(scenario6.params),
        )
        assert_stores_equal(first, store6)
        # A resume run must reuse the shards (delete one to prove the others
        # are loaded: only the victim is recomputed, and the merge is equal).
        victim = sorted(
            name for name in os.listdir(shard_dir) if name.startswith("wshard_")
        )[0]
        os.remove(os.path.join(shard_dir, victim))
        resumed = WeightedStore.build_streamed(
            6,
            scenario6.model,
            shard_dir=shard_dir,
            scenario_params=dict(scenario6.params),
        )
        assert_stores_equal(first, resumed)

    def test_shard_dir_rejects_foreign_model(self, tmp_path):
        """A shard directory is bound to one (n, weight matrix) pair."""
        shard_dir = str(tmp_path / "shards")
        model_a = build_scenario("random_weights", 5, seed=1).model
        model_b = build_scenario("random_weights", 5, seed=2).model
        WeightedStore.build_streamed(5, model_a, shard_level=2, shard_dir=shard_dir)
        with pytest.raises(ValueError):
            WeightedStore.build_streamed(
                5, model_b, shard_level=2, shard_dir=shard_dir
            )

    def test_build_rejects_negative_n(self):
        with pytest.raises(ValueError):
            WeightedStore.build_streamed(-1, UniformCost(1.0))


class TestPersistence:
    @pytest.mark.parametrize("format", ["npz", "dir"])
    def test_save_load_roundtrip(self, tmp_path, store6, format):
        path = store6.save(str(tmp_path / "w6"), format=format)
        assert_stores_equal(store6, WeightedStore.load(path))

    def test_verify_and_checksum_stamp(self, tmp_path, store6):
        audit = store6.verify()
        assert audit["ok"] and audit["errors"] == []
        assert audit["checksum"] == "absent"  # in-memory build, no stamp
        loaded = WeightedStore.load(store6.save(str(tmp_path / "w6.npz")))
        assert loaded.verify()["checksum"] == "ok"
        loaded.dist_total = loaded.dist_total.copy()
        loaded.dist_total[0] += 1.0
        audit = loaded.verify()
        assert not audit["ok"] and audit["checksum"] == "mismatch"

    def test_mmap_load(self, tmp_path, store6):
        path = store6.save(str(tmp_path / "w6dir"), format="dir")
        mapped = WeightedStore.load(path, mmap=True)
        ts = t_grid(6, store6)
        assert np.array_equal(mapped.stable_mask(ts), store6.stable_mask(ts))
        with pytest.raises(ValueError):
            WeightedStore.load(store6.save(str(tmp_path / "w6.npz")), mmap=True)

    def test_scenario_recipe_roundtrip(self, tmp_path, store6, scenario6):
        """The artifact's recipe rebuilds the identical model."""
        from repro.analysis.scenarios import scenario_from_params

        loaded = WeightedStore.load(store6.save(str(tmp_path / "w6.npz")))
        rebuilt = scenario_from_params(loaded.scenario_params)
        assert rebuilt.model.matrix(6) == scenario6.model.matrix(6)
        assert loaded.matrix() == scenario6.model.matrix(6)

    def test_rejects_foreign_and_versioned_files(self, tmp_path, store6):
        foreign = str(tmp_path / "foreign.npz")
        np.savez(foreign, whatever=np.zeros(3))
        with pytest.raises(ValueError):
            WeightedStore.load(foreign)
        # A census-store artifact is not a weighted artifact.
        from repro.analysis.store import CensusStore

        census_path = CensusStore.build(4, include_ucg=False).save(
            str(tmp_path / "census4.npz")
        )
        with pytest.raises(ValueError):
            WeightedStore.load(census_path)
        # v2 added the optional UCG CSR columns; pre-UCG v1 artifacts are
        # refused rather than silently loaded without them.
        assert FORMAT_VERSION == 2

    def test_separate_process_roundtrip(self, tmp_path, store6):
        """Mirror smoke_store_roundtrip: load in a fresh interpreter."""
        path = store6.save(str(tmp_path / "w6.npz"))
        ts = default_t_grid(6, 7)
        child_script = (
            "import json, sys\n"
            "from repro.analysis.weighted_store import WeightedStore\n"
            "store = WeightedStore.load(sys.argv[1])\n"
            "ts = json.loads(sys.argv[2])\n"
            "t_min, t_max = store.stability_windows()\n"
            "json.dump({'mask': store.stable_mask(ts).tolist(),"
            " 't_min': [repr(x) for x in t_min.tolist()],"
            " 't_max': [repr(x) for x in t_max.tolist()]}, sys.stdout)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        child = subprocess.run(
            [sys.executable, "-c", child_script, path, json.dumps(ts)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        loaded = json.loads(child.stdout)
        assert loaded["mask"] == store6.stable_mask(ts).tolist()
        t_min, t_max = store6.stability_windows()
        assert [float(x) for x in loaded["t_min"]] == t_min.tolist()
        assert [float(x) for x in loaded["t_max"]] == t_max.tolist()

    def test_summary_and_nbytes(self, store6, scenario6):
        summary = store6.summary()
        assert summary["n"] == 6
        assert summary["classes"] == len(store6)
        assert summary["scenario"] == "random_weights"
        assert summary["seed"] == 11
        assert summary["scenario_params"] == scenario6.params
        assert summary["nbytes"] == store6.nbytes > 0
        assert set(summary["column_bytes"]) == set(COLUMNS)
