"""Unit tests for player and social costs (eqs. (1), (4), (5) of the paper)."""

import pytest

from repro.core import (
    all_player_costs_bcg,
    all_player_costs_ucg,
    distance_cost,
    player_cost_bcg,
    player_cost_graph,
    player_cost_ucg,
    profile_from_graph_bcg,
    social_cost_bcg,
    social_cost_lower_bound_bcg,
    social_cost_profile_bcg,
    social_cost_profile_ucg,
    social_cost_ucg,
)
from repro.core import StrategyProfile
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, star_graph


class TestPlayerCosts:
    def test_distance_cost_matches_bfs(self):
        star = star_graph(5)
        assert distance_cost(star, 0) == 4
        assert distance_cost(star, 1) == 1 + 3 * 2

    def test_player_cost_graph_default_links_is_degree(self):
        star = star_graph(5)
        assert player_cost_graph(star, 0, alpha=2.0) == 2.0 * 4 + 4
        assert player_cost_graph(star, 1, alpha=2.0) == 2.0 * 1 + 7

    def test_player_cost_graph_explicit_links(self):
        star = star_graph(5)
        assert player_cost_graph(star, 1, alpha=2.0, links_paid=0) == 7

    def test_bcg_profile_cost_charges_unreciprocated_requests(self):
        # Player 0 requests 1 and 2; only 1 reciprocates.
        profile = StrategyProfile(3, [[1, 2], [0], []])
        # Graph has edge (0,1) only; player 2 unreachable from 0.
        assert player_cost_bcg(profile, 0, alpha=1.0) == float("inf")
        connected = StrategyProfile(3, [[1, 2], [0], [0]])
        assert player_cost_bcg(connected, 0, alpha=1.0) == 2.0 + 2
        # The wasted request of player 1 towards 2 costs α without an edge.
        wasteful = StrategyProfile(3, [[1, 2], [0, 2], [0]])
        assert player_cost_bcg(wasteful, 1, alpha=1.0) == 2.0 + (1 + 2)

    def test_ucg_profile_cost(self):
        profile = StrategyProfile(3, [[1], [2], []])
        assert player_cost_ucg(profile, 0, alpha=3.0) == 3.0 + (1 + 2)
        assert player_cost_ucg(profile, 2, alpha=3.0) == 0.0 + (1 + 2)

    def test_cost_vectors_match_scalar_costs(self):
        profile = profile_from_graph_bcg(cycle_graph(5))
        bcg_vector = all_player_costs_bcg(profile, 2.0)
        assert bcg_vector == [player_cost_bcg(profile, i, 2.0) for i in range(5)]
        ucg_vector = all_player_costs_ucg(profile, 2.0)
        assert ucg_vector == [player_cost_ucg(profile, i, 2.0) for i in range(5)]


class TestSocialCosts:
    def test_bcg_social_cost_formula(self):
        star = star_graph(5)
        # 2α|A| + Σ d = 2α·4 + (2·4 + 2·4·3)
        assert social_cost_bcg(star, 3.0) == 2 * 3.0 * 4 + (8 + 24)

    def test_ucg_social_cost_formula(self):
        star = star_graph(5)
        assert social_cost_ucg(star, 3.0) == 3.0 * 4 + 32

    def test_social_cost_of_disconnected_graph_is_infinite(self):
        g = Graph(3, [(0, 1)])
        assert social_cost_bcg(g, 1.0) == float("inf")

    def test_profile_social_cost_equals_graph_cost_in_equilibrium_form(self):
        graph = cycle_graph(6)
        profile = profile_from_graph_bcg(graph)
        assert social_cost_profile_bcg(profile, 2.0) == social_cost_bcg(graph, 2.0)

    def test_profile_social_cost_charges_wasted_requests(self):
        # Player 1's request towards 2 is never reciprocated, so the profile
        # pays one extra α on top of the graph-level social cost.
        profile = StrategyProfile(3, [[1, 2], [0, 2], [0]])
        graph = profile.bilateral_graph()
        assert graph.edges == {(0, 1), (0, 2)}
        assert social_cost_profile_bcg(profile, 1.0) == social_cost_bcg(graph, 1.0) + 1.0

    def test_ucg_profile_social_cost_counts_double_purchases(self):
        both_buy = StrategyProfile(2, [[1], [0]])
        one_buys = StrategyProfile(2, [[1], []])
        assert (
            social_cost_profile_ucg(both_buy, 5.0)
            == social_cost_profile_ucg(one_buys, 5.0) + 5.0
        )

    def test_lower_bound_met_by_diameter_two_graphs(self):
        for graph in (complete_graph(5), star_graph(6)):
            bound = social_cost_lower_bound_bcg(graph.n, graph.num_edges, 2.0)
            assert social_cost_bcg(graph, 2.0) == pytest.approx(bound)

    def test_lower_bound_strict_for_larger_diameter(self):
        path = path_graph(5)
        bound = social_cost_lower_bound_bcg(path.n, path.num_edges, 2.0)
        assert social_cost_bcg(path, 2.0) > bound
