"""Tests for the vectorised, orbit-pruned UCG orientation engine.

Pins the acceptance contract of the batched UCG path: the engine's
α-interval sets are **float-exact** (endpoint-for-endpoint, with the same
edgeless/disconnected conventions) against the per-graph orientation
backtracking of :func:`repro.core.unilateral.ucg_nash_alpha_set` and
:func:`repro.costmodels.stability.weighted_ucg_nash_t_set`, orbit pruning
changes nothing, uniform weights reduce to the scalar path, and the
per-``Graph`` memo obeys the staleness contract (mutations build new
instances, so a memo can never go stale).
"""

import importlib.util
import math

import pytest

from repro.analysis.scenarios import available_scenarios, build_scenario
from repro.core.stability_intervals import AlphaIntervalSet
from repro.core.unilateral import ucg_nash_alpha_set
from repro.costmodels import UniformCost
from repro.costmodels.stability import weighted_ucg_nash_t_set
from repro.engine import ucg_alpha_sets, ucg_engine_available, weighted_ucg_t_sets
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    enumerate_connected_graphs,
    path_graph,
)

HAVE_NUMPY = importlib.util.find_spec("numpy") is not None

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the vectorised UCG engine requires NumPy"
)

INF = float("inf")


def endpoints(interval_set: AlphaIntervalSet):
    """Comparable endpoint tuples of an interval set."""
    return [(iv.lo, iv.hi) for iv in interval_set.intervals]


def fresh(graph: Graph) -> Graph:
    """A new instance of the same topology (no memo, no canonical record)."""
    return Graph(graph.n, graph.sorted_edges())


# --------------------------------------------------------------------------- #
# Float-exact parity against the backtracking reference
# --------------------------------------------------------------------------- #


def test_engine_availability_tracks_numpy():
    assert ucg_engine_available() == HAVE_NUMPY


class TestScalarParity:

    @pytest.mark.parametrize("n", range(1, 7))
    def test_all_connected_classes(self, n):
        graphs = enumerate_connected_graphs(n)
        engine_sets = ucg_alpha_sets([fresh(g) for g in graphs])
        for graph, engine_set in zip(graphs, engine_sets):
            assert endpoints(engine_set) == endpoints(
                ucg_nash_alpha_set(fresh(graph))
            ), f"UCG engine mismatch on n={n} {graph.sorted_edges()}"

    def test_trivial_graphs_full_interval(self):
        for graph in (empty_graph(0), empty_graph(1)):
            (interval_set,) = ucg_alpha_sets([graph])
            assert endpoints(interval_set) == [(0.0, INF)]

    def test_edgeless_graphs_inf_inf_convention(self):
        # The reference backtracking yields the degenerate [(inf, inf)]
        # interval for edgeless graphs (base distances are infinite, so
        # lo = hi = inf and the interval is formally nonempty); the engine
        # must reproduce the convention exactly, not "fix" it.
        for n in (2, 3, 5):
            graph = empty_graph(n)
            (interval_set,) = ucg_alpha_sets([fresh(graph)])
            assert endpoints(interval_set) == endpoints(ucg_nash_alpha_set(graph))
            assert endpoints(interval_set) == [(INF, INF)]

    def test_disconnected_with_edges_empty_set(self):
        # A disconnected graph that still has edges is never
        # Nash-supportable: some player faces an infinite base distance
        # while owning a finite-cost purchase, so every interval is empty.
        graph = Graph(5, [(0, 1), (1, 2)])  # vertices 3, 4 isolated
        (interval_set,) = ucg_alpha_sets([fresh(graph)])
        assert endpoints(interval_set) == endpoints(ucg_nash_alpha_set(graph))
        assert endpoints(interval_set) == []

    def test_mixed_sizes_one_call(self):
        graphs = [
            empty_graph(1),
            path_graph(4),
            cycle_graph(5),
            Graph(4, [(0, 1)]),  # disconnected, has an edge
            complete_graph(3),
        ]
        engine_sets = ucg_alpha_sets([fresh(g) for g in graphs])
        for graph, engine_set in zip(graphs, engine_sets):
            assert endpoints(engine_set) == endpoints(ucg_nash_alpha_set(fresh(graph)))


class TestWeightedParity:

    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_registry_scenarios(self, name, n):
        scenario = build_scenario(name, n, seed=7)
        graphs = enumerate_connected_graphs(n)
        engine_sets = weighted_ucg_t_sets([fresh(g) for g in graphs], scenario.model)
        for graph, engine_set in zip(graphs, engine_sets):
            assert endpoints(engine_set) == endpoints(
                weighted_ucg_nash_t_set(graph, scenario.model)
            ), f"weighted UCG mismatch ({name}, n={n}) {graph.sorted_edges()}"

    def test_uniform_cost_reduces_to_scalar(self):
        # With UniformCost the weighted t-sets must equal the scalar α-sets
        # float-exactly — same closed-form link-cost table, same intervals.
        graphs = enumerate_connected_graphs(5)
        weighted_sets = weighted_ucg_t_sets(
            [fresh(g) for g in graphs], UniformCost(1.0)
        )
        scalar_sets = ucg_alpha_sets([fresh(g) for g in graphs])
        for weighted_set, scalar_set in zip(weighted_sets, scalar_sets):
            assert endpoints(weighted_set) == endpoints(scalar_set)

    def test_weighted_disconnected_and_trivial(self):
        model = build_scenario("random_weights", 5, seed=1).model
        graphs = [empty_graph(1), empty_graph(5), Graph(5, [(0, 1), (2, 3)])]
        engine_sets = weighted_ucg_t_sets([fresh(g) for g in graphs], model)
        assert endpoints(engine_sets[0]) == [(0.0, INF)]
        for graph, engine_set in zip(graphs, engine_sets):
            assert endpoints(engine_set) == endpoints(
                weighted_ucg_nash_t_set(graph, model)
            )


# --------------------------------------------------------------------------- #
# Orbit pruning
# --------------------------------------------------------------------------- #


@needs_numpy
class TestOrbitPruning:

    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(5), cycle_graph(6), complete_graph(4), complete_graph(6)],
        ids=["C5", "C6", "K4", "K6"],
    )
    def test_vertex_transitive_expansion(self, graph):
        # On vertex-transitive graphs orbit pruning computes one player's
        # tables and expands the rest through automorphism images; forcing
        # the group (True), forbidding it (False) and the memo-only default
        # (None) must agree endpoint-for-endpoint.
        results = {
            mode: endpoints(ucg_alpha_sets([fresh(graph)], use_orbits=mode)[0])
            for mode in (True, False, None)
        }
        assert results[True] == results[False] == results[None]
        assert results[True] == endpoints(ucg_nash_alpha_set(fresh(graph)))

    def test_weighted_orbit_equivalence(self):
        model = build_scenario("line_metric", 6, seed=0).model
        graphs = [cycle_graph(6), complete_graph(5), path_graph(6)]
        forced = weighted_ucg_t_sets(
            [fresh(g) for g in graphs], model, use_orbits=True
        )
        plain = weighted_ucg_t_sets(
            [fresh(g) for g in graphs], model, use_orbits=False
        )
        for a, b in zip(forced, plain):
            assert endpoints(a) == endpoints(b)


# --------------------------------------------------------------------------- #
# Per-Graph memoisation and its staleness contract
# --------------------------------------------------------------------------- #


class TestMemoisation:

    def test_reference_memoises_per_instance(self):
        graph = path_graph(5)
        assert graph._ucg_set is None
        first = ucg_nash_alpha_set(graph)
        assert graph._ucg_set == tuple(endpoints(first))
        assert endpoints(ucg_nash_alpha_set(graph)) == endpoints(first)

    def test_engine_populates_reference_hits(self):
        graph = cycle_graph(5)
        (engine_set,) = ucg_alpha_sets([graph])
        assert graph._ucg_set == tuple(endpoints(engine_set))
        # The reference now answers from the shared memo without searching.
        assert endpoints(ucg_nash_alpha_set(graph)) == endpoints(engine_set)

    def test_engine_consults_existing_memo(self):
        graph = path_graph(4)
        graph._ucg_set = ((1.25, 2.5),)  # sentinel: obviously not the truth
        (interval_set,) = ucg_alpha_sets([graph])
        assert endpoints(interval_set) == [(1.25, 2.5)]

    def test_mutation_builds_fresh_unmemoised_instance(self):
        # Graphs are immutable: add_edge/remove_edge return *new* instances,
        # so a memoised set can never go stale — the mutated graph starts
        # with an empty memo and is re-analysed from scratch.
        graph = path_graph(4)
        before = endpoints(ucg_nash_alpha_set(graph))
        mutated = graph.add_edge(0, 3)  # closes the path into C4
        assert mutated is not graph
        assert mutated._ucg_set is None
        assert graph._ucg_set == tuple(before)  # original memo untouched
        after = endpoints(ucg_nash_alpha_set(mutated))
        assert after == endpoints(ucg_nash_alpha_set(fresh(mutated)))
        assert mutated._ucg_set == tuple(after)


# --------------------------------------------------------------------------- #
# Columnar UCG kernels and the batch façade
# --------------------------------------------------------------------------- #


@needs_numpy
class TestUcgColumns:

    def test_interval_columns_pack_endpoints(self):
        import numpy as np

        from repro.engine.columnar import ucg_interval_columns

        graphs = [path_graph(4), Graph(4, [(0, 1)]), cycle_graph(4)]
        sets = ucg_alpha_sets([fresh(g) for g in graphs])
        lo, hi, indptr = ucg_interval_columns(sets)
        assert indptr.tolist()[0] == 0
        for i, interval_set in enumerate(sets):
            segment = list(
                zip(lo[indptr[i] : indptr[i + 1]], hi[indptr[i] : indptr[i + 1]])
            )
            assert segment == endpoints(interval_set)
        # The disconnected class contributes an empty segment.
        assert indptr[1] == indptr[2]
        assert np.all(np.diff(indptr) >= 0)

    def test_weighted_windows_empty_convention(self):
        import numpy as np

        from repro.engine.columnar import ucg_interval_columns, weighted_ucg_windows

        sets = ucg_alpha_sets(
            [fresh(g) for g in (path_graph(4), Graph(4, [(0, 1)]))]
        )
        t_min, t_max = weighted_ucg_windows(*ucg_interval_columns(sets))
        lo0, hi0 = endpoints(sets[0])[0]
        assert t_min[0] == lo0 and t_max[0] == endpoints(sets[0])[-1][1]
        # Empty interval set → (inf, -inf) window: never Nash-supportable.
        assert t_min[1] == INF and t_max[1] == -INF
        assert np.isinf(t_max[1])

    def test_batch_ucg_columns_scalar_and_weighted(self):
        from repro.engine import batch_ucg_columns
        from repro.engine.columnar import ucg_nash_mask

        graphs = enumerate_connected_graphs(4)
        columns = batch_ucg_columns([fresh(g) for g in graphs])
        assert set(columns) == {"ucg_lo", "ucg_hi", "ucg_indptr"}
        alphas = [0.5, 1.0, 2.0, 5.0]
        mask = ucg_nash_mask(
            columns["ucg_lo"], columns["ucg_hi"], columns["ucg_indptr"], alphas
        )
        for i, graph in enumerate(graphs):
            reference = ucg_nash_alpha_set(fresh(graph))
            assert [bool(x) for x in mask[i]] == [
                reference.contains(a) for a in alphas
            ]

        model = build_scenario("hub_discounted", 4, seed=2).model
        weighted = batch_ucg_columns([fresh(g) for g in graphs], model=model)
        for i, graph in enumerate(graphs):
            start, stop = weighted["ucg_indptr"][i], weighted["ucg_indptr"][i + 1]
            segment = list(
                zip(weighted["ucg_lo"][start:stop], weighted["ucg_hi"][start:stop])
            )
            assert segment == endpoints(weighted_ucg_nash_t_set(graph, model))


# --------------------------------------------------------------------------- #
# Store round trips carrying UCG columns
# --------------------------------------------------------------------------- #


@needs_numpy
class TestStoreRoundTrips:

    def test_census_store_ucg_round_trip(self, tmp_path):
        from repro.analysis.store import CensusStore

        store = CensusStore.build(5, include_ucg=True)
        assert store.include_ucg
        report = store.verify()
        assert report["ok"] and not report["errors"]
        path = store.save(str(tmp_path / "census5.npz"))
        loaded = CensusStore.load(path)
        assert loaded.include_ucg
        assert loaded.ucg_lo.tolist() == store.ucg_lo.tolist()
        assert loaded.ucg_hi.tolist() == store.ucg_hi.tolist()
        assert loaded.ucg_indptr.tolist() == store.ucg_indptr.tolist()
        alphas = [0.5, 1.0, 2.0, 4.0]
        assert (
            loaded.stable_mask(alphas, game="ucg").tolist()
            == store.stable_mask(alphas, game="ucg").tolist()
        )

    def test_weighted_store_ucg_round_trip(self, tmp_path):
        from repro.analysis.weighted_store import WeightedStore

        scenario = build_scenario("random_weights", 5, seed=3)
        store = WeightedStore.from_scenario(scenario, include_ucg=True)
        assert store.include_ucg
        report = store.verify()
        assert report["ok"] and not report["errors"]
        path = store.save(str(tmp_path / "weighted5.npz"))
        loaded = WeightedStore.load(path)
        assert loaded.include_ucg
        assert loaded.ucg_lo.tolist() == store.ucg_lo.tolist()
        assert loaded.ucg_hi.tolist() == store.ucg_hi.tolist()
        assert loaded.ucg_indptr.tolist() == store.ucg_indptr.tolist()
        # Stored endpoints are the reference backtracking's, float-exactly.
        graphs = store.graphs()
        for i, graph in enumerate(graphs):
            start, stop = store.ucg_indptr[i], store.ucg_indptr[i + 1]
            segment = list(zip(store.ucg_lo[start:stop], store.ucg_hi[start:stop]))
            assert segment == endpoints(
                weighted_ucg_nash_t_set(fresh(graph), scenario.model)
            )
        ts = [0.25, 1.0, 4.0]
        assert loaded.ucg_nash_counts(ts) == store.ucg_nash_counts(ts)
        t_min, t_max = loaded.ucg_windows()
        for value in t_min.tolist() + t_max.tolist():
            assert value == value or math.isnan(value)  # finite or inf, not NaN

    def test_bcg_only_weighted_store_refuses_ucg_queries(self):
        from repro.analysis.weighted_store import WeightedStore

        scenario = build_scenario("random_weights", 4, seed=0)
        store = WeightedStore.from_scenario(scenario)  # BCG only
        assert not store.include_ucg
        with pytest.raises(ValueError, match="no UCG columns"):
            store.ucg_nash_counts([1.0])
        with pytest.raises(ValueError, match="no UCG columns"):
            store.ucg_windows()
