"""Tests for the weighted vectorised engine path and the weighted sweep.

Pins the acceptance contract of the heterogeneous-cost subsystem: with
``UniformCost`` the weighted columns, masks and windows are **float-exactly**
the scalar-α record/store path for every connected class up to ``n = 7``;
with heterogeneous models the vectorised path is decision-identical to the
per-graph ``WeightedStabilityProfile`` reference loop.
"""

import importlib.util
import random

import pytest

from repro.analysis.scenarios import build_scenario
from repro.analysis.weighted import (
    weighted_census,
    weighted_python_sweep_bcg,
    weighted_sweep,
    weighted_t_windows,
)
from repro.costmodels import UniformCost, weighted_stability_profile
from repro.graphs import Graph, enumerate_connected_graphs, random_connected_graph

HAVE_NUMPY = importlib.util.find_spec("numpy") is not None

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the vectorised weighted kernels require NumPy"
)

TS = [0.2, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 20.0, 50.0]


@needs_numpy
class TestWeightedColumns:

    def test_column_layout_and_values(self):
        import numpy as np

        from repro.engine.batch import batch_weighted_columns

        rng = random.Random(3)
        graphs = [random_connected_graph(6, 0.5, rng) for _ in range(5)]
        scenario = build_scenario("random_weights", 6, seed=1)
        columns = batch_weighted_columns(graphs, scenario.model.matrix(6))
        rem_counts = np.diff(columns["rem_indptr"]).tolist()
        add_counts = np.diff(columns["add_indptr"]).tolist()
        for i, graph in enumerate(graphs):
            assert rem_counts[i] == 2 * graph.num_edges
            assert add_counts[i] == len(graph.non_edges())
            assert columns["num_edges"][i] == graph.num_edges
            # Values agree probe-for-probe with the per-graph profile.
            profile = weighted_stability_profile(graph, scenario.model)
            start = columns["rem_indptr"][i]
            for k, (u, v) in enumerate(graph.sorted_edges()):
                for off, endpoint in ((0, u), (1, v)):
                    w, delta = profile.removal[((u, v), endpoint)]
                    assert columns["rem_w"][start + 2 * k + off] == w
                    assert columns["rem_delta"][start + 2 * k + off] == delta
            start = columns["add_indptr"][i]
            for k, (u, v) in enumerate(graph.non_edges()):
                w_u, s_u = profile.addition[((u, v), u)]
                w_v, s_v = profile.addition[((u, v), v)]
                assert columns["add_w_u"][start + k] == w_u
                assert columns["add_s_u"][start + k] == s_u
                assert columns["add_w_v"][start + k] == w_v
                assert columns["add_s_v"][start + k] == s_v


@needs_numpy
class TestUniformMaskEquivalence:
    """Acceptance: uniform weights ⇒ float-exact scalar census masks, n ≤ 7."""

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_bcg_masks_equal_store_masks(self, n):
        import numpy as np

        from repro.analysis.store import CensusStore

        store = CensusStore.build(n, include_ucg=False)
        result = weighted_census(n, UniformCost(1.0), TS)
        assert np.array_equal(np.asarray(result.bcg_mask), store.stable_mask(TS, "bcg"))
        t_min, t_max = store.stability_windows()
        assert result.t_min == t_min.tolist()
        assert result.t_max == t_max.tolist()

    @pytest.mark.parametrize("n", [4, 5])
    def test_ucg_masks_equal_store_masks(self, n):
        import numpy as np

        from repro.analysis.store import CensusStore

        store = CensusStore.build(n, include_ucg=True)
        result = weighted_census(n, UniformCost(1.0), TS, include_ucg=True)
        assert np.array_equal(np.asarray(result.ucg_mask), store.stable_mask(TS, "ucg"))

    def test_counts_equal_store_counts(self):
        from repro.analysis.store import CensusStore

        store = CensusStore.build(6, include_ucg=False)
        result = weighted_census(6, UniformCost(1.0), TS)
        assert result.bcg_counts == [
            int(c) for c in store.equilibrium_counts(TS, "bcg")
        ]


class TestHeterogeneousSweep:

    def test_vectorised_equals_python_loop(self):
        scenario = build_scenario("random_weights", 6, seed=9)
        graphs = enumerate_connected_graphs(6)
        result = weighted_sweep(graphs, scenario.model, TS)
        expected = weighted_python_sweep_bcg(graphs, scenario.model, TS)
        assert [
            [bool(x) for x in row] for row in result.bcg_mask
        ] == expected

    def test_windows_match_per_graph_profiles(self):
        scenario = build_scenario("two_tier_isp", 6)
        graphs = enumerate_connected_graphs(6)[:40]
        t_min, t_max = weighted_t_windows(graphs, scenario.model)
        for i, graph in enumerate(graphs):
            profile = weighted_stability_profile(graph, scenario.model)
            assert t_min[i] == profile.t_min
            assert t_max[i] == profile.t_max

    def test_sweep_aggregates_are_consistent(self):
        scenario = build_scenario("hub_discounted", 5)
        result = weighted_sweep(
            enumerate_connected_graphs(5), scenario.model, TS, include_ucg=True
        )
        assert len(result.bcg_counts) == len(TS) == len(result.average_links)
        for column, count in enumerate(result.bcg_counts):
            stable = result.stable_graphs_at(column)
            assert len(stable) == count
            if count:
                assert result.average_links[column] == sum(
                    g.num_edges for g in stable
                ) / count
            else:
                assert result.average_links[column] != result.average_links[column]
        assert result.ucg_counts is not None
        assert all(0 <= c <= len(result.graphs) for c in result.ucg_counts)

    def test_ucg_sweep_matches_per_graph_t_sets(self):
        from repro.costmodels import weighted_ucg_nash_t_set

        scenario = build_scenario("random_weights", 4, seed=5)
        graphs = enumerate_connected_graphs(4)
        result = weighted_sweep(graphs, scenario.model, TS, include_ucg=True)
        for i, graph in enumerate(graphs):
            t_set = weighted_ucg_nash_t_set(graph, scenario.model)
            for column, t in enumerate(TS):
                assert bool(result.ucg_mask[i][column]) == t_set.contains(t)

    def test_parallel_sweep_matches_serial(self):
        scenario = build_scenario("random_weights", 4, seed=2)
        graphs = enumerate_connected_graphs(4)
        serial = weighted_sweep(graphs, scenario.model, TS, include_ucg=True)
        fanned = weighted_sweep(
            graphs, scenario.model, TS, include_ucg=True, jobs=2
        )
        assert serial.bcg_counts == fanned.bcg_counts
        assert serial.ucg_counts == fanned.ucg_counts

    def test_mixed_vertex_counts_rejected(self):
        with pytest.raises(ValueError):
            weighted_sweep(
                [Graph(4, [(0, 1)]), Graph(5, [(0, 1)])], UniformCost(1.0), TS
            )


@needs_numpy
class TestKernelWeightGuards:
    """Regression: unvalidated coefficients used to NaN/inf silently."""

    ZERO = [[0.0, 0.0, 1.0], [0.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
    NEGATIVE = [[0.0, -1.0, 1.0], [-1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]

    def test_batch_weighted_columns_rejects_bad_matrices(self):
        from repro.engine.batch import batch_weighted_columns

        graphs = enumerate_connected_graphs(3)
        for matrix in (self.ZERO, self.NEGATIVE):
            with pytest.raises(ValueError, match="strictly positive"):
                batch_weighted_columns(graphs, matrix)
        with pytest.raises(ValueError, match="square"):
            batch_weighted_columns(graphs, [[0.0, 1.0], [1.0, 0.0], [1.0]])
        with pytest.raises(ValueError, match="diagonal"):
            batch_weighted_columns(
                graphs, [[1.0, 1.0, 1.0]] + self.ZERO[1:]
            )

    def test_validate_weight_matrix_passthrough(self):
        from repro.engine import validate_weight_matrix

        good = [[0.0, 2.0], [0.5, 0.0]]  # asymmetric is fine (per-player)
        assert validate_weight_matrix(good) is good

    def test_window_kernel_rejects_bad_columns(self):
        """Hand-built columns with a zero weight raise instead of dividing."""
        import numpy as np

        from repro.engine.columnar import (
            weighted_bcg_stable_mask,
            weighted_stability_windows,
        )

        indptr = np.asarray([0, 2], dtype=np.int64)
        good = dict(
            rem_w=np.asarray([1.0, 1.0]),
            rem_delta=np.asarray([2.0, 3.0]),
            rem_indptr=indptr,
            add_w_u=np.asarray([1.0, 1.0]),
            add_s_u=np.asarray([1.0, 1.0]),
            add_w_v=np.asarray([1.0, 1.0]),
            add_s_v=np.asarray([1.0, 1.0]),
            add_indptr=indptr,
        )
        weighted_stability_windows(*good.values())  # sanity: valid columns pass
        for column in ("rem_w", "add_w_u", "add_w_v"):
            for bad_value in (0.0, -1.0, float("nan"), float("inf")):
                bad = dict(good)
                bad[column] = np.asarray([bad_value, 1.0])
                with pytest.raises(ValueError, match="strictly positive"):
                    weighted_stability_windows(*bad.values())
                with pytest.raises(ValueError, match="strictly positive"):
                    weighted_bcg_stable_mask(*bad.values(), [1.0])
