"""Determinism and aggregation tests for the seeded ensemble runner.

The acceptance contract: the same base seed produces **identical**
summaries for any worker count (``jobs=1`` vs ``jobs=4``), per-draw
artifacts round-trip, and the segmented aggregation kernel matches a
by-hand computation.
"""

import os

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.ensembles import EnsembleResult, ensemble_seeds, run_ensemble
from repro.analysis.scenarios import build_scenario
from repro.analysis.weighted_store import WeightedStore
from repro.engine.columnar import ensemble_stats


def same_list(a, b):
    return len(a) == len(b) and all(
        (x != x and y != y) or x == y for x, y in zip(a, b)
    )


def assert_stats_equal(a, b):
    """Float-exact (nan-aware: all-inf window columns have nan spread)."""
    for key in ("mean", "std", "min", "max"):
        assert same_list(a[key], b[key]), key
    assert a["quantiles"].keys() == b["quantiles"].keys()
    for q in a["quantiles"]:
        assert same_list(a["quantiles"][q], b["quantiles"][q]), q


def assert_results_equal(a: EnsembleResult, b: EnsembleResult):
    assert (a.scenario, a.n, a.draws, a.seeds, a.ts) == (
        b.scenario, b.n, b.draws, b.seeds, b.ts,
    )
    assert a.counts == b.counts
    assert_stats_equal(a.count_stats, b.count_stats)
    assert_stats_equal(a.t_min_stats, b.t_min_stats)
    assert_stats_equal(a.t_max_stats, b.t_max_stats)


class TestEnsembleStatsKernel:
    def test_matches_hand_computation(self):
        rows = [[1.0, 4.0], [3.0, 8.0], [2.0, 0.0]]
        values = np.asarray([v for row in rows for v in row])
        indptr = np.asarray([0, 2, 4, 6])
        stats = ensemble_stats(values, indptr, quantiles=(0.5,))
        assert stats["mean"] == [2.0, 4.0]
        assert stats["min"] == [1.0, 0.0]
        assert stats["max"] == [3.0, 8.0]
        assert stats["quantiles"][0.5] == [2.0, 4.0]
        expected_std = np.asarray(rows).std(axis=0).tolist()
        assert stats["std"] == expected_std

    def test_rejects_ragged_segments(self):
        with pytest.raises(ValueError):
            ensemble_stats(np.arange(5.0), np.asarray([0, 2, 5]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensemble_stats(np.zeros(0), np.zeros(1, dtype=np.int64))

    def test_all_inf_column_has_inf_mean_nan_std(self):
        inf = float("inf")
        stats = ensemble_stats(
            np.asarray([1.0, inf, 2.0, inf]), np.asarray([0, 2, 4])
        )
        assert stats["mean"][1] == inf
        assert stats["std"][1] != stats["std"][1]  # nan


class TestSeeds:
    def test_consecutive(self):
        assert ensemble_seeds(5, 3) == [5, 6, 7]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensemble_seeds(0, 0)


class TestDeterminism:
    def test_acceptance_n6_k8_serial_equals_pooled(self):
        """Acceptance: random_weights n = 6, K = 8 — identical serial/pooled."""
        serial = run_ensemble("random_weights", n=6, draws=8, seed=0, grid=6, jobs=1)
        pooled = run_ensemble("random_weights", n=6, draws=8, seed=0, grid=6, jobs=4)
        assert_results_equal(serial, pooled)
        assert serial.draws == 8 and serial.classes == 112

    def test_draw_k_equals_single_sweep_seed_plus_k(self):
        """Draw k of base seed s is exactly the single sweep with seed s+k."""
        result = run_ensemble("random_weights", n=5, draws=3, seed=4, grid=5)
        for k, draw_seed in enumerate(result.seeds):
            scenario = build_scenario("random_weights", 5, seed=draw_seed)
            store = WeightedStore.from_scenario(scenario)
            assert result.counts[k] == store.stable_counts(result.ts)

    def test_extra_params_forwarded(self):
        narrow = run_ensemble(
            "random_weights", n=5, draws=2, seed=0, grid=4,
            params={"low": 1.0, "high": 1.0 + 1e-9},
        )
        # With an (almost) uniform draw distribution both draws coincide.
        assert narrow.counts[0] == narrow.counts[1]
        assert narrow.params == {"low": 1.0, "high": 1.0 + 1e-9}


class TestArtifacts:
    def test_save_then_resume_reuses_artifacts(self, tmp_path):
        save_dir = str(tmp_path / "draws")
        first = run_ensemble(
            "random_weights", n=5, draws=3, seed=2, grid=5, save_dir=save_dir
        )
        assert first.artifact_paths is not None
        assert all(os.path.exists(path) for path in first.artifact_paths)
        stamps = {path: os.path.getmtime(path) for path in first.artifact_paths}
        second = run_ensemble(
            "random_weights", n=5, draws=3, seed=2, grid=5, save_dir=save_dir
        )
        assert_results_equal(first, second)
        # Untouched artifacts prove the draws were loaded, not recomputed.
        assert stamps == {
            path: os.path.getmtime(path) for path in second.artifact_paths
        }

    def test_foreign_artifact_is_recomputed(self, tmp_path):
        """An artifact from another recipe at a colliding path is replaced."""
        save_dir = str(tmp_path / "draws")
        reference = run_ensemble(
            "random_weights", n=5, draws=2, seed=2, grid=5, save_dir=save_dir
        )
        victim = reference.artifact_paths[0]
        WeightedStore.from_scenario(
            build_scenario("random_weights", 5, seed=99)
        ).save(victim)
        again = run_ensemble(
            "random_weights", n=5, draws=2, seed=2, grid=5, save_dir=save_dir
        )
        assert_results_equal(reference, again)
        assert WeightedStore.load(victim).scenario_params["seed"] == 2

    def test_dir_format_artifacts(self, tmp_path):
        save_dir = str(tmp_path / "draws")
        result = run_ensemble(
            "random_weights", n=4, draws=2, seed=0, grid=4,
            save_dir=save_dir, save_format="dir",
        )
        for path in result.artifact_paths:
            assert os.path.isdir(path)
            WeightedStore.load(path, mmap=True)

    def test_rejects_bad_save_format(self, tmp_path):
        with pytest.raises(ValueError):
            run_ensemble(
                "random_weights", n=4, draws=1, save_dir=str(tmp_path),
                save_format="parquet",
            )

    def test_rejects_zero_draws(self):
        with pytest.raises(ValueError):
            run_ensemble("random_weights", n=4, draws=0)
