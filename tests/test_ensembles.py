"""Determinism and aggregation tests for the seeded ensemble runner.

The acceptance contract: the same base seed produces **identical**
summaries for any worker count (``jobs=1`` vs ``jobs=4``), per-draw
artifacts round-trip, and the segmented aggregation kernel matches a
by-hand computation.
"""

import os

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.ensembles import EnsembleResult, ensemble_seeds, run_ensemble
from repro.analysis.scenarios import build_scenario
from repro.analysis.weighted_store import WeightedStore
from repro.engine.columnar import ensemble_stats


def same_list(a, b):
    return len(a) == len(b) and all(
        (x != x and y != y) or x == y for x, y in zip(a, b)
    )


def assert_stats_equal(a, b):
    """Float-exact (nan-aware: all-inf window columns have nan spread)."""
    for key in ("mean", "std", "min", "max"):
        assert same_list(a[key], b[key]), key
    assert a["quantiles"].keys() == b["quantiles"].keys()
    for q in a["quantiles"]:
        assert same_list(a["quantiles"][q], b["quantiles"][q]), q


def assert_results_equal(a: EnsembleResult, b: EnsembleResult):
    assert (a.scenario, a.n, a.draws, a.seeds, a.ts) == (
        b.scenario, b.n, b.draws, b.seeds, b.ts,
    )
    assert np.array_equal(a.counts, b.counts)
    assert_stats_equal(a.count_stats, b.count_stats)
    assert_stats_equal(a.t_min_stats, b.t_min_stats)
    assert_stats_equal(a.t_max_stats, b.t_max_stats)


class TestEnsembleStatsKernel:
    def test_matches_hand_computation(self):
        rows = [[1.0, 4.0], [3.0, 8.0], [2.0, 0.0]]
        values = np.asarray([v for row in rows for v in row])
        indptr = np.asarray([0, 2, 4, 6])
        stats = ensemble_stats(values, indptr, quantiles=(0.5,))
        assert stats["mean"] == [2.0, 4.0]
        assert stats["min"] == [1.0, 0.0]
        assert stats["max"] == [3.0, 8.0]
        assert stats["quantiles"][0.5] == [2.0, 4.0]
        expected_std = np.asarray(rows).std(axis=0).tolist()
        assert stats["std"] == expected_std

    def test_rejects_ragged_segments(self):
        with pytest.raises(ValueError):
            ensemble_stats(np.arange(5.0), np.asarray([0, 2, 5]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensemble_stats(np.zeros(0), np.zeros(1, dtype=np.int64))

    def test_all_inf_column_has_inf_mean_nan_std(self):
        inf = float("inf")
        stats = ensemble_stats(
            np.asarray([1.0, inf, 2.0, inf]), np.asarray([0, 2, 4])
        )
        assert stats["mean"][1] == inf
        assert stats["std"][1] != stats["std"][1]  # nan


class TestSeeds:
    def test_consecutive(self):
        assert ensemble_seeds(5, 3) == [5, 6, 7]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensemble_seeds(0, 0)


class TestDeterminism:
    def test_acceptance_n6_k8_serial_equals_pooled(self):
        """Acceptance: random_weights n = 6, K = 8 — identical serial/pooled."""
        serial = run_ensemble("random_weights", n=6, draws=8, seed=0, grid=6, jobs=1)
        pooled = run_ensemble("random_weights", n=6, draws=8, seed=0, grid=6, jobs=4)
        assert_results_equal(serial, pooled)
        assert serial.draws == 8 and serial.classes == 112

    def test_draw_k_equals_single_sweep_seed_plus_k(self):
        """Draw k of base seed s is exactly the single sweep with seed s+k."""
        result = run_ensemble("random_weights", n=5, draws=3, seed=4, grid=5)
        for k, draw_seed in enumerate(result.seeds):
            scenario = build_scenario("random_weights", 5, seed=draw_seed)
            store = WeightedStore.from_scenario(scenario)
            assert np.array_equal(
                result.counts[k], np.asarray(store.stable_counts(result.ts))
            )

    def test_extra_params_forwarded(self):
        narrow = run_ensemble(
            "random_weights", n=5, draws=2, seed=0, grid=4,
            params={"low": 1.0, "high": 1.0 + 1e-9},
        )
        # With an (almost) uniform draw distribution both draws coincide.
        assert np.array_equal(narrow.counts[0], narrow.counts[1])
        assert narrow.params == {"low": 1.0, "high": 1.0 + 1e-9}


class TestAmortisedPath:
    def test_serial_pooled_batched_all_identical(self):
        """Satellite acceptance: serial ≡ pooled ≡ batched, any batch size."""
        reference = run_ensemble(
            "random_weights", n=5, draws=8, seed=1, grid=5, jobs=1, batch_draws=1
        )
        for jobs, batch_draws in ((1, 3), (1, 8), (4, 3), (4, 8)):
            other = run_ensemble(
                "random_weights", n=5, draws=8, seed=1, grid=5,
                jobs=jobs, batch_draws=batch_draws,
            )
            assert_results_equal(reference, other)

    def test_counts_is_int64_ndarray(self):
        result = run_ensemble("random_weights", n=4, draws=3, seed=0, grid=4)
        assert isinstance(result.counts, np.ndarray)
        assert result.counts.dtype == np.int64
        assert result.counts.shape == (3, 4)
        # ...and round-trips through a raw buffer unchanged.
        restored = np.frombuffer(
            result.counts.tobytes(), dtype=np.int64
        ).reshape(result.counts.shape)
        assert np.array_equal(restored, result.counts)

    def test_explicit_delta_store_reused(self):
        from repro.analysis.delta_store import DeltaStore

        delta = DeltaStore.build(5)
        with_delta = run_ensemble(
            "random_weights", n=5, draws=4, seed=3, grid=5, delta=delta
        )
        without = run_ensemble("random_weights", n=5, draws=4, seed=3, grid=5)
        assert_results_equal(with_delta, without)

    def test_delta_store_n_mismatch_raises(self):
        from repro.analysis.delta_store import DeltaStore

        with pytest.raises(ValueError):
            run_ensemble(
                "random_weights", n=5, draws=2, delta=DeltaStore.build(4)
            )

    def test_delta_cache_written_then_mmapped(self, tmp_path):
        from repro.analysis.delta_store import DeltaStore

        cache = str(tmp_path / "deltas")
        first = run_ensemble(
            "random_weights", n=5, draws=3, seed=0, grid=5, delta_cache=cache
        )
        assert os.path.isdir(cache)
        DeltaStore.load(cache, mmap=True)  # valid mmap-able dir artifact
        stamp = os.path.getmtime(os.path.join(cache, "meta.json"))
        second = run_ensemble(
            "random_weights", n=5, draws=3, seed=0, grid=5, delta_cache=cache
        )
        assert_results_equal(first, second)
        assert os.path.getmtime(os.path.join(cache, "meta.json")) == stamp

    def test_streamed_window_stats_regimes(self):
        """Past the exact buffer: counts/moments exact, quantiles sketched."""
        exact = run_ensemble(
            "random_weights", n=4, draws=12, seed=0, grid=4,
            window_exact_buffer=64,
        )
        streamed = run_ensemble(
            "random_weights", n=4, draws=12, seed=0, grid=4,
            window_exact_buffer=4,
        )
        assert np.array_equal(exact.counts, streamed.counts)
        assert_stats_equal(exact.count_stats, streamed.count_stats)
        for key in ("mean", "min", "max"):
            assert same_list(
                exact.t_min_stats[key], streamed.t_min_stats[key]
            ), key
            assert same_list(
                exact.t_max_stats[key], streamed.t_max_stats[key]
            ), key
        for stats_pair in (
            (exact.t_min_stats, streamed.t_min_stats),
            (exact.t_max_stats, streamed.t_max_stats),
        ):
            dense, sketch = stats_pair
            for q in (0.25, 0.5, 0.75):
                a = np.asarray(dense["quantiles"][q])
                b = np.asarray(sketch["quantiles"][q])
                finite = np.isfinite(a) & np.isfinite(b)
                assert np.isnan(a).sum() == np.isnan(b).sum()
                assert np.allclose(a[finite], b[finite], atol=2.0), q

    def test_rejects_bad_batch_draws(self):
        with pytest.raises(ValueError):
            run_ensemble("random_weights", n=4, draws=2, batch_draws=0)


class TestArtifacts:
    def test_save_then_resume_reuses_artifacts(self, tmp_path):
        save_dir = str(tmp_path / "draws")
        first = run_ensemble(
            "random_weights", n=5, draws=3, seed=2, grid=5, save_dir=save_dir
        )
        assert first.artifact_paths is not None
        assert all(os.path.exists(path) for path in first.artifact_paths)
        stamps = {path: os.path.getmtime(path) for path in first.artifact_paths}
        second = run_ensemble(
            "random_weights", n=5, draws=3, seed=2, grid=5, save_dir=save_dir
        )
        assert_results_equal(first, second)
        # Untouched artifacts prove the draws were loaded, not recomputed.
        assert stamps == {
            path: os.path.getmtime(path) for path in second.artifact_paths
        }

    def test_foreign_artifact_is_recomputed(self, tmp_path):
        """An artifact from another recipe at a colliding path is replaced."""
        save_dir = str(tmp_path / "draws")
        reference = run_ensemble(
            "random_weights", n=5, draws=2, seed=2, grid=5, save_dir=save_dir
        )
        victim = reference.artifact_paths[0]
        WeightedStore.from_scenario(
            build_scenario("random_weights", 5, seed=99)
        ).save(victim)
        again = run_ensemble(
            "random_weights", n=5, draws=2, seed=2, grid=5, save_dir=save_dir
        )
        assert_results_equal(reference, again)
        assert WeightedStore.load(victim).scenario_params["seed"] == 2

    def test_dir_format_artifacts(self, tmp_path):
        save_dir = str(tmp_path / "draws")
        result = run_ensemble(
            "random_weights", n=4, draws=2, seed=0, grid=4,
            save_dir=save_dir, save_format="dir",
        )
        for path in result.artifact_paths:
            assert os.path.isdir(path)
            WeightedStore.load(path, mmap=True)

    def test_rejects_bad_save_format(self, tmp_path):
        with pytest.raises(ValueError):
            run_ensemble(
                "random_weights", n=4, draws=1, save_dir=str(tmp_path),
                save_format="parquet",
            )

    def test_rejects_zero_draws(self):
        with pytest.raises(ValueError):
            run_ensemble("random_weights", n=4, draws=0)

    def test_resume_tallies_are_audited(self, tmp_path):
        """Satellite acceptance: resumed/recomputed surface on the result."""
        save_dir = str(tmp_path / "draws")
        first = run_ensemble(
            "random_weights", n=5, draws=4, seed=2, grid=5, save_dir=save_dir
        )
        assert (first.resumed, first.recomputed) == (0, 4)
        second = run_ensemble(
            "random_weights", n=5, draws=4, seed=2, grid=5, save_dir=save_dir
        )
        assert (second.resumed, second.recomputed) == (4, 0)
        # Without save_dir everything is computed fresh.
        ephemeral = run_ensemble("random_weights", n=5, draws=4, seed=2, grid=5)
        assert (ephemeral.resumed, ephemeral.recomputed) == (0, 4)

    def test_resume_after_corrupt_artifact(self, tmp_path):
        """Satellite acceptance: a torn artifact is recomputed, not fatal."""
        save_dir = str(tmp_path / "draws")
        reference = run_ensemble(
            "random_weights", n=5, draws=3, seed=2, grid=5, save_dir=save_dir
        )
        victim = reference.artifact_paths[1]
        with open(victim, "rb") as handle:
            payload = handle.read()
        with open(victim, "wb") as handle:
            handle.write(payload[:40])  # truncate mid-archive
        again = run_ensemble(
            "random_weights", n=5, draws=3, seed=2, grid=5, save_dir=save_dir
        )
        assert_results_equal(reference, again)
        assert (again.resumed, again.recomputed) == (2, 1)
        # The torn artifact was rewritten and loads cleanly now.
        assert WeightedStore.load(victim).scenario_params["seed"] == 3
