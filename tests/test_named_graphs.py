"""Unit tests for the named graphs of Figure 1 and Section 4."""

import pytest

from repro.graphs import (
    all_named_graphs,
    clebsch_graph,
    desargues_graph,
    diameter,
    dodecahedral_graph,
    from_networkx,
    girth,
    heawood_graph,
    hoffman_singleton_graph,
    is_bipartite,
    is_connected,
    is_regular,
    is_star,
    are_isomorphic,
    mcgee_graph,
    named_graph,
    octahedral_graph,
    pappus_graph,
    petersen_graph,
    regular_degree,
    star_8,
    tutte_coxeter_graph,
)

# (constructor, n, m, degree, girth, diameter)
PARAMETERS = [
    (petersen_graph, 10, 15, 3, 5, 2),
    (mcgee_graph, 24, 36, 3, 7, 4),
    (heawood_graph, 14, 21, 3, 6, 3),
    (tutte_coxeter_graph, 30, 45, 3, 8, 4),
    (desargues_graph, 20, 30, 3, 6, 5),
    (dodecahedral_graph, 20, 30, 3, 5, 5),
    (pappus_graph, 18, 27, 3, 6, 4),
    (octahedral_graph, 6, 12, 4, 3, 2),
    (clebsch_graph, 16, 40, 5, 4, 2),
    (hoffman_singleton_graph, 50, 175, 7, 5, 2),
]


@pytest.mark.parametrize("builder,n,m,degree,expected_girth,expected_diameter", PARAMETERS)
def test_structural_parameters(builder, n, m, degree, expected_girth, expected_diameter):
    graph = builder()
    assert graph.n == n
    assert graph.num_edges == m
    assert is_connected(graph)
    assert is_regular(graph)
    assert regular_degree(graph) == degree
    assert girth(graph) == expected_girth
    assert diameter(graph) == expected_diameter


def test_star_8_panel():
    graph = star_8()
    assert graph.n == 8
    assert is_star(graph)


def test_bipartite_cages():
    assert is_bipartite(heawood_graph())
    assert is_bipartite(tutte_coxeter_graph())
    assert is_bipartite(desargues_graph())
    assert is_bipartite(pappus_graph())
    assert not is_bipartite(petersen_graph())


def test_registry_contains_figure1_graphs():
    names = all_named_graphs()
    for expected in ("petersen", "mcgee", "octahedral", "clebsch", "hoffman_singleton", "star_8"):
        assert expected in names


def test_named_graph_lookup():
    assert named_graph("petersen").n == 10
    with pytest.raises(KeyError):
        named_graph("no-such-graph")


@pytest.mark.parametrize(
    "ours,networkx_name",
    [
        (petersen_graph, "petersen_graph"),
        (heawood_graph, "heawood_graph"),
        (desargues_graph, "desargues_graph"),
        (dodecahedral_graph, "dodecahedral_graph"),
        (pappus_graph, "pappus_graph"),
        (octahedral_graph, "octahedral_graph"),
    ],
)
def test_isomorphic_to_networkx_reference(ours, networkx_name):
    networkx = pytest.importorskip("networkx")
    reference = from_networkx(getattr(networkx.generators.small, networkx_name)())
    assert are_isomorphic(ours(), reference)
