"""Unit tests for pairwise stability with transfers (Section 6 extension)."""

import pytest

from repro.core import (
    is_pairwise_stable,
    is_pairwise_stable_with_transfers,
    transfer_stability_interval,
    transfer_stability_profile,
    transfer_stable_graphs,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    enumerate_connected_graphs,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestProfile:
    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            is_pairwise_stable_with_transfers(star_graph(4), 0.0)

    def test_star_joint_quantities(self):
        profile = transfer_stability_profile(star_graph(5))
        # Severing any spoke disconnects a leaf: infinite joint increase.
        assert all(v == float("inf") for v in profile.joint_removal_increase.values())
        # Adding a leaf-leaf link saves exactly 1 hop for each endpoint: joint 2.
        assert all(v == 2 for v in profile.joint_addition_saving.values())
        assert profile.stability_interval() == (1.0, float("inf"))

    def test_complete_graph_interval(self):
        lo, hi = transfer_stability_interval(complete_graph(5))
        assert lo == 0.0
        # Joint increase from severing an edge of K_n is 2 (one extra hop per
        # endpoint), so the pair jointly keeps the link while 2α <= 2.
        assert hi == 1.0

    def test_cycle_interval_scales_with_n(self):
        lo_small, hi_small = transfer_stability_interval(cycle_graph(6))
        lo_large, hi_large = transfer_stability_interval(cycle_graph(12))
        assert lo_small < hi_small
        assert lo_large < hi_large
        assert lo_large > lo_small
        assert hi_large > hi_small


class TestStability:
    def test_star_stable_above_one(self):
        assert is_pairwise_stable_with_transfers(star_graph(6), 2.0)
        assert not is_pairwise_stable_with_transfers(star_graph(6), 0.5)

    def test_complete_graph_stable_below_one(self):
        assert is_pairwise_stable_with_transfers(complete_graph(6), 0.5)
        assert not is_pairwise_stable_with_transfers(complete_graph(6), 2.0)

    def test_petersen_stable_in_window(self):
        lo, hi = transfer_stability_interval(petersen_graph())
        assert lo < hi
        assert is_pairwise_stable_with_transfers(petersen_graph(), (lo + hi) / 2.0)

    def test_path_stable_only_for_large_alpha(self):
        assert not is_pairwise_stable_with_transfers(path_graph(5), 1.0)
        assert is_pairwise_stable_with_transfers(path_graph(5), 20.0)

    def test_filter_helper(self):
        graphs = [star_graph(5), complete_graph(5), cycle_graph(5)]
        stable = transfer_stable_graphs(graphs, 2.0)
        assert star_graph(5) in stable
        assert complete_graph(5) not in stable


class TestRelationToPlainStability:
    def test_transfer_stability_differs_from_plain_stability(self):
        """The two concepts are not nested; find a graph in the symmetric difference.

        On five vertices the two stable sets coincide at common link costs, so
        the check uses the six-vertex enumeration where they first diverge
        (e.g. at α = 1.5 the transfer-stable set gains a topology whose
        severance is individually attractive but jointly unattractive).
        """
        graphs = enumerate_connected_graphs(6)
        differs = False
        for alpha in (1.5, 2.0):
            plain = {g.edge_key() for g in graphs if is_pairwise_stable(g, alpha)}
            with_transfers = {
                g.edge_key() for g in graphs if is_pairwise_stable_with_transfers(g, alpha)
            }
            if plain != with_transfers:
                differs = True
                break
        assert differs

    def test_efficient_networks_stable_under_both(self):
        for alpha in (0.5, 2.0, 10.0):
            optimum = star_graph(6) if alpha > 1 else complete_graph(6)
            assert is_pairwise_stable(optimum, alpha)
            assert is_pairwise_stable_with_transfers(optimum, alpha)

    def test_disconnected_graph_with_edges_unstable(self):
        g = Graph(4, [(0, 1), (2, 3)])
        # Both endpoints of each edge already have infinite distance cost, so
        # under the ∞ - ∞ convention severing the edge changes distances by 0
        # while jointly saving 2α — the pair prefers to drop it.
        assert not is_pairwise_stable_with_transfers(g, 1.0)
        assert not is_pairwise_stable(g, 1.0)
