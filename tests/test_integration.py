"""Cross-module integration tests tying the whole pipeline together."""

import random

import pytest

from repro.analysis import EquilibriumCensus, census_figure_series, deduplicate_up_to_isomorphism
from repro.core import (
    BilateralConnectionGame,
    UnilateralConnectionGame,
    best_response_dynamics_ucg,
    pairwise_dynamics_bcg,
    price_of_anarchy,
)
from repro.graphs import are_isomorphic, canonical_form, random_connected_graph


@pytest.fixture(scope="module")
def census5():
    return EquilibriumCensus.build(5)


class TestDynamicsAgainstCensus:
    """Networks reached by the dynamics must appear in the exhaustive census."""

    def test_bcg_dynamics_outcomes_are_in_the_stable_census(self, census5):
        alpha = 2.0
        stable_forms = {canonical_form(g) for g in census5.stable_graphs_bcg(alpha)}
        for seed in range(6):
            rng = random.Random(seed)
            start = random_connected_graph(5, 0.4, rng)
            outcome = pairwise_dynamics_bcg(5, alpha, initial=start, rng=rng)
            assert outcome.converged
            assert canonical_form(outcome.graph) in stable_forms

    def test_ucg_dynamics_outcomes_are_in_the_nash_census(self, census5):
        alpha = 3.0
        nash_forms = {canonical_form(g) for g in census5.nash_graphs_ucg(alpha)}
        for seed in range(6):
            outcome = best_response_dynamics_ucg(5, alpha, rng=random.Random(seed))
            assert outcome.converged
            assert canonical_form(outcome.graph) in nash_forms


class TestGameObjectsAgainstCensus:
    def test_game_filters_match_census(self, census5):
        alpha = 2.5
        bcg = BilateralConnectionGame(n=5, alpha=alpha)
        ucg = UnilateralConnectionGame(n=5, alpha=alpha)
        graphs = [record.graph for record in census5.records]
        assert {g.edge_key() for g in bcg.equilibrium_networks(graphs)} == {
            g.edge_key() for g in census5.stable_graphs_bcg(alpha)
        }
        assert {g.edge_key() for g in ucg.equilibrium_networks(graphs)} == {
            g.edge_key() for g in census5.nash_graphs_ucg(alpha)
        }

    def test_worst_case_poa_is_attained_by_a_census_graph(self, census5):
        alpha = 6.0
        stable = census5.stable_graphs_bcg(alpha)
        worst = census5.worst_price_of_anarchy(alpha, "bcg")
        assert any(
            price_of_anarchy(g, alpha, "bcg") == pytest.approx(worst) for g in stable
        )


class TestPaperStorySmallCensus:
    """The qualitative story of Section 5, end to end on the 5-vertex census."""

    def test_cheap_links_bcg_weakly_better_expensive_links_bcg_weakly_worse(self, census5):
        figure = census_figure_series(census5, "average_poa", [0.8, 1.2, 30.0, 50.0])
        cheap_gaps = [
            bcg.value - ucg.value
            for ucg, bcg in zip(figure.ucg.points[:2], figure.bcg.points[:2])
        ]
        expensive_gaps = [
            bcg.value - ucg.value
            for ucg, bcg in zip(figure.ucg.points[2:], figure.bcg.points[2:])
        ]
        assert all(gap <= 1e-9 for gap in cheap_gaps)
        assert all(gap >= -1e-9 for gap in expensive_gaps)

    def test_bcg_networks_carry_at_least_as_many_links(self, census5):
        figure = census_figure_series(census5, "average_links", [2.0, 6.0, 20.0])
        for ucg_point, bcg_point in zip(figure.ucg.points, figure.bcg.points):
            assert bcg_point.value >= ucg_point.value - 1e-9


class TestIsomorphismDeduplicationPipeline:
    def test_census_and_sampler_agree_on_representatives(self, census5):
        alpha = 2.0
        stable = census5.stable_graphs_bcg(alpha)
        duplicated = stable + [g.relabel(list(reversed(range(5)))) for g in stable]
        unique = deduplicate_up_to_isomorphism(duplicated)
        assert len(unique) == len(stable)
        for graph in unique:
            assert any(are_isomorphic(graph, other) for other in stable)
