"""Unit tests for the improvement dynamics / stochastic stability module."""

import pytest

from repro.analysis import (
    build_improvement_graph,
    graph_to_mask,
    mask_to_graph,
    myopic_move,
    perturbed_transition_matrix,
    stationary_distribution,
    stochastic_stability_analysis,
)
from repro.core import is_pairwise_stable
from repro.graphs import Graph, complete_graph, cycle_graph, is_complete, is_empty, star_graph


class TestEncoding:
    def test_mask_round_trip(self):
        for graph in (complete_graph(4), star_graph(4), Graph(4), cycle_graph(4)):
            assert mask_to_graph(4, graph_to_mask(graph)) == graph

    def test_mask_values(self):
        assert graph_to_mask(Graph(3)) == 0
        assert graph_to_mask(complete_graph(3)) == 0b111


class TestMyopicMove:
    def test_adds_mutually_beneficial_link(self):
        # Two leaves of a star at α < 1 both gain 1 - α > 0 by linking.
        star = star_graph(4)
        moved = myopic_move(star, 1, 2, alpha=0.5)
        assert moved.has_edge(1, 2)

    def test_keeps_link_when_not_beneficial(self):
        star = star_graph(4)
        assert myopic_move(star, 1, 2, alpha=2.0) == star

    def test_severs_link_when_one_side_gains(self):
        triangle = complete_graph(3)
        moved = myopic_move(triangle, 0, 1, alpha=3.0)
        assert not moved.has_edge(0, 1)

    def test_never_severs_bridge(self):
        path = Graph(3, [(0, 1), (1, 2)])
        assert myopic_move(path, 0, 1, alpha=100.0) == path


class TestImprovementGraph:
    @pytest.fixture(scope="class")
    def improvement(self):
        return build_improvement_graph(4, alpha=1.5)

    def test_state_space_size(self, improvement):
        assert improvement.num_states == 2 ** 6
        assert len(improvement.successors) == improvement.num_states

    def test_sinks_are_exactly_the_pairwise_stable_networks(self, improvement):
        for state in range(improvement.num_states):
            graph = mask_to_graph(4, state, improvement.pairs)
            assert (not improvement.successors[state]) == is_pairwise_stable(graph, 1.5)

    def test_is_sink_helper(self, improvement):
        assert improvement.is_sink(star_graph(4))
        assert not improvement.is_sink(complete_graph(4))

    def test_sink_graphs_match_sinks(self, improvement):
        assert len(improvement.sink_graphs()) == len(improvement.sinks())

    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            build_improvement_graph(4, 0.0)


class TestPerturbedDynamics:
    def test_transition_matrix_is_stochastic(self):
        numpy = pytest.importorskip("numpy")
        improvement = build_improvement_graph(4, alpha=1.5)
        matrix = perturbed_transition_matrix(improvement, epsilon=0.1)
        assert matrix.shape == (64, 64)
        assert numpy.allclose(matrix.sum(axis=1), 1.0)

    def test_epsilon_validation(self):
        improvement = build_improvement_graph(3, alpha=1.5)
        with pytest.raises(ValueError):
            perturbed_transition_matrix(improvement, epsilon=0.0)
        with pytest.raises(ValueError):
            perturbed_transition_matrix(improvement, epsilon=1.0)

    def test_stationary_distribution_sums_to_one(self):
        numpy = pytest.importorskip("numpy")
        improvement = build_improvement_graph(4, alpha=1.5)
        matrix = perturbed_transition_matrix(improvement, epsilon=0.05)
        pi = stationary_distribution(matrix)
        assert pi.shape == (64,)
        assert numpy.isclose(pi.sum(), 1.0)
        assert numpy.all(pi >= 0)
        # Verify it really is stationary: π P ≈ π.
        assert numpy.allclose(pi @ matrix, pi, atol=1e-8)


class TestStochasticStability:
    def test_cheap_links_select_the_complete_graph(self):
        pytest.importorskip("numpy")
        analysis = stochastic_stability_analysis(4, alpha=0.5, epsilon=0.05)
        assert is_complete(analysis.modal_graph)
        assert analysis.mass_on_sinks > 0.5

    def test_expensive_links_select_the_empty_network(self):
        pytest.importorskip("numpy")
        analysis = stochastic_stability_analysis(4, alpha=3.0, epsilon=0.05)
        assert is_empty(analysis.modal_graph)

    def test_mass_by_class_sums_to_one(self):
        pytest.importorskip("numpy")
        analysis = stochastic_stability_analysis(4, alpha=1.5, epsilon=0.05)
        assert sum(analysis.mass_by_canonical_class.values()) == pytest.approx(1.0)
        assert analysis.modal_class_mass() <= 1.0
