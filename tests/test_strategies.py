"""Unit tests for strategy profiles and the linking rules."""

import pytest

from repro.core import StrategyProfile, edge_strategy_matrix, empty_profile, profile_from_graph_bcg
from repro.core.strategies import profile_from_ownership_ucg
from repro.graphs import Graph, star_graph


class TestConstruction:
    def test_empty_profile(self):
        profile = empty_profile(4)
        assert profile.n == 4
        assert all(profile.num_requests(i) == 0 for i in range(4))

    def test_requests_validation(self):
        with pytest.raises(ValueError):
            StrategyProfile(3, [[0], [], []])          # self request
        with pytest.raises(ValueError):
            StrategyProfile(3, [[5], [], []])          # out of range
        with pytest.raises(ValueError):
            StrategyProfile(3, [[], []])               # wrong row count
        with pytest.raises(ValueError):
            StrategyProfile(-1)

    def test_matrix_round_trip(self):
        profile = StrategyProfile(3, [[1, 2], [], [0]])
        assert profile.as_matrix() == [[0, 1, 1], [0, 0, 0], [1, 0, 0]]
        assert profile.seeks(0, 1)
        assert not profile.seeks(1, 0)
        assert profile.num_requests(0) == 2


class TestLinkingRules:
    def test_unilateral_rule_uses_or(self):
        profile = StrategyProfile(3, [[1], [], [1]])
        graph = profile.unilateral_graph()
        assert graph.edges == {(0, 1), (1, 2)}

    def test_bilateral_rule_uses_and(self):
        profile = StrategyProfile(3, [[1], [0, 2], []])
        graph = profile.bilateral_graph()
        assert graph.edges == {(0, 1)}  # 1 seeks 2 but 2 does not reciprocate

    def test_one_sided_requests_form_no_bcg_edge(self):
        profile = StrategyProfile(2, [[1], []])
        assert profile.bilateral_graph().num_edges == 0
        assert profile.unilateral_graph().num_edges == 1


class TestProfileAlgebra:
    def test_with_and_without_request(self):
        profile = empty_profile(3).with_request(0, 1)
        assert profile.seeks(0, 1)
        assert not profile.without_request(0, 1).seeks(0, 1)

    def test_add_and_remove_bilateral_link(self):
        profile = empty_profile(3).add_bilateral_link(0, 2)
        assert profile.bilateral_graph().has_edge(0, 2)
        removed = profile.remove_bilateral_link(0, 2)
        assert removed.bilateral_graph().num_edges == 0

    def test_add_links_lambda_matrix_semantics(self):
        profile = empty_profile(4).add_links([(0, 1), (2, 3)], bilateral=True)
        assert profile.bilateral_graph().edges == {(0, 1), (2, 3)}
        unilateral = empty_profile(4).add_links([(0, 1)], bilateral=False)
        assert unilateral.seeks(0, 1) and not unilateral.seeks(1, 0)

    def test_remove_links(self):
        profile = profile_from_graph_bcg(star_graph(4))
        removed = profile.remove_links([(0, 1)])
        assert not removed.bilateral_graph().has_edge(0, 1)

    def test_with_player_strategy(self):
        profile = profile_from_graph_bcg(star_graph(4))
        deviated = profile.with_player_strategy(1, [])
        assert deviated.num_requests(1) == 0
        assert not deviated.bilateral_graph().has_edge(0, 1)

    def test_equality_and_hash(self):
        a = StrategyProfile(3, [[1], [0], []])
        b = StrategyProfile(3, [[1], [0], []])
        assert a == b and hash(a) == hash(b)
        assert a != a.with_request(2, 0)

    def test_repr(self):
        assert "StrategyProfile" in repr(empty_profile(3))


class TestFactories:
    def test_edge_strategy_matrix_bilateral(self):
        lam = edge_strategy_matrix(4, 1, 3, bilateral=True)
        assert lam.seeks(1, 3) and lam.seeks(3, 1)

    def test_edge_strategy_matrix_unilateral(self):
        lam = edge_strategy_matrix(4, 1, 3, bilateral=False)
        assert lam.seeks(1, 3) and not lam.seeks(3, 1)

    def test_profile_from_graph_bcg(self):
        star = star_graph(4)
        profile = profile_from_graph_bcg(star)
        assert profile.bilateral_graph() == star
        assert profile.num_requests(0) == 3

    def test_profile_from_ownership(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        profile = profile_from_ownership_ucg(graph, {(0, 1): 0, (1, 2): 2})
        assert profile.seeks(0, 1) and not profile.seeks(1, 0)
        assert profile.seeks(2, 1) and not profile.seeks(1, 2)
        assert profile.unilateral_graph() == graph

    def test_profile_from_ownership_validation(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            profile_from_ownership_ucg(graph, {})
        with pytest.raises(ValueError):
            profile_from_ownership_ucg(graph, {(0, 1): 2})
