"""Unit tests for the proper-equilibrium certificate (Lemma 3 / Proposition 2)."""

import pytest

from repro.core import (
    is_certified_proper_equilibrium,
    is_link_convex,
    proper_equilibrium_certificate,
    proposition2_alpha_window,
    proposition2_holds_for,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    dodecahedral_graph,
    enumerate_connected_graphs,
    heawood_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestCertificate:
    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            proper_equilibrium_certificate(star_graph(4), 0.0)

    def test_star_certified_for_alpha_strictly_above_one(self):
        certificate = proper_equilibrium_certificate(star_graph(6), 2.0)
        assert certificate.is_pairwise_nash
        assert certificate.missing_links_strictly_unprofitable
        assert certificate.certifies_proper_equilibrium

    def test_star_not_certified_at_the_boundary(self):
        # At α = 1 a missing leaf-leaf link is exactly neutral for both
        # endpoints, so the strictness hypothesis of Lemma 3 fails even though
        # the star is still pairwise stable.
        certificate = proper_equilibrium_certificate(star_graph(6), 1.0)
        assert certificate.is_pairwise_nash
        assert not certificate.missing_links_strictly_unprofitable
        assert not certificate.certifies_proper_equilibrium

    def test_unstable_graph_not_certified(self):
        assert not is_certified_proper_equilibrium(path_graph(5), 1.0)

    def test_complete_graph_certified_for_cheap_links(self):
        # No missing links at all: the strictness condition is vacuous.
        assert is_certified_proper_equilibrium(complete_graph(5), 0.5)

    def test_petersen_certified_inside_window(self):
        assert is_certified_proper_equilibrium(petersen_graph(), 3.0)
        assert not is_certified_proper_equilibrium(petersen_graph(), 0.5)


class TestProposition2:
    def test_window_matches_link_convexity_gap(self):
        window = proposition2_alpha_window(cycle_graph(8))
        assert window == (5.0, 12.0)

    def test_window_none_for_non_link_convex_graphs(self):
        assert proposition2_alpha_window(dodecahedral_graph()) is None
        assert not is_link_convex(dodecahedral_graph())

    def test_proposition2_on_named_graphs(self):
        for graph in (petersen_graph(), heawood_graph(), cycle_graph(10), star_graph(7)):
            assert proposition2_holds_for(graph)

    def test_proposition2_vacuous_for_non_link_convex_graphs(self):
        assert proposition2_holds_for(dodecahedral_graph())

    def test_proposition2_exhaustive_on_small_census(self):
        for graph in enumerate_connected_graphs(5):
            assert proposition2_holds_for(graph)
