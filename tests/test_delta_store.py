"""DeltaStore: stacked-kernel parity, persistence, sharded resume, caching.

The load-bearing contract is float-exactness: the model-independent delta
artifact plus a coefficient gather must reproduce the per-draw weighted
kernels bit for bit, for every connected class and every registry scenario
— otherwise amortised ensembles would silently drift from the per-draw
path they claim to accelerate.
"""

import os

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.delta_store import DeltaStore, cached_delta_store
from repro.engine.shardwork import load_shard
from repro.analysis.scenarios import SCENARIOS, build_scenario, default_t_grid
from repro.analysis.store import clear_store_cache
from repro.analysis.weighted_store import WeightedStore
from repro.engine.columnar import (
    weighted_bcg_stable_mask,
    weighted_stability_windows,
)


def scenario_models(n, seed=7):
    """Every registry scenario valid at this n (some need larger cores)."""
    out = []
    for name in sorted(SCENARIOS):
        try:
            out.append(build_scenario(name, n, seed=seed))
        except ValueError:
            continue
    return out


def probe_columns(store: WeightedStore):
    return (
        store.rem_w, store.rem_delta, store.rem_indptr,
        store.add_w_u, store.add_s_u, store.add_w_v, store.add_s_v,
        store.add_indptr,
    )


class TestStackedKernelParity:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_multi_kernels_match_per_draw_all_scenarios(self, n):
        """Satellite acceptance: float-exact parity for every class n <= 6."""
        delta = DeltaStore.build(n)
        scenarios = scenario_models(n)
        assert scenarios, "registry produced no valid scenarios"
        matrices = [sc.model.coefficient_matrix(n) for sc in scenarios]
        ts = default_t_grid(n, 7)

        mask_multi = delta.stable_mask_multi(matrices, ts)
        counts_multi = delta.stable_counts_multi(matrices, ts)
        t_min_multi, t_max_multi = delta.stability_windows_multi(matrices)

        for k, scenario in enumerate(scenarios):
            store = WeightedStore.from_scenario(scenario)
            columns = probe_columns(store)
            mask = weighted_bcg_stable_mask(*columns, ts)
            t_min, t_max = weighted_stability_windows(*columns)
            assert np.array_equal(mask_multi[k], mask), scenario.name
            assert np.array_equal(
                counts_multi[k], np.asarray(store.stable_counts(ts))
            ), scenario.name
            # Window endpoints must agree bit for bit, infs included.
            assert np.array_equal(t_min_multi[k], t_min), scenario.name
            assert np.array_equal(t_max_multi[k], t_max), scenario.name

    def test_single_matrix_accepted_as_stack_of_one(self):
        delta = DeltaStore.build(4)
        scenario = build_scenario("random_weights", 4, seed=3)
        matrix = scenario.model.coefficient_matrix(4)
        ts = default_t_grid(4, 5)
        one = delta.stable_counts_multi(matrix, ts)
        many = delta.stable_counts_multi([matrix], ts)
        assert one.shape == (1, len(ts))
        assert np.array_equal(one, many)


class TestFromDelta:
    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_from_delta_is_column_exact(self, n):
        delta = DeltaStore.build(n)
        for scenario in scenario_models(n):
            direct = WeightedStore.from_scenario(scenario)
            gathered = WeightedStore.from_delta(
                delta, scenario.model, scenario_params=dict(scenario.params)
            )
            for column in (
                "num_edges", "dist_total", "edge_cost_total", "cert_words",
                "rem_w", "rem_delta", "rem_indptr",
                "add_w_u", "add_s_u", "add_w_v", "add_s_v", "add_indptr",
            ):
                assert np.array_equal(
                    np.asarray(getattr(direct, column)),
                    np.asarray(getattr(gathered, column)),
                ), (scenario.name, column)
            assert np.array_equal(direct.weight_matrix, gathered.weight_matrix)
            assert direct.scenario_params == gathered.scenario_params

    def test_from_delta_artifact_round_trips(self, tmp_path):
        """A gathered store saves/loads like a built one (same schema)."""
        delta = DeltaStore.build(4)
        scenario = build_scenario("two_tier_isp", 4, seed=0)
        store = WeightedStore.from_delta(
            delta, scenario.model, scenario_params=dict(scenario.params)
        )
        path = store.save(str(tmp_path / "draw.npz"))
        loaded = WeightedStore.load(path)
        assert loaded.scenario_params == scenario.params
        ts = default_t_grid(4, 5)
        assert loaded.stable_counts(ts) == store.stable_counts(ts)


class TestPersistence:
    def test_verify_and_checksum_stamp(self, tmp_path):
        delta = DeltaStore.build(5)
        audit = delta.verify()
        assert audit["ok"] and audit["errors"] == []
        assert audit["checksum"] == "absent"  # in-memory build, no stamp
        loaded = DeltaStore.load(delta.save(str(tmp_path / "deltas.npz")))
        assert loaded.verify()["checksum"] == "ok"
        # Endpoint indices out of range are a structural failure, not just
        # a checksum one.
        loaded.add_u = loaded.add_u.copy()
        loaded.add_u[0] = 99
        audit = loaded.verify()
        assert not audit["ok"]
        assert any("add_u" in error or "checksum" in error for error in audit["errors"])

    def test_npz_round_trip(self, tmp_path):
        delta = DeltaStore.build(5)
        path = delta.save(str(tmp_path / "deltas.npz"))
        loaded = DeltaStore.load(path)
        for column in (
            "num_edges", "dist_total", "cert_words",
            "rem_delta", "rem_pay", "rem_other", "rem_indptr",
            "add_s_u", "add_s_v", "add_u", "add_v", "add_indptr",
        ):
            assert np.array_equal(
                getattr(loaded, column), getattr(delta, column)
            ), column

    def test_dir_round_trip_with_mmap(self, tmp_path):
        delta = DeltaStore.build(5)
        path = delta.save(str(tmp_path / "deltas"), format="dir")
        assert os.path.isdir(path)
        loaded = DeltaStore.load(path, mmap=True)
        scenario = build_scenario("random_weights", 5, seed=2)
        ts = default_t_grid(5, 6)
        matrix = scenario.model.coefficient_matrix(5)
        assert np.array_equal(
            loaded.stable_counts_multi([matrix], ts),
            delta.stable_counts_multi([matrix], ts),
        )

    def test_mmap_rejected_for_npz(self, tmp_path):
        delta = DeltaStore.build(3)
        path = delta.save(str(tmp_path / "deltas.npz"))
        with pytest.raises(ValueError):
            DeltaStore.load(path, mmap=True)

    def test_rejects_foreign_artifact(self, tmp_path):
        """A weighted-store artifact at the path is refused, not mis-read."""
        scenario = build_scenario("random_weights", 4, seed=0)
        foreign = WeightedStore.from_scenario(scenario)
        path = foreign.save(str(tmp_path / "other.npz"))
        with pytest.raises(ValueError):
            DeltaStore.load(path)

    def test_graph_at_decodes_certificates(self):
        delta = DeltaStore.build(4)
        graphs = [delta.graph_at(i) for i in range(len(delta))]
        assert sorted(g.num_edges for g in graphs) == sorted(
            int(m) for m in delta.num_edges
        )
        assert all(g.n == 4 for g in graphs)


class TestStreamedBuild:
    def test_streamed_equals_build(self):
        direct = DeltaStore.build(5)
        streamed = DeltaStore.build_streamed(5)
        for column in (
            "num_edges", "dist_total", "cert_words",
            "rem_delta", "rem_pay", "rem_other", "rem_indptr",
            "add_s_u", "add_s_v", "add_u", "add_v", "add_indptr",
        ):
            assert np.array_equal(
                getattr(streamed, column), getattr(direct, column)
            ), column

    def test_shard_resume_recomputes_corrupt_shard(self, tmp_path):
        shard_dir = str(tmp_path / "shards")
        first = DeltaStore.build_streamed(5, shard_dir=shard_dir)
        shards = sorted(
            f for f in os.listdir(shard_dir) if f.startswith("dshard_")
        )
        assert shards
        # Crash-truncated shard: silently recomputed on resume.
        victim = os.path.join(shard_dir, shards[0])
        with open(victim, "rb") as handle:
            payload = handle.read()
        with open(victim, "wb") as handle:
            handle.write(payload[:40])  # truncate mid-archive
        status, part = load_shard(victim, "irrelevant")
        assert status == "corrupt" and part is None
        with pytest.warns(RuntimeWarning, match="failed validation"):
            second = DeltaStore.build_streamed(5, shard_dir=shard_dir)
        assert np.array_equal(first.rem_delta, second.rem_delta)
        assert np.array_equal(first.cert_words, second.cert_words)

    def test_shard_dir_bound_to_n(self, tmp_path):
        """A readable shard from another n raises instead of merging."""
        shard_dir = str(tmp_path / "shards")
        DeltaStore.build_streamed(4, shard_dir=shard_dir, shard_level=2)
        with pytest.raises(ValueError):
            DeltaStore.build_streamed(5, shard_dir=shard_dir, shard_level=2)


class TestCachedDeltaStore:
    def setup_method(self):
        clear_store_cache()

    def teardown_method(self):
        clear_store_cache()

    def test_build_cache_hit(self):
        first = cached_delta_store(n=4)
        second = cached_delta_store(n=4)
        assert first is second

    def test_load_cache_hit_and_stamp_invalidation(self, tmp_path):
        delta = DeltaStore.build(4)
        path = str(tmp_path / "deltas.npz")
        delta.save(path)
        first = cached_delta_store(path=path)
        assert cached_delta_store(path=path) is first
        # Rewriting the artifact changes the (mtime_ns, size) stamp.
        DeltaStore.build(4).save(path)
        os.utime(path, ns=(1, 1))
        assert cached_delta_store(path=path) is not first

    def test_requires_exactly_one_of_n_and_path(self, tmp_path):
        with pytest.raises(ValueError):
            cached_delta_store()
        with pytest.raises(ValueError):
            cached_delta_store(n=4, path=str(tmp_path / "x.npz"))

    def test_shares_budget_with_census_cache(self):
        """Delta entries live in the same LRU as cached_store entries."""
        from repro.analysis import store as store_module

        cached_delta_store(n=3)
        assert any(
            key[0] == "delta-build" for key in store_module._STORE_CACHE
        )


class TestOrdering:
    def test_sort_canonical_is_identity_on_built_store(self):
        delta = DeltaStore.build(5)
        sorted_store = delta.sort_canonical()
        for column in ("num_edges", "cert_words", "rem_delta", "rem_indptr"):
            assert np.array_equal(
                getattr(sorted_store, column), getattr(delta, column)
            ), column

    def test_permute_round_trip(self):
        delta = DeltaStore.build(4)
        order = np.arange(len(delta))[::-1].copy()
        reversed_store = delta.permute(order)
        restored = reversed_store.permute(order)
        for column in (
            "num_edges", "dist_total", "cert_words",
            "rem_delta", "rem_pay", "rem_other", "rem_indptr",
            "add_s_u", "add_s_v", "add_u", "add_v", "add_indptr",
        ):
            assert np.array_equal(
                getattr(restored, column), getattr(delta, column)
            ), column
