"""Unit tests for the graph generators."""

import random

import pytest

from repro.graphs import (
    Graph,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    complete_multipartite_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    hypercube_graph,
    is_connected,
    is_cycle_graph,
    is_path_graph,
    is_regular,
    is_star,
    is_tree,
    lcf_graph,
    path_graph,
    random_connected_graph,
    random_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    tree_from_prufer,
    wheel_graph,
)


class TestDeterministicGenerators:
    def test_empty_graph(self):
        assert empty_graph(5).num_edges == 0

    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in range(6))

    def test_path_and_cycle(self):
        assert is_path_graph(path_graph(7))
        assert is_cycle_graph(cycle_graph(7))
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7, center=2)
        assert is_star(g)
        assert g.degree(2) == 6
        with pytest.raises(ValueError):
            star_graph(3, center=5)
        with pytest.raises(ValueError):
            star_graph(0)

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.n == 5
        assert g.num_edges == 6
        assert g.degree(0) == 3
        assert g.degree(4) == 2

    def test_complete_multipartite(self):
        g = complete_multipartite_graph([2, 2, 2])
        assert g.n == 6
        assert g.num_edges == 12
        assert is_regular(g)

    def test_wheel(self):
        g = wheel_graph(6)
        assert g.num_edges == 10
        assert g.degree(5) == 5
        with pytest.raises(ValueError):
            wheel_graph(3)

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert g.n == 8
        assert g.num_edges == 12
        assert is_regular(g)

    def test_grid(self):
        g = grid_graph(2, 3)
        assert g.n == 6
        assert g.num_edges == 7
        assert is_connected(g)

    def test_circulant(self):
        g = circulant_graph(7, [1, 2])
        assert is_regular(g)
        assert g.degree(0) == 4

    def test_lcf_requires_consistent_length(self):
        with pytest.raises(ValueError):
            lcf_graph(10, [5, -5], 7)

    def test_lcf_heawood_is_cubic(self):
        g = lcf_graph(14, [5, -5], 7)
        assert is_regular(g)
        assert g.degree(0) == 3


class TestRandomGenerators:
    def test_random_graph_edge_bounds(self):
        rng = random.Random(1)
        g = random_graph(8, 0.0, rng)
        assert g.num_edges == 0
        g = random_graph(8, 1.0, rng)
        assert g.num_edges == 28

    def test_random_graph_reproducible(self):
        assert random_graph(8, 0.5, random.Random(7)) == random_graph(8, 0.5, random.Random(7))

    def test_random_connected_graph_is_connected(self):
        for seed in range(5):
            g = random_connected_graph(9, 0.1, random.Random(seed))
            assert is_connected(g)

    def test_random_tree_is_tree(self):
        for seed in range(5):
            assert is_tree(random_tree(8, random.Random(seed)))
        assert random_tree(1).n == 1
        assert random_tree(2).num_edges == 1

    def test_tree_from_prufer_known_example(self):
        # Prüfer sequence (3, 3, 3, 4) encodes a tree on 6 vertices where
        # vertex 3 has degree 3 and vertex 4 has degree 2.
        tree = tree_from_prufer([3, 3, 3, 4])
        assert is_tree(tree)
        assert tree.degree(3) == 4
        assert tree.degree(4) == 2

    def test_tree_from_prufer_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            tree_from_prufer([9])

    def test_random_regular_graph(self):
        g = random_regular_graph(8, 3, random.Random(5))
        assert is_regular(g)
        assert g.degree(0) == 3

    def test_random_regular_graph_parity_check(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)
        with pytest.raises(ValueError):
            random_regular_graph(4, 4)
