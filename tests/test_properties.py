"""Unit tests for structural graph properties."""

from repro.graphs import (
    INFINITY,
    Graph,
    bridges,
    complete_bipartite_graph,
    complete_graph,
    connected_components,
    cycle_graph,
    edge_connectivity_at_least_two,
    girth,
    hypercube_graph,
    is_bipartite,
    is_complete,
    is_connected,
    is_cycle_graph,
    is_empty,
    is_forest,
    is_path_graph,
    is_regular,
    is_star,
    is_tree,
    num_common_neighbors,
    path_graph,
    petersen_graph,
    regular_degree,
    star_graph,
)


class TestConnectivity:
    def test_connected_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3], [4]]

    def test_is_connected(self):
        assert is_connected(path_graph(5))
        assert not is_connected(Graph(3, [(0, 1)]))
        assert is_connected(Graph(1))
        assert is_connected(Graph(0))

    def test_bridges_in_path(self):
        assert bridges(path_graph(4)) == [(0, 1), (1, 2), (2, 3)]

    def test_no_bridges_in_cycle(self):
        assert bridges(cycle_graph(5)) == []

    def test_bridge_between_two_triangles(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
        assert bridges(g) == [(2, 3)]

    def test_edge_connectivity_at_least_two(self):
        assert edge_connectivity_at_least_two(cycle_graph(4))
        assert not edge_connectivity_at_least_two(path_graph(4))
        assert not edge_connectivity_at_least_two(Graph(3, [(0, 1)]))


class TestShapePredicates:
    def test_tree_and_forest(self):
        assert is_tree(path_graph(5))
        assert is_tree(star_graph(6))
        assert not is_tree(cycle_graph(4))
        assert not is_tree(Graph(3, [(0, 1)]))
        assert is_forest(Graph(4, [(0, 1), (2, 3)]))
        assert not is_forest(cycle_graph(3))

    def test_regularity(self):
        assert is_regular(cycle_graph(5))
        assert regular_degree(cycle_graph(5)) == 2
        assert regular_degree(petersen_graph()) == 3
        assert not is_regular(star_graph(4))
        assert regular_degree(star_graph(4)) is None

    def test_complete_and_empty(self):
        assert is_complete(complete_graph(4))
        assert not is_complete(cycle_graph(4))
        assert is_empty(Graph(3))
        assert not is_empty(path_graph(3))

    def test_star(self):
        assert is_star(star_graph(5))
        assert is_star(star_graph(5, center=3))
        assert not is_star(path_graph(4))
        assert not is_star(Graph(1))
        assert is_star(path_graph(3))  # P_3 is also K_{1,2}

    def test_cycle_and_path(self):
        assert is_cycle_graph(cycle_graph(6))
        assert not is_cycle_graph(path_graph(6))
        assert is_path_graph(path_graph(6))
        assert not is_path_graph(star_graph(5))
        assert is_path_graph(Graph(1))


class TestGirth:
    def test_girth_of_forest_is_infinite(self):
        assert girth(path_graph(5)) == INFINITY

    def test_girth_of_cycles(self):
        for n in range(3, 9):
            assert girth(cycle_graph(n)) == n

    def test_girth_of_complete_graph(self):
        assert girth(complete_graph(5)) == 3

    def test_girth_of_petersen(self):
        assert girth(petersen_graph()) == 5

    def test_girth_of_hypercube(self):
        assert girth(hypercube_graph(3)) == 4


class TestMisc:
    def test_bipartite(self):
        assert is_bipartite(complete_bipartite_graph(3, 4))
        assert is_bipartite(path_graph(5))
        assert not is_bipartite(cycle_graph(5))
        assert is_bipartite(cycle_graph(6))

    def test_common_neighbors(self):
        g = complete_graph(4)
        assert num_common_neighbors(g, 0, 1) == 2
        star = star_graph(5)
        assert num_common_neighbors(star, 1, 2) == 1
        assert num_common_neighbors(star, 0, 1) == 0
