"""Smoke tests for the public package surface."""

import repro
import repro.analysis
import repro.core
import repro.experiments
import repro.graphs


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_subpackage_exports_resolve():
    for module in (repro.graphs, repro.core, repro.analysis, repro.experiments):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_docstring_quickstart_example():
    from repro import BilateralConnectionGame, star_graph

    game = BilateralConnectionGame(n=8, alpha=3.0)
    star = star_graph(8)
    assert game.is_pairwise_stable(star)
    assert round(game.price_of_anarchy(star), 3) == 1.0
