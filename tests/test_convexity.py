"""Unit tests for the convexity notions (Definitions 4 and 6, Lemma 1)."""

from repro.core import (
    cost_convexity_violations,
    is_cost_convex,
    is_cost_convex_for_player,
    is_link_convex,
    link_convexity_gap,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    desargues_graph,
    dodecahedral_graph,
    heawood_graph,
    mcgee_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestCostConvexity:
    """Lemma 1: the BCG cost function is convex on every graph."""

    def test_canonical_graphs_are_cost_convex(self):
        for graph in (
            complete_graph(5),
            star_graph(6),
            cycle_graph(7),
            path_graph(6),
            petersen_graph(),
        ):
            assert is_cost_convex(graph)

    def test_per_player_check(self, small_random_graphs):
        for graph in small_random_graphs:
            for player in range(graph.n):
                assert is_cost_convex_for_player(graph, player)

    def test_violations_list_is_empty(self):
        assert cost_convexity_violations(cycle_graph(6), 0) == []

    def test_max_subset_size_limits_enumeration(self):
        # With subsets of size at most 1 the check is trivially satisfied.
        assert is_cost_convex_for_player(complete_graph(6), 0, max_subset_size=1)

    def test_disconnected_graph_is_cost_convex_under_infinity_convention(self):
        assert is_cost_convex(Graph(4, [(0, 1), (2, 3)]))


class TestLinkConvexity:
    def test_cages_are_link_convex(self):
        for graph in (petersen_graph(), heawood_graph(), mcgee_graph()):
            assert is_link_convex(graph)

    def test_cycles_are_link_convex(self):
        for n in (5, 6, 8, 10):
            assert is_link_convex(cycle_graph(n))

    def test_star_is_link_convex(self):
        assert is_link_convex(star_graph(6))

    def test_complete_graph_is_link_convex(self):
        # No missing links: the max saving is -inf, trivially below the min increase.
        assert is_link_convex(complete_graph(5))

    def test_dodecahedral_graph_is_not_link_convex(self):
        # Section 4.1 of the paper.
        assert not is_link_convex(dodecahedral_graph())

    def test_desargues_graph_measured_values(self):
        # The paper's side remark claims the Desargues graph is link convex;
        # exact computation disagrees (documented deviation, see EXPERIMENTS.md).
        saving, increase = link_convexity_gap(desargues_graph())
        assert saving == 10
        assert increase == 8
        assert not is_link_convex(desargues_graph())

    def test_disconnected_graph_is_not_link_convex(self):
        assert not is_link_convex(Graph(4, [(0, 1), (2, 3)]))

    def test_gap_values_for_cycle(self):
        saving, increase = link_convexity_gap(cycle_graph(8))
        assert saving == 5
        assert increase == 12

    def test_path_graph_not_link_convex(self):
        # Adding a chord to a path saves more than severing a leaf edge costs... the
        # leaf edges are bridges (infinite increase) but the chord saving is finite;
        # the binding comparison is the chord saving (2) vs the bridge increase (inf):
        # every removal increase is infinite, so the path *is* link convex.
        assert is_link_convex(path_graph(5))
