"""Unit and crash-matrix tests for the fault-tolerant shard runner.

Two layers:

* :func:`repro.engine.run_shards` in isolation — parity across serial and
  pooled execution, in-order streaming, checksummed resume, fingerprint
  rejection, manifest/heartbeat contents, and every recovery path (worker
  crash, hang past the deadline, torn write, bit rot, serial fallback)
  driven by real process death and real corrupt bytes via
  :mod:`repro.engine.faults`;
* the crash-resume matrix over all three columnar stores — for each of
  census / weighted / delta and each fault kind, an interrupted or faulted
  build followed by a resume must yield an artifact **bit-identical** to an
  uninterrupted build, and a shard belonging to a different configuration
  must be rejected, never merged.
"""

import json
import os

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.delta_store import DeltaStore
from repro.analysis.store import CensusStore
from repro.analysis.weighted_store import WeightedStore
from repro.costmodels import UniformCost
from repro.engine.faults import (
    CRASH_EXIT_CODE,
    Fault,
    FaultInjected,
    FaultPlan,
    active_plan,
    flip_byte,
    parse_plan,
)
from repro.engine.shardwork import (
    MANIFEST_SCHEMA,
    config_fingerprint,
    content_checksum,
    load_shard,
    manifest_path,
    run_shards,
    save_shard,
    shard_path,
)


def _double(payload):
    """Picklable shard worker: ints in, column dicts out."""
    return {"values": np.arange(int(payload), dtype=np.int64) * 2}


def _boom(payload):
    raise ValueError(f"boom {payload}")


PAYLOADS = [3, 1, 4, 1, 5]
FINGERPRINT = {"kind": "test", "n": 5}


def expected_parts():
    return [_double(p) for p in PAYLOADS]


def assert_parts_equal(parts):
    for part, want in zip(parts, expected_parts()):
        assert sorted(part) == sorted(want)
        for name in want:
            assert np.array_equal(part[name], want[name])


# --------------------------------------------------------------------------- #
# Fingerprints, checksums, shard files
# --------------------------------------------------------------------------- #


def test_config_fingerprint_is_order_and_container_insensitive():
    a = config_fingerprint({"n": 5, "kind": "x", "w": [1.0, 2.0]})
    b = config_fingerprint({"w": np.array([1.0, 2.0]), "kind": "x", "n": 5})
    assert a == b
    assert a != config_fingerprint({"n": 6, "kind": "x", "w": [1.0, 2.0]})
    with pytest.raises(TypeError):
        config_fingerprint({"bad": object()})


def test_content_checksum_sees_values_dtypes_and_names():
    base = {"a": np.arange(4), "b": np.ones(3)}
    assert content_checksum(base) == content_checksum(
        {"b": np.ones(3), "a": np.arange(4)}
    )
    assert content_checksum(base) != content_checksum(
        {"a": np.arange(4), "b": np.ones(4)}
    )
    assert content_checksum({"a": np.arange(4)}) != content_checksum(
        {"a": np.arange(4).astype(np.int32)}
    )


def test_save_load_shard_roundtrip_and_rejections(tmp_path):
    fp = config_fingerprint(FINGERPRINT)
    path = shard_path(str(tmp_path), "shard", 0, 1)
    part = {"values": np.arange(7, dtype=np.int64)}
    save_shard(path, part, fp)
    status, loaded = load_shard(path, fp)
    assert status == "ok"
    assert np.array_equal(loaded["values"], part["values"])

    # Missing file.
    assert load_shard(shard_path(str(tmp_path), "shard", 1, 1), fp) == (
        "missing",
        None,
    )
    # A different build configuration must raise, not merge.
    with pytest.raises(ValueError, match="different build configuration"):
        load_shard(path, config_fingerprint({"kind": "test", "n": 6}))
    # Legacy files (no schema tag) count as corrupt and are recomputed.
    legacy = os.path.join(str(tmp_path), "legacy.npz")
    np.savez(legacy, values=np.arange(3))
    assert load_shard(legacy, fp) == ("corrupt", None)
    # Bit rot is caught by the content checksum, not by "does it load?".
    flip_byte(path)
    assert load_shard(path, fp)[0] == "corrupt"
    # Metadata-reserved column names are rejected up front.
    with pytest.raises(ValueError, match="collides with shard metadata"):
        save_shard(path, {"__values__": np.arange(3)}, fp)


# --------------------------------------------------------------------------- #
# The coordinator: parity, ordering, resume, manifests
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("jobs", [None, 2])
def test_run_shards_parity_across_jobs(jobs):
    report = run_shards(_double, PAYLOADS, jobs=jobs)
    assert report.total == len(PAYLOADS)
    assert report.computed == len(PAYLOADS)
    assert report.resumed == 0
    assert_parts_equal(report.parts)


@pytest.mark.parametrize("jobs", [None, 2])
def test_consume_streams_strictly_in_index_order(jobs):
    seen = []

    def fold(index, part):
        seen.append((index, part))

    report = run_shards(_double, PAYLOADS, jobs=jobs, consume=fold)
    assert report.parts is None
    assert [index for index, _ in seen] == list(range(len(PAYLOADS)))
    assert_parts_equal([part for _, part in seen])


def test_resume_reuses_every_verified_shard(tmp_path):
    shard_dir = str(tmp_path / "shards")
    first = run_shards(
        _double, PAYLOADS, shard_dir=shard_dir, fingerprint=FINGERPRINT
    )
    assert first.computed == len(PAYLOADS)
    second = run_shards(
        _double, PAYLOADS, shard_dir=shard_dir, fingerprint=FINGERPRINT
    )
    assert second.resumed == len(PAYLOADS)
    assert second.computed == 0
    assert_parts_equal(second.parts)

    manifest = json.loads(
        open(manifest_path(shard_dir), encoding="utf-8").read()
    )
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["done"] == manifest["total"] == len(PAYLOADS)
    assert manifest["resumed"] == len(PAYLOADS)
    assert manifest["finished_at"] is not None
    assert manifest["fingerprint"] == config_fingerprint(FINGERPRINT)
    assert all(
        shard["state"] == "done" and shard["source"] == "resumed"
        for shard in manifest["shards"].values()
    )


def test_shard_dir_requires_a_fingerprint(tmp_path):
    with pytest.raises(ValueError, match="requires a fingerprint"):
        run_shards(_double, PAYLOADS, shard_dir=str(tmp_path))


def test_wrong_config_shard_dir_is_rejected(tmp_path):
    shard_dir = str(tmp_path / "shards")
    run_shards(_double, PAYLOADS, shard_dir=shard_dir, fingerprint=FINGERPRINT)
    with pytest.raises(ValueError, match="different build configuration"):
        run_shards(
            _double,
            PAYLOADS,
            shard_dir=shard_dir,
            fingerprint={"kind": "test", "n": 6},
        )


def test_corrupt_shard_is_recomputed_with_a_warning(tmp_path):
    shard_dir = str(tmp_path / "shards")
    first = run_shards(
        _double, PAYLOADS, shard_dir=shard_dir, fingerprint=FINGERPRINT
    )
    victim = shard_path(shard_dir, "shard", 2, len(PAYLOADS))
    flip_byte(victim)
    with pytest.warns(RuntimeWarning, match="failed validation"):
        resumed = run_shards(
            _double, PAYLOADS, shard_dir=shard_dir, fingerprint=FINGERPRINT
        )
    assert resumed.corrupt_resumes == 1
    assert resumed.resumed == len(PAYLOADS) - 1
    assert resumed.computed == 1
    assert_parts_equal(resumed.parts)
    assert resumed.manifest["corrupt_resumes"] == 1
    # The recomputed shard is byte-for-byte re-verifiable on the next run.
    assert load_shard(victim, config_fingerprint(FINGERPRINT))[0] == "ok"
    del first


def test_progress_callback_sees_heartbeat_snapshots(tmp_path):
    snapshots = []
    report = run_shards(
        _double,
        PAYLOADS,
        manifest_dir=str(tmp_path),
        fingerprint=FINGERPRINT,
        progress=snapshots.append,
    )
    assert snapshots, "progress hook never fired"
    final = snapshots[-1]
    assert final["done"] == final["total"] == len(PAYLOADS)
    assert final["finished_at"] is not None
    assert report.manifest_path == manifest_path(str(tmp_path))
    assert os.path.exists(report.manifest_path)
    assert_parts_equal(report.parts)


@pytest.mark.parametrize("jobs", [None, 2])
def test_worker_errors_propagate(jobs):
    with pytest.raises(ValueError, match="boom"):
        run_shards(_boom, PAYLOADS, jobs=jobs, max_retries=0)


def test_negative_max_retries_is_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        run_shards(_double, PAYLOADS, max_retries=-1)


# --------------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------------- #


def test_parse_plan_specs():
    plan = parse_plan("crash@2,hang@0*3", spool="/tmp/x", hang_seconds=2.5)
    assert plan.faults == (Fault("crash", 2), Fault("hang", 0, times=3))
    assert plan.spool == "/tmp/x"
    assert plan.hang_seconds == 2.5
    with pytest.raises(ValueError, match="bad fault spec"):
        parse_plan("crash")
    with pytest.raises(ValueError, match="unknown fault kind"):
        parse_plan("melt@0")
    with pytest.raises(ValueError):
        Fault("crash", 0, times=0)


def test_active_plan_reads_the_environment(tmp_path):
    assert active_plan({}) is None
    plan = active_plan(
        {
            "REPRO_FAULTS": "torn@1",
            "REPRO_FAULT_SPOOL": str(tmp_path),
            "REPRO_FAULT_HANG_SECONDS": "1.5",
        }
    )
    assert plan.faults == (Fault("torn", 1),)
    assert plan.spool == str(tmp_path)
    assert plan.hang_seconds == 1.5


def test_spool_bounds_fault_firings(tmp_path):
    plan = FaultPlan(faults=(Fault("flip", 0, times=2),), spool=str(tmp_path))
    assert plan.claim("flip", 0)
    assert plan.claim("flip", 0)
    assert not plan.claim("flip", 0)
    assert not plan.claim("flip", 1)
    assert not plan.claim("crash", 0)


# --------------------------------------------------------------------------- #
# Runner recovery paths, driven by real faults
# --------------------------------------------------------------------------- #


def test_crash_recovery_requeues_only_incomplete_shards(tmp_path):
    plan = FaultPlan(faults=(Fault("crash", 1),), spool=str(tmp_path / "spool"))
    report = run_shards(_double, PAYLOADS, jobs=2, fault_plan=plan)
    assert_parts_equal(report.parts)
    assert report.retries >= 1
    assert report.pool_rebuilds >= 1
    assert report.computed == len(PAYLOADS)


def test_hang_recovery_kills_the_pool_and_retries(tmp_path):
    plan = FaultPlan(
        faults=(Fault("hang", 0),),
        spool=str(tmp_path / "spool"),
        hang_seconds=60.0,
    )
    report = run_shards(_double, PAYLOADS, jobs=2, timeout=1.5, fault_plan=plan)
    assert_parts_equal(report.parts)
    assert report.timeouts >= 1
    assert report.pool_rebuilds >= 1


def test_torn_write_aborts_then_resume_recovers(tmp_path):
    shard_dir = str(tmp_path / "shards")
    plan = FaultPlan(faults=(Fault("torn", 0),), spool=str(tmp_path / "spool"))
    with pytest.raises(FaultInjected, match="torn write"):
        run_shards(
            _double,
            PAYLOADS,
            shard_dir=shard_dir,
            fingerprint=FINGERPRINT,
            fault_plan=plan,
        )
    # The torn file sits under the final shard name; only the checksum
    # distinguishes it from a healthy shard.
    with pytest.warns(RuntimeWarning, match="failed validation"):
        resumed = run_shards(
            _double, PAYLOADS, shard_dir=shard_dir, fingerprint=FINGERPRINT
        )
    assert resumed.corrupt_resumes >= 1
    assert_parts_equal(resumed.parts)


def test_serial_fallback_finishes_a_shard_that_keeps_killing_workers(tmp_path):
    # Shard 0 crashes its worker on every pool attempt; after max_retries
    # the parent runs it serially, where worker faults are off by design.
    plan = FaultPlan(
        faults=(Fault("crash", 0, times=10),), spool=str(tmp_path / "spool")
    )
    report = run_shards(
        _double, PAYLOADS, jobs=2, max_retries=1, fault_plan=plan
    )
    assert_parts_equal(report.parts)
    assert report.serial_fallbacks >= 1
    assert report.manifest_path is None  # no manifest_dir: nothing on disk
    serial = [
        s for s in report.manifest["shards"].values() if s["source"] == "serial"
    ]
    assert serial and all(s["state"] == "done" for s in serial)
    assert CRASH_EXIT_CODE == 13


# --------------------------------------------------------------------------- #
# Crash-resume matrix over the three columnar stores
# --------------------------------------------------------------------------- #

N = 5


def _build_census(**kwargs):
    return CensusStore.build_streamed(N, include_ucg=False, shard_level=2, **kwargs)


def _build_weighted(**kwargs):
    return WeightedStore.build_streamed(N, UniformCost(1.0), shard_level=2, **kwargs)


def _build_delta(**kwargs):
    return DeltaStore.build_streamed(N, shard_level=2, **kwargs)


STORES = {
    "census": (_build_census, "shard"),
    "weighted": (_build_weighted, "wshard"),
    "delta": (_build_delta, "dshard"),
}


@pytest.fixture(scope="module")
def baselines():
    """Uninterrupted serial builds — the bit-identity reference."""
    return {
        name: builder().content_checksum()
        for name, (builder, _) in STORES.items()
    }


@pytest.mark.parametrize("store_name", sorted(STORES))
def test_store_survives_worker_crash(tmp_path, baselines, store_name):
    builder, _ = STORES[store_name]
    plan = FaultPlan(faults=(Fault("crash", 1),), spool=str(tmp_path / "spool"))
    shard_dir = str(tmp_path / "shards")
    store = builder(jobs=2, shard_dir=shard_dir, fault_plan=plan)
    assert store.content_checksum() == baselines[store_name]
    manifest = json.loads(
        open(manifest_path(shard_dir), encoding="utf-8").read()
    )
    assert manifest["retries"] >= 1
    assert manifest["done"] == manifest["total"]


@pytest.mark.parametrize("store_name", sorted(STORES))
def test_store_survives_hung_worker(tmp_path, baselines, store_name):
    builder, _ = STORES[store_name]
    plan = FaultPlan(
        faults=(Fault("hang", 0),),
        spool=str(tmp_path / "spool"),
        hang_seconds=60.0,
    )
    shard_dir = str(tmp_path / "shards")
    store = builder(jobs=2, shard_dir=shard_dir, timeout=2.0, fault_plan=plan)
    assert store.content_checksum() == baselines[store_name]
    manifest = json.loads(
        open(manifest_path(shard_dir), encoding="utf-8").read()
    )
    assert manifest["timeouts"] >= 1


@pytest.mark.parametrize("store_name", sorted(STORES))
def test_store_resumes_bit_identical_after_torn_write(
    tmp_path, baselines, store_name
):
    builder, _ = STORES[store_name]
    shard_dir = str(tmp_path / "shards")
    plan = FaultPlan(faults=(Fault("torn", 0),), spool=str(tmp_path / "spool"))
    with pytest.raises(FaultInjected):
        builder(shard_dir=shard_dir, fault_plan=plan)
    with pytest.warns(RuntimeWarning, match="failed validation"):
        store = builder(shard_dir=shard_dir)
    assert store.content_checksum() == baselines[store_name]
    manifest = json.loads(
        open(manifest_path(shard_dir), encoding="utf-8").read()
    )
    assert manifest["corrupt_resumes"] >= 1


@pytest.mark.parametrize("store_name", sorted(STORES))
def test_store_resumes_bit_identical_after_bit_rot(
    tmp_path, baselines, store_name
):
    builder, prefix = STORES[store_name]
    shard_dir = tmp_path / "shards"
    builder(shard_dir=str(shard_dir))
    victim = sorted(shard_dir.glob(f"{prefix}_*.npz"))[0]
    flip_byte(str(victim))
    with pytest.warns(RuntimeWarning, match="failed validation"):
        store = builder(shard_dir=str(shard_dir))
    assert store.content_checksum() == baselines[store_name]


@pytest.mark.parametrize("store_name", sorted(STORES))
def test_store_rejects_wrong_config_shards(tmp_path, store_name):
    builder, _ = STORES[store_name]
    shard_dir = str(tmp_path / "shards")
    builder(shard_dir=shard_dir)
    # Same directory, different semantic configuration → the fingerprint
    # check must refuse to merge, never silently blend artifacts.
    other = {
        "census": lambda: CensusStore.build_streamed(
            N, include_ucg=True, shard_level=2, shard_dir=shard_dir
        ),
        "weighted": lambda: WeightedStore.build_streamed(
            N, UniformCost(2.0), shard_level=2, shard_dir=shard_dir
        ),
        "delta": lambda: DeltaStore.build_streamed(
            N + 1, shard_level=2, shard_dir=shard_dir
        ),
    }[store_name]
    with pytest.raises(ValueError, match="different build configuration"):
        other()


@pytest.mark.parametrize("store_name", sorted(STORES))
def test_store_verify_passes_on_faulted_builds(tmp_path, store_name):
    builder, _ = STORES[store_name]
    plan = FaultPlan(faults=(Fault("crash", 0),), spool=str(tmp_path / "spool"))
    store = builder(jobs=2, fault_plan=plan)
    audit = store.verify()
    assert audit["ok"], audit["errors"]
    assert audit["errors"] == []
