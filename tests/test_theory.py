"""Unit tests for the closed-form theory oracle."""

import math

import pytest

from repro.core import theory
from repro.core import social_cost
from repro.graphs import complete_graph, cycle_graph, path_graph, star_graph, total_distance


class TestTotalDistanceFormulas:
    def test_complete_graph(self):
        for n in (3, 5, 8):
            assert theory.complete_graph_total_distance(n) == total_distance(complete_graph(n))

    def test_star(self):
        for n in (2, 4, 7):
            assert theory.star_total_distance(n) == total_distance(star_graph(n))
        assert theory.star_total_distance(1) == 0

    def test_cycle(self):
        for n in (3, 4, 5, 8, 9):
            assert theory.cycle_total_distance(n) == total_distance(cycle_graph(n))
        with pytest.raises(ValueError):
            theory.cycle_total_distance(2)

    def test_path(self):
        for n in (2, 5, 8):
            assert theory.path_total_distance(n) == total_distance(path_graph(n))


class TestSocialCostFormulas:
    @pytest.mark.parametrize("alpha", [0.5, 2.0, 7.0])
    def test_match_direct_computation(self, alpha):
        n = 7
        assert theory.star_social_cost(n, alpha, "bcg") == social_cost(star_graph(n), alpha, "bcg")
        assert theory.complete_graph_social_cost(n, alpha, "ucg") == social_cost(
            complete_graph(n), alpha, "ucg"
        )
        assert theory.cycle_social_cost(n, alpha, "bcg") == social_cost(
            cycle_graph(n), alpha, "bcg"
        )


class TestCycleWindow:
    def test_window_cases(self):
        # n ≡ 2 (mod 4)
        assert theory.cycle_stability_window(6) == ((36 - 24 + 4) / 8, 6 * 4 / 4)
        # n ≡ 0 (mod 4)
        assert theory.cycle_stability_window(8) == ((64 - 32 + 8) / 8, 8 * 6 / 4)
        # odd n
        assert theory.cycle_stability_window(9) == ((9 - 3) * (9 + 1) / 8, (9 + 1) * (9 - 1) / 4)
        with pytest.raises(ValueError):
            theory.cycle_stability_window(2)

    def test_window_scale_is_quadratic(self):
        lo_small, _ = theory.cycle_stability_window(8)
        lo_large, _ = theory.cycle_stability_window(16)
        assert lo_large / lo_small == pytest.approx((16 / 8) ** 2, rel=0.35)

    def test_cycle_poa_is_bounded(self):
        for n in (6, 10, 20, 40):
            lo, hi = theory.cycle_stability_window(n)
            assert theory.cycle_poa_is_constant(n, (lo + hi) / 2) < 2.0


class TestBoundShapes:
    def test_lower_bound_shape(self):
        assert theory.poa_lower_bound_shape(0.5) == 1.0
        assert theory.poa_lower_bound_shape(8.0) == pytest.approx(3.0)

    def test_upper_bound_shape(self):
        assert theory.poa_upper_bound_shape(9.0) == pytest.approx(3.0)
        assert theory.poa_upper_bound_shape(9.0, n=6) == pytest.approx(2.0)
        assert theory.poa_upper_bound_shape(4.0, n=100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            theory.poa_upper_bound_shape(0.0)

    def test_moore_bound_reexport(self):
        assert theory.moore_bound_order(3, 2) == 10

    def test_proposition3_alpha_estimate(self):
        assert theory.proposition3_alpha_estimate(5) == 32.0

    def test_thresholds(self):
        assert theory.bcg_efficiency_threshold() == 1.0
        assert theory.ucg_efficiency_threshold() == 2.0
