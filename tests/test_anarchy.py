"""Unit tests for price-of-anarchy computations."""

import math

import pytest

from repro.core import (
    PoAComparison,
    average_price_of_anarchy,
    best_case_price_of_anarchy,
    compare_price_of_anarchy,
    poa_series,
    price_of_anarchy,
    worst_case_price_of_anarchy,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)


class TestPriceOfAnarchy:
    def test_efficient_graph_has_poa_one(self):
        assert price_of_anarchy(star_graph(6), 3.0, "bcg") == pytest.approx(1.0)
        assert price_of_anarchy(complete_graph(6), 0.5, "bcg") == pytest.approx(1.0)

    def test_poa_at_least_one(self):
        for graph in (cycle_graph(6), path_graph(6), complete_graph(6)):
            for alpha in (0.5, 2.0, 8.0):
                assert price_of_anarchy(graph, alpha, "bcg") >= 1.0 - 1e-12

    def test_disconnected_graph_has_infinite_poa(self):
        assert price_of_anarchy(Graph(4, [(0, 1)]), 2.0, "bcg") == float("inf")

    def test_single_player_degenerate_case(self):
        assert price_of_anarchy(Graph(1), 2.0, "bcg") == 1.0

    def test_ucg_and_bcg_denominators_differ(self):
        cycle = cycle_graph(6)
        assert price_of_anarchy(cycle, 1.5, "ucg") != price_of_anarchy(cycle, 1.5, "bcg")


class TestAggregates:
    def test_worst_average_best(self):
        graphs = [star_graph(6), cycle_graph(6), path_graph(6)]
        alpha = 3.0
        values = [price_of_anarchy(g, alpha, "bcg") for g in graphs]
        assert worst_case_price_of_anarchy(graphs, alpha, "bcg") == max(values)
        assert best_case_price_of_anarchy(graphs, alpha, "bcg") == min(values)
        assert average_price_of_anarchy(graphs, alpha, "bcg") == pytest.approx(
            sum(values) / len(values)
        )

    def test_empty_collection_gives_nan(self):
        assert math.isnan(worst_case_price_of_anarchy([], 2.0, "bcg"))
        assert math.isnan(average_price_of_anarchy([], 2.0, "bcg"))
        assert math.isnan(best_case_price_of_anarchy([], 2.0, "bcg"))

    def test_poa_series(self):
        alphas = [2.0, 3.0]
        graph_sets = [[star_graph(5)], [star_graph(5), cycle_graph(5)]]
        series = poa_series(graph_sets, alphas, "bcg", aggregate="average")
        assert len(series) == 2
        assert series[0] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            poa_series(graph_sets, [2.0], "bcg")
        with pytest.raises(ValueError):
            poa_series(graph_sets, alphas, "bcg", aggregate="median")


class TestFootnote6:
    def test_comparison_dataclass(self):
        comparison = compare_price_of_anarchy(cycle_graph(6), 3.0)
        assert isinstance(comparison, PoAComparison)
        assert comparison.rho_ucg >= 1.0
        assert comparison.rho_bcg >= 1.0
        assert comparison.satisfies_footnote6

    def test_footnote6_holds_on_many_graphs(self, small_random_graphs):
        for graph in small_random_graphs:
            for alpha in (1.5, 3.0, 10.0):
                assert compare_price_of_anarchy(graph, alpha).satisfies_footnote6

    def test_disconnected_graph_trivially_satisfies_footnote6(self):
        comparison = compare_price_of_anarchy(Graph(3, [(0, 1)]), 2.0)
        assert comparison.satisfies_footnote6
