"""Unit tests for strongly-regular graph detection."""

from repro.graphs import (
    clebsch_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    hoffman_singleton_graph,
    is_strongly_regular,
    octahedral_graph,
    path_graph,
    petersen_graph,
    satisfies_paper_srg_condition,
    star_graph,
    strongly_regular_parameters,
)


def test_petersen_parameters():
    params = strongly_regular_parameters(petersen_graph())
    assert params is not None
    assert params.as_tuple() == (10, 3, 0, 1)
    assert str(params) == "srg(10, 3, 0, 1)"


def test_clebsch_parameters():
    assert strongly_regular_parameters(clebsch_graph()).as_tuple() == (16, 5, 0, 2)


def test_octahedral_parameters():
    assert strongly_regular_parameters(octahedral_graph()).as_tuple() == (6, 4, 2, 4)


def test_hoffman_singleton_parameters():
    assert strongly_regular_parameters(hoffman_singleton_graph()).as_tuple() == (50, 7, 0, 1)


def test_cycle_c5_is_strongly_regular():
    assert strongly_regular_parameters(cycle_graph(5)).as_tuple() == (5, 2, 0, 1)


def test_complete_bipartite_is_strongly_regular():
    assert strongly_regular_parameters(complete_bipartite_graph(3, 3)).as_tuple() == (6, 3, 0, 3)


def test_non_srg_graphs():
    assert strongly_regular_parameters(path_graph(5)) is None
    assert strongly_regular_parameters(star_graph(5)) is None
    assert strongly_regular_parameters(cycle_graph(6)) is None
    assert not is_strongly_regular(cycle_graph(7))


def test_complete_and_empty_graphs_excluded_by_convention():
    assert strongly_regular_parameters(complete_graph(5)) is None
    assert strongly_regular_parameters(complete_graph(5).complement()) is None


def test_paper_condition_lambda_positive_mu_above_one():
    # The octahedral graph (6,4,2,4) satisfies λ > 0 and μ > 1 ...
    assert satisfies_paper_srg_condition(octahedral_graph())
    # ... while the Petersen and Clebsch graphs have λ = 0 and do not.
    assert not satisfies_paper_srg_condition(petersen_graph())
    assert not satisfies_paper_srg_condition(clebsch_graph())
    assert not satisfies_paper_srg_condition(path_graph(4))
