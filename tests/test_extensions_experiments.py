"""Integration tests for the extension experiments (prop2, transfers, stability)."""

from repro.experiments import available_experiments, run_experiment
from repro.experiments import extensions


def test_extension_experiments_are_registered():
    ids = available_experiments()
    for expected in ("prop2", "ext_transfers", "ext_stability"):
        assert expected in ids


def test_proposition2_experiment_reproduces():
    result = extensions.run_proposition2(census_n=5)
    assert result.all_passed
    assert result.tables


def test_transfers_experiment_reproduces():
    result = extensions.run_transfers(n=5, alphas=(1.5, 3.0, 8.0))
    assert result.all_passed
    assert "transfers" in result.title


def test_price_of_stability_experiment_reproduces():
    result = extensions.run_price_of_stability(n=5, alphas=(0.5, 2.0, 8.0))
    assert result.all_passed


def test_extension_experiments_run_via_registry():
    result = run_experiment("prop2")
    assert result.experiment_id == "prop2"


def test_dynamics_extension_experiment_reproduces():
    from repro.experiments import dynamics_extension

    result = dynamics_extension.run(n=4, alphas=(0.6, 2.0), epsilon=0.05)
    assert result.all_passed
    assert result.tables


def test_dynamics_extension_registered():
    assert "ext_dynamics" in available_experiments()
