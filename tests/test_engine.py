"""Equivalence tests for the bitset kernel and the incremental engine.

The PR that introduced the bitset graph kernel and :mod:`repro.engine` keeps
the seed's adjacency-set BFS as ``*_reference`` functions precisely so these
tests can assert, on random graphs (connected and disconnected, ``n <= 9``):

* word-parallel bitset BFS == reference BFS (plain, forbidden-edge and
  extra-edge variants);
* :class:`~repro.engine.DistanceOracle` toggle deltas == naive recomputation;
* stability profiles, census results and dynamics samples are identical
  through the engine, serially and through the process pool.
"""

import os
import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.census import EquilibriumCensus
from repro.core.dynamics import (
    pairwise_dynamics_bcg,
    sample_nash_networks_ucg,
    sample_stable_networks_bcg,
)
from repro.core.stability_intervals import distance_delta, pairwise_stability_profile
from repro.engine import (
    DistanceOracle,
    batch_stability_deltas,
    chunk_evenly,
    parallel_map,
    resolve_jobs,
)
from repro.graphs import (
    Graph,
    bfs_distances,
    bfs_distances_reference,
    bfs_distances_with_extra_edge,
    bfs_distances_with_extra_edge_reference,
    bfs_distances_with_forbidden_edge,
    bfs_distances_with_forbidden_edge_reference,
    bitset_distance_sum,
    distance_sum,
    distance_sum_reference,
    random_graph,
)

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


@st.composite
def graphs(draw, min_n=1, max_n=9):
    """Random small graphs over the full density range (often disconnected)."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [pair for pair, keep in zip(pairs, mask) if keep]
    return Graph(n, edges)


RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


# --------------------------------------------------------------------------- #
# Bitset BFS == reference BFS
# --------------------------------------------------------------------------- #


@RELAXED
@given(graphs())
def test_bitset_bfs_matches_reference(graph):
    for source in range(graph.n):
        assert bfs_distances(graph, source) == bfs_distances_reference(graph, source)
        assert distance_sum(graph, source) == distance_sum_reference(graph, source)


@RELAXED
@given(graphs(min_n=2))
def test_bitset_toggle_bfs_matches_reference(graph):
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            for source in (u, v):
                if graph.has_edge(u, v):
                    assert bfs_distances_with_forbidden_edge(
                        graph, source, (u, v)
                    ) == bfs_distances_with_forbidden_edge_reference(graph, source, (u, v))
                else:
                    assert bfs_distances_with_extra_edge(
                        graph, source, (u, v)
                    ) == bfs_distances_with_extra_edge_reference(graph, source, (u, v))


@RELAXED
@given(graphs(min_n=2))
def test_toggle_bfs_agrees_with_materialized_graph(graph):
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            toggled = graph.toggle_edge(u, v)
            if graph.has_edge(u, v):
                probe = bfs_distances_with_forbidden_edge(graph, u, (u, v))
            else:
                probe = bfs_distances_with_extra_edge(graph, u, (u, v))
            assert probe == bfs_distances(toggled, u)


def test_bitset_distance_sum_on_rows_matches_graph_api():
    rng = random.Random(7)
    for _ in range(50):
        n = rng.randint(1, 9)
        graph = random_graph(n, rng.random(), rng)
        for source in range(n):
            assert bitset_distance_sum(
                graph.adjacency_rows(), n, source
            ) == distance_sum(graph, source)


# --------------------------------------------------------------------------- #
# DistanceOracle deltas == naive recomputation
# --------------------------------------------------------------------------- #


@RELAXED
@given(graphs(min_n=2))
def test_oracle_deltas_match_naive(graph):
    oracle = DistanceOracle()
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            for endpoint in (u, v):
                if graph.has_edge(u, v):
                    naive = distance_delta(
                        sum(
                            bfs_distances_with_forbidden_edge_reference(
                                graph, endpoint, (u, v)
                            )
                        ),
                        distance_sum_reference(graph, endpoint),
                    )
                    assert oracle.removal_increase(graph, (u, v), endpoint) == naive
                    assert oracle.toggle_delta(graph, (u, v), endpoint) == naive
                else:
                    naive = distance_delta(
                        distance_sum_reference(graph, endpoint),
                        sum(
                            bfs_distances_with_extra_edge_reference(
                                graph, endpoint, (u, v)
                            )
                        ),
                    )
                    assert oracle.addition_saving(graph, (u, v), endpoint) == naive
                    assert oracle.toggle_delta(graph, (u, v), endpoint) == -naive


def test_oracle_cache_hits_return_identical_values():
    rng = random.Random(3)
    graph = random_graph(7, 0.4, rng)
    oracle = DistanceOracle()
    first = [oracle.distance_sum(graph, v) for v in range(graph.n)]
    hits_before = oracle.hits
    second = [oracle.distance_sum(graph, v) for v in range(graph.n)]
    assert first == second
    assert oracle.hits == hits_before + graph.n


def test_oracle_lru_eviction_bounds_memory():
    oracle = DistanceOracle(max_graphs=4)
    rng = random.Random(11)
    for _ in range(40):
        graph = random_graph(6, rng.random(), rng)
        oracle.distance_sums(graph)
    assert len(oracle) <= 4


def test_stability_profile_identical_through_oracle():
    """Profiles via the oracle are value-identical to the seed's naive path."""
    rng = random.Random(5)
    for _ in range(30):
        n = rng.randint(2, 7)
        graph = random_graph(n, rng.random(), rng)
        profile = pairwise_stability_profile(graph, oracle=DistanceOracle())

        base = [distance_sum_reference(graph, v) for v in range(n)]
        for (u, v) in graph.sorted_edges():
            for endpoint in (u, v):
                naive = distance_delta(
                    sum(bfs_distances_with_forbidden_edge_reference(graph, endpoint, (u, v))),
                    base[endpoint],
                )
                assert profile.removal_increase[((u, v), endpoint)] == naive
        for (u, v) in graph.non_edges():
            for endpoint in (u, v):
                naive = distance_delta(
                    base[endpoint],
                    sum(bfs_distances_with_extra_edge_reference(graph, endpoint, (u, v))),
                )
                assert profile.addition_saving[((u, v), endpoint)] == naive


# --------------------------------------------------------------------------- #
# Vectorised batch backend == per-graph oracle
# --------------------------------------------------------------------------- #


def test_batch_stability_deltas_match_oracle():
    rng = random.Random(13)
    pool = [random_graph(rng.randint(1, 9), rng.random(), rng) for _ in range(120)]
    pool.append(Graph(1))
    pool.append(Graph(4))  # disconnected, no edges
    batched = batch_stability_deltas(pool)
    oracle = DistanceOracle()
    assert len(batched) == len(pool)
    for graph, (removal, addition) in zip(pool, batched):
        ref_removal, ref_addition = oracle.stability_deltas(graph)
        assert removal == ref_removal
        assert addition == ref_addition


def test_batch_falls_back_to_oracle_for_wide_graphs():
    """Graphs with n > 63 exceed the int64 tensor lanes; the batch API must
    answer them through the per-graph oracle instead of crashing."""
    from repro.graphs import path_graph

    wide = path_graph(64)
    (removal, addition), = batch_stability_deltas([wide])
    ref_removal, ref_addition = DistanceOracle().stability_deltas(wide)
    assert removal == ref_removal
    assert addition == ref_addition


@RELAXED
@given(graphs())
def test_batch_profile_matches_profile_api(graph):
    (removal, addition), = batch_stability_deltas([graph])
    profile = pairwise_stability_profile(graph, oracle=DistanceOracle())
    assert removal == profile.removal_increase
    assert addition == profile.addition_saving


# --------------------------------------------------------------------------- #
# Pool semantics: identical results for any jobs value
# --------------------------------------------------------------------------- #


def test_chunk_evenly_partitions_in_order():
    items = list(range(11))
    for pieces in (1, 2, 3, 5, 11, 20):
        chunks = chunk_evenly(items, pieces)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunk for chunk in chunks)
        assert len(chunks) <= pieces
    assert chunk_evenly([], 4) == []


def test_resolve_jobs_semantics():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-1) >= 1


def test_parallel_map_preserves_order():
    items = list(range(23))
    assert parallel_map(_square, items, jobs=None) == [x * x for x in items]
    assert parallel_map(_square, items, jobs=4) == [x * x for x in items]


def _square(x):
    return x * x


def _square_crash_once(task):
    """Kill the worker the first time item 3 is seen; succeed ever after.

    The ``O_CREAT|O_EXCL`` marker makes "first time" race-free across
    processes, so the serial salvage pass computes the real value.
    """
    spool, value = task
    if value == 3:
        marker = os.path.join(spool, "crashed")
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            pass
        else:
            os._exit(13)
    return value * value


def test_parallel_map_salvages_completed_chunks_on_pool_breakage(tmp_path):
    items = [(str(tmp_path), value) for value in range(8)]
    with pytest.warns(RuntimeWarning, match="process pool failed"):
        results = parallel_map(_square_crash_once, items, jobs=2, chunksize=1)
    assert results == [value * value for _, value in items]
    assert os.path.exists(tmp_path / "crashed")


def test_parallel_census_matches_serial():
    serial = EquilibriumCensus.build(5, include_ucg=True, jobs=None)
    parallel = EquilibriumCensus.build(5, include_ucg=True, jobs=2)
    assert len(serial) == len(parallel) == 21
    for left, right in zip(serial.records, parallel.records):
        assert left.graph == right.graph
        assert left.bcg_profile.removal_increase == right.bcg_profile.removal_increase
        assert left.bcg_profile.addition_saving == right.bcg_profile.addition_saving
        assert [
            (iv.lo, iv.hi) for iv in left.ucg_alpha_set.intervals
        ] == [(iv.lo, iv.hi) for iv in right.ucg_alpha_set.intervals]
    for alpha in (0.5, 1.0, 2.5, 7.0):
        assert serial.stable_graphs_bcg(alpha) == parallel.stable_graphs_bcg(alpha)
        assert serial.nash_graphs_ucg(alpha) == parallel.nash_graphs_ucg(alpha)


def test_parallel_samplers_match_serial():
    serial_bcg = sample_stable_networks_bcg(6, 2.0, 8, seed=1, jobs=None)
    pooled_bcg = sample_stable_networks_bcg(6, 2.0, 8, seed=1, jobs=2)
    assert serial_bcg == pooled_bcg
    serial_ucg = sample_nash_networks_ucg(6, 2.0, 6, seed=1, jobs=None)
    pooled_ucg = sample_nash_networks_ucg(6, 2.0, 6, seed=1, jobs=2)
    assert serial_ucg == pooled_ucg


def test_oracle_accepts_unnormalized_edges_regardless_of_cache_state():
    graph = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    oracle = DistanceOracle()
    fresh_removal = oracle.removal_increase(graph, (1, 0), 0)
    fresh_addition = oracle.addition_saving(graph, (2, 0), 0)
    pairwise_stability_profile(graph, oracle=oracle)  # caches the full profile
    assert oracle.removal_increase(graph, (1, 0), 0) == fresh_removal
    assert oracle.addition_saving(graph, (2, 0), 0) == fresh_addition


def test_explicit_empty_oracle_is_actually_used():
    """A fresh DistanceOracle has len() == 0 and is falsy; the consumers must
    test `is None`, not truthiness, or they silently swap in the default."""
    oracle = DistanceOracle()
    assert not oracle  # the trap: empty oracle is falsy
    outcome = pairwise_dynamics_bcg(6, 2.0, rng=random.Random(5), oracle=oracle)
    assert outcome.rounds >= 1
    assert len(oracle) > 0 or oracle.misses > 0


def test_dynamics_fixed_points_unchanged_by_engine():
    """BCG dynamics through the oracle still lands on pairwise-stable graphs."""
    from repro.core.bilateral import is_pairwise_stable

    for alpha in (0.6, 2.0, 5.0):
        outcome = pairwise_dynamics_bcg(6, alpha, rng=random.Random(42))
        if outcome.converged:
            assert is_pairwise_stable(outcome.graph, alpha)


# --------------------------------------------------------------------------- #
# Kernel odds and ends the engine relies on
# --------------------------------------------------------------------------- #


def test_graph_pickles_across_the_pool_boundary():
    graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
    clone = pickle.loads(pickle.dumps(graph))
    assert clone == graph
    assert hash(clone) == hash(graph)
    assert clone.edges == graph.edges
    assert clone.adjacency_rows() == graph.adjacency_rows()


def test_has_edge_out_of_range_is_false_not_an_error():
    graph = Graph(3, [(0, 2)])
    assert not graph.has_edge(-1, 0)
    assert not graph.has_edge(0, -1)
    assert not graph.has_edge(0, 3)
    assert not graph.has_edge(5, 7)


def test_stability_deltas_returns_caller_owned_copies():
    graph = Graph(4, [(0, 1), (1, 2)])
    oracle = DistanceOracle()
    removal, addition = oracle.stability_deltas(graph)
    removal[((0, 1), 0)] = -123.0
    addition.clear()
    fresh_removal, fresh_addition = oracle.stability_deltas(graph)
    assert fresh_removal[((0, 1), 0)] != -123.0
    assert fresh_addition


def test_mutations_do_not_share_state():
    graph = Graph(4, [(0, 1)])
    bigger = graph.add_edge(2, 3)
    toggled = bigger.toggle_edge(0, 1)
    assert graph.edges == {(0, 1)}
    assert bigger.edges == {(0, 1), (2, 3)}
    assert toggled.edges == {(2, 3)}
    assert graph.adjacency_rows() != bigger.adjacency_rows()
