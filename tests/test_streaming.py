"""StreamingEnsembleStats: the regime-split accuracy contract.

Within the exact buffer every statistic must be bit-identical to the dense
:func:`ensemble_stats` kernel; past it, moments and extrema stay exact,
std agrees to float-noise, and quantiles land within P² sketch tolerance —
with the inf/nan patterns of all-infinite positions preserved either way.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.engine.columnar import ensemble_stats
from repro.engine.streaming import StreamingEnsembleStats


def dense_reference(stacked, quantiles=(0.25, 0.5, 0.75)):
    draws, length = stacked.shape
    indptr = np.arange(draws + 1, dtype=np.int64) * length
    return ensemble_stats(stacked.reshape(-1), indptr, quantiles=quantiles)


def feed(stacked, exact_buffer, block=7, quantiles=(0.25, 0.5, 0.75)):
    agg = StreamingEnsembleStats(
        stacked.shape[1], quantiles=quantiles, exact_buffer=exact_buffer
    )
    for start in range(0, stacked.shape[0], block):
        agg.update(stacked[start:start + block])
    return agg


def assert_same_list(a, b, context):
    a, b = np.asarray(a), np.asarray(b)
    same = (a == b) | (np.isnan(a) & np.isnan(b))
    assert same.all(), (context, a[~same][:5], b[~same][:5])


class TestExactRegime:
    def test_bit_identical_to_dense_kernel(self):
        rng = np.random.default_rng(0)
        stacked = rng.normal(size=(20, 30))
        got = feed(stacked, exact_buffer=64).finalize()
        ref = dense_reference(stacked)
        for key in ("mean", "std", "min", "max"):
            assert_same_list(got[key], ref[key], key)
        for q in (0.25, 0.5, 0.75):
            assert_same_list(got["quantiles"][q], ref["quantiles"][q], q)

    def test_all_inf_positions_match_dense_kernel(self):
        """Window columns of tree classes are +inf in every draw."""
        rng = np.random.default_rng(1)
        stacked = np.abs(rng.normal(size=(12, 8)))
        stacked[:, 3] = np.inf
        got = feed(stacked, exact_buffer=64).finalize()
        ref = dense_reference(stacked)
        assert got["mean"][3] == np.inf
        assert np.isnan(got["std"][3])
        for key in ("mean", "std", "min", "max"):
            assert_same_list(got[key], ref[key], key)
        for q in (0.25, 0.5, 0.75):
            assert_same_list(got["quantiles"][q], ref["quantiles"][q], q)


class TestStreamingRegime:
    def test_moments_and_extrema_exact_past_buffer(self):
        """mean/min/max stay bit-exact; std agrees to float noise."""
        rng = np.random.default_rng(2)
        stacked = np.exp(rng.normal(size=(400, 25)))
        got = feed(stacked, exact_buffer=16).finalize()
        ref = dense_reference(stacked)
        for key in ("mean", "min", "max"):
            assert_same_list(got[key], ref[key], key)
        assert np.allclose(got["std"], ref["std"], rtol=1e-9, atol=1e-12)

    def test_quantiles_within_sketch_tolerance(self):
        rng = np.random.default_rng(3)
        stacked = rng.uniform(0.0, 10.0, size=(1000, 12))
        got = feed(stacked, exact_buffer=32).finalize()
        ref = dense_reference(stacked)
        for q in (0.25, 0.5, 0.75):
            err = np.abs(
                np.asarray(got["quantiles"][q]) - np.asarray(ref["quantiles"][q])
            )
            # P² on 1000 uniform draws: a few percent of the data range.
            assert err.max() < 0.5, (q, err.max())

    def test_all_inf_positions_past_buffer(self):
        rng = np.random.default_rng(4)
        stacked = np.abs(rng.normal(size=(300, 6)))
        stacked[:, 2] = np.inf
        got = feed(stacked, exact_buffer=16).finalize()
        ref = dense_reference(stacked)
        assert got["mean"][2] == np.inf
        assert np.isnan(got["std"][2])
        assert got["min"][2] == np.inf and got["max"][2] == np.inf
        for q in (0.25, 0.5, 0.75):
            # inf-inf interpolation is nan in the dense kernel too.
            assert np.isnan(got["quantiles"][q][2]) == np.isnan(
                ref["quantiles"][q][2]
            )

    def test_batching_invariance(self):
        """Identical results for any update block size (row order fixed)."""
        rng = np.random.default_rng(5)
        stacked = rng.normal(size=(250, 15))
        results = [
            feed(stacked, exact_buffer=16, block=block).finalize()
            for block in (1, 9, 64, 250)
        ]
        for other in results[1:]:
            for key in ("mean", "std", "min", "max"):
                assert_same_list(results[0][key], other[key], key)
            for q in (0.25, 0.5, 0.75):
                assert_same_list(
                    results[0]["quantiles"][q], other["quantiles"][q], q
                )

    def test_state_size_independent_of_draws(self):
        rng = np.random.default_rng(6)
        small = feed(rng.normal(size=(100, 50)), exact_buffer=16)
        large = feed(rng.normal(size=(5000, 50)), exact_buffer=16)
        assert small.state_nbytes == large.state_nbytes

    def test_few_finite_values_fall_back_to_dense_quantile(self):
        """Positions with < 5 finite draws read the init buffer exactly."""
        stacked = np.full((40, 3), np.inf)
        stacked[:, 0] = np.arange(40.0)
        stacked[:3, 1] = [5.0, 1.0, 9.0]  # only 3 finite draws
        got = feed(stacked, exact_buffer=8).finalize()
        assert got["quantiles"][0.5][0] == pytest.approx(19.5, abs=1.5)
        assert np.isnan(got["quantiles"][0.5][2])


class TestValidation:
    def test_rejects_wrong_row_length(self):
        agg = StreamingEnsembleStats(4)
        with pytest.raises(ValueError):
            agg.update(np.zeros((2, 5)))

    def test_rejects_empty_finalize(self):
        with pytest.raises(ValueError):
            StreamingEnsembleStats(4).finalize()

    def test_rejects_negative_buffer(self):
        with pytest.raises(ValueError):
            StreamingEnsembleStats(4, exact_buffer=-1)

    def test_zero_length_positions(self):
        agg = StreamingEnsembleStats(0)
        agg.update(np.zeros((3, 0)))
        stats = agg.finalize()
        assert stats["mean"] == [] and stats["quantiles"][0.5] == []
