"""Unit tests for efficient networks (Lemmas 4 and 5 closed forms)."""

import pytest

from repro.core import (
    complete_graph_social_cost,
    efficiency_threshold,
    efficient_graph,
    efficient_social_cost,
    exhaustive_social_optimum,
    is_efficient,
    social_cost,
    star_social_cost,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    enumerate_connected_graphs,
    is_complete,
    is_star,
    star_graph,
)


class TestClosedForms:
    def test_complete_graph_cost_matches_direct_computation(self):
        for n in (3, 5, 7):
            for alpha in (0.5, 2.0):
                assert complete_graph_social_cost(n, alpha, "bcg") == social_cost(
                    complete_graph(n), alpha, "bcg"
                )
                assert complete_graph_social_cost(n, alpha, "ucg") == social_cost(
                    complete_graph(n), alpha, "ucg"
                )

    def test_star_cost_matches_direct_computation(self):
        for n in (3, 5, 8):
            for alpha in (0.5, 2.0, 10.0):
                assert star_social_cost(n, alpha, "bcg") == social_cost(
                    star_graph(n), alpha, "bcg"
                )
                assert star_social_cost(n, alpha, "ucg") == social_cost(
                    star_graph(n), alpha, "ucg"
                )

    def test_trivial_sizes(self):
        assert star_social_cost(1, 2.0) == 0.0
        assert efficient_social_cost(1, 5.0) == 0.0
        assert efficient_graph(1, 5.0).n == 1

    def test_invalid_game_name(self):
        with pytest.raises(ValueError):
            social_cost(star_graph(3), 1.0, "xyz")
        with pytest.raises(ValueError):
            efficiency_threshold("xyz")


class TestEfficientGraph:
    def test_thresholds(self):
        assert efficiency_threshold("bcg") == 1.0
        assert efficiency_threshold("ucg") == 2.0

    def test_bcg_optimum_switches_at_one(self):
        assert is_complete(efficient_graph(6, 0.5, "bcg"))
        assert is_star(efficient_graph(6, 1.5, "bcg"))

    def test_ucg_optimum_switches_at_two(self):
        assert is_complete(efficient_graph(6, 1.5, "ucg"))
        assert is_star(efficient_graph(6, 2.5, "ucg"))

    def test_costs_coincide_at_the_threshold(self):
        n = 6
        assert complete_graph_social_cost(n, 1.0, "bcg") == pytest.approx(
            star_social_cost(n, 1.0, "bcg")
        )
        assert complete_graph_social_cost(n, 2.0, "ucg") == pytest.approx(
            star_social_cost(n, 2.0, "ucg")
        )

    def test_is_efficient(self):
        assert is_efficient(star_graph(6), 3.0, "bcg")
        assert not is_efficient(cycle_graph(6), 3.0, "bcg")
        assert is_efficient(complete_graph(6), 0.5, "bcg")


class TestExhaustiveVerification:
    """Lemmas 4 and 5, verified against the full enumeration on 5 vertices."""

    @pytest.fixture(scope="class")
    def graphs5(self):
        return enumerate_connected_graphs(5)

    @pytest.mark.parametrize("alpha", [0.3, 0.7, 0.95])
    def test_complete_graph_uniquely_efficient_below_threshold(self, graphs5, alpha):
        best, optima = exhaustive_social_optimum(graphs5, alpha, "bcg")
        assert len(optima) == 1 and is_complete(optima[0])
        assert best == pytest.approx(efficient_social_cost(5, alpha, "bcg"))

    @pytest.mark.parametrize("alpha", [1.2, 3.0, 9.0])
    def test_star_uniquely_efficient_above_threshold(self, graphs5, alpha):
        best, optima = exhaustive_social_optimum(graphs5, alpha, "bcg")
        assert len(optima) == 1 and is_star(optima[0])
        assert best == pytest.approx(efficient_social_cost(5, alpha, "bcg"))

    def test_both_optimal_exactly_at_threshold(self, graphs5):
        _, optima = exhaustive_social_optimum(graphs5, 1.0, "bcg")
        assert any(is_complete(g) for g in optima)
        assert any(is_star(g) for g in optima)

    @pytest.mark.parametrize("alpha", [1.0, 2.5, 6.0])
    def test_ucg_optimum_matches_closed_form(self, graphs5, alpha):
        best, _ = exhaustive_social_optimum(graphs5, alpha, "ucg")
        assert best == pytest.approx(efficient_social_cost(5, alpha, "ucg"))
