"""Setup shim so that legacy editable installs work without the wheel package.

The environment used for the reproduction has no network access and no
``wheel`` distribution, so ``pip install -e .`` falls back to the legacy
``setup.py develop`` code path, which requires this file.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
