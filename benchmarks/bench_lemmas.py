"""Benchmarks: Lemmas 4, 5 (efficiency/stability thresholds) and 6 (cycles).

Each benchmark regenerates the corresponding lemma's computational check:
exhaustive verification of the efficient/stable sets below and above the
``α = 1`` threshold, and the cycle stability window with its O(1) price of
anarchy.
"""

from repro.core import is_pairwise_stable, pairwise_stability_interval, price_of_anarchy
from repro.core.theory import cycle_stability_window
from repro.experiments import lemmas
from repro.graphs import cycle_graph


def test_lemma4_exhaustive_check(benchmark, census6):
    result = benchmark.pedantic(lemmas.run_lemma4, kwargs={"n": 6}, rounds=1, iterations=1)
    assert result.all_passed


def test_lemma5_exhaustive_check(benchmark, census6):
    result = benchmark.pedantic(lemmas.run_lemma5, kwargs={"n": 6}, rounds=1, iterations=1)
    assert result.all_passed


def test_lemma6_cycle_experiment(benchmark):
    result = benchmark.pedantic(
        lemmas.run_lemma6, kwargs={"sizes": (5, 6, 8, 10, 12, 16, 20, 24)}, rounds=1, iterations=1
    )
    assert result.all_passed


def test_lemma6_single_cycle_analysis(benchmark):
    """Per-cycle cost of the exact stability window + PoA computation (C_16)."""

    def analyse():
        cycle = cycle_graph(16)
        lo, hi = pairwise_stability_interval(cycle)
        alpha = (lo + hi) / 2.0
        return is_pairwise_stable(cycle, alpha), price_of_anarchy(cycle, alpha, "bcg")

    stable, poa = benchmark(analyse)
    assert stable
    assert poa < 2.0


def test_lemma6_closed_form_window(benchmark):
    """The closed-form window itself (sanity baseline; effectively free)."""
    lo, hi = benchmark(cycle_stability_window, 24)
    assert 0 < lo < hi
