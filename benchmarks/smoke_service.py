"""CI smoke: the artifact server must serve CLI-identical answers.

Run as a script (no pytest needed)::

    PYTHONPATH=src python benchmarks/smoke_service.py --n 5

Drives the real CLI in subprocesses (a real server process, real sockets,
real signals) and checks the whole census-as-a-service chain:

* ``repro serve --dir ... --port 0`` starts, prints the bound port, and
  answers ``/healthz`` with the library version;
* ``/metrics`` is a parseable Prometheus exposition carrying the HTTP
  request counter and latency histogram;
* ``repro query grid`` renders a figure table **byte-identical** to
  ``repro census --load --grid`` computed locally in another process;
* 8 concurrent identical grid requests return identical payloads (and the
  server's batch-size histogram shows they were answered);
* SIGTERM drains the server cleanly (exit code 0).

Exits non-zero on the first failure.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC = os.path.join(REPO, "src")

sys.path.insert(0, os.path.join(REPO, "benchmarks"))
from smoke_metrics import parse_exposition  # noqa: E402  (same directory)


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(args):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=cli_env(), capture_output=True, text=True,
    )


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def start_server(artifact_dir):
    """``(process, base_url)`` for a serve subprocess on a free port."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--dir", artifact_dir, "--port", "0",
        ],
        env=cli_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", line)
    check(match is not None, f"serve did not announce a port: {line!r}")
    base = match.group(0)
    # Wait until /healthz answers (the announcement races the first accept
    # only in theory, but a poll keeps the smoke robust on slow machines).
    for _ in range(100):
        try:
            urllib.request.urlopen(base + "/healthz", timeout=1)
            break
        except OSError:
            time.sleep(0.05)
    else:
        check(False, "server never answered /healthz")
    return process, base


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.read().decode("utf-8")


def post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=5, help="census size (default 5)")
    parser.add_argument(
        "--points", type=int, default=12, help="grid points (default 12)"
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-service-") as tmp:
        artifact = os.path.join(tmp, f"census{args.n}.npz")

        # ---- build the artifact and capture the local CLI answer ------- #
        result = run_cli(["census", "--n", str(args.n), "--save", artifact])
        check(result.returncode == 0, f"census build failed:\n{result.stderr}")
        result = run_cli(
            ["census", "--load", artifact, "--grid", str(args.points)]
        )
        check(result.returncode == 0, f"census --load failed:\n{result.stderr}")
        local_figure = result.stdout.split("\n\n", 1)[1]

        process, base = start_server(tmp)
        try:
            # ---- /healthz carries the library version ------------------ #
            health = json.loads(get(base, "/healthz"))
            check(health["status"] == "ok", f"healthz status {health}")
            check(health["artifacts"] == 1, f"healthz artifacts {health}")
            version = run_cli(["--version"]).stdout.strip()
            check(
                health["version"] == version,
                f"healthz version {health['version']} != CLI {version}",
            )

            # ---- query grid is byte-identical to the local CLI --------- #
            result = run_cli(
                [
                    "query", "grid", "--url", base,
                    "--artifact", f"census{args.n}.npz",
                    "--points", str(args.points),
                ]
            )
            check(result.returncode == 0, f"query grid failed:\n{result.stderr}")
            check(
                result.stdout == local_figure,
                "served figure table differs from census --load --grid",
            )

            # ---- 8 concurrent identical requests, identical payloads --- #
            def one(_):
                return post(
                    base, "/v1/query/grid",
                    {"artifact": f"census{args.n}.npz", "points": args.points},
                )

            with ThreadPoolExecutor(max_workers=8) as pool:
                payloads = list(pool.map(one, range(8)))
            check(
                all(payload == payloads[0] for payload in payloads),
                "concurrent grid responses disagree",
            )

            # ---- /metrics parses and carries the request series -------- #
            series = parse_exposition(get(base, "/metrics"))
            check(
                any(
                    key.startswith("repro_http_requests_total")
                    and 'path="/v1/query/grid"' in key
                    for key in series
                ),
                "request counter for /v1/query/grid missing from /metrics",
            )
            check(
                any(
                    key.startswith("repro_http_request_seconds_count")
                    for key in series
                ),
                "request latency histogram missing from /metrics",
            )
            check(
                any(
                    key.startswith("repro_service_batch_size_count")
                    for key in series
                ),
                "batch-size histogram missing from /metrics",
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                code = process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                check(False, "server did not exit within 15 s of SIGTERM")
        check(code == 0, f"server exited {code} on SIGTERM")

    print(
        f"OK: n={args.n} artifact served; healthz/metrics sound, query grid "
        "byte-identical to the local CLI, 8 concurrent requests agree, "
        "SIGTERM drains cleanly"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
