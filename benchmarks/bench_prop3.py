"""Benchmark: Proposition 3 (lower bound Ω(log₂ α) via Moore-bound graphs).

Regenerates the cage-graph table (Petersen, Heawood, McGee, Tutte–Coxeter,
Hoffman–Singleton): link convexity, stability windows, PoA versus log₂ α.
"""

from repro.core import pairwise_stability_interval, price_of_anarchy
from repro.core.convexity import is_link_convex
from repro.experiments import propositions
from repro.graphs import mcgee_graph, tutte_coxeter_graph


def test_prop3_full_experiment(benchmark):
    result = benchmark.pedantic(propositions.run_proposition3, rounds=1, iterations=1)
    assert result.all_passed


def test_prop3_mcgee_link_convexity(benchmark):
    """Link-convexity check of the (3,7)-cage (all single-link deviations)."""
    graph = mcgee_graph()
    assert benchmark(is_link_convex, graph)


def test_prop3_tutte_coxeter_poa(benchmark):
    """Stability window + PoA of the largest cubic cage in the family."""
    graph = tutte_coxeter_graph()

    def analyse():
        lo, hi = pairwise_stability_interval(graph)
        alpha = (lo + hi) / 2.0
        return price_of_anarchy(graph, alpha, "bcg")

    poa = benchmark.pedantic(analyse, rounds=1, iterations=1)
    assert poa > 1.0
