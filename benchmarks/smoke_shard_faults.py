"""Smoke test: faulted and interrupted shard builds recover bit-identically.

Exercises the fault-tolerant shard runner end to end against a real store
(:class:`~repro.analysis.delta_store.DeltaStore`), with real process death
and real corrupt bytes via :mod:`repro.engine.faults`:

1. a clean serial build fixes the reference content checksum;
2. a pooled build whose worker is **crashed** mid-run must retry, rebuild
   the pool, and finish bit-identical, with the retries visible in the
   shard directory's ``manifest.json``;
3. a **torn shard write** aborts the build; the resume must detect the
   corrupt file by checksum, recompute only that shard, and again match
   the reference bit for bit — and ``verify()`` must pass;
4. one shard of a healthy directory is **bit-flipped**; the resume must
   reject it by checksum and still reproduce the reference.

Run from the repository root (CI runs it with ``--n 5 --jobs 2``)::

    PYTHONPATH=src python benchmarks/smoke_shard_faults.py --n 5 --jobs 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import warnings

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.delta_store import DeltaStore
from repro.engine.faults import Fault, FaultInjected, FaultPlan, flip_byte
from repro.engine.shardwork import manifest_path


def read_manifest(shard_dir: str) -> dict:
    with open(manifest_path(shard_dir), encoding="utf-8") as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=5, help="players (default 5)")
    parser.add_argument("--jobs", type=int, default=2, help="pool workers")
    args = parser.parse_args(argv)

    build = lambda **kw: DeltaStore.build_streamed(args.n, shard_level=2, **kw)
    reference = build().content_checksum()
    print(f"PASS clean build: n = {args.n}, checksum {reference[:12]}…")

    with tempfile.TemporaryDirectory() as tmp:
        shard_dir = os.path.join(tmp, "crash_shards")
        plan = FaultPlan(
            faults=(Fault("crash", 1),), spool=os.path.join(tmp, "spool")
        )
        store = build(jobs=args.jobs, shard_dir=shard_dir, fault_plan=plan)
        assert store.content_checksum() == reference, "crash recovery diverged"
        manifest = read_manifest(shard_dir)
        assert manifest["retries"] >= 1, "crash never surfaced as a retry"
        assert manifest["done"] == manifest["total"]
        print(
            f"PASS crash recovery: retries {manifest['retries']}, "
            f"pool rebuilds {manifest['pool_rebuilds']}, "
            f"{manifest['done']}/{manifest['total']} shards"
        )

    with tempfile.TemporaryDirectory() as tmp:
        shard_dir = os.path.join(tmp, "torn_shards")
        plan = FaultPlan(
            faults=(Fault("torn", 0),), spool=os.path.join(tmp, "spool")
        )
        try:
            build(shard_dir=shard_dir, fault_plan=plan)
        except FaultInjected:
            pass
        else:
            raise AssertionError("torn write did not abort the build")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store = build(shard_dir=shard_dir)
        assert store.content_checksum() == reference, "torn-write resume diverged"
        manifest = read_manifest(shard_dir)
        assert manifest["corrupt_resumes"] >= 1, "torn shard not tallied"
        audit = store.verify()
        assert audit["ok"], audit["errors"]
        print(
            f"PASS torn-write resume: corrupt shards recomputed "
            f"{manifest['corrupt_resumes']}, verify ok"
        )

    with tempfile.TemporaryDirectory() as tmp:
        shard_dir = os.path.join(tmp, "rot_shards")
        build(shard_dir=shard_dir)
        victim = sorted(
            name
            for name in os.listdir(shard_dir)
            if name.startswith("dshard_")
        )[0]
        flip_byte(os.path.join(shard_dir, victim))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store = build(shard_dir=shard_dir)
        assert store.content_checksum() == reference, "bit-rot resume diverged"
        print(f"PASS bit-rot resume: {victim} rejected by checksum, rebuilt")

    print("PASS all shard-fault smokes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
