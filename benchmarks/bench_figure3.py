"""Benchmark: regenerate Figure 3 (average number of links vs link cost).

Uses the shared n = 6 census fixture; asserts the paper's claim that the
BCG's equilibrium networks carry at least as many links as the UCG's on
average across the grid.
"""

from repro.analysis import census_figure_series
from repro.analysis.sweeps import log_spaced_alphas
from repro.experiments import figure3


def test_figure3_series_from_census(benchmark, census6):
    grid = log_spaced_alphas(0.4, 72.0, 22)
    figure = benchmark(census_figure_series, census6, "average_links", grid)
    gaps = [
        bcg.value - ucg.value
        for ucg, bcg in zip(figure.ucg.points, figure.bcg.points)
        if bcg.value == bcg.value and ucg.value == ucg.value
    ]
    assert sum(gaps) / len(gaps) > 0


def test_figure3_full_experiment(benchmark, census6):
    result = benchmark.pedantic(figure3.run, rounds=1, iterations=1)
    assert result.all_passed


def test_figure3_edge_histogram(benchmark, census6):
    """Edge-count histogram of the BCG stable set at an intermediate cost."""
    histogram = benchmark(census6.edge_count_histogram, 3.0, "bcg")
    assert sum(histogram.values()) == census6.equilibrium_count(3.0, "bcg")
