"""Micro-benchmarks for the core primitives every experiment leans on.

These are the calibrated (multi-round) benchmarks: BFS distance sums,
single-graph stability profiles, UCG Nash α-sets, social costs and the
price-of-anarchy computation.
"""

import random

from repro.core import (
    pairwise_stability_profile,
    price_of_anarchy,
    social_cost_bcg,
    ucg_nash_alpha_set,
)
from repro.graphs import (
    cycle_graph,
    distance_sum,
    petersen_graph,
    random_connected_graph,
    total_distance,
)


def test_primitive_distance_sum_petersen(benchmark):
    graph = petersen_graph()
    assert benchmark(distance_sum, graph, 0) == 15


def test_primitive_total_distance_random_graph(benchmark):
    graph = random_connected_graph(12, 0.25, random.Random(2))
    value = benchmark(total_distance, graph)
    assert value > 0


def test_primitive_stability_profile_cycle12(benchmark):
    graph = cycle_graph(12)
    profile = benchmark(pairwise_stability_profile, graph)
    assert profile.alpha_min < profile.alpha_max


def test_primitive_ucg_alpha_set_cycle5(benchmark):
    alpha_set = benchmark(ucg_nash_alpha_set, cycle_graph(5))
    assert not alpha_set.is_empty()


def test_primitive_social_cost_and_poa(benchmark):
    graph = cycle_graph(10)

    def compute():
        return social_cost_bcg(graph, 3.0), price_of_anarchy(graph, 3.0, "bcg")

    cost, poa = benchmark(compute)
    assert cost > 0 and poa >= 1.0
