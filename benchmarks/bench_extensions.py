"""Benchmarks for the extension experiments (Proposition 2, transfers, PoS).

These cover the material the paper states without evaluating (Proposition 2)
or raises as future work in Section 6 (transfers), plus the price of
stability of both games.
"""

from repro.core import (
    is_certified_proper_equilibrium,
    is_pairwise_stable_with_transfers,
    transfer_stability_profile,
)
from repro.experiments import extensions
from repro.graphs import petersen_graph


def test_prop2_experiment(benchmark, census5):
    result = benchmark.pedantic(
        extensions.run_proposition2, kwargs={"census_n": 5}, rounds=1, iterations=1
    )
    assert result.all_passed


def test_transfers_experiment(benchmark, census6):
    result = benchmark.pedantic(
        extensions.run_transfers, kwargs={"n": 6}, rounds=1, iterations=1
    )
    assert result.all_passed


def test_price_of_stability_experiment(benchmark, census6):
    result = benchmark.pedantic(
        extensions.run_price_of_stability, kwargs={"n": 6}, rounds=1, iterations=1
    )
    assert result.all_passed


def test_transfer_profile_petersen(benchmark):
    """Joint-deviation analysis of the Petersen graph (the extension's primitive)."""
    graph = petersen_graph()
    profile = benchmark(transfer_stability_profile, graph)
    assert profile.alpha_min < profile.alpha_max


def test_proper_certificate_petersen(benchmark):
    """Lemma 3 certificate of the Petersen graph at α = 3."""
    graph = petersen_graph()
    assert benchmark(is_certified_proper_equilibrium, graph, 3.0)


def test_transfer_stability_check_petersen(benchmark):
    graph = petersen_graph()
    assert benchmark(is_pairwise_stable_with_transfers, graph, 3.0)


def test_stochastic_stability_analysis_n5(benchmark):
    """Full perturbed-dynamics analysis over all 1024 labelled 5-vertex networks."""
    from repro.analysis import stochastic_stability_analysis
    from repro.graphs import is_empty

    analysis = benchmark.pedantic(
        stochastic_stability_analysis,
        kwargs={"n": 5, "alpha": 2.0, "epsilon": 0.02},
        rounds=1,
        iterations=1,
    )
    assert analysis.mass_on_sinks > 0.5
    assert is_empty(analysis.modal_graph)


def test_improvement_graph_build_n5(benchmark):
    """Improvement-graph construction (the α-dependent part of the extension)."""
    from repro.analysis import build_improvement_graph

    improvement = benchmark.pedantic(
        build_improvement_graph, args=(5, 2.0), rounds=1, iterations=1
    )
    assert improvement.num_states == 1024
