"""CI smoke: the telemetry spine must export correct, parseable metrics.

Run as a script (no pytest needed)::

    PYTHONPATH=src python benchmarks/smoke_metrics.py --n 6

Drives the real CLI in subprocesses (fresh registries, real pool workers,
real files) and checks the whole export chain:

* an instrumented streamed census build writes a Prometheus exposition
  that *parses* (HELP/TYPE headers, cumulative ``le`` buckets ending in
  ``+Inf == count``) and carries the core series — kernel-seconds
  histograms, cache hit/miss counters, shard tallies;
* the shard counters in the exposition **exactly equal** the tallies in
  the run's ``manifest.json`` (compute run and warm resume run);
* ``repro stats`` renders a JSON snapshot written by another process;
* ``REPRO_METRICS=0`` yields an empty exposition — the kill-switch
  reaches every instrumented site.

Exits non-zero on the first failure.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC = os.path.join(REPO, "src")


def run_cli(args, metrics_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if metrics_env is not None:
        env["REPRO_METRICS"] = metrics_env
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, capture_output=True, text=True,
    )


def parse_exposition(text):
    """Parse a Prometheus text exposition into ``{series: value}``.

    Validates the line grammar as it goes: every non-comment line must be
    ``name[{labels}] value`` and every TYPE header must precede its
    family's samples.
    """
    series = {}
    typed = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        assert body and value, f"malformed sample line: {line!r}"
        family = body.partition("{")[0]
        base = family
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
        assert base in typed or family in typed, f"sample before TYPE: {line!r}"
        series[body] = float(value)
    return series


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6, help="census size (default 6)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-metrics-") as tmp:
        shard_dir = os.path.join(tmp, "shards")
        prom_path = os.path.join(tmp, "census.prom")
        json_path = os.path.join(tmp, "census.json")

        # ---- compute run: exposition parses, core series present ------- #
        result = run_cli(
            [
                "census", "--n", str(args.n), "--streamed", "--no-ucg",
                "--shard-dir", shard_dir, "--metrics-out", prom_path,
            ]
        )
        check(result.returncode == 0, f"census build failed:\n{result.stderr}")
        with open(prom_path, encoding="utf-8") as handle:
            series = parse_exposition(handle.read())
        for needle in (
            'repro_kernel_seconds_count{kernel="batch_stability_deltas"}',
            'repro_kernel_graphs_total{kernel="batch_stability_deltas"}',
            'repro_cache_hits_total{cache="census-store"}',
            'repro_cache_misses_total{cache="census-store"}',
            'repro_shards_computed_total{prefix="shard"}',
            'repro_shards_resumed_total{prefix="shard"}',
            'repro_shard_retries_total{prefix="shard"}',
            'repro_shard_bytes_written_total',
            'repro_stream_classes_total{store="census"}',
        ):
            check(needle in series, f"missing series {needle}")
        bucket_inf = [
            key for key in series
            if key.startswith("repro_kernel_seconds_bucket") and 'le="+Inf"' in key
        ]
        check(bucket_inf, "kernel-seconds histogram has no +Inf bucket")
        for key in bucket_inf:
            # The +Inf bucket of a cumulative histogram must equal _count.
            labels = key[key.index("{") + 1:-1].split(",")
            kept = ",".join(l for l in labels if not l.startswith("le="))
            count_key = f"repro_kernel_seconds_count{{{kept}}}"
            check(
                series[key] == series[count_key],
                f"+Inf bucket {series[key]} != count {series[count_key]} ({kept})",
            )
        with open(os.path.join(shard_dir, "manifest.json"), encoding="utf-8") as handle:
            manifest = json.load(handle)

        # ---- shard counters exactly equal the manifest tallies --------- #
        pairs = (
            ("repro_shards_computed_total", "computed"),
            ("repro_shards_resumed_total", "resumed"),
            ("repro_shard_retries_total", "retries"),
            ("repro_shard_timeouts_total", "timeouts"),
        )
        for metric, field in pairs:
            got = series[f'{metric}{{prefix="shard"}}']
            want = manifest[field]
            check(
                got == want,
                f"{metric} = {got} but manifest {field} = {want}",
            )
        check(manifest["computed"] == manifest["total"], "compute run resumed shards?")

        # ---- warm resume run: every shard resumed, counters agree ------ #
        result = run_cli(
            [
                "census", "--n", str(args.n), "--streamed", "--no-ucg",
                "--shard-dir", shard_dir, "--metrics-out", json_path,
            ]
        )
        check(result.returncode == 0, f"census resume failed:\n{result.stderr}")
        with open(json_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        with open(os.path.join(shard_dir, "manifest.json"), encoding="utf-8") as handle:
            manifest = json.load(handle)
        check(manifest["resumed"] == manifest["total"], "warm resume recomputed shards")
        values = {
            (entry["name"], entry["labels"].get("prefix")): entry.get("value")
            for entry in snapshot["metrics"]
        }
        check(
            values[("repro_shards_resumed_total", "shard")] == manifest["resumed"],
            "resumed counter does not match the resume manifest",
        )
        check(
            values[("repro_shards_computed_total", "shard")] == 0,
            "resume run claims computed shards",
        )

        # ---- repro stats renders another process's snapshot ------------ #
        result = run_cli(["stats", json_path])
        check(result.returncode == 0, f"stats failed:\n{result.stderr}")
        check(
            "repro_shards_resumed_total" in result.stdout,
            "stats table is missing the shard counters",
        )
        result = run_cli(["stats", json_path, "--format", "prom"])
        check(result.returncode == 0, "stats --format prom failed")
        parse_exposition(result.stdout)

        # ---- kill-switch: REPRO_METRICS=0 exports nothing -------------- #
        off_path = os.path.join(tmp, "off.prom")
        result = run_cli(
            ["census", "--n", str(args.n), "--no-ucg", "--metrics-out", off_path],
            metrics_env="0",
        )
        check(result.returncode == 0, f"disabled-telemetry run failed:\n{result.stderr}")
        with open(off_path, encoding="utf-8") as handle:
            check(
                parse_exposition(handle.read()) == {},
                "REPRO_METRICS=0 still exported series",
            )

    print(
        f"OK: n={args.n} streamed census exposition parses, shard counters "
        "match the manifest on compute and resume, stats renders snapshots, "
        "and REPRO_METRICS=0 exports nothing"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
