"""CI smoke: weighted-store build → save → load in a fresh process → parity.

Sweeps the ``random_weights`` scenario on ``n`` players twice — as the
in-memory :func:`repro.analysis.weighted.weighted_census` sweep (reference
path) and as the persistent
:class:`~repro.analysis.weighted_store.WeightedStore` — persists the
artifact in **both** on-disk formats, re-loads each **in a separate
interpreter**, and asserts that the loaded artifacts answer the scale grid
(stability masks, ``(t_min, t_max)`` windows, count/link/social-cost
aggregates) float-for-float identically to the in-memory sweep.  Exercises
exactly the production workflow: price the scenario once, query the
artifact anywhere.

Run::

    PYTHONPATH=src python benchmarks/smoke_weighted_store.py [--n 6]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.scenarios import build_scenario, default_t_grid
from repro.analysis.weighted import weighted_census
from repro.analysis.weighted_store import WeightedStore, weighted_store_available

_CHILD_SCRIPT = """
import json, sys
from repro.analysis.weighted_store import WeightedStore

path, ts_json = sys.argv[1], sys.argv[2]
ts = json.loads(ts_json)
store = WeightedStore.load(path)
t_min, t_max = store.stability_windows()
json.dump(
    {
        "classes": len(store),
        "scenario": store.scenario_params,
        "mask": store.stable_mask(ts).tolist(),
        "t_min": [repr(x) for x in t_min.tolist()],
        "t_max": [repr(x) for x in t_max.tolist()],
        "aggregates": store.aggregates(ts),
    },
    sys.stdout,
)
"""


def same(a: float, b: float) -> bool:
    return (a != a and b != b) or a == b


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args(argv)

    if not weighted_store_available():
        print("SKIP: NumPy unavailable, the weighted store cannot be exercised")
        return 0

    scenario = build_scenario("random_weights", args.n, seed=args.seed)
    ts = default_t_grid(args.n, 10) + [1.0]
    sweep = weighted_census(args.n, scenario.model, ts, jobs=args.jobs)
    store = WeightedStore.from_scenario(scenario, jobs=args.jobs)

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    with tempfile.TemporaryDirectory() as tmp:
        paths = [
            store.save(os.path.join(tmp, f"weighted{args.n}.npz")),
            store.save(os.path.join(tmp, f"weighted{args.n}_dir"), format="dir"),
        ]
        for path in paths:
            child = subprocess.run(
                [sys.executable, "-c", _CHILD_SCRIPT, path, json.dumps(ts)],
                capture_output=True,
                text=True,
                env=env,
            )
            if child.returncode != 0:
                print(child.stderr, file=sys.stderr)
                print("FAIL: loading process crashed", file=sys.stderr)
                return 1
            loaded = json.loads(child.stdout)

            assert loaded["classes"] == len(sweep.graphs), "class count diverged"
            assert loaded["scenario"] == scenario.params, "recipe diverged"
            expected_mask = [[bool(x) for x in row] for row in sweep.bcg_mask]
            assert loaded["mask"] == expected_mask, "stability mask diverged"
            assert [float(x) for x in loaded["t_min"]] == sweep.t_min, "t_min"
            assert [float(x) for x in loaded["t_max"]] == sweep.t_max, "t_max"
            aggregates = loaded["aggregates"]
            assert aggregates["bcg_counts"] == sweep.bcg_counts
            for key, expected in (
                ("average_links", sweep.average_links),
                ("average_social_cost", sweep.average_social_cost),
            ):
                assert all(
                    same(a, b) for a, b in zip(aggregates[key], expected)
                ), key

    print(
        f"OK: n={args.n} weighted store round trip ({len(sweep.graphs)} "
        f"classes, {len(ts)} grid points, npz + dir formats) matches the "
        "in-memory sweep float for float across processes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
