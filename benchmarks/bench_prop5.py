"""Benchmark: Proposition 5 (UCG Nash trees are pairwise stable in the BCG).

Regenerates the tree sweep: enumerate all trees up to isomorphism, compute
each tree's UCG Nash α-set via the orientation search, and check pairwise
stability at sampled link costs inside that set.
"""

from repro.core import is_pairwise_stable, ucg_nash_alpha_set
from repro.experiments import propositions
from repro.graphs import enumerate_trees, star_graph


def test_prop5_full_experiment(benchmark):
    result = benchmark.pedantic(
        propositions.run_proposition5, kwargs={"max_n": 7}, rounds=1, iterations=1
    )
    assert result.all_passed


def test_prop5_tree_enumeration_plus_nash_sets(benchmark):
    """UCG Nash α-set of every tree on 7 vertices (the expensive inner step)."""
    trees = enumerate_trees(7)

    def analyse():
        return [ucg_nash_alpha_set(tree) for tree in trees]

    sets = benchmark.pedantic(analyse, rounds=1, iterations=1)
    assert len(sets) == 11
    # Not every tree shape is Nash-supportable in the UCG (re-wiring a middle
    # vertex can dominate), but several are — the star always is.
    assert any(not s.is_empty() for s in sets)


def test_prop5_star_check(benchmark):
    """The per-tree check at one link cost (star on 8 vertices, α = 3)."""

    def check():
        alpha_set = ucg_nash_alpha_set(star_graph(8))
        return alpha_set.contains(3.0) and is_pairwise_stable(star_graph(8), 3.0)

    assert benchmark(check)
