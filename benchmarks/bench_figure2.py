"""Benchmark: regenerate Figure 2 (average PoA vs link cost, UCG vs BCG).

The heavy step is building the exhaustive equilibrium census (one deviation
analysis per connected topology); producing the figure's series from a built
census is then nearly free, and both are measured separately.  The series'
qualitative shape — BCG better for cheap links, worse for expensive links —
is asserted inside the benchmarked function.
"""

from repro.analysis import EquilibriumCensus, census_figure_series
from repro.analysis.sweeps import log_spaced_alphas
from repro.experiments import figure2


def test_figure2_census_build(benchmark):
    """Cost of the exhaustive per-topology analysis (n = 5, both games)."""
    census = benchmark.pedantic(
        EquilibriumCensus.build, args=(5,), rounds=1, iterations=1
    )
    assert len(census) == 21


def test_figure2_series_from_census(benchmark, census6):
    """Cost of producing the Figure 2 series once the census exists (n = 6)."""
    grid = log_spaced_alphas(0.4, 72.0, 22)
    figure = benchmark(census_figure_series, census6, "average_poa", grid)
    assert len(figure.bcg.points) == 22


def test_figure2_full_experiment(benchmark, census6):
    """End-to-end Figure 2 experiment including the claim checks (n = 6)."""
    result = benchmark.pedantic(figure2.run, rounds=1, iterations=1)
    assert result.all_passed


def test_figure2_sampled_ten_agents(benchmark):
    """Dynamics-sampled Figure 2 point at the paper's n = 10 (one cost value)."""
    figure = benchmark.pedantic(
        figure2.compute_figure2_sampled,
        kwargs={"n": 10, "total_edge_costs": [4.0], "num_samples": 4, "seed": 3},
        rounds=1,
        iterations=1,
    )
    assert figure.bcg.points[0].num_equilibria >= 1
    assert figure.ucg.points[0].num_equilibria >= 1
