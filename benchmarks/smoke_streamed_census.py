"""CI smoke: the streamed census must match the materialised build exactly.

Run as a script (no pytest needed)::

    PYTHONPATH=src python benchmarks/smoke_streamed_census.py --n 7 --jobs 2

Builds :meth:`repro.analysis.EquilibriumCensus.build` and
:meth:`~repro.analysis.EquilibriumCensus.build_streamed` for the same ``n``
and diffs them element for element — same canonical representatives in the
same order, bit-identical BCG deviation profiles, identical UCG alpha sets
when requested.  Exits non-zero on the first mismatch.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.census import EquilibriumCensus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=7, help="census size (default 7)")
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes for the streamed build"
    )
    parser.add_argument(
        "--ucg",
        action="store_true",
        help="also compare the (slower) UCG Nash alpha sets",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    materialised = EquilibriumCensus.build(args.n, include_ucg=args.ucg)
    build_s = time.perf_counter() - start

    start = time.perf_counter()
    streamed = EquilibriumCensus.build_streamed(
        args.n, include_ucg=args.ucg, jobs=args.jobs
    )
    streamed_s = time.perf_counter() - start

    if len(materialised) != len(streamed):
        print(
            f"FAIL: {len(materialised)} materialised records vs "
            f"{len(streamed)} streamed",
            file=sys.stderr,
        )
        return 1
    for index, (a, b) in enumerate(zip(materialised.records, streamed.records)):
        if a.graph != b.graph:
            print(f"FAIL: record {index}: different graphs", file=sys.stderr)
            return 1
        if a.bcg_profile.removal_increase != b.bcg_profile.removal_increase:
            print(f"FAIL: record {index}: removal tables differ", file=sys.stderr)
            return 1
        if a.bcg_profile.addition_saving != b.bcg_profile.addition_saving:
            print(f"FAIL: record {index}: addition tables differ", file=sys.stderr)
            return 1
        if args.ucg and a.ucg_alpha_set.intervals != b.ucg_alpha_set.intervals:
            print(f"FAIL: record {index}: UCG alpha sets differ", file=sys.stderr)
            return 1

    print(
        f"OK: n={args.n} census identical across paths "
        f"({len(streamed)} records; materialised {build_s:.2f}s, "
        f"streamed {streamed_s:.2f}s, jobs={args.jobs})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
