"""CI smoke: vectorised UCG engine ≡ orientation backtracking, float-exactly.

Runs the batched, orbit-pruned UCG engine (:func:`repro.engine.ucg_alpha_sets`
and :func:`repro.engine.weighted_ucg_t_sets`) over **every** connected
isomorphism class up to ``--max-n`` vertices and asserts the resulting
α-interval sets are endpoint-for-endpoint float-identical to the per-graph
orientation backtracking references
(:func:`repro.core.unilateral.ucg_nash_alpha_set` /
:func:`repro.costmodels.stability.weighted_ucg_nash_t_set`).  Also pins the
degenerate conventions (edgeless → ``[(inf, inf)]``, disconnected with
edges → empty) and the orbit-pruning on/off equivalence.

Run::

    PYTHONPATH=src python benchmarks/smoke_ucg_parity.py [--max-n 6]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.scenarios import build_scenario
from repro.core.unilateral import ucg_nash_alpha_set
from repro.costmodels.stability import weighted_ucg_nash_t_set
from repro.engine import ucg_alpha_sets, ucg_engine_available, weighted_ucg_t_sets
from repro.graphs import Graph, empty_graph, enumerate_connected_graphs


def endpoints(interval_set):
    return [(iv.lo, iv.hi) for iv in interval_set.intervals]


def fresh(graph):
    """Same topology, new instance — no shared memo between the two paths."""
    return Graph(graph.n, graph.sorted_edges())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-n", type=int, default=6)
    parser.add_argument("--weighted-n", type=int, default=5)
    args = parser.parse_args(argv)

    if not ucg_engine_available():
        print("SKIP: NumPy unavailable, the vectorised UCG engine cannot run")
        return 0

    total = 0
    start = time.perf_counter()
    for n in range(1, args.max_n + 1):
        graphs = enumerate_connected_graphs(n)
        engine_sets = ucg_alpha_sets([fresh(g) for g in graphs])
        for graph, engine_set in zip(graphs, engine_sets):
            reference = ucg_nash_alpha_set(fresh(graph))
            assert endpoints(engine_set) == endpoints(reference), (
                f"scalar UCG divergence at n={n}: {graph.sorted_edges()} "
                f"engine={endpoints(engine_set)} reference={endpoints(reference)}"
            )
        no_orbits = ucg_alpha_sets([fresh(g) for g in graphs], use_orbits=False)
        forced = ucg_alpha_sets([fresh(g) for g in graphs], use_orbits=True)
        for a, b in zip(no_orbits, forced):
            assert endpoints(a) == endpoints(b), "orbit pruning changed a result"
        total += len(graphs)
        print(f"scalar n={n}: {len(graphs)} classes float-exact")

    # Degenerate conventions the engine must reproduce, not repair.
    for n in (2, 4):
        (edgeless,) = ucg_alpha_sets([empty_graph(n)])
        assert endpoints(edgeless) == [(float("inf"), float("inf"))]
    (disconnected,) = ucg_alpha_sets([Graph(4, [(0, 1)])])
    assert endpoints(disconnected) == []

    n = args.weighted_n
    graphs = enumerate_connected_graphs(n)
    for name in ("random_weights", "two_tier_isp"):
        model = build_scenario(name, n, seed=2).model
        engine_sets = weighted_ucg_t_sets([fresh(g) for g in graphs], model)
        for graph, engine_set in zip(graphs, engine_sets):
            reference = weighted_ucg_nash_t_set(graph, model)
            assert endpoints(engine_set) == endpoints(reference), (
                f"weighted UCG divergence ({name}, n={n}): {graph.sorted_edges()}"
            )
        total += len(graphs)
        print(f"weighted {name} n={n}: {len(graphs)} classes float-exact")

    elapsed = time.perf_counter() - start
    print(f"OK: {total} interval sets engine ≡ backtracking in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
