"""Benchmark: regenerate Figure 1 (pairwise-stable named graphs).

Measures the stability analysis of the Figure 1 graphs (Petersen, McGee,
octahedral, Clebsch, star; the 50-vertex Hoffman–Singleton graph has its own
benchmark) and asserts that every graph is pairwise stable in its computed
link-cost window, as the paper claims.
"""

from repro.core import is_pairwise_stable, pairwise_stability_interval
from repro.experiments import figure1
from repro.graphs import hoffman_singleton_graph, petersen_graph


def test_figure1_experiment(benchmark):
    """Full Figure 1 reproduction (without the Hoffman–Singleton graph)."""
    result = benchmark.pedantic(
        figure1.run, kwargs={"include_hoffman_singleton": False}, rounds=1, iterations=1
    )
    assert result.all_passed


def test_figure1_petersen_stability_window(benchmark):
    """Stability window of the Petersen graph (the paper's flagship example)."""
    graph = petersen_graph()
    lo, hi = benchmark(pairwise_stability_interval, graph)
    assert (lo, hi) == (1.0, 5.0)


def test_figure1_hoffman_singleton_stability(benchmark):
    """Pairwise stability of the 50-vertex Hoffman–Singleton graph."""
    graph = hoffman_singleton_graph()

    def check():
        lo, hi = pairwise_stability_interval(graph)
        midpoint = (lo + hi) / 2.0
        return lo, hi, is_pairwise_stable(graph, midpoint)

    lo, hi, stable = benchmark.pedantic(check, rounds=1, iterations=1)
    assert lo < hi
    assert stable
