"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures or results (see
DESIGN.md's per-experiment index) and asserts the qualitative claim inside the
benchmarked function, so ``pytest benchmarks/ --benchmark-only`` doubles as an
end-to-end reproduction run with timings.

Heavyweight benchmarks use ``benchmark.pedantic(..., rounds=1, iterations=1)``
so a full benchmark run stays in the minutes range; the lightweight primitive
benchmarks use the normal calibrated mode.
"""

import pytest

from repro.analysis import cached_census


@pytest.fixture(scope="session")
def census5():
    """Exhaustive census on 5 vertices (both games), shared across benchmarks."""
    return cached_census(5)


@pytest.fixture(scope="session")
def census6():
    """Exhaustive census on 6 vertices (both games), shared across benchmarks."""
    return cached_census(6)
