"""Smoke test: mmap-shared census-store queries from a process-pool fan-out.

Builds a small BCG census store, persists it in the memory-mappable
directory layout, then answers one α-grid from many worker processes — each
worker ``CensusStore.load(path, mmap=True)``-ing the *same* on-disk columns
(zero-copy page sharing through the OS cache) and querying its own slice of
the grid.  The fanned-out counts must equal a serial sweep over the parent's
own mmap handle, and both must equal the non-mmap in-memory store.

Run from the repository root (CI runs it with ``--n 6 --jobs 2``)::

    PYTHONPATH=src python benchmarks/smoke_mmap_fanout.py --n 6 --jobs 2
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.store import CensusStore
from repro.analysis.sweeps import log_spaced_alphas
from repro.engine import chunk_evenly, parallel_map


def _mmap_counts_task(task: Tuple[str, List[float]]) -> List[int]:
    """Pool worker: map the artifact read-only and count equilibria."""
    path, alphas = task
    store = CensusStore.load(path, mmap=True)
    return [int(c) for c in store.equilibrium_counts(alphas, "bcg")]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6, help="census size (default 6)")
    parser.add_argument("--jobs", type=int, default=2, help="pool workers (default 2)")
    parser.add_argument("--grid", type=int, default=16, help="α-grid points (default 16)")
    args = parser.parse_args(argv)

    store = CensusStore.build(args.n, include_ucg=False)
    alphas = log_spaced_alphas(0.2, float(args.n * args.n), max(2, args.grid))
    expected = [int(c) for c in store.equilibrium_counts(alphas, "bcg")]

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, f"census{args.n}_dir")
        store.save(path, format="dir")

        mapped = CensusStore.load(path, mmap=True)
        serial = [int(c) for c in mapped.equilibrium_counts(alphas, "bcg")]
        assert serial == expected, "mmap serial sweep diverged from the in-memory store"

        chunks = chunk_evenly(alphas, max(1, args.jobs * 2))
        tasks = [(path, chunk) for chunk in chunks]
        fanned: List[int] = []
        for part in parallel_map(_mmap_counts_task, tasks, jobs=args.jobs):
            fanned.extend(part)
        assert fanned == expected, "mmap fan-out sweep diverged from the serial sweep"

    print(
        f"mmap fan-out smoke OK: n = {args.n}, {len(store)} classes, "
        f"{len(alphas)}-point grid over {args.jobs} workers "
        f"({len(tasks)} chunks), counts identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
