"""Smoke test: amortised ensembles answer exactly like the per-draw path.

Runs a seeded ``random_weights`` ensemble twice — once per draw with
``batch_draws=1`` (every draw priced through its own
:class:`~repro.analysis.weighted_store.WeightedStore` kernel call, the
PR-5 reference semantics) and once through the shared
:class:`~repro.analysis.delta_store.DeltaStore` + stacked-weight kernels
with a small streaming window buffer — and asserts the counts matrix and
count summaries are bit-identical.  Then exercises the artifact plumbing:
``--delta-cache`` writes a memory-mappable delta directory on the first
run and reuses it untouched on the second, and a ``--save-dir`` resume
reports its draws as resumed rather than recomputed.

Run from the repository root (CI runs it with ``--n 5``)::

    PYTHONPATH=src python benchmarks/smoke_ensemble_amortised.py --n 5
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.analysis.delta_store import DeltaStore
from repro.analysis.ensembles import run_ensemble


def assert_same_stats(a, b, context):
    for key in ("mean", "std", "min", "max"):
        assert a[key] == b[key], (context, key)
    for q in a["quantiles"]:
        assert a["quantiles"][q] == b["quantiles"][q], (context, q)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=5, help="players (default 5)")
    parser.add_argument("--draws", type=int, default=8, help="draws (default 8)")
    parser.add_argument("--grid", type=int, default=6, help="t-grid points")
    args = parser.parse_args(argv)

    per_draw = run_ensemble(
        "random_weights", n=args.n, draws=args.draws, seed=1,
        grid=args.grid, jobs=1, batch_draws=1,
    )
    stacked = run_ensemble(
        "random_weights", n=args.n, draws=args.draws, seed=1,
        grid=args.grid, jobs=1, batch_draws=4, window_exact_buffer=2,
    )
    assert np.array_equal(per_draw.counts, stacked.counts), (
        "stacked counts diverged from the per-draw path"
    )
    assert_same_stats(per_draw.count_stats, stacked.count_stats, "count_stats")
    for key in ("mean", "min", "max"):
        assert per_draw.t_min_stats[key] == stacked.t_min_stats[key], key
        assert per_draw.t_max_stats[key] == stacked.t_max_stats[key], key

    with tempfile.TemporaryDirectory() as tmp:
        cache = os.path.join(tmp, "deltas")
        cached = run_ensemble(
            "random_weights", n=args.n, draws=args.draws, seed=1,
            grid=args.grid, delta_cache=cache,
        )
        assert os.path.isdir(cache), "delta cache directory was not written"
        stamp = os.path.getmtime(os.path.join(cache, "meta.json"))
        DeltaStore.load(cache, mmap=True)
        again = run_ensemble(
            "random_weights", n=args.n, draws=args.draws, seed=1,
            grid=args.grid, delta_cache=cache,
        )
        assert os.path.getmtime(os.path.join(cache, "meta.json")) == stamp, (
            "delta cache was rewritten instead of reused"
        )
        assert np.array_equal(cached.counts, again.counts)
        assert np.array_equal(per_draw.counts, cached.counts)

        save_dir = os.path.join(tmp, "draws")
        first = run_ensemble(
            "random_weights", n=args.n, draws=args.draws, seed=1,
            grid=args.grid, save_dir=save_dir,
        )
        resumed = run_ensemble(
            "random_weights", n=args.n, draws=args.draws, seed=1,
            grid=args.grid, save_dir=save_dir,
        )
        assert (first.resumed, first.recomputed) == (0, args.draws)
        assert (resumed.resumed, resumed.recomputed) == (args.draws, 0)
        assert np.array_equal(first.counts, resumed.counts)

    print(
        f"amortised ensemble smoke OK: n = {args.n}, {per_draw.classes} "
        f"classes, {args.draws} draws x {len(per_draw.ts)} scales — "
        f"stacked/per-draw counts identical, delta cache reused, "
        f"{resumed.resumed}/{args.draws} draws resumed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
