"""Benchmark: Proposition 4 (upper bound O(√α)) and Footnote 6.

Regenerates the worst-case-PoA-vs-bound table over the exhaustive census and
the ρ_UCG ≤ 2·ρ_BCG check over every (graph, α) pair.
"""

import math

from repro.core import compare_price_of_anarchy
from repro.experiments import propositions


def test_prop4_full_experiment(benchmark, census6):
    result = benchmark.pedantic(
        propositions.run_proposition4, kwargs={"n": 6}, rounds=1, iterations=1
    )
    assert result.all_passed


def test_prop4_worst_poa_single_alpha(benchmark, census6):
    """Worst-case PoA over the stable set at one link cost (the inner loop)."""
    alpha = 8.0
    worst = benchmark(census6.worst_price_of_anarchy, alpha, "bcg")
    assert worst <= 4.0 * min(math.sqrt(alpha), 6 / math.sqrt(alpha))


def test_footnote6_comparison_sweep(benchmark, census5):
    """ρ_UCG vs 2·ρ_BCG across the full 5-vertex census and an α grid."""

    def sweep():
        violations = 0
        for record in census5.records:
            for alpha in (1.5, 3.0, 8.0, 20.0):
                if not compare_price_of_anarchy(record.graph, alpha).satisfies_footnote6:
                    violations += 1
        return violations

    assert benchmark(sweep) == 0
