"""CI smoke: census-store build → save → load in a fresh process → parity.

Builds the n = 6 census twice — as the per-record
:class:`~repro.analysis.census.EquilibriumCensus` (reference path) and as the
columnar :class:`~repro.analysis.store.CensusStore` — persists the store,
re-loads it **in a separate interpreter**, and asserts that the loaded
artifact answers an α-grid (stability masks, Nash masks, counts and PoA /
link-count aggregates) element-for-element identically to the in-memory
record path.  Exercises exactly the production workflow: build on one
machine/process, query on another.

Run::

    PYTHONPATH=src python benchmarks/smoke_store_roundtrip.py [--n 6]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.census import EquilibriumCensus
from repro.analysis.store import CensusStore, store_available
from repro.analysis.sweeps import log_spaced_alphas

_CHILD_SCRIPT = """
import json, sys
from repro.analysis.store import CensusStore

path, alphas_json = sys.argv[1], sys.argv[2]
alphas = json.loads(alphas_json)
store = CensusStore.load(path)
json.dump(
    {
        "classes": len(store),
        "bcg": store.stable_mask(alphas, "bcg").tolist(),
        "ucg": store.stable_mask(alphas, "ucg").tolist(),
        "bcg_agg": store.grid_aggregates(alphas, "bcg"),
        "ucg_agg": store.grid_aggregates(alphas, "ucg"),
    },
    sys.stdout,
)
"""


def same(a: float, b: float) -> bool:
    return (a != a and b != b) or a == b


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6)
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args(argv)

    if not store_available():
        print("SKIP: NumPy unavailable, census store cannot be exercised")
        return 0

    census = EquilibriumCensus.build(args.n, jobs=args.jobs)
    store = CensusStore.build(args.n, jobs=args.jobs)
    alphas = log_spaced_alphas(0.2, float(args.n * args.n), 12) + [1.0]

    with tempfile.TemporaryDirectory() as tmp:
        path = store.save(os.path.join(tmp, f"census{args.n}.npz"))
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        child = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT, path, json.dumps(alphas)],
            capture_output=True,
            text=True,
            env=env,
        )
        if child.returncode != 0:
            print(child.stderr, file=sys.stderr)
            print("FAIL: loading process crashed", file=sys.stderr)
            return 1
        loaded = json.loads(child.stdout)

    assert loaded["classes"] == len(census), "class count diverged"
    for row, record in zip(loaded["bcg"], census.records):
        assert row == [record.is_bcg_stable_at(a) for a in alphas], "BCG mask"
    for row, record in zip(loaded["ucg"], census.records):
        assert row == [record.is_ucg_nash_at(a) for a in alphas], "UCG mask"
    for game in ("bcg", "ucg"):
        aggregates = loaded[f"{game}_agg"]
        for k, alpha in enumerate(alphas):
            assert aggregates["counts"][k] == census.equilibrium_count(alpha, game)
            assert same(
                aggregates["average_poa"][k],
                census.average_price_of_anarchy(alpha, game),
            ), (game, alpha)
            assert same(
                aggregates["worst_poa"][k],
                census.worst_price_of_anarchy(alpha, game),
            ), (game, alpha)
            assert same(
                aggregates["average_links"][k],
                census.average_num_links(alpha, game),
            ), (game, alpha)

    print(
        f"OK: n={args.n} store round trip ({len(census)} classes, "
        f"{len(alphas)} grid points, {store.nbytes} bytes resident) matches "
        "the record path element for element across processes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
