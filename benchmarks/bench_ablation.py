"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two implementation decisions make the exhaustive censuses affordable in pure
Python, and these benchmarks quantify them:

1. **α-interval precomputation** — the census analyses every topology once
   and answers stability queries for any link cost by comparisons, instead of
   re-running the BFS-based deviation analysis per (graph, α) pair.
2. **Orientation search with interval pruning** for UCG Nash-supportability —
   compared against checking a single explicit link cost from scratch.
"""

from repro.analysis.sweeps import log_spaced_alphas
from repro.core import (
    is_pairwise_stable,
    pairwise_stability_profile,
    ucg_nash_alpha_set,
)
from repro.core.unilateral import nash_supporting_ownership
from repro.graphs import enumerate_connected_graphs


ALPHA_GRID = log_spaced_alphas(0.4, 36.0, 12)


def test_ablation_bcg_census_with_interval_precomputation(benchmark):
    """Analyse every 6-vertex topology once, then sweep the α grid by comparisons."""
    graphs = enumerate_connected_graphs(6)

    def run():
        profiles = [pairwise_stability_profile(g) for g in graphs]
        return [
            sum(1 for p in profiles if p.is_stable_at(alpha)) for alpha in ALPHA_GRID
        ]

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts[0] >= 1


def test_ablation_bcg_census_naive_recomputation(benchmark):
    """The naive alternative: a fresh deviation analysis per (graph, α) pair."""
    graphs = enumerate_connected_graphs(6)

    def run():
        return [
            sum(1 for g in graphs if is_pairwise_stable(g, alpha))
            for alpha in ALPHA_GRID
        ]

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts[0] >= 1


def test_ablation_ucg_alpha_set_once(benchmark):
    """One orientation search answering every link cost for all 5-vertex graphs."""
    graphs = enumerate_connected_graphs(5)

    def run():
        sets = [ucg_nash_alpha_set(g) for g in graphs]
        return [
            sum(1 for s in sets if s.contains(alpha)) for alpha in ALPHA_GRID
        ]

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max(counts) >= 1


def test_ablation_ucg_per_alpha_witness_search(benchmark):
    """The alternative: a fresh ownership-witness search per (graph, α) pair."""
    graphs = enumerate_connected_graphs(5)

    def run():
        return [
            sum(1 for g in graphs if nash_supporting_ownership(g, alpha) is not None)
            for alpha in ALPHA_GRID
        ]

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max(counts) >= 1
