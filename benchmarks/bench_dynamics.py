"""Benchmarks for the decentralised dynamics (the sampled ten-agent study).

These measure the machinery used for the paper-sized (n = 10) sampled variant
of Figures 2 and 3: pairwise add/sever dynamics for the BCG and exact
best-response dynamics for the UCG.
"""

import random

from repro.core import (
    best_response_dynamics_ucg,
    is_pairwise_stable,
    pairwise_dynamics_bcg,
)
from repro.core.unilateral import best_response_ucg
from repro.graphs import random_connected_graph, star_graph


def test_bcg_pairwise_dynamics_ten_agents(benchmark):
    def run():
        rng = random.Random(3)
        start = random_connected_graph(10, 0.3, rng)
        return pairwise_dynamics_bcg(10, alpha=3.0, initial=start, rng=rng)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged
    assert is_pairwise_stable(result.graph, 3.0)


def test_ucg_best_response_dynamics_ten_agents(benchmark):
    def run():
        return best_response_dynamics_ucg(10, alpha=4.0, rng=random.Random(9))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged


def test_ucg_single_best_response_ten_agents(benchmark):
    """One exact best-response computation (2^9 candidate purchase sets)."""
    others = star_graph(10, center=1).remove_edge(1, 0)
    cost, targets = benchmark(best_response_ucg, others, 0, 2.0)
    assert targets == frozenset({1})
    assert cost < float("inf")


def test_bcg_stability_check_ten_agents(benchmark):
    """One exact pairwise-stability check on a 10-vertex network."""
    graph = random_connected_graph(10, 0.3, random.Random(21))
    benchmark(is_pairwise_stable, graph, 3.0)
