"""Benchmark the bitset kernel + incremental engine against the naive paths.

Run as a script (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_engine.py

Measures, and writes machine-readable results to ``BENCH_engine.json`` at the
repository root so future PRs have a perf trajectory to compare against:

* **kernel BFS** — word-parallel bitset BFS vs the seed's adjacency-set
  reference BFS (ops/sec over a fixed batch of random graphs);
* **oracle deltas** — :class:`repro.engine.DistanceOracle` edge-toggle
  queries vs recomputing every toggle from scratch with reference BFS;
* **pairwise-stability census at n = 7** — the naive seed path (reference
  BFS per probe) vs the engine path, serial and fanned out with ``jobs``;
* **single-edge mutation** — ``Graph.add_edge`` cost on a sparse vs a dense
  graph, asserting that mutation no longer scales with the edge count ``m``
  (the seed rebuilt the whole edge set through ``__init__``);
* **enumeration at n = 8** (schema v2) — canonical augmentation vs the PR-1
  augment-and-deduplicate path for all 12346 classes on 8 vertices;
* **streamed census at n = 8** (schema v2) — the sharded streaming BCG
  census vs the materialised build, cold caches for both;
* **streamed census at n = 9** (opt-in via ``--n9``) — the 261080-graph
  BCG census that only the streamed path makes tractable;
* **census store at n = 8** (schema v3) — the columnar
  :class:`~repro.analysis.store.CensusStore`: artifact size (resident and
  on-disk), save/load wall time and a 24-point α-grid aggregate sweep
  (counts + average/worst PoA + link counts) against the per-record loop,
  with results asserted element-for-element identical;
* **weighted engine at n = 7** (schema v4) — the heterogeneous-α scenario
  sweep: batched coefficient columns + the weighted grid mask vs a
  per-graph ``WeightedStabilityProfile`` Python loop, decisions asserted
  identical;
* **mmap fan-out** (schema v4) — one memory-mapped store artifact queried
  from a process pool (zero-copy page sharing), counts asserted equal to
  the serial mmap sweep (report-only: no wall-clock floor);
* **weighted store at n = 8** (schema v5) — the persistent
  :class:`~repro.analysis.weighted_store.WeightedStore`: answering a
  24-point scale grid (mask + windows) from a saved artifact (load
  included) vs recomputing the whole coefficient-column batch, answers
  asserted identical;
* **ensemble runner** (schema v5) — K seeded ``random_weights`` draws at
  n = 6 aggregated serially vs over a 2-worker pool, summaries asserted
  identical (report-only: timing trajectory entry);
* **amortised mega-ensemble** (schema v6) — 1000 seeded draws at n = 7
  through the shared :class:`~repro.analysis.delta_store.DeltaStore` +
  stacked-weight kernels + streaming aggregation, charged end to end
  (delta build included), vs the PR-5 per-draw store-build path
  extrapolated from a measured prefix of the same seed sequence; the
  overlapping draws' counts are asserted bit-identical and the O(classes)
  streaming aggregation state is recorded as the peak-memory proxy;
* **UCG orientation engine at n = 7** (schema v8) — the vectorised,
  orbit-pruned α-interval engine (:func:`repro.engine.ucg_alpha_sets`) over
  all 853 connected classes vs the per-graph orientation backtracking
  (timed on a strided sample and extrapolated — the full reference run
  takes minutes); interval endpoints asserted float-identical on the
  sample before any timing is recorded;
* **shard runner** (schema v7) — the fault-tolerance tax of
  :func:`repro.engine.run_shards` persistence: the n = 7 streamed census
  built plain vs with checksummed shards + heartbeat manifest, plus the
  warm-resume wall time; artifacts asserted bit-identical by content
  checksum and the overhead ratio floored at <= 1.10x;
* **telemetry kill-switch** (schema v9) — the instrumented
  :func:`repro.engine.columnar.bcg_stable_mask` wrapper with
  ``REPRO_METRICS`` disabled vs the bare kernel on the full n = 7 census
  columns, ceilinged at <= 1.05x (disabled telemetry must be free);
* **census-as-a-service** (schema v10) — one warm
  :class:`repro.service.ArtifactServer` grid query over HTTP vs the cold
  ``census --load --grid`` CLI subprocess on the same artifact, floored
  at >= 10x; the served figure is asserted byte-identical to the CLI
  table, a concurrent request burst must actually coalesce, and the
  ``/metrics`` exposition must parse and carry the request-latency
  histogram.

The script exits non-zero if the engine census path fails the acceptance
floor (>= 3x naive, serial), if canonical augmentation fails its floor
(>= 5x augment-and-dedup at n = 8), if the store grid sweep fails its
floor (>= 10x the per-record loop at n = 8), if the weighted scenario
sweep fails its floor (>= 10x the per-graph Python loop at n = 7), if the
weighted-store artifact query fails its floor (>= 10x recomputing the
sweep at n = 8), if the amortised mega-ensemble fails its floor (>= 10x
the per-draw store-build path at n = 7), if the UCG orientation engine
fails its floor (>= 10x the per-graph backtracking at n = 7,
extrapolated), if checksummed shard persistence
costs more than 10% over the plain streamed build, or if mutation cost
shows m-scaling again.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import random

from repro.analysis.census import EquilibriumCensus
from repro.core.stability_intervals import distance_delta
from repro.engine import DistanceOracle, batch_stability_deltas
from repro.graphs import (
    Graph,
    bfs_distances,
    bfs_distances_reference,
    bfs_distances_with_extra_edge_reference,
    bfs_distances_with_forbidden_edge_reference,
    complete_graph,
    enumerate_connected_graphs,
    enumerate_graphs,
    is_connected,
    path_graph,
    random_graph,
)
from repro.graphs.enumeration import (
    _augment_dedup_level,
    _canonical_augment_level,
    clear_cache,
)

OUTPUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")


def _time(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------------- #
# 1. Kernel BFS
# --------------------------------------------------------------------------- #


def _bench_bfs_batch(batch) -> Dict[str, float]:
    calls = sum(g.n for g in batch)

    def run_bitset():
        for g in batch:
            for s in range(g.n):
                bfs_distances(g, s)

    def run_reference():
        for g in batch:
            for s in range(g.n):
                bfs_distances_reference(g, s)

    run_bitset()  # warm the lazy row/set caches out of the timing
    run_reference()
    bitset_s = _time(run_bitset)
    reference_s = _time(run_reference)
    return {
        "bfs_calls": calls,
        "bitset_ops_per_sec": calls / bitset_s,
        "reference_ops_per_sec": calls / reference_s,
        "speedup": reference_s / bitset_s,
    }


def bench_kernel_bfs() -> Dict[str, Dict[str, float]]:
    rng = random.Random(0)
    small = [random_graph(rng.randint(6, 10), rng.uniform(0.2, 0.8), rng) for _ in range(120)]
    large = [random_graph(rng.randint(48, 64), rng.uniform(0.05, 0.3), rng) for _ in range(20)]
    return {
        "small_n_6_10": _bench_bfs_batch(small),
        "large_n_48_64": _bench_bfs_batch(large),
    }


# --------------------------------------------------------------------------- #
# 2. Oracle delta queries
# --------------------------------------------------------------------------- #


def _all_toggle_queries(graphs: List[Graph]):
    for g in graphs:
        for u in range(g.n):
            for v in range(u + 1, g.n):
                for endpoint in (u, v):
                    yield g, (u, v), endpoint


def bench_oracle_deltas() -> Dict[str, float]:
    rng = random.Random(1)
    batch = [random_graph(8, rng.uniform(0.2, 0.7), rng) for _ in range(40)]
    queries = list(_all_toggle_queries(batch))

    def run_oracle():
        oracle = DistanceOracle()
        for g, edge, endpoint in queries:
            if g.has_edge(*edge):
                oracle.removal_increase(g, edge, endpoint)
            else:
                oracle.addition_saving(g, edge, endpoint)

    def run_naive():
        for g, edge, endpoint in queries:
            base = sum(bfs_distances_reference(g, endpoint))
            if g.has_edge(*edge):
                distance_delta(
                    sum(bfs_distances_with_forbidden_edge_reference(g, endpoint, edge)),
                    base,
                )
            else:
                distance_delta(
                    base,
                    sum(bfs_distances_with_extra_edge_reference(g, endpoint, edge)),
                )

    run_oracle()
    oracle_s = _time(run_oracle)
    naive_s = _time(run_naive)
    return {
        "delta_queries": len(queries),
        "oracle_ops_per_sec": len(queries) / oracle_s,
        "naive_ops_per_sec": len(queries) / naive_s,
        "speedup": naive_s / oracle_s,
    }


# --------------------------------------------------------------------------- #
# 3. Pairwise-stability census at n = 7
# --------------------------------------------------------------------------- #


def _naive_profile(graph: Graph):
    """The seed's census inner loop, verbatim: a from-scratch set BFS per
    probe, results stored in the profile's delta tables."""
    removal_increase = {}
    addition_saving = {}
    base = [sum(bfs_distances_reference(graph, v)) for v in range(graph.n)]
    for (u, v) in graph.sorted_edges():
        for endpoint in (u, v):
            removal_increase[((u, v), endpoint)] = distance_delta(
                sum(bfs_distances_with_forbidden_edge_reference(graph, endpoint, (u, v))),
                base[endpoint],
            )
    for (u, v) in graph.non_edges():
        for endpoint in (u, v):
            addition_saving[((u, v), endpoint)] = distance_delta(
                base[endpoint],
                sum(bfs_distances_with_extra_edge_reference(graph, endpoint, (u, v))),
            )
    return removal_increase, addition_saving


def bench_census_n7(jobs_grid: List[int]) -> Dict[str, float]:
    graphs = enumerate_connected_graphs(7)  # warm the enumeration cache

    def run_naive():
        for g in graphs:
            _naive_profile(g)

    def run_engine_serial():
        batch_stability_deltas(graphs, oracle=DistanceOracle())

    naive_s = _time(run_naive, repeats=2)
    engine_s = _time(run_engine_serial, repeats=2)
    result: Dict[str, float] = {
        "graphs": len(graphs),
        "naive_seconds": naive_s,
        "engine_serial_seconds": engine_s,
        "serial_speedup": naive_s / engine_s,
        "naive_graphs_per_sec": len(graphs) / naive_s,
        "engine_serial_graphs_per_sec": len(graphs) / engine_s,
    }
    for jobs in jobs_grid:
        pool_s = _time(
            lambda: EquilibriumCensus.build(7, include_ucg=False, jobs=jobs),
            repeats=2,
        )
        result[f"engine_jobs{jobs}_seconds"] = pool_s
        result[f"engine_jobs{jobs}_graphs_per_sec"] = len(graphs) / pool_s
    return result


# --------------------------------------------------------------------------- #
# 3b. Enumeration at n = 8: canonical augmentation vs augment-and-dedup
# --------------------------------------------------------------------------- #


def bench_enumeration_n8() -> Dict[str, float]:
    """Generate all 12346 classes on 8 vertices with both generation paths.

    Parents (the 1044 classes on 7 vertices) are built once outside the
    timed region; the timed region is one generation level — exactly the
    part the canonical-augmentation rewrite replaced — best of two runs per
    path to damp shared-runner noise.  Note the baseline also benefits from
    this PR's per-instance canonical-form memo and the refinement fast
    path, so the recorded speedup *understates* the gain over the PR-1
    binary.
    """
    clear_cache()
    parents = enumerate_graphs(7)

    timed = {}
    for label, fn in (
        ("augment_dedup", lambda: _augment_dedup_level(parents)),
        ("canonical_augmentation", lambda: _canonical_augment_level(parents)),
    ):
        best = float("inf")
        level = None
        for _ in range(2):
            start = time.perf_counter()
            level = fn()
            best = min(best, time.perf_counter() - start)
        timed[label] = (best, level)
    legacy_s, legacy_level = timed["augment_dedup"]
    new_s, new_level = timed["canonical_augmentation"]
    assert [g.edge_key() for g in legacy_level] == [g.edge_key() for g in new_level]
    return {
        "classes": len(new_level),
        "connected_classes": sum(1 for g in new_level if is_connected(g)),
        "augment_dedup_seconds": legacy_s,
        "canonical_augmentation_seconds": new_s,
        "speedup": legacy_s / new_s,
    }


# --------------------------------------------------------------------------- #
# 3c. Streamed, sharded census at n = 8 (and optionally n = 9)
# --------------------------------------------------------------------------- #


def bench_census_n8_streamed() -> Dict[str, float]:
    """The sharded streaming BCG census vs the materialised build, both cold."""
    clear_cache()
    start = time.perf_counter()
    streamed = EquilibriumCensus.build_streamed(8, include_ucg=False)
    streamed_s = time.perf_counter() - start

    clear_cache()
    start = time.perf_counter()
    materialised = EquilibriumCensus.build(8, include_ucg=False)
    build_s = time.perf_counter() - start

    assert len(streamed) == len(materialised) == 11117
    assert all(
        a.graph == b.graph for a, b in zip(streamed.records, materialised.records)
    )
    return {
        "graphs": len(streamed),
        "streamed_seconds": streamed_s,
        "streamed_graphs_per_sec": len(streamed) / streamed_s,
        "materialised_seconds": build_s,
        "materialised_graphs_per_sec": len(materialised) / build_s,
    }


def bench_census_n9_streamed() -> Dict[str, float]:
    """The 261080-graph n = 9 BCG census (opt-in: minutes of wall time)."""
    start = time.perf_counter()
    census = EquilibriumCensus.build_streamed(9, include_ucg=False)
    seconds = time.perf_counter() - start
    assert len(census) == 261080  # OEIS A001349
    return {
        "graphs": len(census),
        "streamed_seconds": seconds,
        "streamed_graphs_per_sec": len(census) / seconds,
        "stable_count_alpha_2": census.equilibrium_count(2.0, "bcg"),
        "stable_count_alpha_4": census.equilibrium_count(4.0, "bcg"),
    }


# --------------------------------------------------------------------------- #
# 3d. Columnar census store: artifact size + α-grid query throughput at n = 8
# --------------------------------------------------------------------------- #


def bench_census_store_n8() -> Dict[str, float]:
    """Columnar store vs per-record loop on the full Figure 2/3 workload.

    Both paths answer the same 24-point α-grid of BCG aggregates
    (equilibrium count, average PoA, worst PoA, average links) over all
    11117 classes on 8 vertices; the record path is the pre-store
    ``EquilibriumCensus`` API loop that ``census_figure_series`` used to
    drive.  Outputs are asserted identical before any timing is recorded.
    """
    import tempfile

    from repro.analysis.store import CensusStore
    from repro.analysis.sweeps import log_spaced_alphas

    census = EquilibriumCensus.build_streamed(8, include_ucg=False)
    store = CensusStore.from_census(census)
    alphas = log_spaced_alphas(0.2, 128.0, 24)

    def record_sweep():
        return [
            (
                census.equilibrium_count(alpha, "bcg"),
                census.average_price_of_anarchy(alpha, "bcg"),
                census.worst_price_of_anarchy(alpha, "bcg"),
                census.average_num_links(alpha, "bcg"),
            )
            for alpha in alphas
        ]

    def store_sweep():
        aggregates = store.grid_aggregates(alphas, "bcg")
        return list(
            zip(
                aggregates["counts"],
                aggregates["average_poa"],
                aggregates["worst_poa"],
                aggregates["average_links"],
            )
        )

    def rows_equal(a, b):
        return all(
            x == y or (x != x and y != y) for row_a, row_b in zip(a, b)
            for x, y in zip(row_a, row_b)
        )

    # Time the record sweep by hand so the parity assertion reuses a timed
    # run's output — the sweep costs ~30 s and must not run a third time.
    record_s = float("inf")
    record_rows = None
    for _ in range(2):
        start = time.perf_counter()
        record_rows = record_sweep()
        record_s = min(record_s, time.perf_counter() - start)
    store_s = _time(store_sweep, repeats=2)
    assert rows_equal(record_rows, store_sweep()), "store/record divergence"

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "census8.npz")
        start = time.perf_counter()
        store.save(path)
        save_s = time.perf_counter() - start
        disk_bytes = os.path.getsize(path)
        start = time.perf_counter()
        CensusStore.load(path)
        load_s = time.perf_counter() - start

    return {
        "classes": len(store),
        "grid_points": len(alphas),
        "record_sweep_seconds": record_s,
        "store_sweep_seconds": store_s,
        "grid_speedup": record_s / store_s,
        "store_points_per_sec": len(alphas) / store_s,
        "resident_bytes": store.nbytes,
        "resident_bytes_per_class": store.nbytes / len(store),
        "disk_bytes_npz": disk_bytes,
        "save_seconds": save_s,
        "load_seconds": load_s,
    }


# --------------------------------------------------------------------------- #
# 3e. Weighted engine: heterogeneous-α scenario sweep at n = 7 (schema v4)
# --------------------------------------------------------------------------- #


def bench_weighted_engine() -> Dict[str, float]:
    """Vectorised weighted stability sweep vs the per-graph Python loop.

    Both paths answer the same 24-point scale grid of weighted pairwise
    stability over all 853 connected classes on 7 vertices under a seeded
    random per-edge cost model (the ``random_weights`` scenario); decisions
    are asserted identical before any timing is recorded.  The vectorised
    path pairs the batched boolean-matmul deltas with per-probe coefficient
    vectors (``batch_weighted_columns`` + ``weighted_bcg_stable_mask``);
    the baseline runs a :class:`WeightedStabilityProfile` per graph and an
    exact Definition 3 check per grid point.
    """
    from repro.analysis.scenarios import build_scenario, default_t_grid
    from repro.analysis.weighted import weighted_python_sweep_bcg
    from repro.engine.batch import batch_weighted_columns
    from repro.engine.columnar import weighted_bcg_stable_mask

    scenario = build_scenario("random_weights", 7, seed=3)
    graphs = enumerate_connected_graphs(7)
    matrix = scenario.model.matrix(7)
    ts = default_t_grid(7, 24)

    def run_vectorised():
        columns = batch_weighted_columns(graphs, matrix, oracle=DistanceOracle())
        return weighted_bcg_stable_mask(
            columns["rem_w"], columns["rem_delta"], columns["rem_indptr"],
            columns["add_w_u"], columns["add_s_u"],
            columns["add_w_v"], columns["add_s_v"], columns["add_indptr"],
            ts,
        )

    def run_python():
        return weighted_python_sweep_bcg(graphs, scenario.model, ts)

    vector_mask = run_vectorised()
    python_mask = run_python()
    assert [
        [bool(x) for x in row] for row in vector_mask
    ] == python_mask, "weighted vectorised/python divergence"

    vector_s = _time(run_vectorised, repeats=2)
    python_s = _time(run_python, repeats=2)
    stable_cells = int(sum(sum(row) for row in python_mask))
    return {
        "graphs": len(graphs),
        "grid_points": len(ts),
        "stable_cells": stable_cells,
        "python_seconds": python_s,
        "vectorised_seconds": vector_s,
        "speedup": python_s / vector_s,
        "vectorised_graphs_per_sec": len(graphs) / vector_s,
    }


# --------------------------------------------------------------------------- #
# 3e1b. UCG orientation engine: vectorised intervals vs backtracking (v8)
# --------------------------------------------------------------------------- #


def bench_ucg_engine(stride: int = 16) -> Dict[str, float]:
    """Vectorised UCG α-interval engine vs the per-graph orientation backtrack.

    The engine computes the Nash-supportability interval set of **all** 853
    connected classes on 7 vertices in one batched pass (vertex-deleted
    distance tables + superset-min interval tables + the class-quotient
    orientation DP).  The backtracking reference takes minutes for the full
    set, so it is timed on every ``stride``-th class and extrapolated
    (same precedent as the amortised-ensemble projection); endpoints are
    asserted float-identical on the sample first.  Both paths run on fresh
    ``Graph`` instances each repeat so the per-instance ``_ucg_set`` memo
    never short-circuits a timed run.
    """
    from repro.core.unilateral import ucg_nash_alpha_set
    from repro.engine import ucg_alpha_sets

    graphs = enumerate_connected_graphs(7)
    sample = graphs[::stride]

    def engine_inputs():
        return [Graph(g.n, g.sorted_edges()) for g in graphs]

    def run_engine():
        return ucg_alpha_sets(engine_inputs())

    def run_reference_sample():
        return [
            ucg_nash_alpha_set(Graph(g.n, g.sorted_edges())) for g in sample
        ]

    engine_sets = run_engine()
    for k, (graph, reference) in enumerate(zip(sample, run_reference_sample())):
        engine_set = engine_sets[k * stride]
        assert [(iv.lo, iv.hi) for iv in engine_set.intervals] == [
            (iv.lo, iv.hi) for iv in reference.intervals
        ], f"UCG engine/backtracking divergence on {graph.sorted_edges()}"

    engine_s = _time(run_engine, repeats=2)
    reference_sample_s = _time(run_reference_sample, repeats=1)
    reference_projected_s = reference_sample_s * (len(graphs) / len(sample))
    return {
        "graphs": len(graphs),
        "reference_sample_size": len(sample),
        "engine_seconds": engine_s,
        "reference_sample_seconds": reference_sample_s,
        "reference_projected_seconds": reference_projected_s,
        "speedup": reference_projected_s / engine_s,
        "engine_graphs_per_sec": len(graphs) / engine_s,
    }


# --------------------------------------------------------------------------- #
# 3e2. Persistent weighted artifacts: query-from-artifact vs recompute (v5)
# --------------------------------------------------------------------------- #


def bench_weighted_store() -> Dict[str, float]:
    """Answering a scale grid from a saved artifact vs recomputing the sweep.

    Both paths answer the same 24-point grid of weighted stability masks
    plus the per-class ``(t_min, t_max)`` windows over all 11117 connected
    classes on 8 vertices under the seeded ``random_weights`` model.  The
    recompute path is what every pre-store query paid: the full
    ``batch_weighted_columns`` deviation batch, every time.  The artifact
    path loads the persisted ``.npz`` and runs only the grid kernels —
    answers are asserted identical before any timing is recorded.  (At
    n = 7 the grid kernels themselves bound the query at ~9x; n = 8 is
    where the artifact starts paying for real, and matches the scale the
    ``census_store`` section uses.)
    """
    import tempfile

    from repro.analysis.scenarios import build_scenario, default_t_grid
    from repro.analysis.weighted_store import WeightedStore
    from repro.engine.batch import batch_weighted_columns
    from repro.engine.columnar import (
        weighted_bcg_stable_mask,
        weighted_stability_windows,
    )

    scenario = build_scenario("random_weights", 8, seed=3)
    graphs = enumerate_connected_graphs(8)
    matrix = scenario.model.matrix(8)
    ts = default_t_grid(8, 24)

    def run_recompute():
        columns = batch_weighted_columns(graphs, matrix, oracle=DistanceOracle())
        probe = (
            columns["rem_w"], columns["rem_delta"], columns["rem_indptr"],
            columns["add_w_u"], columns["add_s_u"],
            columns["add_w_v"], columns["add_s_v"], columns["add_indptr"],
        )
        return (
            weighted_bcg_stable_mask(*probe, ts),
            weighted_stability_windows(*probe),
        )

    start = time.perf_counter()
    store = WeightedStore.from_scenario(scenario)
    build_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "weighted8.npz")
        start = time.perf_counter()
        store.save(path)
        save_s = time.perf_counter() - start
        disk_bytes = os.path.getsize(path)

        def run_artifact():
            loaded = WeightedStore.load(path)
            return loaded.stable_mask(ts), loaded.stability_windows()

        recompute_mask, (recompute_t_min, recompute_t_max) = run_recompute()
        artifact_mask, (artifact_t_min, artifact_t_max) = run_artifact()
        assert (artifact_mask == recompute_mask).all(), "mask divergence"
        assert artifact_t_min.tolist() == recompute_t_min.tolist(), "t_min"
        assert artifact_t_max.tolist() == recompute_t_max.tolist(), "t_max"

        recompute_s = _time(run_recompute, repeats=2)
        artifact_s = _time(run_artifact, repeats=2)

    return {
        "classes": len(store),
        "grid_points": len(ts),
        "build_seconds": build_s,
        "save_seconds": save_s,
        "disk_bytes_npz": disk_bytes,
        "resident_bytes": store.nbytes,
        "recompute_seconds": recompute_s,
        "artifact_query_seconds": artifact_s,
        "query_speedup": recompute_s / artifact_s,
    }


# --------------------------------------------------------------------------- #
# 3e3. Seeded scenario ensembles: serial vs pooled draws (schema v5)
# --------------------------------------------------------------------------- #


def bench_ensemble(draws: int = 8, jobs: int = 2) -> Dict[str, float]:
    """K seeded random_weights draws at n = 6, serial vs pooled.

    Report-only trajectory entry (draw fan-out gains depend on core count);
    the serial and pooled summaries are asserted identical, which is the
    determinism contract the ensemble runner ships with.
    """
    from repro.analysis.ensembles import run_ensemble

    start = time.perf_counter()
    serial = run_ensemble("random_weights", n=6, draws=draws, seed=0, grid=12, jobs=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    pooled = run_ensemble(
        "random_weights", n=6, draws=draws, seed=0, grid=12, jobs=jobs
    )
    pooled_s = time.perf_counter() - start
    assert (serial.counts == pooled.counts).all(), (
        "ensemble serial/pooled divergence"
    )
    assert serial.count_stats["mean"] == pooled.count_stats["mean"]
    return {
        "scenario": "random_weights",
        "n": 6,
        "draws": draws,
        "classes": serial.classes,
        "grid_points": len(serial.ts),
        "workers": jobs,
        "serial_seconds": serial_s,
        "pooled_seconds": pooled_s,
        "draws_per_sec_serial": draws / serial_s,
        "summaries_identical": True,
    }


# --------------------------------------------------------------------------- #
# 3e4. Amortised mega-ensembles: shared delta artifact + stacked kernels
#      vs the per-draw store-build path (schema v6)
# --------------------------------------------------------------------------- #


def bench_ensemble_amortised(
    n: int = 7, draws: int = 1000, reference_draws: int = 8
) -> Dict[str, float]:
    """1000 seeded draws at n = 7: shared-delta stacked kernels, >= 10x.

    The per-draw baseline is the PR-5 ensemble inner loop — every draw
    re-prices the whole scenario through ``WeightedStore.from_scenario``
    (full coefficient-column batch per draw) before answering the grid.
    Its rate is measured on a prefix of the same seed sequence and
    extrapolated linearly; per-draw cost does not depend on the draw index.

    The amortised side is charged end to end: building the shared
    model-independent :class:`DeltaStore` once **plus** the full K-draw
    stacked-weight run with streaming window aggregation.  The counts of
    the overlapping draws are asserted bit-identical to the per-draw
    stores, and the streaming aggregation state is recorded as the
    peak-memory proxy — it is O(classes), independent of K, unlike the
    dense ``2 x K x classes`` window stack the per-draw path would hold.
    """
    import numpy as np

    from repro.analysis.delta_store import DeltaStore
    from repro.analysis.ensembles import ensemble_seeds, run_ensemble
    from repro.analysis.scenarios import build_scenario, default_t_grid
    from repro.analysis.weighted_store import WeightedStore
    from repro.engine.streaming import (
        DEFAULT_EXACT_BUFFER,
        StreamingEnsembleStats,
    )

    grid = 12
    seed = 0
    ts = default_t_grid(n, grid)
    seeds = ensemble_seeds(seed, reference_draws)

    start = time.perf_counter()
    reference_counts = []
    for draw_seed in seeds:
        scenario = build_scenario("random_weights", n, seed=draw_seed)
        store = WeightedStore.from_scenario(scenario)
        reference_counts.append(store.stable_counts(ts))
        store.stability_windows()
    per_draw_s = time.perf_counter() - start
    per_draw_rate = reference_draws / per_draw_s
    per_draw_projected_s = draws / per_draw_rate

    start = time.perf_counter()
    delta = DeltaStore.build(n)
    delta_build_s = time.perf_counter() - start

    start = time.perf_counter()
    result = run_ensemble(
        "random_weights", n=n, draws=draws, seed=seed, grid=grid,
        jobs=1, delta=delta,
    )
    stacked_s = time.perf_counter() - start
    amortised_s = delta_build_s + stacked_s

    for k, counts in enumerate(reference_counts):
        assert np.array_equal(result.counts[k], np.asarray(counts)), (
            f"amortised draw {k} diverged from the per-draw store"
        )

    # Peak aggregation state past the exact buffer: O(classes), not O(K).
    agg = StreamingEnsembleStats(result.classes)
    agg.update(np.zeros((DEFAULT_EXACT_BUFFER + 1, result.classes)))
    aggregation_state_bytes = agg.state_nbytes

    return {
        "scenario": "random_weights",
        "n": n,
        "draws": draws,
        "classes": result.classes,
        "grid_points": len(ts),
        "reference_draws": reference_draws,
        "per_draw_seconds": per_draw_s,
        "per_draw_rate": per_draw_rate,
        "per_draw_projected_seconds": per_draw_projected_s,
        "delta_build_seconds": delta_build_s,
        "stacked_seconds": stacked_s,
        "amortised_seconds": amortised_s,
        "amortised_rate": draws / amortised_s,
        "speedup": per_draw_projected_s / amortised_s,
        "aggregation_state_bytes": aggregation_state_bytes,
        "dense_window_stack_bytes": 2 * draws * result.classes * 8,
        "counts_identical": True,
    }


# --------------------------------------------------------------------------- #
# 3f. mmap-shared multi-process census-store queries (schema v4)
# --------------------------------------------------------------------------- #


def _mmap_fanout_counts(task):
    """Pool worker: query one α-chunk from the shared mapped artifact."""
    from repro.analysis.store import CensusStore

    path, alphas = task
    store = CensusStore.load(path, mmap=True)
    return [int(c) for c in store.equilibrium_counts(alphas, "bcg")]


def bench_store_mmap_fanout(jobs: int = 2) -> Dict[str, float]:
    """One mapped n = 7 artifact queried from many processes, zero-copy.

    Every worker maps the same on-disk column directory read-only and
    answers a slice of a 32-point α-grid; the fanned-out counts are
    asserted equal to a serial sweep over the parent's own mmap handle.
    Report-only (no floor): on small-``n`` artifacts the pool spawn cost
    dominates — the section exists to keep the zero-copy path exercised
    and its wall time on the perf trajectory.
    """
    import tempfile

    from repro.analysis.store import CensusStore
    from repro.analysis.sweeps import log_spaced_alphas
    from repro.engine import chunk_evenly, parallel_map

    store = CensusStore.build(7, include_ucg=False)
    alphas = log_spaced_alphas(0.2, 49.0, 32)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "census7_dir")
        store.save(path, format="dir")
        disk_bytes = sum(
            os.path.getsize(os.path.join(path, name)) for name in os.listdir(path)
        )
        mapped = CensusStore.load(path, mmap=True)
        start = time.perf_counter()
        serial = [int(c) for c in mapped.equilibrium_counts(alphas, "bcg")]
        serial_s = time.perf_counter() - start

        tasks = [(path, chunk) for chunk in chunk_evenly(alphas, jobs * 2)]
        start = time.perf_counter()
        fanned: List[int] = []
        for part in parallel_map(_mmap_fanout_counts, tasks, jobs=jobs):
            fanned.extend(part)
        fanout_s = time.perf_counter() - start
    assert fanned == serial, "mmap fan-out diverged from the serial mmap sweep"
    return {
        "classes": len(store),
        "grid_points": len(alphas),
        "workers": jobs,
        "disk_bytes_dir": disk_bytes,
        "serial_mmap_seconds": serial_s,
        "fanout_seconds": fanout_s,
        "counts_identical": True,
    }


def bench_shard_runner() -> Dict[str, float]:
    """The fault-tolerance tax: checksummed shards + manifest vs plain.

    Both paths run the same :func:`repro.engine.run_shards` fan-out over
    the n = 7 BCG census; the checksummed one additionally persists every
    shard (sha256 content checksum + config fingerprint, atomic rename)
    and heartbeats ``manifest.json``.  The three artifacts — plain,
    checksummed, and a warm resume from the shard directory — are
    asserted bit-identical by content checksum, and the overhead ratio
    carries a <= 1.10x acceptance floor.
    """
    import tempfile

    from repro.analysis.store import CensusStore
    from repro.engine.shardwork import manifest_path

    def build(**kwargs):
        return CensusStore.build_streamed(7, include_ucg=False, **kwargs)

    plain = build()
    plain_s = _time(build, repeats=2)

    checksummed_s = float("inf")
    for _ in range(2):
        with tempfile.TemporaryDirectory() as tmp:
            shard_dir = os.path.join(tmp, "shards")
            start = time.perf_counter()
            checksummed = build(shard_dir=shard_dir)
            checksummed_s = min(checksummed_s, time.perf_counter() - start)

            start = time.perf_counter()
            resumed = build(shard_dir=shard_dir)
            resume_s = time.perf_counter() - start
            with open(manifest_path(shard_dir)) as handle:
                manifest = json.load(handle)
    assert (
        plain.content_checksum()
        == checksummed.content_checksum()
        == resumed.content_checksum()
    ), "checksummed/resumed artifacts diverged from the plain build"
    assert manifest["resumed"] == manifest["total"], "warm resume recomputed shards"
    return {
        "classes": len(plain),
        "shards": manifest["total"],
        "plain_seconds": plain_s,
        "checksummed_seconds": checksummed_s,
        "resume_seconds": resume_s,
        "overhead_ratio": checksummed_s / plain_s,
        "checksums_identical": True,
    }


# --------------------------------------------------------------------------- #
# 3h. Telemetry kill-switch overhead on the vectorised kernel path (schema v9)
# --------------------------------------------------------------------------- #


def bench_telemetry_overhead(
    n: int = 7, grid: int = 48, rounds: int = 40
) -> Dict[str, float]:
    """Disabled telemetry must be free on the hot kernel path.

    Times the instrumented :func:`repro.engine.columnar.bcg_stable_mask`
    wrapper with ``REPRO_METRICS`` off against the bare kernel (its
    ``__wrapped__``) over the full n = 7 census columns.  With telemetry
    disabled the wrapper's only residual cost is one enabled-flag check
    per call, so the ratio is floored at <= 1.05 by the v9 schema check.
    """
    from repro import obs
    from repro.analysis.store import CensusStore
    from repro.analysis.sweeps import log_spaced_alphas
    from repro.engine.columnar import bcg_stable_mask

    store = CensusStore.build(n, include_ucg=False)
    alphas = log_spaced_alphas(0.4, 2.0 * n * n, grid)
    columns = (
        store._rem_min_column(),
        store.add_lo,
        store.add_hi,
        store.add_indptr,
    )
    bare = bcg_stable_mask.__wrapped__

    previous = obs.set_metrics_enabled(False)
    try:
        bcg_stable_mask(*columns, alphas)  # warm the lazy caches out of the timing
        bare(*columns, alphas)
        # Alternate the two arms call-by-call and keep each arm's best
        # time, so machine-load drift and background contention hit both
        # equally instead of biasing whichever block runs second.
        instrumented_call = float("inf")
        bare_call = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            bcg_stable_mask(*columns, alphas)
            instrumented_call = min(instrumented_call, time.perf_counter() - start)
            start = time.perf_counter()
            bare(*columns, alphas)
            bare_call = min(bare_call, time.perf_counter() - start)
    finally:
        obs.set_metrics_enabled(previous)
    return {
        "n": n,
        "grid_points": len(alphas),
        "classes": len(store),
        "kernel_calls": rounds,
        "bare_seconds": bare_call * rounds,
        "disabled_seconds": instrumented_call * rounds,
        "disabled_overhead_ratio": instrumented_call / bare_call,
    }


# --------------------------------------------------------------------------- #
# 3i. Census-as-a-service: warm server query vs cold CLI subprocess (v10)
# --------------------------------------------------------------------------- #


def bench_service(n: int = 6, grid: int = 24, rounds: int = 12) -> Dict[str, float]:
    """A warm artifact server must answer grids >= 10x faster than cold CLI.

    The cold arm is the full ``census --load --grid`` subprocess (fresh
    interpreter, imports, artifact load, kernel call); the warm arm is one
    HTTP ``POST /v1/query/grid`` against an in-process
    :class:`~repro.service.http.ArtifactServer` whose store LRU is hot.
    The served figure payload is asserted byte-identical to the CLI table
    before any time is recorded, and an 8-request concurrent burst must
    actually coalesce into shared kernel calls.
    """
    import json as jsonlib
    import subprocess
    import tempfile
    import urllib.request
    from concurrent.futures import ThreadPoolExecutor

    from repro.analysis.figure_series import figure_from_payload
    from repro.analysis.report import format_figure
    from repro.analysis.store import CensusStore, clear_store_cache
    from repro.service import ArtifactCatalog, GridBatcher, QueryAPI
    from repro.service.http import start_in_thread
    from smoke_metrics import parse_exposition

    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        artifact = os.path.join(tmp, f"census{n}.npz")
        CensusStore.build(n, include_ucg=True).save(artifact)

        def cold_cli():
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "census",
                    "--load", artifact, "--grid", str(grid),
                ],
                env=env, capture_output=True, text=True, check=True,
            )
            return result.stdout

        # One un-timed cold run gives the parity reference (and warms the
        # OS page cache so the cold arm times the interpreter + load +
        # kernel, not first-touch disk reads).
        cli_figure = cold_cli().split("\n\n", 1)[1]

        clear_store_cache()
        api = QueryAPI(
            ArtifactCatalog(root=tmp), batcher=GridBatcher(window=0.005)
        )
        server, thread = start_in_thread(api=api)
        base = f"http://127.0.0.1:{server.port}"
        try:
            def warm_query():
                request = urllib.request.Request(
                    base + "/v1/query/grid",
                    data=jsonlib.dumps(
                        {"artifact": f"census{n}.npz", "points": grid}
                    ).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=60) as response:
                    return jsonlib.loads(response.read().decode("utf-8"))

            payload = warm_query()  # warm the store LRU out of the timing
            served_figure = format_figure(
                figure_from_payload(payload),
                f"average_poa over {payload['points']} grid points",
            ) + "\n"
            if served_figure != cli_figure:
                raise AssertionError(
                    "served grid figure differs from census --load --grid"
                )

            warm = min(_time(warm_query) for _ in range(rounds))
            cold = min(_time(lambda: cold_cli()) for _ in range(3))

            # Concurrent burst: 8 identical requests must coalesce.
            before = api.batcher.stats()
            with ThreadPoolExecutor(max_workers=8) as pool:
                bursts = list(
                    pool.map(lambda _: warm_query(), range(8))
                )
            after = api.batcher.stats()
            if any(burst != bursts[0] for burst in bursts):
                raise AssertionError("concurrent burst responses disagree")

            exposition = urllib.request.urlopen(
                base + "/metrics", timeout=30
            ).read().decode("utf-8")
            series = parse_exposition(exposition)
            request_histogram_present = any(
                key.startswith("repro_http_request_seconds_count")
                for key in series
            )
        finally:
            server.shutdown()
            thread.join(timeout=10)
            clear_store_cache()

    return {
        "n": n,
        "grid_points": grid,
        "cold_cli_seconds": cold,
        "warm_server_seconds": warm,
        "speedup": cold / warm,
        "parity_ok": True,
        "burst_requests": 8,
        "burst_coalesced": after.coalesced - before.coalesced,
        "metrics_exposition_ok": True,
        "request_histogram_present": request_histogram_present,
    }


# --------------------------------------------------------------------------- #
# 4. Single-edge mutation must not scale with m
# --------------------------------------------------------------------------- #


def bench_edge_mutation() -> Dict[str, float]:
    n = 200
    sparse = path_graph(n)  # m = n - 1
    dense = complete_graph(n).remove_edge(0, 199)  # m ~ n^2 / 2, one slot free
    rounds = 2000

    def mutate(graph: Graph, u: int, v: int):
        def run():
            for _ in range(rounds):
                graph.add_edge(u, v)
        return run

    sparse_s = _time(mutate(sparse, 0, 199))
    dense_s = _time(mutate(dense, 0, 199))
    return {
        "n": n,
        "sparse_m": sparse.num_edges,
        "dense_m": dense.num_edges,
        "sparse_ns_per_op": sparse_s / rounds * 1e9,
        "dense_ns_per_op": dense_s / rounds * 1e9,
        "dense_over_sparse": dense_s / sparse_s,
    }


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--report-only",
        action="store_true",
        help=(
            "never fail on the wall-clock speedup floors (for shared CI "
            "runners where the naive and engine paths degrade differently "
            "under load); the m-independence check still applies"
        ),
    )
    parser.add_argument(
        "--n9",
        action="store_true",
        help=(
            "also run the n=9 BCG streamed census (261080 graphs; minutes "
            "of wall time) and record it as census_n9_bcg_streamed"
        ),
    )
    args = parser.parse_args(argv)

    cpu = os.cpu_count() or 1
    # Always record jobs=2 for the trajectory even on single-core boxes
    # (cpu_count in the report says whether pool gains were possible at all).
    jobs_grid = sorted({2} | {j for j in (4, min(8, cpu)) if 1 < j <= cpu})
    report = {
        "schema": "bench_engine/v10",
        "python": sys.version.split()[0],
        "cpu_count": cpu,
        "unix_time": time.time(),
        "kernel_bfs": bench_kernel_bfs(),
        "oracle_deltas": bench_oracle_deltas(),
        "census_n7_bcg": bench_census_n7(jobs_grid),
        "edge_mutation": bench_edge_mutation(),
        "enumeration_n8": bench_enumeration_n8(),
        "census_n8_bcg_streamed": bench_census_n8_streamed(),
        "census_store": bench_census_store_n8(),
        "weighted_engine": bench_weighted_engine(),
        "ucg_engine": bench_ucg_engine(),
        "weighted_store": bench_weighted_store(),
        "ensemble": bench_ensemble(),
        "ensemble_amortised": bench_ensemble_amortised(),
        "census_store_mmap_fanout": bench_store_mmap_fanout(),
        "shard_runner": bench_shard_runner(),
        "telemetry_overhead": bench_telemetry_overhead(),
        "service": bench_service(),
    }
    if args.n9:
        report["census_n9_bcg_streamed"] = bench_census_n9_streamed()

    with open(OUTPUT_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    census = report["census_n7_bcg"]
    mutation = report["edge_mutation"]
    enum8 = report["enumeration_n8"]
    census8 = report["census_n8_bcg_streamed"]
    for band, stats in report["kernel_bfs"].items():
        print(f"kernel BFS ({band}): {stats['speedup']:.2f}x over reference")
    print(f"oracle deltas: {report['oracle_deltas']['speedup']:.2f}x over naive")
    print(
        f"census n=7:    naive {census['naive_seconds']:.2f}s, "
        f"engine serial {census['engine_serial_seconds']:.2f}s "
        f"({census['serial_speedup']:.2f}x)"
    )
    for jobs in jobs_grid:
        print(
            f"census n=7:    engine jobs={jobs} "
            f"{census[f'engine_jobs{jobs}_seconds']:.2f}s"
        )
    print(
        f"enumeration n=8: augment+dedup {enum8['augment_dedup_seconds']:.2f}s, "
        f"canonical augmentation {enum8['canonical_augmentation_seconds']:.2f}s "
        f"({enum8['speedup']:.2f}x)"
    )
    print(
        f"census n=8:    streamed {census8['streamed_seconds']:.2f}s, "
        f"materialised {census8['materialised_seconds']:.2f}s "
        f"({census8['graphs']} graphs)"
    )
    store8 = report["census_store"]
    print(
        f"census store:  n=8 grid sweep {store8['store_sweep_seconds']*1e3:.1f}ms vs "
        f"record loop {store8['record_sweep_seconds']:.2f}s "
        f"({store8['grid_speedup']:.1f}x); artifact "
        f"{store8['resident_bytes']/1e6:.1f}MB resident, "
        f"{store8['disk_bytes_npz']/1e6:.1f}MB npz "
        f"(save {store8['save_seconds']*1e3:.0f}ms, "
        f"load {store8['load_seconds']*1e3:.0f}ms)"
    )
    weighted = report["weighted_engine"]
    print(
        f"weighted engine: n=7 scenario sweep vectorised "
        f"{weighted['vectorised_seconds']*1e3:.0f}ms vs python loop "
        f"{weighted['python_seconds']:.2f}s ({weighted['speedup']:.1f}x, "
        f"{weighted['graphs']} graphs x {weighted['grid_points']} scales)"
    )
    ucg = report["ucg_engine"]
    print(
        f"ucg engine:    n=7 all {ucg['graphs']} classes vectorised "
        f"{ucg['engine_seconds']:.2f}s vs backtracking "
        f"{ucg['reference_projected_seconds']:.0f}s projected from "
        f"{ucg['reference_sample_size']} sampled classes "
        f"({ucg['speedup']:.0f}x, floor 10x)"
    )
    wstore = report["weighted_store"]
    print(
        f"weighted store: n=8 {wstore['grid_points']}-pt grid from artifact "
        f"{wstore['artifact_query_seconds']*1e3:.0f}ms vs recompute "
        f"{wstore['recompute_seconds']:.2f}s "
        f"({wstore['query_speedup']:.1f}x; "
        f"{wstore['disk_bytes_npz']/1e3:.0f}kB npz)"
    )
    ensemble = report["ensemble"]
    print(
        f"ensemble:      n=6 {ensemble['draws']} draws serial "
        f"{ensemble['serial_seconds']:.2f}s, {ensemble['workers']} workers "
        f"{ensemble['pooled_seconds']:.2f}s (summaries identical)"
    )
    amortised = report["ensemble_amortised"]
    print(
        f"amortised:     n={amortised['n']} {amortised['draws']} draws "
        f"shared-delta {amortised['amortised_seconds']:.2f}s "
        f"(build {amortised['delta_build_seconds']:.2f}s) vs per-draw "
        f"{amortised['per_draw_projected_seconds']:.0f}s projected "
        f"({amortised['speedup']:.1f}x; aggregation state "
        f"{amortised['aggregation_state_bytes']/1e3:.0f}kB vs "
        f"{amortised['dense_window_stack_bytes']/1e6:.1f}MB dense stack)"
    )
    fanout = report["census_store_mmap_fanout"]
    print(
        f"mmap fan-out:  n=7 {fanout['grid_points']}-pt grid serial "
        f"{fanout['serial_mmap_seconds']*1e3:.1f}ms, "
        f"{fanout['workers']} workers {fanout['fanout_seconds']*1e3:.0f}ms "
        f"(counts identical)"
    )
    shardrun = report["shard_runner"]
    print(
        f"shard runner:  n=7 plain {shardrun['plain_seconds']:.2f}s, "
        f"checksummed+manifest {shardrun['checksummed_seconds']:.2f}s "
        f"({shardrun['overhead_ratio']:.3f}x, floor 1.10x), warm resume "
        f"{shardrun['resume_seconds']*1e3:.0f}ms "
        f"({shardrun['shards']} shards, checksums identical)"
    )
    telemetry = report["telemetry_overhead"]
    print(
        f"telemetry off: n={telemetry['n']} bcg_stable_mask bare "
        f"{telemetry['bare_seconds']*1e3:.1f}ms, instrumented+disabled "
        f"{telemetry['disabled_seconds']*1e3:.1f}ms "
        f"({telemetry['disabled_overhead_ratio']:.3f}x, ceiling 1.05x)"
    )
    service = report["service"]
    print(
        f"service:       n={service['n']} {service['grid_points']}-pt grid "
        f"warm server {service['warm_server_seconds']*1e3:.1f}ms vs cold CLI "
        f"{service['cold_cli_seconds']:.2f}s ({service['speedup']:.0f}x, "
        f"floor 10x; burst coalesced "
        f"{service['burst_coalesced']}/{service['burst_requests']}, "
        f"figure byte-identical)"
    )
    if "census_n9_bcg_streamed" in report:
        census9 = report["census_n9_bcg_streamed"]
        print(
            f"census n=9:    streamed {census9['streamed_seconds']:.1f}s "
            f"({census9['graphs']} graphs, "
            f"{census9['streamed_graphs_per_sec']:.0f}/s)"
        )
    print(
        f"edge mutation: sparse {mutation['sparse_ns_per_op']:.0f}ns, "
        f"dense {mutation['dense_ns_per_op']:.0f}ns "
        f"({mutation['dense_over_sparse']:.2f}x; m-independent when ~1x)"
    )
    print(f"wrote {os.path.abspath(OUTPUT_PATH)}")

    failures = []
    if census["serial_speedup"] < 3.0 and not args.report_only:
        failures.append(
            f"serial census speedup {census['serial_speedup']:.2f}x is below the 3x floor"
        )
    if enum8["speedup"] < 5.0 and not args.report_only:
        failures.append(
            f"canonical augmentation speedup {enum8['speedup']:.2f}x at n=8 "
            "is below the 5x floor"
        )
    if store8["grid_speedup"] < 10.0 and not args.report_only:
        failures.append(
            f"census store grid sweep speedup {store8['grid_speedup']:.1f}x "
            "at n=8 is below the 10x floor"
        )
    if weighted["speedup"] < 10.0 and not args.report_only:
        failures.append(
            f"weighted engine speedup {weighted['speedup']:.1f}x at n=7 "
            "is below the 10x floor"
        )
    if ucg["speedup"] < 10.0 and not args.report_only:
        failures.append(
            f"UCG orientation engine speedup {ucg['speedup']:.1f}x at n=7 "
            "is below the 10x floor"
        )
    if wstore["query_speedup"] < 10.0 and not args.report_only:
        failures.append(
            f"weighted store artifact-query speedup "
            f"{wstore['query_speedup']:.1f}x at n=8 is below the 10x floor"
        )
    if amortised["speedup"] < 10.0 and not args.report_only:
        failures.append(
            f"amortised ensemble speedup {amortised['speedup']:.1f}x at "
            f"n={amortised['n']} is below the 10x floor"
        )
    if shardrun["overhead_ratio"] > 1.10 and not args.report_only:
        failures.append(
            f"checksummed shard persistence costs "
            f"{(shardrun['overhead_ratio'] - 1) * 100:.1f}% over the plain "
            "streamed build (floor: 10%)"
        )
    if telemetry["disabled_overhead_ratio"] > 1.05 and not args.report_only:
        failures.append(
            f"disabled telemetry costs "
            f"{(telemetry['disabled_overhead_ratio'] - 1) * 100:.1f}% on the "
            "vectorised kernel path (ceiling: 5%)"
        )
    if service["speedup"] < 10.0 and not args.report_only:
        failures.append(
            f"warm-server grid query speedup {service['speedup']:.1f}x over "
            "the cold CLI is below the 10x floor"
        )
    if not service["request_histogram_present"]:
        failures.append(
            "the served /metrics exposition is missing the request-latency "
            "histogram"
        )
    if service["burst_coalesced"] < 2:
        failures.append(
            "the concurrent request burst did not coalesce any kernel calls"
        )
    if mutation["dense_over_sparse"] > 3.0:
        failures.append(
            "single-edge mutation still scales with m "
            f"(dense/sparse = {mutation['dense_over_sparse']:.2f}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
