"""Benchmarks for the enumeration substrate behind the empirical study.

The paper's Section 5 machinery: enumerating connected topologies up to
isomorphism and canonical labelling.  These are the scaling bottlenecks of the
exhaustive censuses, so they get their own benchmarks (and the counts are
asserted against the OEIS).
"""

from repro.graphs import (
    canonical_form,
    enumerate_connected_graphs,
    enumerate_graphs,
    enumerate_trees,
    petersen_graph,
    random_graph,
)
from repro.graphs.enumeration import clear_cache
from repro.graphs.isomorphism import clear_canonical_record


def test_enumerate_connected_graphs_n6(benchmark):
    def build():
        clear_cache()
        return enumerate_connected_graphs(6)

    graphs = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(graphs) == 112


def test_enumerate_graphs_n7(benchmark):
    def build():
        clear_cache()
        return enumerate_graphs(7)

    graphs = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(graphs) == 1044


def test_enumerate_trees_n9(benchmark):
    def build():
        return enumerate_trees(9)

    trees = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(trees) == 47


def test_canonical_form_petersen(benchmark):
    """Canonical labelling of a highly symmetric 10-vertex graph.

    Canonical forms are memoised per graph instance, so the memo is dropped
    inside the timed callable to keep measuring the search itself (graph
    construction stays outside the timing).
    """
    graph = petersen_graph()

    def search():
        clear_canonical_record(graph)
        return canonical_form(graph)

    form = benchmark(search)
    assert form[0] == 10


def test_canonical_form_random_graph(benchmark):
    """Canonical labelling of a typical (asymmetric) 8-vertex graph."""
    import random

    graph = random_graph(8, 0.4, random.Random(5))

    def search():
        clear_canonical_record(graph)
        return canonical_form(graph)

    form = benchmark(search)
    assert form[0] == 8
