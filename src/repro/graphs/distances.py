"""Breadth-first-search distances and distance-derived quantities.

The connection-game cost function (Corbo & Parkes, eq. (1)) charges every
player the sum of its hop distances to every other player, so single-source
and all-pairs BFS are the workhorse primitives of the whole library.  All
distances are in *vertex hops*; unreachable pairs have distance
:data:`INFINITY` (a float ``inf`` sentinel, so sums propagate naturally).

Since the bitset kernel landed in :mod:`repro.graphs.graph`, the BFS here is
*word-parallel*: a frontier is a single big integer, one level of expansion
is ``OR``-ing together the adjacency rows of the frontier vertices and
masking off the visited set with ``AND NOT``, and per-level population
counts come from ``int.bit_count``.  The original adjacency-set
implementations are kept as ``*_reference`` functions; the equivalence tests
and :mod:`benchmarks.bench_engine` compare the two paths.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Graph, iter_bits

#: Distance reported between vertices in different components.
INFINITY = float("inf")


# --------------------------------------------------------------------------- #
# Bitset kernels (operate directly on adjacency rows)
# --------------------------------------------------------------------------- #


def bitset_bfs_levels(
    rows: Sequence[int], source: int
) -> Tuple[List[int], int]:
    """Word-parallel BFS level sets from ``source`` over adjacency ``rows``.

    Returns ``(levels, visited)`` where ``levels[d]`` is the bitmask of
    vertices at distance exactly ``d`` and ``visited`` the union mask of all
    reached vertices.
    """
    visited = 1 << source
    frontier = visited
    levels = [frontier]
    while frontier:
        nxt = 0
        f = frontier
        while f:
            low = f & -f
            nxt |= rows[low.bit_length() - 1]
            f ^= low
        nxt &= ~visited
        if not nxt:
            break
        visited |= nxt
        levels.append(nxt)
        frontier = nxt
    return levels, visited


def bitset_distance_sum(rows: Sequence[int], n: int, source: int) -> float:
    """Sum of hop distances from ``source``; :data:`INFINITY` if disconnected.

    The word-parallel inner loop never materialises a distance vector: each
    level contributes ``level * popcount(level_mask)``.
    """
    visited = 1 << source
    frontier = visited
    level = 0
    total = 0
    while frontier:
        level += 1
        nxt = 0
        f = frontier
        while f:
            low = f & -f
            nxt |= rows[low.bit_length() - 1]
            f ^= low
        nxt &= ~visited
        if not nxt:
            break
        visited |= nxt
        total += level * nxt.bit_count()
        frontier = nxt
    if visited.bit_count() != n:
        return INFINITY
    return total


def _rows_without_edge(graph: Graph, edge: Tuple[int, int]) -> List[int]:
    """A copy of the graph's adjacency rows with one edge masked off."""
    a, b = edge
    rows = list(graph.adjacency_rows())
    rows[a] &= ~(1 << b)
    rows[b] &= ~(1 << a)
    return rows


def _rows_with_edge(graph: Graph, edge: Tuple[int, int]) -> List[int]:
    """A copy of the graph's adjacency rows with one extra edge grafted on."""
    a, b = edge
    rows = list(graph.adjacency_rows())
    rows[a] |= 1 << b
    rows[b] |= 1 << a
    return rows


def _levels_to_distances(levels: Sequence[int], n: int) -> List[float]:
    dist: List[float] = [INFINITY] * n
    for level, mask in enumerate(levels):
        for v in iter_bits(mask):
            dist[v] = level
    return dist


# --------------------------------------------------------------------------- #
# Public BFS API (bitset-backed, drop-in identical to the seed behaviour)
# --------------------------------------------------------------------------- #


def bfs_distances(graph: Graph, source: int) -> List[float]:
    """Single-source shortest-path (hop) distances from ``source``.

    Returns a list ``dist`` of length ``graph.n`` with ``dist[v]`` equal to the
    number of edges on a shortest path from ``source`` to ``v``, or
    :data:`INFINITY` if ``v`` is unreachable.
    """
    levels, _ = bitset_bfs_levels(graph.adjacency_rows(), source)
    return _levels_to_distances(levels, graph.n)


def bfs_distances_with_forbidden_edge(
    graph: Graph, source: int, forbidden: Tuple[int, int]
) -> List[float]:
    """Single-source distances ignoring one edge, without copying the graph.

    Equivalent to ``bfs_distances(graph.remove_edge(*forbidden), source)`` but
    only copies the two affected adjacency rows, which matters inside the
    stability checks that probe every edge removal.
    """
    rows = _rows_without_edge(graph, forbidden)
    levels, _ = bitset_bfs_levels(rows, source)
    return _levels_to_distances(levels, graph.n)


def bfs_distances_with_extra_edge(
    graph: Graph, source: int, extra: Tuple[int, int]
) -> List[float]:
    """Single-source distances with one extra edge, without copying the graph."""
    rows = _rows_with_edge(graph, extra)
    levels, _ = bitset_bfs_levels(rows, source)
    return _levels_to_distances(levels, graph.n)


def all_pairs_distances(graph: Graph) -> List[List[float]]:
    """All-pairs hop distances as a dense ``n x n`` matrix."""
    return [bfs_distances(graph, s) for s in range(graph.n)]


def distance_sum(graph: Graph, source: int) -> float:
    """Sum of distances from ``source`` to every other vertex.

    This is exactly the distance-cost term of the connection-game player cost.
    Returns :data:`INFINITY` if any vertex is unreachable.
    """
    if not graph.n:
        return 0.0
    return bitset_distance_sum(graph.adjacency_rows(), graph.n, source)


def total_distance(graph: Graph) -> float:
    """Sum of distances over all *ordered* vertex pairs.

    This is the distance term of the social cost, eq. (4) of the paper.
    """
    return sum(distance_sum(graph, s) for s in range(graph.n))


def eccentricity(graph: Graph, source: int) -> float:
    """Maximum distance from ``source`` to any vertex."""
    if not graph.n:
        return 0.0
    levels, visited = bitset_bfs_levels(graph.adjacency_rows(), source)
    if visited.bit_count() != graph.n:
        return INFINITY
    return len(levels) - 1


def diameter(graph: Graph) -> float:
    """Largest eccentricity; :data:`INFINITY` if the graph is disconnected."""
    if graph.n == 0:
        return 0.0
    return max(eccentricity(graph, s) for s in range(graph.n))


def radius(graph: Graph) -> float:
    """Smallest eccentricity; :data:`INFINITY` if the graph is disconnected."""
    if graph.n == 0:
        return 0.0
    return min(eccentricity(graph, s) for s in range(graph.n))


def average_distance(graph: Graph) -> float:
    """Average distance over ordered pairs of distinct vertices."""
    n = graph.n
    if n < 2:
        return 0.0
    return total_distance(graph) / (n * (n - 1))


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target``, or ``None`` if disconnected."""
    if source == target:
        return [source]
    prev: Dict[int, int] = {source: source}
    queue = deque([source])
    rows = graph.adjacency_rows()
    while queue:
        u = queue.popleft()
        for v in iter_bits(rows[u]):
            if v not in prev:
                prev[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(v)
    return None


def distance_vector_sums(graph: Graph) -> List[float]:
    """Per-vertex distance sums (``[distance_sum(g, v) for v in g]``)."""
    return [distance_sum(graph, s) for s in range(graph.n)]


def is_distance_matrix_symmetric(matrix: Sequence[Sequence[float]]) -> bool:
    """Check symmetry of a distance matrix (testing helper)."""
    n = len(matrix)
    return all(matrix[i][j] == matrix[j][i] for i in range(n) for j in range(n))


# --------------------------------------------------------------------------- #
# Reference implementations (the seed's adjacency-set BFS)
#
# These are the pre-kernel code paths, kept verbatim so the equivalence tests
# and benchmarks always have a known-good naive baseline to compare the
# bitset kernels against.
# --------------------------------------------------------------------------- #


def bfs_distances_reference(graph: Graph, source: int) -> List[float]:
    """Adjacency-set BFS (naive baseline for tests and benchmarks)."""
    n = graph.n
    dist = [INFINITY] * n
    dist[source] = 0
    queue = deque([source])
    adj = graph.adjacency_sets()
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in adj[u]:
            if dist[v] == INFINITY:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_distances_with_forbidden_edge_reference(
    graph: Graph, source: int, forbidden: Tuple[int, int]
) -> List[float]:
    """Adjacency-set forbidden-edge BFS (naive baseline)."""
    a, b = forbidden
    n = graph.n
    dist = [INFINITY] * n
    dist[source] = 0
    queue = deque([source])
    adj = graph.adjacency_sets()
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in adj[u]:
            if (u == a and v == b) or (u == b and v == a):
                continue
            if dist[v] == INFINITY:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_distances_with_extra_edge_reference(
    graph: Graph, source: int, extra: Tuple[int, int]
) -> List[float]:
    """Adjacency-set extra-edge BFS (naive baseline)."""
    a, b = extra
    n = graph.n
    dist = [INFINITY] * n
    dist[source] = 0
    queue = deque([source])
    adj = graph.adjacency_sets()
    while queue:
        u = queue.popleft()
        du = dist[u]
        neighbors = adj[u]
        for v in neighbors:
            if dist[v] == INFINITY:
                dist[v] = du + 1
                queue.append(v)
        if u == a and dist[b] == INFINITY:
            dist[b] = du + 1
            queue.append(b)
        elif u == b and dist[a] == INFINITY:
            dist[a] = du + 1
            queue.append(a)
    return dist


def distance_sum_reference(graph: Graph, source: int) -> float:
    """Naive distance sum built on :func:`bfs_distances_reference`."""
    return sum(bfs_distances_reference(graph, source)) if graph.n else 0.0
