"""Breadth-first-search distances and distance-derived quantities.

The connection-game cost function (Corbo & Parkes, eq. (1)) charges every
player the sum of its hop distances to every other player, so single-source
and all-pairs BFS are the workhorse primitives of the whole library.  All
distances are in *vertex hops*; unreachable pairs have distance
:data:`INFINITY` (a float ``inf`` sentinel, so sums propagate naturally).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Graph

#: Distance reported between vertices in different components.
INFINITY = float("inf")


def bfs_distances(graph: Graph, source: int) -> List[float]:
    """Single-source shortest-path (hop) distances from ``source``.

    Returns a list ``dist`` of length ``graph.n`` with ``dist[v]`` equal to the
    number of edges on a shortest path from ``source`` to ``v``, or
    :data:`INFINITY` if ``v`` is unreachable.
    """
    n = graph.n
    dist = [INFINITY] * n
    dist[source] = 0
    queue = deque([source])
    adj = graph.adjacency_sets()
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in adj[u]:
            if dist[v] == INFINITY:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_distances_with_forbidden_edge(
    graph: Graph, source: int, forbidden: Tuple[int, int]
) -> List[float]:
    """Single-source distances ignoring one edge, without copying the graph.

    Equivalent to ``bfs_distances(graph.remove_edge(*forbidden), source)`` but
    avoids building a new :class:`Graph`, which matters inside the stability
    checks that probe every edge removal.
    """
    a, b = forbidden
    n = graph.n
    dist = [INFINITY] * n
    dist[source] = 0
    queue = deque([source])
    adj = graph.adjacency_sets()
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in adj[u]:
            if (u == a and v == b) or (u == b and v == a):
                continue
            if dist[v] == INFINITY:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_distances_with_extra_edge(
    graph: Graph, source: int, extra: Tuple[int, int]
) -> List[float]:
    """Single-source distances with one extra edge, without copying the graph."""
    a, b = extra
    n = graph.n
    dist = [INFINITY] * n
    dist[source] = 0
    queue = deque([source])
    adj = graph.adjacency_sets()
    while queue:
        u = queue.popleft()
        du = dist[u]
        neighbors = adj[u]
        for v in neighbors:
            if dist[v] == INFINITY:
                dist[v] = du + 1
                queue.append(v)
        if u == a and dist[b] == INFINITY:
            dist[b] = du + 1
            queue.append(b)
        elif u == b and dist[a] == INFINITY:
            dist[a] = du + 1
            queue.append(a)
    return dist


def all_pairs_distances(graph: Graph) -> List[List[float]]:
    """All-pairs hop distances as a dense ``n x n`` matrix."""
    return [bfs_distances(graph, s) for s in range(graph.n)]


def distance_sum(graph: Graph, source: int) -> float:
    """Sum of distances from ``source`` to every other vertex.

    This is exactly the distance-cost term of the connection-game player cost.
    Returns :data:`INFINITY` if any vertex is unreachable.
    """
    return sum(bfs_distances(graph, source)) if graph.n else 0.0


def total_distance(graph: Graph) -> float:
    """Sum of distances over all *ordered* vertex pairs.

    This is the distance term of the social cost, eq. (4) of the paper.
    """
    return sum(distance_sum(graph, s) for s in range(graph.n))


def eccentricity(graph: Graph, source: int) -> float:
    """Maximum distance from ``source`` to any vertex."""
    dist = bfs_distances(graph, source)
    return max(dist) if dist else 0.0


def diameter(graph: Graph) -> float:
    """Largest eccentricity; :data:`INFINITY` if the graph is disconnected."""
    if graph.n == 0:
        return 0.0
    return max(eccentricity(graph, s) for s in range(graph.n))


def radius(graph: Graph) -> float:
    """Smallest eccentricity; :data:`INFINITY` if the graph is disconnected."""
    if graph.n == 0:
        return 0.0
    return min(eccentricity(graph, s) for s in range(graph.n))


def average_distance(graph: Graph) -> float:
    """Average distance over ordered pairs of distinct vertices."""
    n = graph.n
    if n < 2:
        return 0.0
    return total_distance(graph) / (n * (n - 1))


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target``, or ``None`` if disconnected."""
    if source == target:
        return [source]
    prev: Dict[int, int] = {source: source}
    queue = deque([source])
    adj = graph.adjacency_sets()
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v not in prev:
                prev[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(v)
    return None


def distance_vector_sums(graph: Graph) -> List[float]:
    """Per-vertex distance sums (``[distance_sum(g, v) for v in g]``)."""
    return [distance_sum(graph, s) for s in range(graph.n)]


def is_distance_matrix_symmetric(matrix: Sequence[Sequence[float]]) -> bool:
    """Check symmetry of a distance matrix (testing helper)."""
    n = len(matrix)
    return all(matrix[i][j] == matrix[j][i] for i in range(n) for j in range(n))
