"""Moore bound, cage and extremal-graph helpers.

Proposition 3 of the paper lower-bounds the price of anarchy of the BCG by
exhibiting pairwise-stable regular graphs whose order is a constant factor of
the Moore bound.  This module provides the bound itself, the girth-based dual
bound, and classification helpers for Moore graphs and cages used by the
``prop3`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .distances import diameter
from .graph import Graph
from .properties import girth, is_connected, is_regular, regular_degree


def moore_bound(degree: int, diameter_value: int) -> int:
    """Maximum number of vertices of a ``degree``-regular graph of given diameter.

    ``M(k, D) = 1 + k * sum_{i=0}^{D-1} (k - 1)^i``.  For ``k = 2`` this is the
    odd cycle bound ``2D + 1``.
    """
    if degree < 1 or diameter_value < 0:
        raise ValueError("degree must be >= 1 and diameter >= 0")
    if diameter_value == 0:
        return 1
    if degree == 1:
        return 2
    if degree == 2:
        return 2 * diameter_value + 1
    return 1 + degree * ((degree - 1) ** diameter_value - 1) // (degree - 2)


def moore_bound_girth(degree: int, girth_value: int) -> int:
    """Minimum number of vertices of a ``degree``-regular graph of given girth.

    For odd girth ``g = 2D + 1`` this equals ``moore_bound(degree, D)``; for
    even girth ``g = 2D`` it is ``2 * sum_{i=0}^{D-1} (k - 1)^i``.
    """
    if degree < 2 or girth_value < 3:
        raise ValueError("degree must be >= 2 and girth >= 3")
    k = degree
    if girth_value % 2 == 1:
        d = (girth_value - 1) // 2
        return moore_bound(k, d)
    d = girth_value // 2
    if k == 2:
        return 2 * d
    return 2 * ((k - 1) ** d - 1) // (k - 2)


@dataclass(frozen=True)
class RegularGraphProfile:
    """Summary of a regular graph's extremal character (used by ``prop3``)."""

    n: int
    degree: int
    diameter: int
    girth: float
    moore_bound_diameter: int
    moore_bound_girth: Optional[int]

    @property
    def moore_ratio(self) -> float:
        """``n`` divided by the Moore (diameter) bound — 1.0 for Moore graphs."""
        return self.n / self.moore_bound_diameter

    @property
    def is_moore_graph(self) -> bool:
        """Whether the graph attains the Moore (diameter) bound exactly."""
        return self.n == self.moore_bound_diameter

    @property
    def is_cage_candidate(self) -> bool:
        """Whether the graph attains the girth-based Moore bound exactly."""
        return (
            self.moore_bound_girth is not None
            and self.n == self.moore_bound_girth
        )


def regular_graph_profile(graph: Graph) -> RegularGraphProfile:
    """Compute the :class:`RegularGraphProfile` of a connected regular graph.

    Raises
    ------
    ValueError
        If the graph is not connected and regular.
    """
    if not is_connected(graph):
        raise ValueError("graph must be connected")
    if not is_regular(graph):
        raise ValueError("graph must be regular")
    k = regular_degree(graph)
    assert k is not None
    d = int(diameter(graph))
    g = girth(graph)
    girth_bound = None
    if g != float("inf") and k >= 2:
        girth_bound = moore_bound_girth(k, int(g))
    return RegularGraphProfile(
        n=graph.n,
        degree=k,
        diameter=d,
        girth=g,
        moore_bound_diameter=moore_bound(k, d),
        moore_bound_girth=girth_bound,
    )


def is_moore_graph(graph: Graph) -> bool:
    """Whether the graph is a Moore graph (attains the Moore diameter bound)."""
    try:
        return regular_graph_profile(graph).is_moore_graph
    except ValueError:
        return False
