"""Exhaustive enumeration of small graphs up to isomorphism.

The paper's empirical study (Section 5) computes all pairwise-stable graphs of
the BCG and all Nash graphs of the UCG "by enumeration of all connected
topologies" on a fixed number of vertices.  This module provides that
substrate: enumeration of graphs, connected graphs and trees on ``n`` vertices
up to isomorphism, implemented by vertex augmentation with canonical-form
deduplication.

Counts are cross-checked in the test suite against the OEIS:

* all graphs (A000088):      1, 1, 2, 4, 11, 34, 156, 1044, 12346, ...
* connected graphs (A001349): 1, 1, 1, 2, 6, 21, 112, 853, 11117, ...
* trees (A000055):            1, 1, 1, 1, 2, 3, 6, 11, 23, ...
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Tuple

from .graph import Graph
from .isomorphism import canonical_form, canonical_graph
from .properties import is_connected, is_tree

_GRAPH_CACHE: Dict[int, List[Graph]] = {}


def enumerate_graphs(n: int) -> List[Graph]:
    """All simple graphs on ``n`` vertices, one representative per isomorphism class.

    Representatives are returned in canonical form and the result is cached, so
    repeated calls are cheap.  Enumeration proceeds by augmentation: every
    graph on ``n`` vertices arises from some graph on ``n - 1`` vertices by
    adding one vertex with an arbitrary neighbourhood, so generating all
    ``(graph, neighbourhood)`` pairs and deduplicating by canonical form is
    exhaustive.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n in _GRAPH_CACHE:
        return list(_GRAPH_CACHE[n])
    if n == 0:
        result = [Graph(0)]
    else:
        smaller = enumerate_graphs(n - 1)
        seen = {}
        for base in smaller:
            for size in range(n):
                for neighborhood in combinations(range(n - 1), size):
                    candidate = base.add_vertex(neighborhood)
                    key = canonical_form(candidate)
                    if key not in seen:
                        seen[key] = canonical_graph(candidate)
        result = sorted(
            seen.values(), key=lambda g: (g.num_edges, sorted(g.edges))
        )
    _GRAPH_CACHE[n] = result
    return list(result)


def enumerate_connected_graphs(n: int) -> List[Graph]:
    """All connected graphs on ``n`` vertices up to isomorphism."""
    return [g for g in enumerate_graphs(n) if is_connected(g)]


def enumerate_trees(n: int) -> List[Graph]:
    """All trees on ``n`` vertices up to isomorphism.

    Implemented by augmentation restricted to attaching a leaf, which is much
    cheaper than filtering the full graph enumeration and scales to the tree
    sizes used by the Proposition 5 experiment (``n`` up to ~12).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return [Graph(0)]
    if n == 1:
        return [Graph(1)]
    seen = {}
    for base in enumerate_trees(n - 1):
        for attach in range(n - 1):
            candidate = base.add_vertex([attach])
            key = canonical_form(candidate)
            if key not in seen:
                seen[key] = canonical_graph(candidate)
    return sorted(seen.values(), key=lambda g: sorted(g.edges))


def enumerate_labeled_graphs(n: int) -> Iterator[Graph]:
    """All labelled graphs on ``n`` vertices (no isomorphism reduction).

    There are ``2 ** (n(n-1)/2)`` of them, so this is only usable for very
    small ``n``; it exists mainly to cross-check the isomorphism-reduced
    enumeration in tests.
    """
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for mask in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        yield Graph(n, edges)


def enumerate_graphs_with_edge_count(n: int, m: int) -> List[Graph]:
    """All graphs on ``n`` vertices with exactly ``m`` edges, up to isomorphism."""
    return [g for g in enumerate_graphs(n) if g.num_edges == m]


def count_graphs(n: int) -> int:
    """Number of isomorphism classes of graphs on ``n`` vertices."""
    return len(enumerate_graphs(n))


def count_connected_graphs(n: int) -> int:
    """Number of isomorphism classes of connected graphs on ``n`` vertices."""
    return len(enumerate_connected_graphs(n))


def count_trees(n: int) -> int:
    """Number of isomorphism classes of trees on ``n`` vertices."""
    return len(enumerate_trees(n))


def clear_cache() -> None:
    """Drop the enumeration cache (used by tests that measure cold timings)."""
    _GRAPH_CACHE.clear()
