"""Exhaustive enumeration of small graphs via canonical augmentation.

The paper's empirical study (Section 5) computes all pairwise-stable graphs of
the BCG and all Nash graphs of the UCG "by enumeration of all connected
topologies" on a fixed number of vertices.  This module provides that
substrate: enumeration of graphs, connected graphs and trees on ``n`` vertices
up to isomorphism.

Generation uses **canonical augmentation** (McKay's orderly generation, the
scheme behind nauty's ``geng``) instead of augment-and-deduplicate:

* a graph on ``n`` vertices is extended only along *orbit representatives* of
  neighbourhood subsets under its automorphism group (two subsets in the same
  orbit yield isomorphic children), and
* a child is **accepted** only if the augmented vertex lies in the canonical
  "last-vertex" orbit — the automorphism orbit of the vertex occupying the
  last position of the canonical ordering.

Every isomorphism class is then produced *exactly once* with no global
``seen`` dictionary and no duplicate canonicalisations, so the generators
(:func:`iter_graphs`, :func:`iter_connected_graphs`, :func:`iter_graphs_from`)
stream their output and the generation tree can be sharded across process
pool workers from any level-``k`` prefix.  Two cheap invariant filters decide
most acceptances without a canonical search: the new vertex must have maximal
degree (checked on the subset mask before the child is even built), and must
carry the maximal stable 1-WL colour (singleton colour classes accept
outright).

Counts are cross-checked in the test suite against the OEIS:

* all graphs (A000088):      1, 1, 2, 4, 11, 34, 156, 1044, 12346, 274668, ...
* connected graphs (A001349): 1, 1, 1, 2, 6, 21, 112, 853, 11117, 261080, ...
* trees (A000055):            1, 1, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235, 551, ...
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Sequence, Tuple

from .graph import Graph, iter_bits
from .isomorphism import (
    CanonicalRecord,
    Permutation,
    _compute_record,
    _stable_colors,
    canonical_form,
    canonical_graph,
    canonical_record,
)
from .properties import is_connected, is_tree

_GRAPH_CACHE: Dict[int, List[Graph]] = {}
_TREE_CACHE: Dict[int, List[Graph]] = {}


def class_sort_key(graph: Graph) -> Tuple[int, List[Tuple[int, int]]]:
    """Deterministic total order on canonical representatives.

    Sorts by edge count first, then lexicographically by the sorted edge
    list.  This is the order every materialised enumeration, census and
    :class:`~repro.analysis.store.CensusStore` uses, so artifacts produced
    by different build paths (materialised, streamed, sharded) line up
    element for element.
    """
    return (graph.num_edges, sorted(graph.edges))


#: Backwards-compatible alias (pre-PR-3 private name).
_class_sort_key = class_sort_key


# --------------------------------------------------------------------------- #
# Canonical augmentation
# --------------------------------------------------------------------------- #


def _mask_orbit_reps(n: int, generators: Sequence[Permutation]) -> List[int]:
    """One representative bitmask per orbit of vertex subsets under ``generators``."""
    size = 1 << n
    seen = bytearray(size)
    images = [[1 << g[b] for b in range(n)] for g in generators]
    reps: List[int] = []
    for mask in range(size):
        if seen[mask]:
            continue
        reps.append(mask)
        seen[mask] = 1
        stack = [mask]
        while stack:
            current = stack.pop()
            for table in images:
                image = 0
                remaining = current
                while remaining:
                    low = remaining & -remaining
                    image |= table[low.bit_length() - 1]
                    remaining ^= low
                if not seen[image]:
                    seen[image] = 1
                    stack.append(image)
    return reps


def _subset_candidates(parent: Graph, record: CanonicalRecord) -> Iterator[int]:
    """Neighbourhood masks that could yield an *accepted* child of ``parent``.

    Yields one mask per automorphism orbit (orbit-mates give isomorphic
    children) and drops every mask whose new vertex could not have maximal
    degree in the child: acceptance requires the augmented vertex to occupy
    the last canonical position, which always carries the maximal stable
    colour and hence the maximal degree.  The filter is automorphism-
    invariant, so applying it to orbit representatives loses nothing.
    """
    n = parent.n
    if n == 0:
        yield 0
        return
    degrees = [parent.degree(v) for v in range(n)]
    # ge[s] = bitmask of vertices with parent-degree >= s.
    ge = [0] * (n + 2)
    for v, d in enumerate(degrees):
        bit = 1 << v
        for s in range(d + 1):
            ge[s] |= bit
    full = (1 << n) - 1
    masks: Sequence[int]
    if record.generators:
        masks = _mask_orbit_reps(n, record.generators)
    else:
        masks = range(1 << n)
    for mask in masks:
        s = mask.bit_count()
        # A vertex outside the subset may have degree at most s; a vertex
        # inside gains one, so it may have degree at most s - 1.
        if ge[s + 1] & ~mask & full:
            continue
        if ge[s] & mask:
            continue
        yield mask


def _acceptance(child_adj: Tuple[Tuple[int, ...], ...]):
    """McKay acceptance: is the new (last) vertex in the canonical last orbit?

    Cheap invariant tests decide most candidates: the stable 1-WL colouring
    is order-preserved by the canonical search, so the vertex at the last
    canonical position always lies in the maximal stable colour class.  If
    the new vertex is not in that class it can never be canonically last
    (orbits refine colour classes); if the class is a singleton it *is* the
    canonically last vertex.  Only ties fall through to a full canonical
    search.

    Returns ``(accepted, record, colors)``: ``record`` is the child's
    :class:`~repro.graphs.isomorphism.CanonicalRecord` when a full search
    was needed (so the caller can memoise it) and ``None`` otherwise;
    ``colors`` is the stable colouring (a reusable search hint).
    """
    n = len(child_adj)
    if n <= 1:
        return True, None, None
    w = n - 1
    colors = _stable_colors(child_adj)
    top = max(colors)
    if colors[w] != top:
        return False, None, colors
    if colors.count(top) == 1:
        return True, None, colors
    record = _compute_record(adj=child_adj, stable_colors=colors)
    last = record.ordering[-1]
    return record.orbit_ids[w] == record.orbit_ids[last], record, colors


def _children(parent: Graph) -> Iterator[Graph]:
    """All accepted one-vertex extensions of ``parent`` (one per child class).

    The candidate's adjacency tuples are assembled from the parent's (decoded
    once per parent), and the child :class:`Graph` is only built once the
    candidate is accepted; rejected candidates never allocate a graph.
    Accepted children carry their memoised canonical record (computed with
    the acceptance test's stable colouring as a search hint): every child
    becomes either a parent of the next level or a canonicalised census/
    enumeration entry, so the search is never wasted and never repeated.
    """
    record = canonical_record(parent)
    n = parent.n
    parent_adj = tuple(tuple(iter_bits(row)) for row in parent.adjacency_rows())
    for mask in _subset_candidates(parent, record):
        neighbors = tuple(iter_bits(mask))
        child_adj = tuple(
            parent_adj[u] + (n,) if (mask >> u) & 1 else parent_adj[u]
            for u in range(n)
        ) + (neighbors,)
        accepted, child_record, colors = _acceptance(child_adj)
        if not accepted:
            continue
        if child_record is None and colors is not None:
            child_record = _compute_record(adj=child_adj, stable_colors=colors)
        child = parent.add_vertex(neighbors)
        if child_record is not None:
            child._canon = child_record
        yield child


# --------------------------------------------------------------------------- #
# Streaming generators
# --------------------------------------------------------------------------- #


def iter_graphs(n: int) -> Iterator[Graph]:
    """Stream one representative per isomorphism class of graphs on ``n`` vertices.

    Unlike :func:`enumerate_graphs` nothing is materialised or canonicalised:
    graphs are yielded in generation order as the canonical-augmentation tree
    is walked depth-first.  Levels already materialised by
    :func:`enumerate_graphs` are reused as parents.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return _iter_graphs(n)


def _iter_graphs(n: int) -> Iterator[Graph]:
    """Generator body of :func:`iter_graphs` (arguments already validated)."""
    cached = _GRAPH_CACHE.get(n)
    if cached is not None:
        yield from list(cached)
        return
    if n == 0:
        yield Graph(0)
        return
    for parent in _iter_graphs(n - 1):
        yield from _children(parent)


def iter_connected_graphs(n: int) -> Iterator[Graph]:
    """Stream one representative per isomorphism class of connected graphs.

    When telemetry is on, each exhausted stream tallies its class count
    into ``repro_enumeration_graphs_total`` and its wall seconds into
    ``repro_enumeration_seconds`` (graphs/sec is their ratio); disabled
    telemetry returns the bare generator expression unchanged.
    """
    from .. import obs

    if not obs.metrics_enabled():
        return (g for g in iter_graphs(n) if is_connected(g))
    return _iter_connected_counted(n)


def _iter_connected_counted(n: int) -> Iterator[Graph]:
    """Generator body of the instrumented :func:`iter_connected_graphs`."""
    import time

    from .. import obs

    yielded = 0
    start = time.perf_counter()
    try:
        for g in iter_graphs(n):
            if is_connected(g):
                yielded += 1
                yield g
    finally:
        obs.counter(
            "repro_enumeration_graphs_total",
            "Connected graph classes streamed by the enumerator",
        ).inc(yielded)
        obs.histogram(
            "repro_enumeration_seconds",
            "Wall seconds per iter_connected_graphs stream",
        ).observe(time.perf_counter() - start)


def iter_graphs_from(root: Graph, n: int) -> Iterator[Graph]:
    """Stream the level-``n`` descendants of ``root`` in the generation tree.

    Because canonical augmentation produces every class exactly once, the
    subtrees below distinct level-``k`` representatives are disjoint and
    jointly exhaustive: sharding the roots across process-pool workers
    parallelises generation with no duplicate work and no cross-worker
    deduplication (this is how the streamed census fans out).
    """
    if root.n > n:
        raise ValueError("root has more vertices than the requested level")
    return _iter_graphs_from(root, n)


def _iter_graphs_from(root: Graph, n: int) -> Iterator[Graph]:
    """Generator body of :func:`iter_graphs_from` (arguments already validated)."""
    if root.n == n:
        yield root
        return
    for child in _children(root):
        yield from _iter_graphs_from(child, n)


# --------------------------------------------------------------------------- #
# Materialised enumerations (cached, canonical, deterministically sorted)
# --------------------------------------------------------------------------- #


def _canonical_augment_level(parents: List[Graph]) -> List[Graph]:
    """One generation level: accepted children, canonicalised and sorted."""
    return sorted(
        (canonical_graph(child) for parent in parents for child in _children(parent)),
        key=class_sort_key,
    )


def _augment_dedup_level(parents: List[Graph]) -> List[Graph]:
    """One generation level of the pre-canonical-augmentation path.

    Kept verbatim as the benchmark baseline and equivalence reference: every
    ``(parent, neighbourhood)`` candidate is canonicalised and deduplicated
    through a global ``seen`` dictionary.
    """
    seen: Dict[Tuple[int, int], Graph] = {}
    for base in parents:
        n = base.n + 1
        for size in range(n):
            for neighborhood in combinations(range(n - 1), size):
                candidate = base.add_vertex(neighborhood)
                key = canonical_form(candidate)
                if key not in seen:
                    seen[key] = canonical_graph(candidate)
    return sorted(seen.values(), key=class_sort_key)


def enumerate_graphs(n: int) -> List[Graph]:
    """All simple graphs on ``n`` vertices, one representative per isomorphism class.

    Representatives are returned in canonical form, deterministically sorted,
    and the result is cached so repeated calls are cheap.  Generation is by
    canonical augmentation (see the module docstring): each level is produced
    exactly once, with no deduplication pass.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n in _GRAPH_CACHE:
        return list(_GRAPH_CACHE[n])
    if n == 0:
        result = [Graph(0)]
    else:
        result = _canonical_augment_level(enumerate_graphs(n - 1))
    _GRAPH_CACHE[n] = result
    return list(result)


def enumerate_connected_graphs(n: int) -> List[Graph]:
    """All connected graphs on ``n`` vertices up to isomorphism."""
    return [g for g in enumerate_graphs(n) if is_connected(g)]


def enumerate_trees(n: int) -> List[Graph]:
    """All trees on ``n`` vertices up to isomorphism.

    Implemented by augmentation restricted to attaching a leaf at one vertex
    per automorphism orbit of the parent (orbit-mates give isomorphic trees),
    which is much cheaper than filtering the full graph enumeration and
    scales to the tree sizes used by the Proposition 5 experiment.  Results
    are cached like :func:`enumerate_graphs`.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n in _TREE_CACHE:
        return list(_TREE_CACHE[n])
    if n == 0:
        result = [Graph(0)]
    elif n == 1:
        result = [Graph(1)]
    else:
        seen: Dict[Tuple[int, int], Graph] = {}
        for base in enumerate_trees(n - 1):
            record = canonical_record(base)
            for attach in sorted(set(record.orbit_ids)):
                candidate = base.add_vertex([attach])
                key = canonical_form(candidate)
                if key not in seen:
                    seen[key] = canonical_graph(candidate)
        result = sorted(seen.values(), key=lambda g: sorted(g.edges))
    _TREE_CACHE[n] = result
    return list(result)


def enumerate_labeled_graphs(n: int) -> Iterator[Graph]:
    """All labelled graphs on ``n`` vertices (no isomorphism reduction).

    There are ``2 ** (n(n-1)/2)`` of them, so this is only usable for very
    small ``n``; it exists mainly to cross-check the isomorphism-reduced
    enumeration in tests.
    """
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for mask in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        yield Graph(n, edges)


def enumerate_graphs_with_edge_count(n: int, m: int) -> List[Graph]:
    """All graphs on ``n`` vertices with exactly ``m`` edges, up to isomorphism."""
    return [g for g in enumerate_graphs(n) if g.num_edges == m]


def count_graphs(n: int) -> int:
    """Number of isomorphism classes of graphs on ``n`` vertices."""
    return len(enumerate_graphs(n))


def count_connected_graphs(n: int) -> int:
    """Number of isomorphism classes of connected graphs on ``n`` vertices."""
    return len(enumerate_connected_graphs(n))


def count_trees(n: int) -> int:
    """Number of isomorphism classes of trees on ``n`` vertices."""
    return len(enumerate_trees(n))


def clear_cache() -> None:
    """Drop the enumeration caches (used by tests that measure cold timings)."""
    _GRAPH_CACHE.clear()
    _TREE_CACHE.clear()
