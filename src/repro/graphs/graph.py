"""A minimal, dependency-free undirected graph type on a bitset kernel.

The connection games of Corbo & Parkes (PODC 2005) are played on simple
undirected graphs whose vertices are the players ``0 .. n-1``.  The
:class:`Graph` class below keeps that small public surface (vertices are a
contiguous integer range, edges are unordered pairs) but its *internal*
representation is an adjacency **bitset**: one arbitrary-precision integer
per vertex, where bit ``v`` of ``rows[u]`` is set iff ``{u, v}`` is an edge.

This representation was chosen for the library's hot paths:

* **O(1)-copy mutation** — :meth:`add_edge`, :meth:`remove_edge`,
  :meth:`toggle_edge` and :meth:`add_vertex` copy the row tuple and flip two
  bits; they never re-validate or rebuild the edge set through
  :meth:`__init__`.  Stability checks probe every single-edge toggle of a
  graph, so this is the difference between O(n) and O(n·m) per probe.
* **word-parallel BFS** — breadth-first frontier expansion becomes a handful
  of big-integer ``OR``/``AND NOT`` operations per level
  (see :mod:`repro.graphs.distances`), with membership counting done by
  ``int.bit_count``.
* **cheap canonical comparisons** — the upper-triangular
  :meth:`adjacency_bitstring` and labelled-graph equality fall straight out
  of the rows.

Derived set views (:attr:`edges`, :meth:`neighbors`,
:meth:`adjacency_sets`) are materialised lazily and cached, so consumers
that still want frozensets pay for them at most once per graph.

The class is *logically immutable*: mutating operations return new graphs.
This makes it safe to memoise derived quantities (distance matrices, girth,
canonical forms, the :class:`repro.engine.DistanceOracle` caches) and to use
graphs as dictionary keys via :meth:`Graph.edge_key`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` ordering of an edge.

    Raises
    ------
    ValueError
        If ``u == v`` (self-loops are not allowed in the connection games).
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _graph_from_rows(n: int, rows: Tuple[int, ...], m: int) -> "Graph":
    """Module-level unpickling/reconstruction hook (kept picklable by name)."""
    return Graph._from_rows(n, rows, m)


class Graph:
    """A simple undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n_vertices:
        Number of vertices.  Vertices are always the integers
        ``0, 1, ..., n_vertices - 1``.
    edges:
        Iterable of vertex pairs.  Orientation and duplicates are ignored;
        self-loops raise :class:`ValueError`.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> g.n
    4
    >>> g.num_edges
    3
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = (
        "_n",
        "_rows",
        "_m",
        "_edges",
        "_adj",
        "_hash",
        "_canon",
        "_ucg_set",
    )

    def __init__(self, n_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self._n = n_vertices
        rows = [0] * n_vertices
        m = 0
        for u, v in edges:
            u, v = normalize_edge(int(u), int(v))
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {n_vertices} vertices"
                )
            if (rows[u] >> v) & 1:
                continue
            rows[u] |= 1 << v
            rows[v] |= 1 << u
            m += 1
        self._rows: Tuple[int, ...] = tuple(rows)
        self._m = m
        self._edges: Optional[FrozenSet[Edge]] = None
        self._adj: Optional[Tuple[FrozenSet[int], ...]] = None
        self._hash: Optional[int] = None
        #: Memoised canonical-search result (set by repro.graphs.isomorphism).
        self._canon = None
        #: Memoised UCG Nash α-set endpoints (set by repro.core.unilateral /
        #: repro.engine.ucg).  Graphs are immutable — edge mutations build new
        #: instances via _from_rows — so the memo can never go stale.
        self._ucg_set = None

    @classmethod
    def _from_rows(cls, n: int, rows: Tuple[int, ...], m: int) -> "Graph":
        """Trusted constructor from prebuilt adjacency rows (no validation).

        This is the O(1)-per-edge mutation path: callers hand over symmetric,
        self-loop-free rows and the edge count, skipping ``__init__``'s
        normalisation pass entirely.
        """
        graph = object.__new__(cls)
        graph._n = n
        graph._rows = rows
        graph._m = m
        graph._edges = None
        graph._adj = None
        graph._hash = None
        graph._canon = None
        graph._ucg_set = None
        return graph

    def __reduce__(self):
        return (_graph_from_rows, (self._n, self._rows, self._m))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_vertices(self) -> int:
        """Number of vertices (alias of :attr:`n`)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def vertices(self) -> range:
        """The vertex set as a ``range`` object."""
        return range(self._n)

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The edge set as a frozenset of ``(u, v)`` with ``u < v``."""
        if self._edges is None:
            self._edges = frozenset(self._iter_edges())
        return self._edges

    def _iter_edges(self) -> Iterator[Edge]:
        for u in range(self._n):
            for v in iter_bits(self._rows[u] >> (u + 1)):
                yield (u, u + 1 + v)

    def sorted_edges(self) -> List[Edge]:
        """Edges in lexicographic order (deterministic iteration order)."""
        return list(self._iter_edges())

    def adjacency_rows(self) -> Tuple[int, ...]:
        """The bitset kernel: ``rows[u]`` has bit ``v`` set iff ``{u, v}`` is an edge.

        This is the native internal representation; the BFS kernels in
        :mod:`repro.graphs.distances` operate directly on it.
        """
        return self._rows

    def neighbors(self, v: int) -> FrozenSet[int]:
        """The neighbour set of vertex ``v``."""
        return self.adjacency_sets()[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return self._rows[v].bit_count()

    def degree_sequence(self) -> Tuple[int, ...]:
        """Degrees sorted in non-increasing order."""
        return tuple(sorted((row.bit_count() for row in self._rows), reverse=True))

    def degrees(self) -> Tuple[int, ...]:
        """Degrees indexed by vertex."""
        return tuple(row.bit_count() for row in self._rows)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is present (False for out-of-range pairs)."""
        if u == v:
            return False
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return bool((self._rows[u] >> v) & 1)

    def non_edges(self) -> List[Edge]:
        """All vertex pairs that are *not* edges, in lexicographic order."""
        out = []
        n = self._n
        rows = self._rows
        for u in range(n):
            row = rows[u]
            for v in range(u + 1, n):
                if not (row >> v) & 1:
                    out.append((u, v))
        return out

    def adjacency_sets(self) -> Tuple[FrozenSet[int], ...]:
        """The adjacency-set view (built lazily from the bitset rows)."""
        if self._adj is None:
            self._adj = tuple(
                frozenset(iter_bits(row)) for row in self._rows
            )
        return self._adj

    # ------------------------------------------------------------------ #
    # Derived graphs (the class is immutable: these return new graphs)
    # ------------------------------------------------------------------ #

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} out of range for {self._n} vertices")

    def add_edge(self, u: int, v: int) -> "Graph":
        """Return a copy of the graph with edge ``{u, v}`` added."""
        u, v = normalize_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if (self._rows[u] >> v) & 1:
            return self
        rows = list(self._rows)
        rows[u] |= 1 << v
        rows[v] |= 1 << u
        return Graph._from_rows(self._n, tuple(rows), self._m + 1)

    def remove_edge(self, u: int, v: int) -> "Graph":
        """Return a copy of the graph with edge ``{u, v}`` removed."""
        u, v = normalize_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if not (self._rows[u] >> v) & 1:
            return self
        rows = list(self._rows)
        rows[u] &= ~(1 << v)
        rows[v] &= ~(1 << u)
        return Graph._from_rows(self._n, tuple(rows), self._m - 1)

    def add_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return a copy with all ``edges`` added."""
        rows = list(self._rows)
        m = self._m
        for u, v in edges:
            u, v = normalize_edge(u, v)
            self._check_vertex(u)
            self._check_vertex(v)
            if not (rows[u] >> v) & 1:
                rows[u] |= 1 << v
                rows[v] |= 1 << u
                m += 1
        return Graph._from_rows(self._n, tuple(rows), m)

    def remove_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return a copy with all ``edges`` removed."""
        rows = list(self._rows)
        m = self._m
        for u, v in edges:
            u, v = normalize_edge(u, v)
            self._check_vertex(u)
            self._check_vertex(v)
            if (rows[u] >> v) & 1:
                rows[u] &= ~(1 << v)
                rows[v] &= ~(1 << u)
                m -= 1
        return Graph._from_rows(self._n, tuple(rows), m)

    def toggle_edge(self, u: int, v: int) -> "Graph":
        """Return a copy with edge ``{u, v}`` added if absent, removed if present."""
        u, v = normalize_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        rows = list(self._rows)
        present = (rows[u] >> v) & 1
        rows[u] ^= 1 << v
        rows[v] ^= 1 << u
        return Graph._from_rows(
            self._n, tuple(rows), self._m - 1 if present else self._m + 1
        )

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Return the graph with vertex ``v`` renamed ``permutation[v]``.

        ``permutation`` must be a permutation of ``0 .. n-1``.
        """
        if sorted(permutation) != list(range(self._n)):
            raise ValueError("permutation must be a permutation of the vertex set")
        rows = [0] * self._n
        for u, old_row in enumerate(self._rows):
            new_row = 0
            for v in iter_bits(old_row):
                new_row |= 1 << permutation[v]
            rows[permutation[u]] = new_row
        return Graph._from_rows(self._n, tuple(rows), self._m)

    def induced_subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Return the subgraph induced by ``vertices``, relabelled ``0..k-1``.

        The order of ``vertices`` determines the relabelling.
        """
        index: Dict[int, int] = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise ValueError("vertices must be distinct")
        keep = set(vertices)
        edges = [
            (index[u], index[v])
            for u, v in self._iter_edges()
            if u in keep and v in keep
        ]
        return Graph(len(vertices), edges)

    def complement(self) -> "Graph":
        """Return the complement graph."""
        n = self._n
        full = (1 << n) - 1
        rows = tuple(
            (full ^ row) & ~(1 << u) for u, row in enumerate(self._rows)
        )
        return Graph._from_rows(n, rows, n * (n - 1) // 2 - self._m)

    def add_vertex(self, neighbors: Iterable[int] = ()) -> "Graph":
        """Return a graph with one extra vertex ``n`` adjacent to ``neighbors``."""
        new = self._n
        rows = list(self._rows) + [0]
        added = 0
        for u in set(neighbors):
            if not 0 <= u < new:
                raise ValueError(f"vertex {u} out of range for {new} vertices")
            rows[u] |= 1 << new
            rows[new] |= 1 << u
            added += 1
        return Graph._from_rows(new + 1, tuple(rows), self._m + added)

    # ------------------------------------------------------------------ #
    # Keys, equality, representation
    # ------------------------------------------------------------------ #

    def edge_key(self) -> Tuple[int, Tuple[Edge, ...]]:
        """A hashable, deterministic key identifying this *labelled* graph."""
        return (self._n, tuple(self._iter_edges()))

    def adjacency_bitstring(self) -> int:
        """Upper-triangular adjacency encoded as an integer bitmask.

        Bit ``k`` corresponds to the k-th pair in lexicographic order
        ``(0,1), (0,2), ..., (0,n-1), (1,2), ...``.  Used by the canonical
        labelling code to compare labelled graphs cheaply.
        """
        bits = 0
        k = 0
        n = self._n
        rows = self._rows
        for u in range(n):
            row = rows[u]
            for v in range(u + 1, n):
                if (row >> v) & 1:
                    bits |= 1 << k
                k += 1
        return bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._rows == other._rows

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._n, self._rows))
        return self._hash

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edge_list(
        cls, edges: Iterable[Edge], n_vertices: Optional[int] = None
    ) -> "Graph":
        """Build a graph from an edge list, inferring ``n`` when not given."""
        edges = [normalize_edge(u, v) for u, v in edges]
        if n_vertices is None:
            n_vertices = 1 + max((max(e) for e in edges), default=-1)
        return cls(n_vertices, edges)

    @classmethod
    def from_adjacency_matrix(cls, matrix: Sequence[Sequence[int]]) -> "Graph":
        """Build a graph from a square 0/1 adjacency matrix."""
        n = len(matrix)
        edges = []
        for u in range(n):
            if len(matrix[u]) != n:
                raise ValueError("adjacency matrix must be square")
            for v in range(u + 1, n):
                if matrix[u][v]:
                    edges.append((u, v))
        return cls(n, edges)

    def to_adjacency_matrix(self) -> List[List[int]]:
        """Return the dense 0/1 adjacency matrix as nested lists."""
        matrix = [[0] * self._n for _ in range(self._n)]
        for u, v in self._iter_edges():
            matrix[u][v] = 1
            matrix[v][u] = 1
        return matrix
