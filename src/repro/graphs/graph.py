"""A minimal, dependency-free undirected graph type.

The connection games of Corbo & Parkes (PODC 2005) are played on simple
undirected graphs whose vertices are the players ``0 .. n-1``.  The
:class:`Graph` class below is intentionally small: vertices are a contiguous
integer range, edges are unordered pairs, and the representation is an
adjacency-set list.  All higher-level machinery (distances, stability checks,
enumeration) is built on top of this type.

The class is *logically immutable*: mutating operations return new graphs.
This makes it safe to memoise derived quantities (distance matrices, girth,
canonical forms) and to use graphs as dictionary keys via
:meth:`Graph.edge_key`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` ordering of an edge.

    Raises
    ------
    ValueError
        If ``u == v`` (self-loops are not allowed in the connection games).
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


class Graph:
    """A simple undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n_vertices:
        Number of vertices.  Vertices are always the integers
        ``0, 1, ..., n_vertices - 1``.
    edges:
        Iterable of vertex pairs.  Orientation and duplicates are ignored;
        self-loops raise :class:`ValueError`.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> g.n
    4
    >>> g.num_edges
    3
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_n", "_adj", "_edges", "_hash")

    def __init__(self, n_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self._n = n_vertices
        adj: List[set] = [set() for _ in range(n_vertices)]
        edge_set = set()
        for u, v in edges:
            u, v = normalize_edge(int(u), int(v))
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {n_vertices} vertices"
                )
            if (u, v) in edge_set:
                continue
            edge_set.add((u, v))
            adj[u].add(v)
            adj[v].add(u)
        self._adj: Tuple[FrozenSet[int], ...] = tuple(frozenset(s) for s in adj)
        self._edges: FrozenSet[Edge] = frozenset(edge_set)
        self._hash = hash((self._n, self._edges))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_vertices(self) -> int:
        """Number of vertices (alias of :attr:`n`)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def vertices(self) -> range:
        """The vertex set as a ``range`` object."""
        return range(self._n)

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The edge set as a frozenset of ``(u, v)`` with ``u < v``."""
        return self._edges

    def sorted_edges(self) -> List[Edge]:
        """Edges in lexicographic order (deterministic iteration order)."""
        return sorted(self._edges)

    def neighbors(self, v: int) -> FrozenSet[int]:
        """The neighbour set of vertex ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._adj[v])

    def degree_sequence(self) -> Tuple[int, ...]:
        """Degrees sorted in non-increasing order."""
        return tuple(sorted((len(a) for a in self._adj), reverse=True))

    def degrees(self) -> Tuple[int, ...]:
        """Degrees indexed by vertex."""
        return tuple(len(a) for a in self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        if u == v:
            return False
        return normalize_edge(u, v) in self._edges

    def non_edges(self) -> List[Edge]:
        """All vertex pairs that are *not* edges, in lexicographic order."""
        out = []
        for u in range(self._n):
            for v in range(u + 1, self._n):
                if v not in self._adj[u]:
                    out.append((u, v))
        return out

    def adjacency_sets(self) -> Tuple[FrozenSet[int], ...]:
        """The internal adjacency representation (read-only)."""
        return self._adj

    # ------------------------------------------------------------------ #
    # Derived graphs (the class is immutable: these return new graphs)
    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int) -> "Graph":
        """Return a copy of the graph with edge ``{u, v}`` added."""
        e = normalize_edge(u, v)
        if e in self._edges:
            return self
        return Graph(self._n, list(self._edges) + [e])

    def remove_edge(self, u: int, v: int) -> "Graph":
        """Return a copy of the graph with edge ``{u, v}`` removed."""
        e = normalize_edge(u, v)
        if e not in self._edges:
            return self
        return Graph(self._n, [f for f in self._edges if f != e])

    def add_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return a copy with all ``edges`` added."""
        return Graph(self._n, list(self._edges) + [normalize_edge(u, v) for u, v in edges])

    def remove_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return a copy with all ``edges`` removed."""
        drop = {normalize_edge(u, v) for u, v in edges}
        return Graph(self._n, [e for e in self._edges if e not in drop])

    def toggle_edge(self, u: int, v: int) -> "Graph":
        """Return a copy with edge ``{u, v}`` added if absent, removed if present."""
        if self.has_edge(u, v):
            return self.remove_edge(u, v)
        return self.add_edge(u, v)

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Return the graph with vertex ``v`` renamed ``permutation[v]``.

        ``permutation`` must be a permutation of ``0 .. n-1``.
        """
        if sorted(permutation) != list(range(self._n)):
            raise ValueError("permutation must be a permutation of the vertex set")
        return Graph(
            self._n,
            [(permutation[u], permutation[v]) for u, v in self._edges],
        )

    def induced_subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Return the subgraph induced by ``vertices``, relabelled ``0..k-1``.

        The order of ``vertices`` determines the relabelling.
        """
        index: Dict[int, int] = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise ValueError("vertices must be distinct")
        keep = set(vertices)
        edges = [
            (index[u], index[v])
            for u, v in self._edges
            if u in keep and v in keep
        ]
        return Graph(len(vertices), edges)

    def complement(self) -> "Graph":
        """Return the complement graph."""
        return Graph(self._n, self.non_edges())

    def add_vertex(self, neighbors: Iterable[int] = ()) -> "Graph":
        """Return a graph with one extra vertex ``n`` adjacent to ``neighbors``."""
        new = self._n
        extra = [(u, new) for u in neighbors]
        return Graph(self._n + 1, list(self._edges) + extra)

    # ------------------------------------------------------------------ #
    # Keys, equality, representation
    # ------------------------------------------------------------------ #

    def edge_key(self) -> Tuple[int, Tuple[Edge, ...]]:
        """A hashable, deterministic key identifying this *labelled* graph."""
        return (self._n, tuple(sorted(self._edges)))

    def adjacency_bitstring(self) -> int:
        """Upper-triangular adjacency encoded as an integer bitmask.

        Bit ``k`` corresponds to the k-th pair in lexicographic order
        ``(0,1), (0,2), ..., (0,n-1), (1,2), ...``.  Used by the canonical
        labelling code to compare labelled graphs cheaply.
        """
        bits = 0
        k = 0
        for u in range(self._n):
            adj_u = self._adj[u]
            for v in range(u + 1, self._n):
                if v in adj_u:
                    bits |= 1 << k
                k += 1
        return bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edge_list(cls, edges: Iterable[Edge], n_vertices: int = None) -> "Graph":
        """Build a graph from an edge list, inferring ``n`` when not given."""
        edges = [normalize_edge(u, v) for u, v in edges]
        if n_vertices is None:
            n_vertices = 1 + max((max(e) for e in edges), default=-1)
        return cls(n_vertices, edges)

    @classmethod
    def from_adjacency_matrix(cls, matrix: Sequence[Sequence[int]]) -> "Graph":
        """Build a graph from a square 0/1 adjacency matrix."""
        n = len(matrix)
        edges = []
        for u in range(n):
            if len(matrix[u]) != n:
                raise ValueError("adjacency matrix must be square")
            for v in range(u + 1, n):
                if matrix[u][v]:
                    edges.append((u, v))
        return cls(n, edges)

    def to_adjacency_matrix(self) -> List[List[int]]:
        """Return the dense 0/1 adjacency matrix as nested lists."""
        matrix = [[0] * self._n for _ in range(self._n)]
        for u, v in self._edges:
            matrix[u][v] = 1
            matrix[v][u] = 1
        return matrix
