"""Strongly regular graph detection.

Section 4 of the paper states that all strongly regular graphs with
``λ > 0`` common neighbours between adjacent vertices, and ``μ > 1`` common
neighbours between non-adjacent vertices, are pairwise stable in the BCG and
have price of anarchy ``O(1)``.  This module computes the SRG parameters of a
graph so the experiments can identify which Figure 1 graphs fall in that
class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .graph import Graph
from .properties import is_regular, num_common_neighbors, regular_degree


@dataclass(frozen=True)
class SRGParameters:
    """The parameter tuple ``(n, k, lambda, mu)`` of a strongly regular graph."""

    n: int
    k: int
    lam: int
    mu: int

    def as_tuple(self) -> tuple:
        """Return ``(n, k, lambda, mu)``."""
        return (self.n, self.k, self.lam, self.mu)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"srg({self.n}, {self.k}, {self.lam}, {self.mu})"


def strongly_regular_parameters(graph: Graph) -> Optional[SRGParameters]:
    """Return the SRG parameters of ``graph`` or ``None`` if it is not an SRG.

    A graph is strongly regular with parameters ``(n, k, λ, μ)`` when it is
    ``k``-regular, every pair of adjacent vertices has exactly ``λ`` common
    neighbours and every pair of distinct non-adjacent vertices has exactly
    ``μ`` common neighbours.  Following the usual convention, the complete
    graph and the empty graph are excluded (they leave one of λ, μ
    undefined).
    """
    n = graph.n
    if n < 3 or not is_regular(graph):
        return None
    k = regular_degree(graph)
    if k is None or k == 0 or k == n - 1:
        return None

    lam: Optional[int] = None
    mu: Optional[int] = None
    for u in range(n):
        for v in range(u + 1, n):
            common = num_common_neighbors(graph, u, v)
            if graph.has_edge(u, v):
                if lam is None:
                    lam = common
                elif lam != common:
                    return None
            else:
                if mu is None:
                    mu = common
                elif mu != common:
                    return None
    if lam is None or mu is None:
        return None
    return SRGParameters(n=n, k=k, lam=lam, mu=mu)


def is_strongly_regular(graph: Graph) -> bool:
    """Whether ``graph`` is strongly regular (excluding complete/empty graphs)."""
    return strongly_regular_parameters(graph) is not None


def satisfies_paper_srg_condition(graph: Graph) -> bool:
    """Whether the graph is an SRG with ``λ > 0`` and ``μ > 1``.

    This is the sufficient condition mentioned after Lemma 6 for pairwise
    stability with constant price of anarchy.  (Note that the Petersen,
    Clebsch and Hoffman–Singleton graphs have ``λ = 0`` and therefore do *not*
    satisfy it — they are covered instead by the Moore-bound argument of
    Proposition 3.)
    """
    params = strongly_regular_parameters(graph)
    return params is not None and params.lam > 0 and params.mu > 1
