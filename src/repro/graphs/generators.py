"""Parametric graph generators.

Families used by the paper's analysis (stars, cycles, complete graphs,
regular-ish constructions) plus generic generators (random graphs, random
trees, grids, hypercubes) used by the test suite and the sampled censuses.
All generators return :class:`repro.graphs.Graph` instances on vertex set
``0 .. n-1``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .graph import Graph


def empty_graph(n: int) -> Graph:
    """The graph on ``n`` vertices with no edges."""
    return Graph(n)


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def path_graph(n: int) -> Graph:
    """The path ``P_n`` (``n - 1`` edges)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (requires ``n >= 3``)."""
    if n < 3:
        raise ValueError("a cycle requires at least 3 vertices")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(n: int, center: int = 0) -> Graph:
    """The star ``K_{1,n-1}`` on ``n`` vertices with the given ``center``.

    The star is the unique efficient graph of both connection games for
    sufficiently large link cost (Lemma 5 of the paper for the BCG).
    """
    if n < 1:
        raise ValueError("a star requires at least 1 vertex")
    if not 0 <= center < n:
        raise ValueError("center out of range")
    return Graph(n, [(center, v) for v in range(n) if v != center])


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """The complete bipartite graph ``K_{a,b}`` with parts ``0..a-1`` and ``a..a+b-1``."""
    return Graph(a + b, [(u, a + v) for u in range(a) for v in range(b)])


def complete_multipartite_graph(part_sizes: Sequence[int]) -> Graph:
    """The complete multipartite graph with the given part sizes."""
    offsets = []
    total = 0
    for size in part_sizes:
        offsets.append((total, total + size))
        total += size
    edges = []
    for i, (lo_i, hi_i) in enumerate(offsets):
        for lo_j, hi_j in offsets[i + 1:]:
            for u in range(lo_i, hi_i):
                for v in range(lo_j, hi_j):
                    edges.append((u, v))
    return Graph(total, edges)


def wheel_graph(n: int) -> Graph:
    """The wheel ``W_n``: a cycle on ``n - 1`` vertices plus a hub (vertex ``n-1``)."""
    if n < 4:
        raise ValueError("a wheel requires at least 4 vertices")
    rim = n - 1
    edges = [(i, (i + 1) % rim) for i in range(rim)]
    edges += [(i, rim) for i in range(rim)]
    return Graph(n, edges)


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube ``Q_d`` on ``2**dimension`` vertices."""
    n = 1 << dimension
    edges = []
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                edges.append((u, v))
    return Graph(n, edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid graph, vertices numbered row-major."""
    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
    return Graph(rows * cols, edges)


def circulant_graph(n: int, offsets: Sequence[int]) -> Graph:
    """The circulant graph ``C_n(offsets)``: ``i ~ i +/- k (mod n)`` for each offset ``k``."""
    edges = []
    for i in range(n):
        for k in offsets:
            j = (i + k) % n
            if i != j:
                edges.append((i, j))
    return Graph(n, edges)


def lcf_graph(n: int, shifts: Sequence[int], repeats: int) -> Graph:
    """A cubic graph from LCF notation ``[shifts]^repeats`` on ``n`` vertices.

    LCF (Lederberg–Coxeter–Frucht) notation describes cubic Hamiltonian
    graphs: start with the Hamiltonian cycle ``0-1-...-n-1-0`` and add, for
    vertex ``i``, a chord to ``i + shift[i mod len(shifts)] (mod n)``.  Several
    of the paper's Figure 1 graphs (McGee, Desargues, dodecahedral,
    Tutte–Coxeter, Heawood, Pappus) have compact LCF descriptions.
    """
    if len(shifts) * repeats != n:
        raise ValueError(
            f"LCF notation [shifts]^{repeats} describes {len(shifts) * repeats} "
            f"vertices, not {n}"
        )
    edges = [(i, (i + 1) % n) for i in range(n)]
    for i in range(n):
        shift = shifts[i % len(shifts)]
        j = (i + shift) % n
        edges.append((min(i, j), max(i, j)))
    return Graph(n, edges)


def random_graph(n: int, p: float, rng: Optional[random.Random] = None) -> Graph:
    """An Erdős–Rényi ``G(n, p)`` random graph."""
    rng = rng or random.Random()
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return Graph(n, edges)


def random_connected_graph(
    n: int, p: float, rng: Optional[random.Random] = None
) -> Graph:
    """A connected random graph: a random spanning tree plus ``G(n, p)`` edges."""
    rng = rng or random.Random()
    tree = random_tree(n, rng)
    extra = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return tree.add_edges(extra)


def random_tree(n: int, rng: Optional[random.Random] = None) -> Graph:
    """A uniformly random labelled tree on ``n`` vertices (via Prüfer sequences)."""
    rng = rng or random.Random()
    if n <= 1:
        return Graph(n)
    if n == 2:
        return Graph(2, [(0, 1)])
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return tree_from_prufer(prufer)


def tree_from_prufer(prufer: Sequence[int]) -> Graph:
    """Decode a Prüfer sequence into the corresponding labelled tree."""
    n = len(prufer) + 2
    degree = [1] * n
    for v in prufer:
        if not 0 <= v < n:
            raise ValueError("Prüfer sequence entries must be in range")
        degree[v] += 1
    edges: List[Tuple[int, int]] = []
    remaining = list(prufer)
    leaves = sorted(v for v in range(n) if degree[v] == 1)
    import heapq

    heapq.heapify(leaves)
    for v in remaining:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[leaf] -= 1
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    last = [v for v in range(n) if degree[v] == 1]
    edges.append((last[0], last[1]))
    return Graph(n, edges)


def random_regular_graph(
    n: int, degree: int, rng: Optional[random.Random] = None, max_tries: int = 200
) -> Graph:
    """A random ``degree``-regular simple graph via the configuration model.

    Retries pairings until a simple graph is produced, so it is only meant for
    small, sparse instances (which is all the reproduction needs).
    """
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    rng = rng or random.Random()
    stubs = [v for v in range(n) for _ in range(degree)]
    for _ in range(max_tries):
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if ok:
            return Graph(n, edges)
    raise RuntimeError(
        f"failed to sample a simple {degree}-regular graph on {n} vertices"
    )
