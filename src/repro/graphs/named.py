"""Named graphs appearing in the paper (Figure 1 and Section 4).

Figure 1 of Corbo & Parkes lists pairwise-stable graphs in the bilateral
connection game: the Petersen graph, the McGee graph, the octahedral graph,
the Clebsch graph, the Hoffman–Singleton graph and the star on 8 vertices.
Section 4.1 also discusses the Desargues and dodecahedral graphs, cage graphs
in general (Heawood, Tutte–Coxeter) and Moore graphs.  This module constructs
each of them from first principles.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, List

from .generators import (
    complete_multipartite_graph,
    lcf_graph,
    star_graph,
)
from .graph import Graph


def petersen_graph() -> Graph:
    """The Petersen graph: unique (3,5)-cage, Moore graph, SRG(10, 3, 0, 1).

    Built as the Kneser graph ``K(5, 2)``: vertices are the 2-element subsets
    of ``{0..4}``, adjacent exactly when disjoint.
    """
    subsets = list(combinations(range(5), 2))
    index = {s: i for i, s in enumerate(subsets)}
    edges = [
        (index[a], index[b])
        for a, b in combinations(subsets, 2)
        if not set(a) & set(b)
    ]
    return Graph(len(subsets), edges)


def mcgee_graph() -> Graph:
    """The McGee graph: the (3,7)-cage on 24 vertices (LCF ``[12, 7, -7]^8``)."""
    return lcf_graph(24, [12, 7, -7], 8)


def heawood_graph() -> Graph:
    """The Heawood graph: the (3,6)-cage on 14 vertices (LCF ``[5, -5]^7``)."""
    return lcf_graph(14, [5, -5], 7)


def tutte_coxeter_graph() -> Graph:
    """The Tutte–Coxeter (Levi) graph: the (3,8)-cage on 30 vertices."""
    return lcf_graph(30, [-13, -9, 7, -7, 9, 13], 5)


def desargues_graph() -> Graph:
    """The Desargues graph: symmetric cubic graph on 20 vertices (LCF ``[5,-5,9,-9]^5``).

    The paper notes this graph is link convex (hence pairwise stable for some
    link cost) while the dodecahedral graph is not.
    """
    return lcf_graph(20, [5, -5, 9, -9], 5)


def dodecahedral_graph() -> Graph:
    """The dodecahedral graph: cubic planar graph on 20 vertices.

    Mentioned in Section 4.1 as a symmetric graph that is *not* link convex.
    """
    return lcf_graph(20, [10, 7, 4, -4, -7, 10, -4, 7, -7, 4], 2)


def pappus_graph() -> Graph:
    """The Pappus graph: cubic distance-regular graph on 18 vertices, girth 6.

    Built as the incidence graph of the Pappus configuration, realised as the
    nine points of the affine plane ``AG(2, 3)`` and the nine non-vertical
    lines ``y = m·x + b``: point ``(x, y)`` (vertex ``3x + y``) is adjacent to
    line ``(m, b)`` (vertex ``9 + 3m + b``) exactly when ``y = m·x + b (mod 3)``.
    """
    edges = []
    for m in range(3):
        for b in range(3):
            for x in range(3):
                y = (m * x + b) % 3
                edges.append((3 * x + y, 9 + 3 * m + b))
    return Graph(18, edges)


def octahedral_graph() -> Graph:
    """The octahedral graph ``K_{2,2,2}``: SRG(6, 4, 2, 4)."""
    return complete_multipartite_graph([2, 2, 2])


def clebsch_graph() -> Graph:
    """The Clebsch graph: SRG(16, 5, 0, 2), the folded 5-cube.

    Vertices are the 4-bit strings; two vertices are adjacent when their XOR
    has weight 1 or weight 4.
    """
    def weight(x: int) -> int:
        return bin(x).count("1")

    n = 16
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if weight(u ^ v) in (1, 4)
    ]
    return Graph(n, edges)


def hoffman_singleton_graph() -> Graph:
    """The Hoffman–Singleton graph: the unique (7,5)-cage, SRG(50, 7, 0, 1).

    Robertson's pentagon/pentagram construction: five pentagons ``P_h`` with
    edges ``j ~ j±1 (mod 5)``, five pentagrams ``Q_i`` with edges
    ``j ~ j±2 (mod 5)``, and vertex ``j`` of ``P_h`` joined to vertex
    ``h·i + j (mod 5)`` of ``Q_i``.
    """
    def p_vertex(h: int, j: int) -> int:
        return 5 * h + j

    def q_vertex(i: int, j: int) -> int:
        return 25 + 5 * i + j

    edges = []
    for h in range(5):
        for j in range(5):
            edges.append((p_vertex(h, j), p_vertex(h, (j + 1) % 5)))
    for i in range(5):
        for j in range(5):
            edges.append((q_vertex(i, j), q_vertex(i, (j + 2) % 5)))
    for h in range(5):
        for i in range(5):
            for j in range(5):
                edges.append((p_vertex(h, j), q_vertex(i, (h * i + j) % 5)))
    return Graph(50, edges)


def star_8() -> Graph:
    """The star on 8 vertices shown in Figure 1 (panel 6)."""
    return star_graph(8)


#: Registry of the Figure 1 graphs keyed by the label the paper uses.
FIGURE1_GRAPHS: Dict[str, Callable[[], Graph]] = {
    "petersen": petersen_graph,
    "mcgee": mcgee_graph,
    "octahedral": octahedral_graph,
    "clebsch": clebsch_graph,
    "hoffman_singleton": hoffman_singleton_graph,
    "star_8": star_8,
}

#: Additional graphs discussed in Section 4 (cages, link-convexity examples).
SECTION4_GRAPHS: Dict[str, Callable[[], Graph]] = {
    "heawood": heawood_graph,
    "tutte_coxeter": tutte_coxeter_graph,
    "desargues": desargues_graph,
    "dodecahedral": dodecahedral_graph,
    "pappus": pappus_graph,
}


def named_graph(name: str) -> Graph:
    """Construct a named graph by its registry key.

    Raises
    ------
    KeyError
        If ``name`` is not a known graph.
    """
    registry = {**FIGURE1_GRAPHS, **SECTION4_GRAPHS}
    if name not in registry:
        raise KeyError(
            f"unknown named graph {name!r}; known: {sorted(registry)}"
        )
    return registry[name]()


def all_named_graphs() -> List[str]:
    """All registry keys, sorted."""
    return sorted({**FIGURE1_GRAPHS, **SECTION4_GRAPHS})
