"""Structural graph properties used throughout the reproduction.

Connectivity, components, regularity, girth, trees, bipartiteness and a few
convenience predicates.  Everything is exact and works on the
:class:`repro.graphs.Graph` type.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set, Tuple

from .distances import INFINITY, bitset_bfs_levels
from .graph import Graph


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components as sorted vertex lists, ordered by smallest vertex."""
    seen: Set[int] = set()
    components: List[List[int]] = []
    adj = graph.adjacency_sets()
    for start in range(graph.n):
        if start in seen:
            continue
        queue = deque([start])
        seen.add(start)
        component = [start]
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    component.append(v)
                    queue.append(v)
        components.append(sorted(component))
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph has a single connected component.

    The empty graph (0 vertices) and the single-vertex graph count as
    connected.  Uses the word-parallel bitset reachability closure.
    """
    n = graph.n
    if n <= 1:
        return True
    _, visited = bitset_bfs_levels(graph.adjacency_rows(), 0)
    return visited.bit_count() == n


def is_tree(graph: Graph) -> bool:
    """Whether the graph is a tree (connected and ``m = n - 1``)."""
    if graph.n == 0:
        return False
    return graph.num_edges == graph.n - 1 and is_connected(graph)


def is_forest(graph: Graph) -> bool:
    """Whether the graph is acyclic."""
    return graph.num_edges == graph.n - len(connected_components(graph))


def is_regular(graph: Graph) -> bool:
    """Whether every vertex has the same degree."""
    degrees = graph.degrees()
    return len(set(degrees)) <= 1


def regular_degree(graph: Graph) -> Optional[int]:
    """The common degree if the graph is regular, otherwise ``None``."""
    degrees = set(graph.degrees())
    if len(degrees) == 1:
        return next(iter(degrees))
    return None


def is_complete(graph: Graph) -> bool:
    """Whether the graph is the complete graph on its vertex set."""
    n = graph.n
    return graph.num_edges == n * (n - 1) // 2


def is_empty(graph: Graph) -> bool:
    """Whether the graph has no edges."""
    return graph.num_edges == 0


def is_star(graph: Graph) -> bool:
    """Whether the graph is a star ``K_{1,n-1}`` (``n >= 2``)."""
    n = graph.n
    if n < 2 or graph.num_edges != n - 1:
        return False
    degs = sorted(graph.degrees())
    return degs[-1] == n - 1 and all(d == 1 for d in degs[:-1])


def is_cycle_graph(graph: Graph) -> bool:
    """Whether the graph is a single cycle ``C_n`` (``n >= 3``)."""
    n = graph.n
    if n < 3 or graph.num_edges != n:
        return False
    return is_connected(graph) and all(d == 2 for d in graph.degrees())


def is_path_graph(graph: Graph) -> bool:
    """Whether the graph is a simple path ``P_n``."""
    n = graph.n
    if n == 0:
        return False
    if n == 1:
        return True
    if graph.num_edges != n - 1 or not is_connected(graph):
        return False
    degs = sorted(graph.degrees())
    return degs[0] == 1 and degs[1] == 1 and all(d == 2 for d in degs[2:])


def girth(graph: Graph) -> float:
    """Length of the shortest cycle, or :data:`INFINITY` for forests.

    Uses a BFS from every vertex; when a cross or back edge closes a cycle
    through the BFS root, its length is ``dist[u] + dist[v] + 1``.  This is the
    standard O(n·m) exact girth algorithm for unweighted graphs.
    """
    best = INFINITY
    adj = graph.adjacency_sets()
    n = graph.n
    for root in range(n):
        dist = [INFINITY] * n
        parent = [-1] * n
        dist[root] = 0
        queue = deque([root])
        while queue:
            u = queue.popleft()
            if 2 * dist[u] >= best:
                # No shorter cycle through `root` can be found deeper.
                continue
            for v in adj[u]:
                if dist[v] == INFINITY:
                    dist[v] = dist[u] + 1
                    parent[v] = u
                    queue.append(v)
                elif parent[u] != v and parent[v] != u:
                    cycle_len = dist[u] + dist[v] + 1
                    if cycle_len < best:
                        best = cycle_len
    return best


def is_bipartite(graph: Graph) -> bool:
    """Whether the graph is 2-colourable."""
    color = [-1] * graph.n
    adj = graph.adjacency_sets()
    for start in range(graph.n):
        if color[start] != -1:
            continue
        color[start] = 0
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if color[v] == -1:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def num_common_neighbors(graph: Graph, u: int, v: int) -> int:
    """Number of vertices adjacent to both ``u`` and ``v``."""
    return len(graph.neighbors(u) & graph.neighbors(v))


def bridges(graph: Graph) -> List[Tuple[int, int]]:
    """All bridge edges (edges whose removal disconnects their component).

    Iterative Tarjan low-link computation (no recursion so that it works for
    graphs larger than the Python recursion limit).
    """
    n = graph.n
    adj = [sorted(graph.neighbors(v)) for v in range(n)]
    visited = [False] * n
    disc = [0] * n
    low = [0] * n
    result: List[Tuple[int, int]] = []
    timer = 0
    for start in range(n):
        if visited[start]:
            continue
        stack: List[Tuple[int, int, int]] = [(start, -1, 0)]
        while stack:
            node, parent, child_index = stack.pop()
            if child_index == 0:
                visited[node] = True
                disc[node] = low[node] = timer
                timer += 1
            if child_index < len(adj[node]):
                stack.append((node, parent, child_index + 1))
                child = adj[node][child_index]
                if child == parent:
                    continue
                if visited[child]:
                    low[node] = min(low[node], disc[child])
                else:
                    stack.append((child, node, 0))
            else:
                if parent != -1:
                    low[parent] = min(low[parent], low[node])
                    if low[node] > disc[parent]:
                        result.append((min(parent, node), max(parent, node)))
    return sorted(result)


def edge_connectivity_at_least_two(graph: Graph) -> bool:
    """Whether the graph is connected and bridge-less (2-edge-connected)."""
    return is_connected(graph) and not bridges(graph) and graph.n >= 2
