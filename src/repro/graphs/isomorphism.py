"""Graph isomorphism via canonical labelling.

The empirical study in Section 5 of the paper enumerates all connected
topologies on a fixed vertex set *up to isomorphism*.  To reproduce this we
need a canonical form for small graphs.  The implementation below uses the
classic individualisation–refinement scheme:

1. colour vertices by degree and iteratively refine colours by the multiset of
   neighbouring colours (1-dimensional Weisfeiler–Leman refinement);
2. when the colouring is not discrete, individualise each vertex of the first
   non-singleton colour class in turn and recurse;
3. every discrete colouring induces a vertex ordering; the canonical form is
   the lexicographically smallest adjacency bitstring over all such leaves.

This is exact (not a hash) and is fast enough for the graph sizes the
reproduction enumerates exhaustively (n ≤ 8) as well as the named graphs of
Figure 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Graph, iter_bits

CanonicalForm = Tuple[int, int]


def _refine_colors(adj: Sequence[Tuple[int, ...]], colors: List[int]) -> List[int]:
    """Run 1-WL colour refinement until the partition stabilises.

    Colours are renumbered after every round by sorting the (old colour,
    neighbour-colour multiset) keys, which keeps the refinement
    isomorphism-invariant.
    """
    n = len(colors)
    while True:
        keys = [
            (colors[v], tuple(sorted(colors[u] for u in adj[v])))
            for v in range(n)
        ]
        order = {key: i for i, key in enumerate(sorted(set(keys)))}
        new_colors = [order[keys[v]] for v in range(n)]
        if len(set(new_colors)) == len(set(colors)):
            return new_colors
        colors = new_colors


def _cells(colors: Sequence[int]) -> Dict[int, List[int]]:
    """Group vertices by colour, vertices sorted within each cell."""
    cells: Dict[int, List[int]] = {}
    for v, c in enumerate(colors):
        cells.setdefault(c, []).append(v)
    return cells


def _is_discrete(colors: Sequence[int]) -> bool:
    return len(set(colors)) == len(colors)


def _bitstring_for_ordering(adj: Sequence[Tuple[int, ...]], ordering: Sequence[int]) -> int:
    """Adjacency bitstring of the graph relabelled so that ``ordering[i] -> i``."""
    n = len(ordering)
    position = [0] * n
    for new, old in enumerate(ordering):
        position[old] = new
    bits = 0
    for u, neighbors in enumerate(adj):
        pu = position[u]
        for v in neighbors:
            pv = position[v]
            if pu < pv:
                bits |= 1 << (pu * n + pv)
    return bits


class _CanonicalSearch:
    """Backtracking search for the minimal adjacency bitstring."""

    def __init__(self, graph: Graph) -> None:
        # Neighbour tuples decoded straight from the bitset rows: tuple
        # iteration is the fastest option for the refinement inner loops.
        self.adj = tuple(
            tuple(iter_bits(row)) for row in graph.adjacency_rows()
        )
        self.n = graph.n
        self.best: Optional[int] = None
        self.best_ordering: Optional[List[int]] = None

    def run(self) -> Tuple[int, List[int]]:
        initial = [len(self.adj[v]) for v in range(self.n)]
        order = {d: i for i, d in enumerate(sorted(set(initial)))}
        colors = [order[d] for d in initial]
        colors = _refine_colors(self.adj, colors)
        self._search(colors)
        assert self.best is not None and self.best_ordering is not None
        return self.best, self.best_ordering

    def _search(self, colors: List[int]) -> None:
        if _is_discrete(colors):
            ordering = [0] * self.n
            for v, c in enumerate(colors):
                ordering[c] = v
            bits = _bitstring_for_ordering(self.adj, ordering)
            if self.best is None or bits < self.best:
                self.best = bits
                self.best_ordering = ordering
            return

        cells = _cells(colors)
        # Target the smallest non-singleton cell (ties broken by colour id):
        # an isomorphism-invariant choice.
        target_color = min(
            (c for c, members in cells.items() if len(members) > 1),
            key=lambda c: (len(cells[c]), c),
        )
        for v in cells[target_color]:
            new_colors = self._individualize(colors, v, target_color)
            new_colors = _refine_colors(self.adj, new_colors)
            self._search(new_colors)

    @staticmethod
    def _individualize(colors: Sequence[int], vertex: int, cell_color: int) -> List[int]:
        """Split ``vertex`` out of its cell by giving it a strictly smaller colour.

        All colours are shifted up by one so that the individualised vertex
        can take colour ``cell_color`` while the rest of its old cell keeps
        ``cell_color + 1``.  Relative order of all other cells is preserved,
        keeping the operation isomorphism-invariant.
        """
        new_colors = []
        for u, c in enumerate(colors):
            if u == vertex:
                new_colors.append(2 * c)
            elif c == cell_color:
                new_colors.append(2 * c + 1)
            else:
                new_colors.append(2 * c + 1)
        return new_colors


def canonical_labeling(graph: Graph) -> List[int]:
    """A canonical vertex ordering: ``ordering[i]`` is the original vertex at position ``i``."""
    if graph.n == 0:
        return []
    _, ordering = _CanonicalSearch(graph).run()
    return ordering


def canonical_form(graph: Graph) -> CanonicalForm:
    """A canonical form ``(n, bitstring)``: equal for isomorphic graphs only.

    Two graphs are isomorphic if and only if their canonical forms compare
    equal.
    """
    if graph.n == 0:
        return (0, 0)
    bits, _ = _CanonicalSearch(graph).run()
    return (graph.n, bits)


def canonical_graph(graph: Graph) -> Graph:
    """The canonical representative of ``graph``'s isomorphism class."""
    if graph.n == 0:
        return graph
    ordering = canonical_labeling(graph)
    position = [0] * graph.n
    for new, old in enumerate(ordering):
        position[old] = new
    return graph.relabel(position)


def are_isomorphic(first: Graph, second: Graph) -> bool:
    """Exact isomorphism test via canonical forms (with cheap pre-checks)."""
    if first.n != second.n or first.num_edges != second.num_edges:
        return False
    if first.degree_sequence() != second.degree_sequence():
        return False
    return canonical_form(first) == canonical_form(second)


def automorphism_count_brute_force(graph: Graph) -> int:
    """Number of automorphisms, by brute force over permutations.

    Only intended for very small graphs (``n <= 8``); used in tests to
    sanity-check the canonical labelling machinery.
    """
    from itertools import permutations

    n = graph.n
    edges = graph.edges
    count = 0
    for perm in permutations(range(n)):
        if all((min(perm[u], perm[v]), max(perm[u], perm[v])) in edges for u, v in edges):
            count += 1
    return count
