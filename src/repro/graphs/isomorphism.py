"""Canonical labelling, automorphism groups and orbits for small graphs.

The empirical study in Section 5 of the paper enumerates all connected
topologies on a fixed vertex set *up to isomorphism* and analyses each one.
Two pieces of symmetry machinery make that affordable, and both live here:

1. **Canonical forms.**  The classic individualisation–refinement scheme:
   colour vertices by degree, iteratively refine colours by the multiset of
   neighbouring colours (1-dimensional Weisfeiler–Leman refinement), and when
   the colouring is not discrete, individualise each vertex of the first
   non-singleton colour class in turn and recurse.  Every discrete colouring
   induces a vertex ordering; the canonical form is the lexicographically
   smallest adjacency bitstring over all such leaves.  This is exact (not a
   hash).

2. **Automorphisms and orbits, discovered for free.**  Whenever two leaves of
   the search produce the *same* minimal bitstring, the permutation between
   their orderings is an automorphism of the graph.  The search records these
   generators as it runs and uses them to prune its own backtracking
   (McKay-style: a sibling branch whose vertex lies in the orbit of an
   already-explored sibling under the automorphisms fixing the individualised
   prefix would only reproduce known leaves).  The complete result — canonical
   bitstring, canonical ordering, automorphism generators and vertex orbits —
   is packaged as a :class:`CanonicalRecord` and memoised on the
   :class:`~repro.graphs.graph.Graph` instance, so censuses and sweeps that
   revisit a graph never re-run the search.

The orbits feed two hot paths: canonical-augmentation enumeration
(:mod:`repro.graphs.enumeration` extends only along orbit representatives and
accepts a child only if the new vertex lies in the canonical last-vertex
orbit) and orbit-pruned stability probing
(:func:`repro.engine.batch_stability_deltas` probes one deviation per
edge/non-edge orbit and expands the results across each orbit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Edge, Graph, iter_bits, normalize_edge

CanonicalForm = Tuple[int, int]
Permutation = Tuple[int, ...]


def _refine_colors(adj: Sequence[Tuple[int, ...]], colors: List[int]) -> List[int]:
    """Run 1-WL colour refinement until the partition stabilises.

    Colours are renumbered after every round by sorting the flattened
    ``(old colour, *sorted neighbour colours)`` keys, which keeps the
    refinement isomorphism-invariant.  The flat-tuple keys compare exactly
    like the nested ``(old colour, multiset)`` keys, so the refinement (and
    therefore every canonical form) is unchanged from earlier revisions while
    hashing and sorting measurably less data per round.
    """
    n = len(colors)
    num = len(set(colors))
    while True:
        keys: List[Tuple[int, ...]] = []
        append = keys.append
        for v in range(n):
            row = sorted([colors[u] for u in adj[v]])
            row.insert(0, colors[v])
            append(tuple(row))
        order: Dict[Tuple[int, ...], int] = {}
        for key in sorted(set(keys)):
            order[key] = len(order)
        refined = len(order)
        if refined == num:
            return [order[key] for key in keys]
        colors = [order[key] for key in keys]
        if refined == n:
            # Discrete: a further round would renumber the distinct colours
            # by rank, which they already are — the fixed point is reached.
            return colors
        num = refined


def _degree_colors(adj: Sequence[Tuple[int, ...]]) -> List[int]:
    """Initial colouring by degree (ascending: larger degree, larger colour)."""
    degrees = [len(neighbors) for neighbors in adj]
    order = {d: i for i, d in enumerate(sorted(set(degrees)))}
    return [order[d] for d in degrees]


def _stable_colors(adj: Sequence[Tuple[int, ...]]) -> List[int]:
    """The stable 1-WL partition refined from the degree colouring.

    Both refinement and individualisation preserve the relative order of
    colour cells, so every discrete leaf colouring of the canonical search
    refines this partition *in order* — in particular the vertex at the last
    canonical position always carries the maximal stable colour.  The
    canonical-augmentation generator relies on that fact for its cheap
    accept/reject tests.
    """
    return _refine_colors(adj, _degree_colors(adj))


def _cells(colors: Sequence[int]) -> Dict[int, List[int]]:
    """Group vertices by colour, vertices sorted within each cell."""
    cells: Dict[int, List[int]] = {}
    for v, c in enumerate(colors):
        cells.setdefault(c, []).append(v)
    return cells


def _is_discrete(colors: Sequence[int]) -> bool:
    return len(set(colors)) == len(colors)


def _bitstring_for_ordering(adj: Sequence[Tuple[int, ...]], ordering: Sequence[int]) -> int:
    """Adjacency bitstring of the graph relabelled so that ``ordering[i] -> i``."""
    n = len(ordering)
    position = [0] * n
    for new, old in enumerate(ordering):
        position[old] = new
    bits = 0
    for u, neighbors in enumerate(adj):
        pu = position[u]
        for v in neighbors:
            pv = position[v]
            if pu < pv:
                bits |= 1 << (pu * n + pv)
    return bits


class _CanonicalSearch:
    """Backtracking search for the minimal adjacency bitstring.

    Besides the canonical ordering, the search harvests automorphisms: every
    leaf whose bitstring ties the current best yields the permutation mapping
    the best ordering onto the leaf ordering, which is an automorphism of the
    graph.  Discovered automorphisms prune the remaining search — a sibling
    vertex lying in the orbit of an already-explored sibling (under the
    subgroup fixing the individualised prefix pointwise) generates only
    images of leaves that were already visited.
    """

    def __init__(self, adj: Sequence[Tuple[int, ...]]) -> None:
        # Neighbour tuples (decoded from the bitset rows by the caller):
        # tuple iteration is the fastest option for the refinement loops.
        self.adj = adj
        self.n = len(adj)
        self.best: Optional[int] = None
        self.best_ordering: Optional[List[int]] = None
        self.automorphisms: List[Permutation] = []

    def run(
        self, stable_colors: Optional[Sequence[int]] = None
    ) -> Tuple[int, List[int], List[Permutation]]:
        colors = (
            _stable_colors(self.adj)
            if stable_colors is None
            else list(stable_colors)
        )
        self._search(colors, ())
        assert self.best is not None and self.best_ordering is not None
        return self.best, self.best_ordering, self.automorphisms

    def _search(self, colors: List[int], fixed: Tuple[int, ...]) -> None:
        if _is_discrete(colors):
            ordering = [0] * self.n
            for v, c in enumerate(colors):
                ordering[c] = v
            bits = _bitstring_for_ordering(self.adj, ordering)
            if self.best is None or bits < self.best:
                self.best = bits
                self.best_ordering = ordering
            elif bits == self.best:
                # Equal bitstrings mean the two relabelled graphs are the
                # same labelled graph, so position-wise composition of the
                # orderings is an automorphism of the original graph.
                base = self.best_ordering
                automorphism = [0] * self.n
                for position in range(self.n):
                    automorphism[base[position]] = ordering[position]
                self.automorphisms.append(tuple(automorphism))
            return

        cells = _cells(colors)
        # Target the smallest non-singleton cell (ties broken by colour id):
        # an isomorphism-invariant choice.
        target_color = min(
            (c for c, members in cells.items() if len(members) > 1),
            key=lambda c: (len(cells[c]), c),
        )
        tried: List[int] = []
        prefix_fixing: List[Permutation] = []
        absorbed = 0
        for v in cells[target_color]:
            # Absorb automorphisms discovered while exploring earlier
            # siblings, keeping those fixing the individualised prefix
            # pointwise (each automorphism is filtered once per node).
            automorphisms = self.automorphisms
            while absorbed < len(automorphisms):
                g = automorphisms[absorbed]
                absorbed += 1
                if all(g[f] == f for f in fixed):
                    prefix_fixing.append(g)
            if tried and prefix_fixing and self._already_explored(
                v, tried, prefix_fixing
            ):
                continue
            new_colors = _refine_colors(self.adj, self._individualize(colors, v))
            self._search(new_colors, fixed + (v,))
            tried.append(v)

    @staticmethod
    def _already_explored(
        vertex: int, tried: List[int], generators: List[Permutation]
    ) -> bool:
        """Whether ``vertex`` lies in the orbit of an explored sibling.

        Only automorphisms fixing the individualised prefix pointwise may be
        applied: they map the subtree rooted at an explored sibling onto the
        subtree rooted at ``vertex`` leaf-for-leaf, so exploring it again can
        neither lower the minimum nor reveal new generators that are not
        products of known ones.
        """
        seen = set(tried)
        stack = list(tried)
        while stack:
            x = stack.pop()
            for g in generators:
                y = g[x]
                if y == vertex:
                    return True
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return False

    @staticmethod
    def _individualize(colors: Sequence[int], vertex: int) -> List[int]:
        """Split ``vertex`` out of its cell by giving it a strictly smaller colour.

        All colours are doubled so that the individualised vertex can take
        ``2c`` while every other vertex keeps ``2c + 1``; relative order of
        all cells is preserved, keeping the operation isomorphism-invariant.
        """
        return [2 * c if u == vertex else 2 * c + 1 for u, c in enumerate(colors)]


# --------------------------------------------------------------------------- #
# Canonical records (memoised per Graph instance)
# --------------------------------------------------------------------------- #


def _orbit_ids(n: int, generators: Sequence[Permutation]) -> Permutation:
    """Union-find over the generator action: ``ids[v]`` = smallest orbit member."""
    ids = list(range(n))

    def find(x: int) -> int:
        while ids[x] != x:
            ids[x] = ids[ids[x]]
            x = ids[x]
        return x

    for g in generators:
        for v in range(n):
            a, b = find(v), find(g[v])
            if a < b:
                ids[b] = a
            elif b < a:
                ids[a] = b
    return tuple(find(v) for v in range(n))


@dataclass
class CanonicalRecord:
    """The full, memoised result of one canonical search.

    Attributes
    ----------
    n:
        Number of vertices.
    bits:
        The canonical adjacency bitstring; ``(n, bits)`` is the canonical
        form, equal exactly for isomorphic graphs.
    ordering:
        A canonical vertex ordering: ``ordering[i]`` is the original vertex
        at canonical position ``i``.
    generators:
        Automorphism generators harvested from equal-bitstring leaves; they
        generate the full automorphism group.
    orbit_ids:
        ``orbit_ids[v]`` is the smallest vertex in ``v``'s automorphism
        orbit (so equal ids mean same orbit).
    """

    n: int
    bits: int
    ordering: Permutation
    generators: Tuple[Permutation, ...]
    orbit_ids: Permutation
    _group_order: Optional[int] = field(default=None, repr=False, compare=False)

    @property
    def form(self) -> CanonicalForm:
        """The canonical form ``(n, bits)``."""
        return (self.n, self.bits)

    def vertex_orbits(self) -> List[List[int]]:
        """The vertex orbits as sorted lists, ordered by smallest member."""
        orbits: Dict[int, List[int]] = {}
        for v, root in enumerate(self.orbit_ids):
            orbits.setdefault(root, []).append(v)
        return [orbits[root] for root in sorted(orbits)]

    def group_order(self) -> int:
        """Order of the automorphism group (orbit-stabilizer recursion)."""
        if self._group_order is None:
            self._group_order = _schreier_order(self.n, self.generators)
        return self._group_order


def _compose(outer: Permutation, inner: Sequence[int]) -> Permutation:
    """``outer ∘ inner`` (apply ``inner`` first)."""
    return tuple(outer[i] for i in inner)


def _invert(perm: Permutation) -> Permutation:
    inverse = [0] * len(perm)
    for i, image in enumerate(perm):
        inverse[image] = i
    return tuple(inverse)


def _schreier_order(n: int, generators: Sequence[Permutation]) -> int:
    """Order of the permutation group generated by ``generators``.

    Orbit-stabilizer recursion with Schreier generators: pick a moved point
    ``v``, build its orbit with a transversal, derive generators of the
    stabilizer of ``v`` (Schreier's lemma) and recurse — polynomial in the
    degree, never materialising the group (a plain closure would need
    ``11! ≈ 4·10^7`` elements for the star on 12 vertices).
    """
    generators = [g for g in generators if any(g[i] != i for i in range(n))]
    if not generators:
        return 1
    base_point = next(
        i for i in range(n) if any(g[i] != i for g in generators)
    )
    identity = tuple(range(n))
    # transversal[x] maps base_point to x.
    transversal: Dict[int, Permutation] = {base_point: identity}
    queue = [base_point]
    while queue:
        x = queue.pop()
        for g in generators:
            y = g[x]
            if y not in transversal:
                transversal[y] = _compose(g, transversal[x])
                queue.append(y)
    stabilizer_generators = set()
    for x, t_x in transversal.items():
        for g in generators:
            t_y_inverse = _invert(transversal[g[x]])
            schreier = _compose(t_y_inverse, _compose(g, t_x))
            if schreier != identity:
                stabilizer_generators.add(schreier)
    return len(transversal) * _schreier_order(n, list(stabilizer_generators))


_EMPTY_RECORD = CanonicalRecord(0, 0, (), (), ())


def _compute_record(
    graph: Optional[Graph] = None,
    adj: Optional[Sequence[Tuple[int, ...]]] = None,
    stable_colors: Optional[Sequence[int]] = None,
) -> CanonicalRecord:
    """Run the canonical search and package the result (no caching)."""
    if adj is None:
        assert graph is not None
        if graph.n == 0:
            return _EMPTY_RECORD
        adj = tuple(tuple(iter_bits(row)) for row in graph.adjacency_rows())
    n = len(adj)
    if n == 0:
        return _EMPTY_RECORD
    search = _CanonicalSearch(adj)
    bits, ordering, automorphisms = search.run(stable_colors)
    generators = tuple(dict.fromkeys(automorphisms))
    return CanonicalRecord(
        n=n,
        bits=bits,
        ordering=tuple(ordering),
        generators=generators,
        orbit_ids=_orbit_ids(n, generators),
    )


def canonical_record(graph: Graph) -> CanonicalRecord:
    """The graph's :class:`CanonicalRecord`, computed once per instance.

    The record is memoised on the (immutable) graph object, so repeated
    canonical-form, orbit or automorphism queries — censuses, sweeps,
    enumeration — pay for the search exactly once per instance.
    """
    record = graph._canon
    if record is None:
        record = _compute_record(graph)
        graph._canon = record
    return record


def cached_canonical_record(graph: Graph) -> Optional[CanonicalRecord]:
    """The memoised record if one exists, ``None`` otherwise (never computes)."""
    return graph._canon


def clear_canonical_record(graph: Graph) -> None:
    """Drop the memoised record (e.g. to release memory on long-lived graphs).

    Safe at any time — the record is a pure cache of the immutable graph's
    symmetry data and will simply be recomputed on the next query.
    """
    graph._canon = None


def canonical_labeling(graph: Graph) -> List[int]:
    """A canonical vertex ordering: ``ordering[i]`` is the original vertex at position ``i``."""
    if graph.n == 0:
        return []
    return list(canonical_record(graph).ordering)


def canonical_form(graph: Graph) -> CanonicalForm:
    """A canonical form ``(n, bitstring)``: equal for isomorphic graphs only.

    Two graphs are isomorphic if and only if their canonical forms compare
    equal.  The underlying search result is memoised per instance, so
    repeated calls are free.
    """
    if graph.n == 0:
        return (0, 0)
    return canonical_record(graph).form


def canonical_graph(graph: Graph) -> Graph:
    """The canonical representative of ``graph``'s isomorphism class.

    The returned graph inherits a conjugated copy of the canonical record
    (identity ordering, relabelled generators and orbits), so downstream
    symmetry consumers — e.g. orbit-pruned stability probing — get the
    graph's automorphism data without another search.
    """
    if graph.n == 0:
        return graph
    record = canonical_record(graph)
    position = [0] * graph.n
    for new, old in enumerate(record.ordering):
        position[old] = new
    canon = graph.relabel(position)
    if canon._canon is None:
        canon._canon = _conjugate_record(record, position)
    return canon


def _conjugate_record(record: CanonicalRecord, position: Sequence[int]) -> CanonicalRecord:
    """The record of the canonically relabelled graph (generators conjugated)."""
    n = record.n
    generators = tuple(
        tuple(position[g[record.ordering[i]]] for i in range(n))
        for g in record.generators
    )
    # Orbits relabel along with the vertices: the new id of a relabelled
    # orbit is the smallest new label among its members (no need to re-run
    # union-find over the conjugated generators).
    smallest: Dict[int, int] = {}
    for old_vertex, root in enumerate(record.orbit_ids):
        new_label = position[old_vertex]
        if root not in smallest or new_label < smallest[root]:
            smallest[root] = new_label
    orbit_ids = tuple(
        smallest[record.orbit_ids[record.ordering[i]]] for i in range(n)
    )
    return CanonicalRecord(
        n=n,
        bits=record.bits,
        ordering=tuple(range(n)),
        generators=generators,
        orbit_ids=orbit_ids,
        _group_order=record._group_order,
    )


# --------------------------------------------------------------------------- #
# Orbit and automorphism queries
# --------------------------------------------------------------------------- #


def automorphism_generators(graph: Graph) -> List[Permutation]:
    """Generators of the automorphism group (empty for rigid graphs)."""
    return list(canonical_record(graph).generators)


def automorphism_group_order(graph: Graph) -> int:
    """Order of the automorphism group (orbit-stabilizer over the generators)."""
    return canonical_record(graph).group_order()


def vertex_orbits(graph: Graph) -> List[List[int]]:
    """The automorphism orbits of the vertex set, as sorted lists."""
    return canonical_record(graph).vertex_orbits()


def _orbits_of_pairs(
    pairs: Sequence[Tuple[int, int]],
    generators: Sequence[Permutation],
    ordered: bool,
) -> List[List[Tuple[int, int]]]:
    """Orbits of vertex pairs under the generator action (BFS closure)."""
    if not generators:
        return [[pair] for pair in pairs]
    orbits: List[List[Tuple[int, int]]] = []
    seen = set()
    for pair in pairs:
        if pair in seen:
            continue
        seen.add(pair)
        orbit = [pair]
        stack = [pair]
        while stack:
            u, v = stack.pop()
            for g in generators:
                image = (g[u], g[v]) if ordered else normalize_edge(g[u], g[v])
                if image not in seen:
                    seen.add(image)
                    orbit.append(image)
                    stack.append(image)
        orbit.sort()
        orbits.append(orbit)
    return orbits


def edge_orbits(graph: Graph) -> List[List[Edge]]:
    """The automorphism orbits of the edge set (unordered pairs)."""
    return _orbits_of_pairs(
        graph.sorted_edges(), canonical_record(graph).generators, ordered=False
    )


def nonedge_orbits(graph: Graph) -> List[List[Edge]]:
    """The automorphism orbits of the non-edges (unordered pairs)."""
    return _orbits_of_pairs(
        graph.non_edges(), canonical_record(graph).generators, ordered=False
    )


def ordered_pair_orbits(
    graph: Graph, record: Optional[CanonicalRecord] = None
) -> List[List[Tuple[int, int]]]:
    """Orbits of *ordered* vertex pairs ``(u, v)``, ``u != v``.

    This is the granularity of the stability probes: the deviation payoff of
    endpoint ``u`` toggling the pair ``{u, v}`` is constant on each orbit, so
    :func:`repro.engine.batch_stability_deltas` evaluates one representative
    per orbit and expands.  Orbits never mix edges with non-edges.
    """
    if record is None:
        record = canonical_record(graph)
    n = graph.n
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    return _orbits_of_pairs(pairs, record.generators, ordered=True)


def are_isomorphic(first: Graph, second: Graph) -> bool:
    """Exact isomorphism test via canonical forms (with cheap pre-checks)."""
    if first.n != second.n or first.num_edges != second.num_edges:
        return False
    if first.degree_sequence() != second.degree_sequence():
        return False
    return canonical_form(first) == canonical_form(second)


def automorphism_count_brute_force(graph: Graph) -> int:
    """Number of automorphisms, by brute force over permutations.

    Only intended for very small graphs (``n <= 8``); used in tests to
    sanity-check the canonical labelling machinery.
    """
    from itertools import permutations

    n = graph.n
    edges = graph.edges
    count = 0
    for perm in permutations(range(n)):
        if all((min(perm[u], perm[v]), max(perm[u], perm[v])) in edges for u, v in edges):
            count += 1
    return count
