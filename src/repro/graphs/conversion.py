"""Conversions between :class:`repro.graphs.Graph` and external formats.

The library itself never depends on these (the substrate is self-contained),
but the test suite uses networkx as an oracle and users may want to move
graphs in and out of the standard graph6 interchange format.
"""

from __future__ import annotations

from typing import Any, List

from .graph import Graph


def to_networkx(graph: Graph) -> Any:
    """Convert to a ``networkx.Graph`` (requires networkx to be installed)."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.n))
    nx_graph.add_edges_from(graph.edges)
    return nx_graph


def from_networkx(nx_graph: Any) -> Graph:
    """Convert a ``networkx.Graph`` with arbitrary hashable nodes.

    Nodes are relabelled ``0 .. n-1`` in sorted order when sortable, otherwise
    in insertion order.
    """
    nodes = list(nx_graph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
    return Graph(len(nodes), edges)


def to_edge_list_string(graph: Graph) -> str:
    """Serialise as ``"n; u-v u-v ..."`` (human-readable, deterministic)."""
    edges = " ".join(f"{u}-{v}" for u, v in graph.sorted_edges())
    return f"{graph.n}; {edges}".rstrip()


def from_edge_list_string(text: str) -> Graph:
    """Parse the format produced by :func:`to_edge_list_string`."""
    head, _, tail = text.partition(";")
    n = int(head.strip())
    edges = []
    for token in tail.split():
        u_text, _, v_text = token.partition("-")
        edges.append((int(u_text), int(v_text)))
    return Graph(n, edges)


def to_graph6(graph: Graph) -> str:
    """Encode in graph6 format (for graphs with at most 62 vertices)."""
    n = graph.n
    if n > 62:
        raise ValueError("only graphs with at most 62 vertices are supported")
    bits: List[int] = []
    for v in range(1, n):
        for u in range(v):
            bits.append(1 if graph.has_edge(u, v) else 0)
    while len(bits) % 6 != 0:
        bits.append(0)
    chars = [chr(63 + n)]
    for i in range(0, len(bits), 6):
        value = 0
        for bit in bits[i:i + 6]:
            value = (value << 1) | bit
        chars.append(chr(63 + value))
    return "".join(chars)


def from_graph6(text: str) -> Graph:
    """Decode a graph6 string (single graph, at most 62 vertices)."""
    text = text.strip()
    if not text:
        raise ValueError("empty graph6 string")
    n = ord(text[0]) - 63
    if n < 0 or n > 62:
        raise ValueError("only graphs with at most 62 vertices are supported")
    bits: List[int] = []
    for ch in text[1:]:
        value = ord(ch) - 63
        if value < 0 or value > 63:
            raise ValueError(f"invalid graph6 character: {ch!r}")
        bits.extend((value >> shift) & 1 for shift in range(5, -1, -1))
    edges = []
    k = 0
    for v in range(1, n):
        for u in range(v):
            if k < len(bits) and bits[k]:
                edges.append((u, v))
            k += 1
    return Graph(n, edges)
