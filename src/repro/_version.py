"""The package version, importable without pulling in the full package.

Lives in its own module so dependency-light subpackages (``repro.obs``,
``repro.service``) can stamp exports with the version without importing
``repro`` itself — the top-level ``__init__`` imports the heavy core and
analysis layers, and ``repro.obs`` must stay importable from engine hot
paths without cycles.
"""

__version__ = "1.0.0"
