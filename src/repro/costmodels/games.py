"""Weighted connection games: the BCG and UCG under heterogeneous link costs.

:class:`WeightedBilateralGame` and :class:`WeightedUnilateralGame` are the
:class:`~repro.core.games.ConnectionGame` subclasses for a
:class:`~repro.costmodels.models.CostModel` ``W`` at a scale ``t`` (the game
is played on ``C = t·W``; sweeping ``t`` with a fixed ``W`` is how stability
regions stay one-dimensional).  The scalar games are recovered exactly with
:class:`~repro.costmodels.models.UniformCost`: player and social costs,
stability decisions and the UCG Nash set reduce float-exactly to the
scalar-α code.

Efficiency (and therefore the price of anarchy) is no longer closed-form
under heterogeneous costs — the star/complete-graph dichotomy of the scalar
game breaks when some links are cheaper than others — so the weighted games
fall back to an exhaustive search over labelled graphs (practical for
``n ≤ 6``; uniform models keep using the scalar closed forms for any ``n``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.efficiency import efficient_graph as scalar_efficient_graph
from ..core.efficiency import efficient_social_cost as scalar_efficient_social_cost
from ..core.games import ConnectionGame
from ..core.stability_intervals import AlphaIntervalSet
from ..core.strategies import StrategyProfile
from ..graphs import Graph
from .costs import (
    weighted_player_cost_bcg,
    weighted_player_cost_ucg,
    weighted_social_cost_bcg,
    weighted_social_cost_ucg,
)
from .models import CostModel, as_cost_model
from .stability import (
    WeightedStabilityProfile,
    is_weighted_nash_profile_bcg,
    is_weighted_nash_profile_ucg,
    weighted_stability_profile,
    weighted_ucg_nash_t_set,
)

Edge = Tuple[int, int]

#: Largest player count for which the exhaustive weighted optimum is searched.
EXHAUSTIVE_OPTIMUM_LIMIT = 6


class WeightedConnectionGame(ConnectionGame):
    """Common machinery of the two weighted connection games.

    Parameters
    ----------
    n:
        Number of players.
    cost_model:
        A :class:`CostModel` (or a plain number, coerced to
        :class:`~repro.costmodels.models.UniformCost`).
    t:
        Scale applied to the model: the game is played on ``C = t·W``.
    """

    #: The scalar game this weighted game generalises ("bcg" or "ucg").
    base_game: str = "bcg"

    def __init__(self, n: int, cost_model, t: float = 1.0) -> None:
        if n < 1:
            raise ValueError("a connection game needs at least one player")
        if t <= 0:
            raise ValueError("the scale t must be strictly positive")
        self.n = n
        self.model: CostModel = as_cost_model(cost_model, n)
        self.t = float(t)
        #: The model actually priced into costs: ``t·W`` (``W`` itself at t=1,
        #: so the uniform closed-form overrides survive unscaled queries).
        self.effective_model: CostModel = (
            self.model if self.t == 1.0 else self.model.scaled(self.t)
        )
        self._optimum: Optional[Tuple[Graph, float]] = None

    @property
    def alpha(self) -> float:
        """The scalar link cost — defined only for uniform models."""
        value = self.effective_model.uniform_alpha()
        if value is None:
            raise AttributeError(
                "a heterogeneous cost model has no scalar α; inspect .model"
            )
        return value

    def with_scale(self, t: float) -> "WeightedConnectionGame":
        """The same game at scale ``t`` (relative to the *base* model)."""
        return type(self)(self.n, self.model, t=t)

    # -- efficiency and price of anarchy ------------------------------------ #

    def _exhaustive_optimum(self) -> Tuple[Graph, float]:
        """Arg-min of the weighted social cost over all labelled graphs.

        Disconnected graphs have infinite distance totals and are never
        optimal, so the scan over all ``2^(n(n-1)/2)`` labelled graphs is
        also the scan over connected ones.  Guarded to small ``n``; uniform
        models never reach this path.
        """
        if self._optimum is None:
            n = self.n
            if n > EXHAUSTIVE_OPTIMUM_LIMIT:
                raise ValueError(
                    "the exhaustive weighted optimum is only searched for "
                    f"n <= {EXHAUSTIVE_OPTIMUM_LIMIT} (got n = {n}); use a "
                    "uniform model or supply the optimum externally"
                )
            pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
            best_graph: Optional[Graph] = None
            best_cost = float("inf")
            for mask in range(1 << len(pairs)):
                edges = [pairs[k] for k in range(len(pairs)) if (mask >> k) & 1]
                graph = Graph(n, edges)
                cost = self.social_cost(graph)
                if cost < best_cost:
                    best_cost = cost
                    best_graph = graph
            self._optimum = (best_graph, best_cost)
        return self._optimum

    def efficient_graph(self) -> Graph:
        """A weighted-social-cost-minimising network."""
        alpha = self.effective_model.uniform_alpha()
        if alpha is not None:
            return scalar_efficient_graph(self.n, alpha, self.base_game)
        return self._exhaustive_optimum()[0]

    def efficient_social_cost(self) -> float:
        """The minimum weighted social cost over all networks."""
        alpha = self.effective_model.uniform_alpha()
        if alpha is not None:
            return scalar_efficient_social_cost(self.n, alpha, self.base_game)
        return self._exhaustive_optimum()[1]

    def price_of_anarchy(self, graph: Graph) -> float:
        """``ρ(G)``: weighted social cost of ``graph`` over the optimum."""
        optimum = self.efficient_social_cost()
        if optimum == 0:
            return 1.0
        return self.social_cost(graph) / optimum

    def worst_case_price_of_anarchy(self, equilibria: Iterable[Graph]) -> float:
        """Largest ``ρ(G)`` over an explicit equilibrium set."""
        return max(self.price_of_anarchy(g) for g in equilibria)

    def average_price_of_anarchy(self, equilibria: Iterable[Graph]) -> float:
        """Mean ``ρ(G)`` over an explicit equilibrium set."""
        ratios = [self.price_of_anarchy(g) for g in equilibria]
        return sum(ratios) / len(ratios)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, model={self.model!r}, t={self.t})"
        )


class WeightedBilateralGame(WeightedConnectionGame):
    """The bilateral connection game under heterogeneous link costs."""

    name = "wbcg"
    base_game = "bcg"

    def resulting_graph(self, profile: StrategyProfile) -> Graph:
        return profile.bilateral_graph()

    def player_cost(self, profile: StrategyProfile, player: int) -> float:
        return weighted_player_cost_bcg(profile, player, self.effective_model)

    def social_cost(self, graph: Graph) -> float:
        return weighted_social_cost_bcg(graph, self.effective_model)

    def is_nash(self, profile: StrategyProfile) -> bool:
        return is_weighted_nash_profile_bcg(profile, self.model, t=self.t)

    def is_equilibrium_network(self, graph: Graph) -> bool:
        return self.is_pairwise_stable(graph)

    # -- weighted BCG-specific notions --------------------------------------- #

    def stability_profile(self, graph: Graph) -> WeightedStabilityProfile:
        """The per-probe ``(w, Δdist)`` coefficient records of ``graph``."""
        return weighted_stability_profile(graph, self.model)

    def is_pairwise_stable(self, graph: Graph) -> bool:
        """Exact weighted Definition 3 at this game's scale."""
        return self.stability_profile(graph).is_stable_at(self.t)

    def stability_violations(self, graph: Graph) -> List[str]:
        """Human-readable weighted pairwise-stability violations."""
        return self.stability_profile(graph).violations_at(self.t)

    def stability_t_interval(self, graph: Graph) -> Tuple[float, float]:
        """The Lemma 2 analogue ``(t_min, t_max]`` in the scale parameter."""
        return self.stability_profile(graph).stability_t_interval()

    def t_interval_set(self, graph: Graph) -> AlphaIntervalSet:
        """Stabilising scales of ``graph`` as an interval set."""
        return self.stability_profile(graph).t_interval_set()


class WeightedUnilateralGame(WeightedConnectionGame):
    """The unilateral connection game under heterogeneous link costs."""

    name = "wucg"
    base_game = "ucg"

    def resulting_graph(self, profile: StrategyProfile) -> Graph:
        return profile.unilateral_graph()

    def player_cost(self, profile: StrategyProfile, player: int) -> float:
        return weighted_player_cost_ucg(profile, player, self.effective_model)

    def social_cost(
        self, graph: Graph, owner: Optional[Dict[Edge, int]] = None
    ) -> float:
        return weighted_social_cost_ucg(graph, self.effective_model, owner)

    def is_nash(self, profile: StrategyProfile) -> bool:
        return is_weighted_nash_profile_ucg(profile, self.model, t=self.t)

    def is_equilibrium_network(self, graph: Graph) -> bool:
        return self.is_nash_network(graph)

    # -- weighted UCG-specific notions ---------------------------------------- #

    def nash_t_set(self, graph: Graph) -> AlphaIntervalSet:
        """All scales at which ``graph`` is Nash-supportable under ``t·W``."""
        return weighted_ucg_nash_t_set(graph, self.model)

    def is_nash_network(self, graph: Graph) -> bool:
        """Whether some edge ownership makes ``graph`` Nash at this scale."""
        return self.nash_t_set(graph).contains(self.t)
