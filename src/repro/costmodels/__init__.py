"""Heterogeneous link-cost subsystem: per-player / per-edge α games.

The paper's games price every link at one global ``α``; this package
generalises the whole stack to a :class:`CostModel` assigning each ordered
pair ``(payer, other)`` its own strictly positive coefficient:

* :mod:`repro.costmodels.models` — the model hierarchy
  (:class:`UniformCost`, :class:`PerPlayerCost`, :class:`PerEdgeCost`,
  :class:`ScaledCost` and the ``scaled(t)`` view ``C = t·W``);
* :mod:`repro.costmodels.costs` — weighted player and social costs;
* :mod:`repro.costmodels.stability` — :class:`WeightedStabilityProfile`
  (per-probe ``(w, Δdist)`` coefficient records, exact stability
  ``t``-intervals) and the weighted UCG orientation search;
* :mod:`repro.costmodels.games` — :class:`WeightedBilateralGame` and
  :class:`WeightedUnilateralGame`.

With :class:`UniformCost` every quantity reduces float-exactly to the
scalar-α code, which the test suite asserts against the record path for
``n ≤ 7``.  The vectorised counterparts (whole-``t``-grid stability masks
over many graphs) live in :mod:`repro.engine.batch` /
:mod:`repro.engine.columnar`, and the scenario library over these models in
:mod:`repro.analysis.scenarios`.
"""

from .costs import (
    all_weighted_player_costs_bcg,
    all_weighted_player_costs_ucg,
    weighted_player_cost_bcg,
    weighted_player_cost_graph,
    weighted_player_cost_ucg,
    weighted_social_cost_bcg,
    weighted_social_cost_ucg,
)
from .games import (
    WeightedBilateralGame,
    WeightedConnectionGame,
    WeightedUnilateralGame,
)
from .models import (
    CostModel,
    PerEdgeCost,
    PerPlayerCost,
    ScaledCost,
    UniformCost,
    as_cost_model,
)
from .stability import (
    WeightedStabilityProfile,
    is_weighted_nash_graph_ucg,
    is_weighted_nash_profile_bcg,
    is_weighted_nash_profile_ucg,
    is_weighted_pairwise_stable,
    weighted_best_deviation_delta_bcg,
    weighted_ownership_interval,
    weighted_stability_profile,
    weighted_stability_t_interval,
    weighted_ucg_nash_t_set,
)

__all__ = [
    # models
    "CostModel",
    "UniformCost",
    "PerPlayerCost",
    "PerEdgeCost",
    "ScaledCost",
    "as_cost_model",
    # costs
    "weighted_player_cost_graph",
    "weighted_player_cost_bcg",
    "weighted_player_cost_ucg",
    "all_weighted_player_costs_bcg",
    "all_weighted_player_costs_ucg",
    "weighted_social_cost_bcg",
    "weighted_social_cost_ucg",
    # stability
    "WeightedStabilityProfile",
    "weighted_stability_profile",
    "weighted_stability_t_interval",
    "is_weighted_pairwise_stable",
    "weighted_best_deviation_delta_bcg",
    "is_weighted_nash_profile_bcg",
    "is_weighted_nash_profile_ucg",
    "weighted_ownership_interval",
    "weighted_ucg_nash_t_set",
    "is_weighted_nash_graph_ucg",
    # games
    "WeightedConnectionGame",
    "WeightedBilateralGame",
    "WeightedUnilateralGame",
]
