"""Weighted player and social costs under heterogeneous link-cost models.

Generalises :mod:`repro.core.costs` from the scalar ``α`` to a
:class:`~repro.costmodels.models.CostModel`: player ``i``'s cost under
profile ``s`` becomes

    ``c_i(s) = Σ_{j ∈ s_i} w(i, j) + Σ_j d_(i,j)(G(s))``

and the social cost of a BCG network is ``Σ_{(u,v)∈A} (w(u,v) + w(v,u)) +
Σ_{i,j} d`` (both endpoints pay their own price for every edge).  In the UCG
each edge is paid for once by its buyer, so the social cost depends on the
edge-ownership map; without one, every edge is charged to its cheaper
endpoint (the lower envelope over ownerships).

All aggregation is routed through the model's hooks
(:meth:`~repro.costmodels.models.CostModel.player_link_cost` etc.), which
:class:`~repro.costmodels.models.UniformCost` overrides with the scalar
closed forms — so with a uniform model every function here is
**float-exactly** equal to its :mod:`repro.core.costs` counterpart.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.strategies import StrategyProfile
from ..graphs import Graph, distance_sum, total_distance
from .models import CostModel

Edge = Tuple[int, int]


def weighted_player_cost_graph(
    graph: Graph,
    player: int,
    model: CostModel,
    links_paid: Optional[Tuple[int, ...]] = None,
) -> float:
    """Weighted player cost evaluated on a *graph* (rather than a profile).

    ``links_paid`` lists the neighbours whose links the player pays for.  In
    the BCG in equilibrium this is every neighbour (the default); in the UCG
    it is the set of link targets the player *bought*, which depends on the
    edge ownership and must be passed explicitly.
    """
    if links_paid is None:
        links_paid = tuple(sorted(graph.neighbors(player)))
    return model.player_link_cost(player, links_paid) + distance_sum(graph, player)


def weighted_player_cost_bcg(
    profile: StrategyProfile, player: int, model: CostModel
) -> float:
    """Weighted cost of ``player`` in the BCG under an arbitrary profile.

    As in the scalar game, provisioned-but-unreciprocated requests still
    cost their full coefficient each.
    """
    graph = profile.bilateral_graph()
    requests = tuple(sorted(profile.requests_of(player)))
    return model.player_link_cost(player, requests) + distance_sum(graph, player)


def weighted_player_cost_ucg(
    profile: StrategyProfile, player: int, model: CostModel
) -> float:
    """Weighted cost of ``player`` in the UCG under an arbitrary profile."""
    graph = profile.unilateral_graph()
    requests = tuple(sorted(profile.requests_of(player)))
    return model.player_link_cost(player, requests) + distance_sum(graph, player)


def all_weighted_player_costs_bcg(
    profile: StrategyProfile, model: CostModel
) -> List[float]:
    """Vector of weighted BCG player costs (shares one graph construction)."""
    graph = profile.bilateral_graph()
    return [
        model.player_link_cost(i, tuple(sorted(profile.requests_of(i))))
        + distance_sum(graph, i)
        for i in range(profile.n)
    ]


def all_weighted_player_costs_ucg(
    profile: StrategyProfile, model: CostModel
) -> List[float]:
    """Vector of weighted UCG player costs (shares one graph construction)."""
    graph = profile.unilateral_graph()
    return [
        model.player_link_cost(i, tuple(sorted(profile.requests_of(i))))
        + distance_sum(graph, i)
        for i in range(profile.n)
    ]


def weighted_social_cost_bcg(graph: Graph, model: CostModel) -> float:
    """Weighted BCG social cost: ``Σ_e (w(u,v) + w(v,u)) + Σ_{i,j} d``."""
    return model.bcg_edge_cost_total(graph) + total_distance(graph)


def weighted_social_cost_ucg(
    graph: Graph, model: CostModel, owner: Optional[Dict[Edge, int]] = None
) -> float:
    """Weighted UCG social cost under an ownership map.

    ``owner=None`` charges every edge to its cheaper endpoint, the minimum
    over all ownership assignments (with a uniform model the owner never
    matters and the scalar ``α·|A| + Σ d`` is recovered exactly).
    """
    return model.ucg_edge_cost_total(graph, owner) + total_distance(graph)
