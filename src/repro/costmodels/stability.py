"""Weighted stability analysis: per-probe ``(w, Δdist)`` coefficient records.

The scalar census machinery works because every single-link deviation payoff
of a graph is a pure *graph* quantity (a distance delta) compared against one
global threshold ``α``.  With heterogeneous link costs the threshold varies
per probe, so :class:`WeightedStabilityProfile` — the weighted analogue of
:class:`~repro.core.stability_intervals.PairwiseStabilityProfile` — stores a
coefficient *pair* ``(w, Δdist)`` per probe instead of a scalar threshold:

* for every edge ``(u, v)`` and endpoint ``e``: ``(w(e, other), removal
  increase of e)``;
* for every non-edge ``(u, v)`` and endpoint ``e``: ``(w(e, other),
  addition saving of e)``.

Stability of the scaled model ``C = t·W`` is then a per-probe linear
comparison (``Δ`` against ``t·w``), so the set of scales ``t`` at which the
graph is pairwise stable stays **one-dimensional**: an interval
``(t_min, t_max]`` exactly analogous to Lemma 2, with

    ``t_max = min over removal probes of Δ / w``
    ``t_min = max over non-edges of min(save_u / w_u, save_v / w_v)``

(each probe's deviation threshold simply divided by its own coefficient).
The same decomposition makes the weighted UCG tractable: every Nash
constraint of a fixed edge-ownership is linear in ``t``
(``t·Δw ≥ -Δdist``), so :func:`weighted_ucg_nash_t_set` reuses the scalar
orientation search with weight *sums* in place of purchase *counts* and
returns an :class:`~repro.core.stability_intervals.AlphaIntervalSet` over
``t``.

Distance deltas are delegated to the shared
:class:`~repro.engine.DistanceOracle` (identical numbers to the scalar
profile); with :class:`~repro.costmodels.models.UniformCost` all decisions
and intervals here are float-exactly those of the scalar code — every
comparison keeps the scalar expression shape with the coefficient
multiplied in (``t·w`` with ``w = α, t = 1`` or ``w = 1, t = α`` reproduces
the exact same IEEE values), which the test suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.stability_intervals import AlphaInterval, AlphaIntervalSet
from ..engine import DistanceOracle, get_default_oracle
from ..engine.oracle import distance_delta
from ..graphs import Graph, INFINITY
from .models import CostModel

Edge = Tuple[int, int]
EndpointKey = Tuple[Edge, int]
#: A per-probe coefficient record: ``(weight, distance delta)``.
Coefficients = Tuple[float, float]

#: Interval returned when an ownership set is never a best response.
_EMPTY_INTERVAL = AlphaInterval(1.0, 0.0)


def _subsets(items: Sequence[int]) -> Iterable[Tuple[int, ...]]:
    return chain.from_iterable(combinations(items, r) for r in range(len(items) + 1))


# --------------------------------------------------------------------------- #
# Weighted pairwise stability (BCG)
# --------------------------------------------------------------------------- #


@dataclass
class WeightedStabilityProfile:
    """All single-link deviation payoffs of a graph, with their coefficients.

    Attributes
    ----------
    graph:
        The analysed graph.
    model:
        The (unscaled) cost model ``W``; queries take the scale ``t``.
    removal:
        ``removal[((u, v), e)] = (w, Δ)`` — severing edge ``(u, v)`` saves
        endpoint ``e`` the link price ``w = w(e, other)`` and increases its
        distance cost by ``Δ``.
    addition:
        ``addition[((u, v), e)] = (w, save)`` — creating non-edge ``(u, v)``
        costs endpoint ``e`` the price ``w`` and saves it ``save`` in
        distance cost.
    """

    graph: Graph
    model: CostModel
    removal: Dict[EndpointKey, Coefficients]
    addition: Dict[EndpointKey, Coefficients]

    # -- the Lemma 2 analogue in the scale parameter t ---------------------- #

    @property
    def t_max(self) -> float:
        """Smallest ``Δ / w`` over removal probes (``inf`` for edgeless graphs).

        For any scale strictly above this value some player prefers to sever
        a link unilaterally.
        """
        if not self.removal:
            return INFINITY
        return min(delta / w for (w, delta) in self.removal.values())

    @property
    def t_min(self) -> float:
        """Largest least-interested-endpoint ``save / w`` over non-edges.

        For any scale strictly below this value some missing link would be
        added bilaterally.  ``0`` for complete graphs, ``inf`` for
        disconnected graphs.
        """
        best = 0.0
        for (u, v) in self.graph.non_edges():
            w_u, save_u = self.addition[((u, v), u)]
            w_v, save_v = self.addition[((u, v), v)]
            best = max(best, min(save_u / w_u, save_v / w_v))
        return best

    def stability_t_interval(self) -> Tuple[float, float]:
        """The interval ``(t_min, t_max]`` of stabilising scales, as a tuple."""
        return (self.t_min, self.t_max)

    def t_interval_set(self) -> AlphaIntervalSet:
        """The stabilising scales as an :class:`AlphaIntervalSet`.

        Like the scalar Lemma 2 interval, membership of the left endpoint
        itself is decided by the exact check (:meth:`is_stable_at`); the set
        is empty when no positive scale stabilises the graph.
        """
        lo, hi = self.stability_t_interval()
        if lo >= hi:
            return AlphaIntervalSet()
        return AlphaIntervalSet([AlphaInterval(lo, hi)])

    # -- exact Definition 3 checks at one scale ----------------------------- #

    def is_stable_at(self, t: float = 1.0) -> bool:
        """Exact weighted pairwise stability of ``C = t·W`` (Definition 3)."""
        return not self.violations_at(t)

    def violations_at(self, t: float = 1.0) -> List[str]:
        """Human-readable list of Definition 3 violations at scale ``t``."""
        violations: List[str] = []
        for (u, v) in self.graph.sorted_edges():
            for endpoint in (u, v):
                w, delta = self.removal[((u, v), endpoint)]
                if delta < t * w - 1e-12:
                    violations.append(
                        f"player {endpoint} strictly gains by severing edge ({u}, {v})"
                    )
        for (u, v) in self.graph.non_edges():
            w_u, save_u = self.addition[((u, v), u)]
            w_v, save_v = self.addition[((u, v), v)]
            # Violation of Definition 3: one endpoint strictly gains and the
            # other at least weakly gains from adding the missing link, each
            # measured against its own price t·w.
            if (save_u > t * w_u + 1e-12 and save_v >= t * w_v - 1e-12) or (
                save_v > t * w_v + 1e-12 and save_u >= t * w_u - 1e-12
            ):
                violations.append(
                    f"players {u} and {v} would bilaterally add missing edge ({u}, {v})"
                )
        return violations


def weighted_stability_profile(
    graph: Graph, model: CostModel, oracle: Optional[DistanceOracle] = None
) -> WeightedStabilityProfile:
    """Pair every single-link deviation payoff of ``graph`` with its coefficient.

    The distance deltas are exactly those of the scalar
    :func:`~repro.core.stability_intervals.pairwise_stability_profile`
    (shared oracle, shared ``∞ - ∞ = 0`` convention); the model only
    contributes the per-probe prices.
    """
    if oracle is None:
        oracle = get_default_oracle()
    removal_deltas, addition_deltas = oracle.stability_deltas(graph)
    removal = {
        ((u, v), endpoint): (model.weight(endpoint, v if endpoint == u else u), delta)
        for ((u, v), endpoint), delta in removal_deltas.items()
    }
    addition = {
        ((u, v), endpoint): (model.weight(endpoint, v if endpoint == u else u), save)
        for ((u, v), endpoint), save in addition_deltas.items()
    }
    return WeightedStabilityProfile(
        graph=graph, model=model, removal=removal, addition=addition
    )


def is_weighted_pairwise_stable(
    graph: Graph,
    model: CostModel,
    t: float = 1.0,
    oracle: Optional[DistanceOracle] = None,
) -> bool:
    """Exact weighted pairwise stability of ``graph`` under ``t·W``."""
    if t <= 0:
        raise ValueError("the scale t must be strictly positive")
    return weighted_stability_profile(graph, model, oracle=oracle).is_stable_at(t)


def weighted_stability_t_interval(
    graph: Graph, model: CostModel, oracle: Optional[DistanceOracle] = None
) -> Tuple[float, float]:
    """The ``(t_min, t_max]`` scale interval stabilising ``graph`` under ``W``."""
    return weighted_stability_profile(graph, model, oracle=oracle).stability_t_interval()


# --------------------------------------------------------------------------- #
# Weighted Nash checks on explicit profiles
# --------------------------------------------------------------------------- #


def weighted_best_deviation_delta_bcg(
    profile,
    player: int,
    model: CostModel,
    t: float = 1.0,
    oracle: Optional[DistanceOracle] = None,
) -> float:
    """The most negative weighted cost change ``player`` can achieve unilaterally.

    Mirrors :func:`repro.core.bilateral.best_deviation_delta_bcg`: a BCG
    unilateral deviation cannot create edges, so only subsets of the
    currently reciprocated requests are worth keeping; each dropped link
    ``j`` saves its own price ``t·w(player, j)``.
    """
    if oracle is None:
        oracle = get_default_oracle()
    reciprocated = [
        j for j in profile.requests_of(player) if profile.seeks(j, player)
    ]
    current = tuple(sorted(profile.requests_of(player)))
    before_graph = profile.bilateral_graph()
    before_distance = oracle.distance_sum(before_graph, player)
    current_links = t * model.player_link_cost(player, current)
    best = 0.0
    for kept in _subsets(reciprocated):
        after_graph = profile.with_player_strategy(player, kept).bilateral_graph()
        increase = distance_delta(
            oracle.distance_sum(after_graph, player), before_distance
        )
        delta = increase + (t * model.player_link_cost(player, kept) - current_links)
        if delta < best:
            best = delta
    return best


def is_weighted_nash_profile_bcg(
    profile,
    model: CostModel,
    t: float = 1.0,
    oracle: Optional[DistanceOracle] = None,
) -> bool:
    """Whether ``profile`` is a pure Nash equilibrium of the weighted BCG.

    An unreciprocated request always saves its strictly positive price when
    dropped, so such profiles are never Nash; otherwise the exact best
    response over reciprocated-link subsets is enumerated.
    """
    if t <= 0:
        raise ValueError("the scale t must be strictly positive")
    if oracle is None:
        oracle = get_default_oracle()
    for player in range(profile.n):
        wasted = [
            j for j in profile.requests_of(player) if not profile.seeks(j, player)
        ]
        if wasted:
            return False
        if (
            weighted_best_deviation_delta_bcg(
                profile, player, model, t=t, oracle=oracle
            )
            < -1e-12
        ):
            return False
    return True


def is_weighted_nash_profile_ucg(profile, model: CostModel, t: float = 1.0) -> bool:
    """Whether ``profile`` is a pure Nash equilibrium of the weighted UCG.

    Mirrors :func:`repro.core.unilateral.is_nash_profile_ucg` with each
    candidate purchase priced at its own coefficient ``t·w(player, j)``.
    """
    if t <= 0:
        raise ValueError("the scale t must be strictly positive")
    from ..core.unilateral import _source_distance_sum_with_extras

    oracle = get_default_oracle()
    full_graph = profile.unilateral_graph()
    for player in range(profile.n):
        others = profile.with_player_strategy(player, ()).unilateral_graph()
        current_distance = oracle.distance_sum(full_graph, player)
        current = tuple(sorted(profile.requests_of(player)))
        current_links = t * model.player_link_cost(player, current)
        candidates = [
            j
            for j in range(profile.n)
            if j != player and not others.has_edge(player, j)
        ]
        for subset in _subsets(candidates):
            candidate_distance = _source_distance_sum_with_extras(
                others, player, subset
            )
            delta = distance_delta(candidate_distance, current_distance) + (
                t * model.player_link_cost(player, subset) - current_links
            )
            if delta < -1e-12:
                return False
    return True


# --------------------------------------------------------------------------- #
# Weighted UCG: ownership t-intervals + orientation search
# --------------------------------------------------------------------------- #


def weighted_ownership_interval(
    graph: Graph,
    player: int,
    owned: FrozenSet[Edge],
    model: CostModel,
    oracle: Optional[DistanceOracle] = None,
) -> AlphaInterval:
    """Scales ``t`` at which owning exactly ``owned`` is a best response.

    The weighted generalisation of
    :func:`repro.core.unilateral.ownership_best_response_interval`: every
    Nash constraint ``c(owned) ≤ c(S)`` reads ``t·(w_S - w_owned) ≥ -Δdist``
    and is linear in ``t``, so the feasible region is a closed interval.
    Purchase *counts* become weight *sums*; with a uniform unit model the
    two coincide float-exactly.
    """
    from ..core.unilateral import _source_distance_sum_with_extras

    for (u, v) in owned:
        if player not in (u, v):
            raise ValueError(f"edge {(u, v)} is not incident to player {player}")
        if not graph.has_edge(u, v):
            raise ValueError(f"edge {(u, v)} is not in the graph")

    if oracle is None:
        oracle = get_default_oracle()
    base_distance = oracle.distance_sum(graph, player)
    owned_targets = tuple(sorted(v if player == u else u for (u, v) in owned))
    owned_weight = model.player_link_cost(player, owned_targets)
    others_graph = graph.remove_edges(owned)
    candidates = [
        j
        for j in range(graph.n)
        if j != player and not others_graph.has_edge(player, j)
    ]
    lo, hi = 0.0, INFINITY
    for subset in _subsets(candidates):
        candidate_distance = _source_distance_sum_with_extras(
            others_graph, player, subset
        )
        delta = distance_delta(candidate_distance, base_distance)
        dw = model.player_link_cost(player, subset) - owned_weight
        if dw == 0.0:
            if delta < -1e-12:
                return _EMPTY_INTERVAL
        elif dw > 0.0:
            # Spending dw more on links must not pay off: t >= -delta / dw.
            lo = max(lo, -delta / dw)
        else:
            # Saving -dw on links must not pay off: t <= delta / -dw.
            hi = min(hi, delta / -dw)
        if lo > hi:
            return _EMPTY_INTERVAL
    return AlphaInterval(lo, hi)


def weighted_ucg_nash_t_set(
    graph: Graph, model: CostModel, oracle: Optional[DistanceOracle] = None
) -> AlphaIntervalSet:
    """All scales ``t`` at which ``graph`` is a Nash network of ``t·W`` (UCG).

    Runs the shared backtracking engine
    (:func:`repro.core.unilateral.orientation_interval_search`) over the
    per-player :func:`weighted_ownership_interval` results — exactly the
    scalar :func:`~repro.core.unilateral.ucg_nash_alpha_set` with weight
    sums in place of purchase counts.
    """
    from ..core.unilateral import orientation_interval_search

    if oracle is None:
        oracle = get_default_oracle()

    interval_cache: Dict[Tuple[int, FrozenSet[Edge]], AlphaInterval] = {}

    def player_interval(player: int, owned: FrozenSet[Edge]) -> AlphaInterval:
        key = (player, owned)
        if key not in interval_cache:
            interval_cache[key] = weighted_ownership_interval(
                graph, player, owned, model, oracle=oracle
            )
        return interval_cache[key]

    return orientation_interval_search(graph, player_interval)


def is_weighted_nash_graph_ucg(
    graph: Graph,
    model: CostModel,
    t: float = 1.0,
    oracle: Optional[DistanceOracle] = None,
) -> bool:
    """Whether ``graph`` is achievable as a Nash network of the weighted UCG."""
    if t <= 0:
        raise ValueError("the scale t must be strictly positive")
    return weighted_ucg_nash_t_set(graph, model, oracle=oracle).contains(t)
