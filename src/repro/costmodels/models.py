"""Heterogeneous link-cost models: per-player and per-edge α coefficients.

The paper fixes one global link cost ``α`` for every player, but its
motivating setting — autonomous systems negotiating bilateral peering — is
exactly where costs are asymmetric.  A :class:`CostModel` assigns every
*ordered* pair a strictly positive coefficient ``w(i, j)``: the price player
``i`` pays for maintaining (or buying, in the UCG) the link ``{i, j}``.  The
scalar game is the special case ``w ≡ α``.

Four concrete families are provided:

* :class:`UniformCost` — ``w(i, j) = α`` (the paper's model).  All weighted
  quantities reduce *float-exactly* to the scalar-α code on this model: the
  aggregation hooks (:meth:`CostModel.player_link_cost`,
  :meth:`CostModel.bcg_edge_cost_total`, :meth:`CostModel.ucg_edge_cost_total`)
  are overridden with the exact closed forms the scalar cost functions use
  (``α·k`` and ``2α·m`` rather than a k-term summation), which the test
  suite pins down bit for bit.
* :class:`PerPlayerCost` — ``w(i, j) = α_i``: each player has its own
  per-link rate (tier-1 backbones build cheaply, stub networks dearly).
* :class:`PerEdgeCost` — ``w(i, j) = W_ij`` with ``W`` symmetric: the price
  is a property of the *pair* (both endpoints of a peering link face the
  same cost, e.g. proportional to geographic distance).
* :class:`ScaledCost` — the view ``C = t·W`` of any base model.  Scaling by
  a single parameter ``t`` is what keeps stability regions one-dimensional:
  every weighted stability question becomes "for which ``t`` is ``t·W``
  stable", answered exactly by the ``(w, Δdist)`` coefficient records of
  :mod:`repro.costmodels.stability`.  The built-in families override
  :meth:`CostModel.scaled` to stay closed under scaling (a scaled uniform
  model is again a :class:`UniformCost`, preserving its exact reductions).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Edge = Tuple[int, int]


def _check_positive(value: float, what: str) -> float:
    value = float(value)
    if not value > 0.0 or not math.isfinite(value):
        raise ValueError(
            f"{what} must be strictly positive and finite, got {value!r}"
        )
    return value


class CostModel(ABC):
    """Per-(player, edge) link-cost coefficients ``w(i, j) > 0``.

    ``weight(i, j)`` is the price *player* ``i`` pays for the link
    ``{i, j}`` — the first argument is always the paying endpoint, so
    asymmetric models (``w(i, j) ≠ w(j, i)``) are expressible.  Models are
    immutable and picklable (pool workers receive them by value).
    """

    #: Short name used by reports and the scenarios CLI.
    kind: str = "cost-model"

    @property
    def n(self) -> Optional[int]:
        """The player count the model is bound to (``None`` = any)."""
        return None

    @abstractmethod
    def weight(self, player: int, other: int) -> float:
        """The cost ``player`` pays for the link ``{player, other}``."""

    def uniform_alpha(self) -> Optional[float]:
        """The scalar ``α`` when the model *is* the paper's uniform model.

        Returns ``None`` for every non-:class:`UniformCost` family, even if
        its coefficients happen to be numerically equal — the exact scalar
        reductions are a property of the uniform closed forms, not of the
        values.
        """
        return None

    def scaled(self, t: float) -> "CostModel":
        """The model ``C = t·W`` (a lazily-evaluated view by default)."""
        return ScaledCost(self, t)

    # -- aggregation hooks (overridden exactly by UniformCost) -------------- #

    def player_link_cost(self, player: int, others: Sequence[int]) -> float:
        """Total link cost ``Σ_j w(player, j)`` over the links in ``others``."""
        total = 0.0
        for other in others:
            total += self.weight(player, other)
        return total

    def bcg_edge_cost_total(self, graph) -> float:
        """Total BCG link spend ``Σ_{(u,v)∈A} (w(u,v) + w(v,u))`` of ``graph``."""
        total = 0.0
        for (u, v) in graph.sorted_edges():
            total += self.weight(u, v) + self.weight(v, u)
        return total

    def ucg_edge_cost_total(self, graph, owner: Optional[Dict[Edge, int]] = None) -> float:
        """Total UCG link spend of ``graph`` under an edge-ownership map.

        With ``owner=None`` every edge is charged to its *cheaper* endpoint
        (the lower envelope over ownerships — the natural weighted analogue
        of "each edge bought once").
        """
        total = 0.0
        for (u, v) in graph.sorted_edges():
            if owner is None:
                total += min(self.weight(u, v), self.weight(v, u))
            else:
                buyer = owner[(u, v)]
                if buyer not in (u, v):
                    raise ValueError(f"owner {buyer} is not an endpoint of ({u}, {v})")
                total += self.weight(buyer, v if buyer == u else u)
        return total

    # -- conveniences -------------------------------------------------------- #

    def weight_pair(self, u: int, v: int) -> Tuple[float, float]:
        """``(w(u, v), w(v, u))`` — both endpoints' prices for the pair."""
        return self.weight(u, v), self.weight(v, u)

    def matrix(self, n: Optional[int] = None) -> List[List[float]]:
        """The dense ``n×n`` weight matrix (zero diagonal).

        ``n`` may be omitted for models bound to a player count; a bound
        model refuses a mismatching ``n``.
        """
        n = self._resolve_n(n)
        return [
            [0.0 if i == j else self.weight(i, j) for j in range(n)]
            for i in range(n)
        ]

    def coefficient_matrix(self, n: Optional[int] = None) -> List[List[float]]:
        """The validated dense weight matrix — the kernel extraction API.

        Exactly :meth:`matrix`, but every off-diagonal coefficient is checked
        strictly positive and finite before it is handed to the vectorised
        weighted kernels (which divide by the coefficients — an unvalidated
        zero would silently turn stability windows into NaN/inf).  The
        built-in families already validate at construction; this hook is the
        guard for user subclasses whose ``weight`` can return anything.
        """
        from ..engine.batch import validate_weight_matrix

        return validate_weight_matrix(self.matrix(n))

    def _resolve_n(self, n: Optional[int]) -> int:
        bound = self.n
        if n is None:
            if bound is None:
                raise ValueError(f"{type(self).__name__} is not bound to a player count; pass n")
            return bound
        if bound is not None and n != bound:
            raise ValueError(f"{type(self).__name__} is bound to n = {bound}, got n = {n}")
        return int(n)


class UniformCost(CostModel):
    """The paper's model: every link costs the same ``α`` to every player."""

    kind = "uniform"

    def __init__(self, alpha: float) -> None:
        self.alpha = _check_positive(alpha, "the link cost α")

    @property
    def n(self) -> Optional[int]:
        return None

    def weight(self, player: int, other: int) -> float:
        return self.alpha

    def uniform_alpha(self) -> Optional[float]:
        return self.alpha

    def scaled(self, t: float) -> "UniformCost":
        return UniformCost(_check_positive(t, "the scale t") * self.alpha)

    # Exact closed forms — these MUST mirror repro.core.costs operation for
    # operation so the uniform model reduces float-exactly to the scalar path.

    def player_link_cost(self, player: int, others: Sequence[int]) -> float:
        return self.alpha * len(others)

    def bcg_edge_cost_total(self, graph) -> float:
        return 2.0 * self.alpha * graph.num_edges

    def ucg_edge_cost_total(self, graph, owner: Optional[Dict[Edge, int]] = None) -> float:
        return self.alpha * graph.num_edges

    def __repr__(self) -> str:
        return f"UniformCost(alpha={self.alpha!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UniformCost) and other.alpha == self.alpha

    def __hash__(self) -> int:
        return hash(("UniformCost", self.alpha))


class PerPlayerCost(CostModel):
    """Per-player rates: player ``i`` pays ``α_i`` for each of its links."""

    kind = "per-player"

    def __init__(self, alphas: Iterable[float]) -> None:
        self.alphas: Tuple[float, ...] = tuple(
            _check_positive(a, f"the per-player link cost α_{i}")
            for i, a in enumerate(alphas)
        )
        if not self.alphas:
            raise ValueError("a per-player cost model needs at least one player")

    @property
    def n(self) -> Optional[int]:
        return len(self.alphas)

    def weight(self, player: int, other: int) -> float:
        return self.alphas[player]

    def scaled(self, t: float) -> "PerPlayerCost":
        t = _check_positive(t, "the scale t")
        return PerPlayerCost(t * a for a in self.alphas)

    def __repr__(self) -> str:
        return f"PerPlayerCost({list(self.alphas)!r})"


class PerEdgeCost(CostModel):
    """Per-edge prices: both endpoints of ``{i, j}`` pay the same ``W_ij``."""

    kind = "per-edge"

    def __init__(self, weights: Sequence[Sequence[float]]) -> None:
        n = len(weights)
        if n < 1:
            raise ValueError("a per-edge cost model needs at least one player")
        matrix: List[Tuple[float, ...]] = []
        for i, row in enumerate(weights):
            row = tuple(float(x) for x in row)
            if len(row) != n:
                raise ValueError("the weight matrix must be square")
            matrix.append(row)
        for i in range(n):
            if matrix[i][i] != 0.0:
                raise ValueError("the weight-matrix diagonal must be zero (no self-loops)")
            for j in range(i + 1, n):
                if matrix[i][j] != matrix[j][i]:
                    raise ValueError(
                        f"per-edge weights must be symmetric; W[{i}][{j}] != W[{j}][{i}]"
                    )
                _check_positive(matrix[i][j], f"the edge weight W[{i}][{j}]")
        self.weights: Tuple[Tuple[float, ...], ...] = tuple(matrix)

    @classmethod
    def from_pairs(
        cls, n: int, pairs: Dict[Edge, float], default: Optional[float] = None
    ) -> "PerEdgeCost":
        """Build from a ``{(u, v): w}`` mapping, filling gaps with ``default``."""
        matrix = [[0.0] * n for _ in range(n)]
        seen = set()
        for (u, v), w in pairs.items():
            if u == v:
                raise ValueError(f"self-loop pair ({u}, {v}) in the weight mapping")
            u, v = (u, v) if u < v else (v, u)
            matrix[u][v] = matrix[v][u] = float(w)
            seen.add((u, v))
        for u in range(n):
            for v in range(u + 1, n):
                if (u, v) not in seen:
                    if default is None:
                        raise ValueError(
                            f"pair ({u}, {v}) missing from the weight mapping "
                            "and no default was given"
                        )
                    matrix[u][v] = matrix[v][u] = float(default)
        return cls(matrix)

    @property
    def n(self) -> Optional[int]:
        return len(self.weights)

    def weight(self, player: int, other: int) -> float:
        return self.weights[player][other]

    def scaled(self, t: float) -> "PerEdgeCost":
        t = _check_positive(t, "the scale t")
        return PerEdgeCost([
            [0.0 if i == j else t * w for j, w in enumerate(row)]
            for i, row in enumerate(self.weights)
        ])

    def __repr__(self) -> str:
        return f"PerEdgeCost(n={len(self.weights)})"


class ScaledCost(CostModel):
    """The view ``C = t·W`` of an arbitrary base model (evaluated lazily)."""

    kind = "scaled"

    def __init__(self, base: CostModel, t: float) -> None:
        self.base = base
        self.t = _check_positive(t, "the scale t")

    @property
    def n(self) -> Optional[int]:
        return self.base.n

    def weight(self, player: int, other: int) -> float:
        return self.t * self.base.weight(player, other)

    def scaled(self, t: float) -> "ScaledCost":
        return ScaledCost(self.base, self.t * _check_positive(t, "the scale t"))

    def __repr__(self) -> str:
        return f"ScaledCost({self.base!r}, t={self.t!r})"


def as_cost_model(value, n: Optional[int] = None) -> CostModel:
    """Coerce ``value`` into a :class:`CostModel`.

    Numbers become :class:`UniformCost`; models are validated against ``n``
    when given (a model bound to a different player count is rejected).
    """
    if isinstance(value, CostModel):
        model = value
    elif isinstance(value, (int, float)):
        model = UniformCost(float(value))
    else:
        raise TypeError(f"cannot interpret {value!r} as a cost model")
    if n is not None and model.n is not None and model.n != n:
        raise ValueError(f"cost model is bound to n = {model.n}, game has n = {n}")
    return model
