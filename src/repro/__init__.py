"""repro — a reproduction of Corbo & Parkes (PODC 2005).

*The Price of Selfish Behavior in Bilateral Network Formation* studies a
network formation game in which links need the consent of both endpoints
(the bilateral connection game, BCG) and compares its pairwise-stable
networks and price of anarchy with the unilateral connection game (UCG) of
Fabrikant et al.  This package implements both games, their solution
concepts, the graph-theoretic substrate (including exhaustive enumeration of
small graphs up to isomorphism) and the paper's experiments.

Quickstart
----------
>>> from repro import BilateralConnectionGame, star_graph
>>> game = BilateralConnectionGame(n=8, alpha=3.0)
>>> star = star_graph(8)
>>> game.is_pairwise_stable(star)
True
>>> round(game.price_of_anarchy(star), 3)
1.0
"""

from .core import (
    AlphaInterval,
    AlphaIntervalSet,
    BilateralConnectionGame,
    ConnectionGame,
    DynamicsResult,
    PairwiseStabilityProfile,
    PoAComparison,
    StrategyProfile,
    UnilateralConnectionGame,
    average_price_of_anarchy,
    best_response_dynamics_ucg,
    best_response_ucg,
    compare_price_of_anarchy,
    efficient_graph,
    efficient_social_cost,
    is_cost_convex,
    is_link_convex,
    is_nash_graph_ucg,
    is_nash_profile_bcg,
    is_nash_profile_ucg,
    is_pairwise_nash,
    is_pairwise_stable,
    pairwise_dynamics_bcg,
    pairwise_stability_interval,
    pairwise_stability_profile,
    price_of_anarchy,
    profile_from_graph_bcg,
    social_cost_bcg,
    social_cost_ucg,
    theory,
    ucg_nash_alpha_set,
    worst_case_price_of_anarchy,
)
from .costmodels import (
    CostModel,
    PerEdgeCost,
    PerPlayerCost,
    ScaledCost,
    UniformCost,
    WeightedBilateralGame,
    WeightedStabilityProfile,
    WeightedUnilateralGame,
    weighted_stability_profile,
    weighted_ucg_nash_t_set,
)
from .engine import DistanceOracle, get_default_oracle, parallel_map
from .graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    enumerate_connected_graphs,
    enumerate_graphs,
    enumerate_trees,
    path_graph,
    petersen_graph,
    star_graph,
)

from ._version import __version__

__all__ = [
    "__version__",
    # graphs
    "Graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "petersen_graph",
    "enumerate_graphs",
    "enumerate_connected_graphs",
    "enumerate_trees",
    # games
    "ConnectionGame",
    "BilateralConnectionGame",
    "UnilateralConnectionGame",
    "StrategyProfile",
    "profile_from_graph_bcg",
    # solution concepts
    "is_pairwise_stable",
    "is_pairwise_nash",
    "is_nash_profile_bcg",
    "is_nash_profile_ucg",
    "is_nash_graph_ucg",
    "best_response_ucg",
    "ucg_nash_alpha_set",
    "pairwise_stability_profile",
    "pairwise_stability_interval",
    "AlphaInterval",
    "AlphaIntervalSet",
    "PairwiseStabilityProfile",
    # costs / efficiency / PoA
    "social_cost_bcg",
    "social_cost_ucg",
    "efficient_graph",
    "efficient_social_cost",
    "price_of_anarchy",
    "worst_case_price_of_anarchy",
    "average_price_of_anarchy",
    "compare_price_of_anarchy",
    "PoAComparison",
    # structure
    "is_cost_convex",
    "is_link_convex",
    # dynamics
    "DynamicsResult",
    "best_response_dynamics_ucg",
    "pairwise_dynamics_bcg",
    # heterogeneous link costs
    "CostModel",
    "UniformCost",
    "PerPlayerCost",
    "PerEdgeCost",
    "ScaledCost",
    "WeightedBilateralGame",
    "WeightedUnilateralGame",
    "WeightedStabilityProfile",
    "weighted_stability_profile",
    "weighted_ucg_nash_t_set",
    # engine
    "DistanceOracle",
    "get_default_oracle",
    "parallel_map",
    # theory oracle
    "theory",
]
