"""Deterministic fault injection for the shard runner (test/CI harness).

Long sharded builds die in exactly four boring ways: a worker process is
killed, a worker wedges past any reasonable deadline, a shard write is torn
mid-flight, or bits rot in a shard file between runs.  This module makes
each failure *reproducible on demand* so the recovery paths of
:mod:`repro.engine.shardwork` are exercised by real process death, real
timeouts and real corrupt bytes — not by mocks:

``crash``
    the pool worker assigned the target shard calls ``os._exit`` (the pool
    breaks exactly as it does when the OOM killer strikes);
``hang``
    the worker sleeps :attr:`FaultPlan.hang_seconds` (long past any runner
    timeout) so the per-shard deadline machinery has to kill the pool;
``torn``
    the shard save writes a truncated file under the *final* name and
    aborts the build — modelling a crash that defeated the tmp+rename
    discipline (power loss after rename, before data hit the platter);
``flip``
    one byte of the freshly saved shard file is flipped, so only the
    content checksum (not "does it load?") can catch it on resume.

A plan is either built in code (:class:`FaultPlan` / :func:`parse_plan`)
and passed to the runner as ``fault_plan=...``, or injected from the
environment (:data:`FAULTS_ENV`, e.g. ``REPRO_FAULTS="crash@2,flip@0"``)
so CLI/smoke runs can be faulted without touching call sites.  Every fault
fires a bounded number of ``times`` (default once) — counted *across
processes* through ``O_CREAT|O_EXCL`` marker files in the spool directory
(:data:`SPOOL_ENV` / :attr:`FaultPlan.spool`), because the firing worker
may die before it could record anything in shared memory.  Without a spool
directory a fault fires on every encounter; always set one for ``crash``
(the serial-fallback guarantee still bounds the damage, but the retry
tallies become meaningless).

Worker-side faults (``crash``/``hang``) are injected only in pool worker
processes — never in the serial path or the serial fallback of the runner,
which is exactly what makes "a shard that keeps killing its worker"
recoverable.  ``torn``/``flip`` fire in whichever process performs the
save.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Environment variable holding a fault spec, e.g. ``"crash@2,hang@5*2"``.
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable naming the cross-process fire-count spool directory.
SPOOL_ENV = "REPRO_FAULT_SPOOL"

#: Environment variable overriding how long a ``hang`` fault sleeps.
HANG_ENV = "REPRO_FAULT_HANG_SECONDS"

#: The recognised fault kinds.
KINDS = ("crash", "hang", "torn", "flip")

#: Exit status used by ``crash`` faults (distinctive in pool post-mortems).
CRASH_EXIT_CODE = 13


class FaultInjected(RuntimeError):
    """Raised by parent-side faults (``torn``) to abort the build mid-write."""


@dataclass(frozen=True)
class Fault:
    """One injection point: ``kind`` fires when shard ``index`` is touched."""

    kind: str
    index: int
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.index < 0:
            raise ValueError("fault index must be non-negative")
        if self.times < 1:
            raise ValueError("fault times must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of faults plus the spool that counts their firings.

    Instances travel to pool workers inside the task payload, so a plan
    needs no environment plumbing; :func:`active_plan` additionally builds
    one from :data:`FAULTS_ENV` for CLI-level injection.
    """

    faults: Tuple[Fault, ...] = ()
    spool: Optional[str] = None
    hang_seconds: float = 3600.0

    def lookup(self, kind: str, index: int) -> Optional[Fault]:
        """The fault of ``kind`` targeting shard ``index``, if any."""
        for fault in self.faults:
            if fault.kind == kind and fault.index == index:
                return fault
        return None

    def claim(self, kind: str, index: int) -> bool:
        """Atomically claim one firing of ``(kind, index)``; True = fire.

        With a spool, each of the fault's ``times`` firing slots is one
        ``O_CREAT|O_EXCL`` marker file — creation succeeds in exactly one
        process ever, so a fault fires its bounded count no matter how many
        workers (or retries of the same worker) race for it.  Without a
        spool the fault fires unconditionally on every encounter.
        """
        fault = self.lookup(kind, index)
        if fault is None:
            return False
        if self.spool is None:
            return True
        os.makedirs(self.spool, exist_ok=True)
        for slot in range(fault.times):
            marker = os.path.join(self.spool, f"{kind}_{index}_{slot}")
            try:
                handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False


def parse_plan(
    spec: str,
    spool: Optional[str] = None,
    hang_seconds: Optional[float] = None,
) -> FaultPlan:
    """Parse ``"kind@index"`` / ``"kind@index*times"`` comma-separated specs.

    Example: ``parse_plan("crash@2,hang@0*3")`` crashes the worker holding
    shard 2 once and hangs the worker holding shard 0 three times.
    """
    faults = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        kind, _, target = entry.partition("@")
        if not target:
            raise ValueError(
                f"bad fault spec {entry!r}: expected kind@index[*times]"
            )
        index_text, _, times_text = target.partition("*")
        faults.append(
            Fault(
                kind=kind.strip(),
                index=int(index_text),
                times=int(times_text) if times_text else 1,
            )
        )
    return FaultPlan(
        faults=tuple(faults),
        spool=spool,
        hang_seconds=3600.0 if hang_seconds is None else float(hang_seconds),
    )


def active_plan(environ: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """The environment-driven plan, or ``None`` when no faults are armed."""
    environ = os.environ if environ is None else environ
    spec = environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    hang = environ.get(HANG_ENV)
    return parse_plan(
        spec,
        spool=environ.get(SPOOL_ENV) or None,
        hang_seconds=float(hang) if hang else None,
    )


def fire_worker_fault(plan: FaultPlan, index: int) -> None:
    """Inject worker-side faults for shard ``index`` (pool processes only).

    ``crash`` terminates the worker process abruptly (no exception, no
    cleanup — the executor sees only a dead child); ``hang`` sleeps far
    past any sane per-shard timeout.
    """
    if plan.claim("crash", index):
        os._exit(CRASH_EXIT_CODE)
    if plan.claim("hang", index):
        time.sleep(plan.hang_seconds)


def flip_byte(path: str, offset: Optional[int] = None) -> None:
    """Flip one byte of ``path`` in place (bit-rot simulation; tests too).

    Defaults to a byte in the middle of the file, inside the compressed /
    array payload rather than the header, so naive "does it open?" checks
    are the ones most likely to be fooled.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot flip a byte of empty file {path!r}")
    offset = size // 2 if offset is None else offset
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
