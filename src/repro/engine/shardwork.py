"""Fault-tolerant shard work queue: retries, timeouts, checksummed resume.

Every sharded build in the library — census, weighted and delta
``build_streamed``, and the ensemble block runner — has the same shape:
a list of independent shard payloads, a picklable worker, optional
per-shard persistence so an interrupted build resumes, and a merge step
that needs the results back in index order.  Before this module each
store carried its own copy of that loop, built on ``parallel_map``'s
all-or-nothing ``pool.map`` — one dead worker lost the whole wave, a hung
worker stalled the build forever, and resume validation stopped at "the
file loads".

:func:`run_shards` is the one coordinator they all share now:

* **individual futures, sliding window** — at most ``workers`` shards are
  in flight; each future's deadline starts at its actual submission, so a
  per-shard ``timeout`` means what it says;
* **survives dead workers** — when the pool breaks
  (:class:`~concurrent.futures.BrokenExecutor`: a worker was killed, the
  executor cannot say which shard did it), only the shards that were in
  flight are re-queued; completed work is never recomputed.  The pool is
  rebuilt after an exponential backoff (``backoff_base·2^k``, capped at
  ``backoff_max``);
* **survives hangs** — a shard past its deadline has its pool killed
  (``ProcessPoolExecutor`` cannot cancel a running task; terminating the
  worker processes is the only way to reclaim them), the timed-out shard
  is charged an attempt, and the innocent in-flight shards are re-queued
  free of charge;
* **bounded retries, serial fallback** — a shard that fails
  ``1 + max_retries`` pool attempts runs serially in the parent, where
  worker-side fault injection is off and a real exception finally
  propagates instead of looping forever;
* **checksummed, fingerprinted resume** — with ``shard_dir`` each finished
  shard persists atomically as ``{prefix}_XXXX_of_YYYY.npz`` carrying a
  sha256 content checksum and the build's config fingerprint.  On resume a
  shard is reused only if both verify: unreadable/corrupt/legacy files are
  recomputed (with a warning and a tally), while a readable shard from a
  *different* configuration raises — silently merging it would corrupt the
  final artifact;
* **heartbeat manifest + progress hook** — ``manifest.json`` in the shard
  directory records done/total, per-shard attempt tallies and state,
  resume/retry/timeout counters, the config fingerprint and last-heartbeat
  timestamps, rewritten atomically on every event and at least every
  ``heartbeat`` seconds; ``progress`` receives the same snapshot dict;
* **in-order streaming** — pass ``consume`` to have ``(index, result)``
  delivered strictly in shard order as results become available (buffered
  past gaps), so streaming aggregations stay bit-identical to the serial
  path without holding every part; otherwise the report carries ``parts``
  in index order.

Fault injection (:mod:`repro.engine.faults`) threads through the runner:
a plan passed as ``fault_plan`` (or armed via ``REPRO_FAULTS``) crashes or
hangs pool workers and tears or bit-flips shard saves, which is how the
crash-matrix tests prove every recovery path yields a bit-identical
artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
import zipfile
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:  # Shard persistence serialises dict-of-ndarray parts as .npz files.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from . import faults as _faults
from .. import obs
from .pool import resolve_jobs

#: Schema tag written into every runner shard file.
SHARD_SCHEMA = "repro-shardwork-shard"

#: Schema tag written into every progress manifest.
MANIFEST_SCHEMA = "repro-shardwork-manifest"

#: Manifest layout version.
MANIFEST_VERSION = 1

#: File name of the progress/heartbeat manifest inside the shard directory.
MANIFEST_NAME = "manifest.json"

#: Pool attempts per shard beyond the first before the serial fallback.
DEFAULT_MAX_RETRIES = 2

#: Exponential-backoff base/cap (seconds) between pool rebuilds.
DEFAULT_BACKOFF_BASE = 0.1
DEFAULT_BACKOFF_MAX = 5.0

#: Manifest refresh period (seconds) while shards are in flight.
DEFAULT_HEARTBEAT = 5.0

#: Manifest tally fields promoted to counters, with metric name + help.
#: Counter values are *diffed* against the manifest snapshot on every
#: ``emit()``, so the exposition always equals the manifest exactly.
_TALLY_METRICS = {
    "resumed": (
        "repro_shards_resumed_total",
        "Shards reused from verified on-disk files",
    ),
    "computed": (
        "repro_shards_computed_total",
        "Shards computed this run (pool or serial)",
    ),
    "retries": (
        "repro_shard_retries_total",
        "Shard re-queue events (pool breakage, timeouts, worker errors)",
    ),
    "timeouts": (
        "repro_shard_timeouts_total",
        "Shard attempts whose deadline expired",
    ),
    "pool_rebuilds": (
        "repro_shard_pool_rebuilds_total",
        "Times the worker pool was torn down and rebuilt",
    ),
    "serial_fallbacks": (
        "repro_shard_serial_fallbacks_total",
        "Shards that exhausted pool attempts and ran serially",
    ),
    "corrupt_resumes": (
        "repro_shard_corrupt_resumes_total",
        "On-disk shards rejected by validation and recomputed",
    ),
}


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "shard persistence requires NumPy (parts are dicts of arrays); "
            "run without shard_dir or install numpy"
        )
    return _np


# --------------------------------------------------------------------------- #
# Fingerprints and checksums
# --------------------------------------------------------------------------- #


def _json_canonical(config) -> str:
    def default(value):
        # NumPy scalars and arrays fingerprint by value, not identity.
        tolist = getattr(value, "tolist", None)
        if tolist is not None:
            return tolist()
        raise TypeError(
            f"config value {value!r} is not JSON-serialisable; fingerprint "
            "configs must be plain data"
        )

    return json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=default
    )


def config_fingerprint(config: Dict[str, object]) -> str:
    """sha256 of the canonical JSON form of a semantic build config.

    Two builds share a fingerprint exactly when their configs are equal as
    data (key order never matters; NumPy values hash by content), so shard
    files and manifests can assert "same build" without trusting paths.
    """
    return hashlib.sha256(_json_canonical(config).encode("utf-8")).hexdigest()


def content_checksum(part: Dict[str, object]) -> str:
    """sha256 over a column dict: sorted names, dtypes, shapes and bytes.

    Deterministic across save/load round trips (both ``.npz`` and mmap'd
    ``.npy`` columns), so it doubles as the artifact-level checksum behind
    the stores' ``verify()`` and the runner's resume validation.
    """
    np = _require_numpy()
    digest = hashlib.sha256()
    for name in sorted(part):
        array = np.ascontiguousarray(np.asarray(part[name]))
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# Shard persistence
# --------------------------------------------------------------------------- #


def shard_path(shard_dir: str, prefix: str, index: int, total: int) -> str:
    """The canonical shard file name: index *and* total, so a build with a
    different shard count simply misses instead of colliding."""
    return os.path.join(shard_dir, f"{prefix}_{index:04d}_of_{total:04d}.npz")


def manifest_path(directory: str) -> str:
    """Where :func:`run_shards` writes its progress manifest."""
    return os.path.join(directory, MANIFEST_NAME)


def save_shard(
    path: str,
    part: Dict[str, object],
    fingerprint_hash: str,
    plan: Optional[_faults.FaultPlan] = None,
    index: int = 0,
) -> None:
    """Persist one part atomically, stamped with fingerprint + checksum.

    The write goes to a temp file and is renamed into place, so a crash
    mid-save leaves either no shard or a whole one — and the checksum
    catches everything subtler on resume.  ``torn``/``flip`` faults hook
    in here (see :mod:`repro.engine.faults`).
    """
    np = _require_numpy()
    for name in part:
        if name.startswith("__"):
            raise ValueError(f"column name {name!r} collides with shard metadata")
    payload = {name: np.asarray(part[name]) for name in part}
    tmp_path = f"{path}.tmp.npz"
    np.savez(
        tmp_path,
        __schema__=np.str_(SHARD_SCHEMA),
        __fingerprint__=np.str_(fingerprint_hash),
        __checksum__=np.str_(content_checksum(payload)),
        **payload,
    )
    if plan is not None and plan.claim("torn", index):
        # Model a torn write that defeated the rename: truncated bytes land
        # under the final name and the build dies on the spot.
        with open(tmp_path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        os.remove(tmp_path)
        raise _faults.FaultInjected(
            f"torn write injected on shard {index} ({path})"
        )
    os.replace(tmp_path, path)
    obs.counter(
        "repro_shard_bytes_written_total", "Bytes persisted as shard files"
    ).inc(os.path.getsize(path))
    if plan is not None and plan.claim("flip", index):
        _faults.flip_byte(path)


def load_shard(
    path: str, fingerprint_hash: str
) -> Tuple[str, Optional[Dict[str, object]]]:
    """Validate + load one shard: ``("ok", part)``, ``("missing", None)``
    or ``("corrupt", None)``.

    A shard is reused only when the schema tag, the config fingerprint
    *and* the content checksum all verify.  Unreadable, truncated,
    bit-flipped or legacy-format files count as corrupt (recompute); a
    healthy shard carrying a *different* fingerprint raises instead —
    the caller is pointing a build at another configuration's directory,
    and merging it would silently corrupt the result.
    """
    np = _require_numpy()
    if not os.path.exists(path):
        return ("missing", None)
    try:
        with np.load(path, allow_pickle=False) as data:
            if "__schema__" not in data or str(data["__schema__"]) != SHARD_SCHEMA:
                return ("corrupt", None)
            if str(data["__fingerprint__"]) != fingerprint_hash:
                raise ValueError(
                    f"{path!r} belongs to a different build configuration "
                    "(config fingerprint mismatch); use a fresh shard_dir "
                    "per configuration"
                )
            part = {
                name: np.asarray(data[name])
                for name in data.files
                if not name.startswith("__")
            }
            if content_checksum(part) != str(data["__checksum__"]):
                return ("corrupt", None)
            obs.counter(
                "repro_shard_bytes_read_total",
                "Bytes read back from verified shard files",
            ).inc(os.path.getsize(path))
            return ("ok", part)
    except (zipfile.BadZipFile, EOFError, OSError, KeyError):
        return ("corrupt", None)


# --------------------------------------------------------------------------- #
# The work-queue coordinator
# --------------------------------------------------------------------------- #


@dataclass
class ShardRunReport:
    """What one :func:`run_shards` call did, and the results it produced."""

    total: int
    #: Results in shard-index order; ``None`` when ``consume`` streamed them.
    parts: Optional[List[object]]
    #: Shards reused from verified on-disk files.
    resumed: int = 0
    #: Shards computed this run (pool or serial).
    computed: int = 0
    #: Re-queue events (pool breakage, timeouts, worker errors).
    retries: int = 0
    #: Shards whose deadline expired at least once.
    timeouts: int = 0
    #: Times the pool was torn down and rebuilt.
    pool_rebuilds: int = 0
    #: Shards that exhausted pool attempts and ran serially in the parent.
    serial_fallbacks: int = 0
    #: On-disk shards rejected by checksum/readability and recomputed.
    corrupt_resumes: int = 0
    #: Final manifest snapshot (also written to ``manifest_path``).
    manifest: Optional[Dict[str, object]] = None
    manifest_path: Optional[str] = None


def _shard_call(task):
    """Pool worker wrapper: inject worker-side faults, then run the shard.

    Returns ``(value, telemetry)`` — the worker registry's drained
    metric/span deltas ride back with the result and the coordinator
    merges them exactly once per *delivered* future.  A crashed worker's
    pending deltas die with its process and the retried attempt records
    afresh, so nothing double-counts across re-queues.
    """
    worker, payload, index, plan = task
    if plan is not None:
        _faults.fire_worker_fault(plan, index)
    value = worker(payload)
    return value, obs.drain_telemetry()


def _stop_pool(pool) -> None:
    """Tear a pool down even when its workers are wedged.

    Running tasks cannot be cancelled, and a hung worker would block both
    ``shutdown(wait=True)`` and interpreter exit (pool workers are
    non-daemonic) — terminating the processes first is the only reliable
    reclaim.  ``_processes`` is executor-internal; any failure to reach it
    degrades to the plain shutdown.
    """
    try:
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
    except Exception:  # pragma: no cover - defensive against interpreter drift
        pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_shards(
    worker: Callable[[object], object],
    payloads: Sequence[object],
    *,
    jobs: Optional[int] = None,
    shard_dir: Optional[str] = None,
    prefix: str = "shard",
    fingerprint: Optional[Dict[str, object]] = None,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_base: float = DEFAULT_BACKOFF_BASE,
    backoff_max: float = DEFAULT_BACKOFF_MAX,
    heartbeat: float = DEFAULT_HEARTBEAT,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    consume: Optional[Callable[[int, object], None]] = None,
    manifest_dir: Optional[str] = None,
    fault_plan: Optional[_faults.FaultPlan] = None,
) -> ShardRunReport:
    """Run ``worker`` over every payload with retries, timeouts and resume.

    ``worker`` must be a picklable module-level callable of one payload.
    Results are deterministic and independent of ``jobs``, retries or
    resume history: the report's ``parts`` list is in shard-index order,
    and ``consume(index, result)`` (mutually exclusive with collecting
    parts) is called strictly in index order.

    ``shard_dir`` enables persistence/resume; parts must then be dicts of
    NumPy arrays.  ``fingerprint`` is the *semantic* build config (plain
    data; NumPy values allowed) — resumed shards must match it exactly.
    ``manifest_dir`` (default: ``shard_dir``) receives the heartbeat
    manifest even when shards themselves are not persisted, e.g. the
    ensemble runner's block manifest next to its draw artifacts.

    ``timeout`` is per shard attempt, in seconds.  A shard failing
    ``1 + max_retries`` pool attempts (pool breakage, deadline, or a raised
    exception) runs serially in the parent as the final authority — a real
    error then propagates to the caller.
    """
    payloads = list(payloads)
    total = len(payloads)
    max_retries = DEFAULT_MAX_RETRIES if max_retries is None else int(max_retries)
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    max_attempts = 1 + max_retries
    plan = fault_plan if fault_plan is not None else _faults.active_plan()
    fingerprint_hash = (
        config_fingerprint(fingerprint) if fingerprint is not None else None
    )
    if shard_dir is not None and fingerprint_hash is None:
        raise ValueError("shard_dir persistence requires a fingerprint config")
    if manifest_dir is None:
        manifest_dir = shard_dir

    paths: Optional[List[str]] = None
    if shard_dir is not None:
        _require_numpy()
        os.makedirs(shard_dir, exist_ok=True)
        paths = [shard_path(shard_dir, prefix, i, total) for i in range(total)]
    if manifest_dir is not None:
        os.makedirs(manifest_dir, exist_ok=True)

    report = ShardRunReport(
        total=total,
        parts=None if consume is not None else [None] * total,
        manifest_path=(
            manifest_path(manifest_dir) if manifest_dir is not None else None
        ),
    )
    states: Dict[int, Dict[str, object]] = {
        index: {"state": "pending", "attempts": 0, "source": None, "updated_at": None}
        for index in range(total)
    }
    started_at = time.time()
    finished = False
    last_beat = time.monotonic()

    # Work-queue state lives up here because emit() (called from the
    # resume scan already) publishes queue-depth/in-flight gauges.
    queue: deque = deque()
    inflight: Dict[object, Tuple[int, Optional[float]]] = {}

    telemetry_on = obs.metrics_enabled()
    if telemetry_on:
        tally_counters = {
            fld: obs.counter(name, help_text, prefix=prefix)
            for fld, (name, help_text) in _TALLY_METRICS.items()
        }
        last_counts = {fld: 0 for fld in _TALLY_METRICS}
        queue_gauge = obs.gauge(
            "repro_shard_queue_depth", "Shards waiting in the work queue",
            prefix=prefix,
        )
        inflight_gauge = obs.gauge(
            "repro_shard_inflight", "Shards currently submitted to the pool",
            prefix=prefix,
        )
        heartbeat_gauge = obs.gauge(
            "repro_shard_heartbeat_timestamp",
            "Unix time of the coordinator's last manifest heartbeat "
            "(heartbeat age = now - this)",
            prefix=prefix,
        )

    def snapshot() -> Dict[str, object]:
        done = sum(1 for s in states.values() if s["state"] == "done")
        return {
            "schema": MANIFEST_SCHEMA,
            "version": MANIFEST_VERSION,
            "prefix": prefix,
            "total": total,
            "done": done,
            "resumed": report.resumed,
            "computed": report.computed,
            "retries": report.retries,
            "timeouts": report.timeouts,
            "pool_rebuilds": report.pool_rebuilds,
            "serial_fallbacks": report.serial_fallbacks,
            "corrupt_resumes": report.corrupt_resumes,
            "fingerprint": fingerprint_hash,
            "config": (
                json.loads(_json_canonical(fingerprint))
                if fingerprint is not None
                else None
            ),
            "started_at": started_at,
            "updated_at": time.time(),
            "finished_at": time.time() if finished else None,
            "shards": {
                str(index): dict(state) for index, state in states.items()
            },
        }

    def emit(write_manifest: bool = True) -> None:
        nonlocal last_beat
        last_beat = time.monotonic()
        snap = snapshot()
        report.manifest = snap
        if telemetry_on:
            # Promote manifest tallies to counters by diffing against the
            # last emit, so the exposition equals the manifest exactly.
            for fld, instrument in tally_counters.items():
                delta = snap[fld] - last_counts[fld]
                if delta:
                    instrument.inc(delta)
                    last_counts[fld] = snap[fld]
            queue_gauge.set(len(queue))
            inflight_gauge.set(len(inflight))
            heartbeat_gauge.set(snap["updated_at"])
        if write_manifest and report.manifest_path is not None:
            tmp = f"{report.manifest_path}.tmp"
            with open(tmp, "w") as handle:
                json.dump(snap, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, report.manifest_path)
        if progress is not None:
            try:
                progress(snap)
            except Exception as error:
                # A broken progress renderer must never abort the build:
                # downgrade to a warning and keep the coordinator alive.
                warnings.warn(
                    f"progress callback raised {type(error).__name__}: "
                    f"{error}; continuing without it for this event",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # In-order delivery: results for consume-mode buffer past gaps.
    ready: Dict[int, object] = {}
    next_emit = 0

    def deliver(index: int, value: object) -> None:
        nonlocal next_emit
        if consume is None:
            report.parts[index] = value
            return
        ready[index] = value
        while next_emit in ready:
            consume(next_emit, ready.pop(next_emit))
            next_emit += 1

    def complete(index: int, value: object, source: str) -> None:
        if source != "resumed" and paths is not None:
            save_shard(paths[index], value, fingerprint_hash, plan, index)
        states[index]["state"] = "done"
        states[index]["source"] = source
        states[index]["updated_at"] = time.time()
        if source == "resumed":
            report.resumed += 1
        else:
            report.computed += 1
        deliver(index, value)
        emit()

    def run_serial(index: int, source: str) -> None:
        states[index]["attempts"] = int(states[index]["attempts"]) + 1
        complete(index, worker(payloads[index]), source)

    # ---------------- resume scan ---------------- #
    if paths is not None:
        for index in range(total):
            status, part = load_shard(paths[index], fingerprint_hash)
            if status == "ok":
                complete(index, part, "resumed")
            else:
                if status == "corrupt":
                    report.corrupt_resumes += 1
                    warnings.warn(
                        f"shard file {paths[index]!r} failed validation "
                        "(unreadable or checksum mismatch); recomputing it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                queue.append(index)
    else:
        queue.extend(range(total))

    emit()

    workers = min(resolve_jobs(jobs), max(1, total))
    serial_only = workers <= 1
    pool = None

    def requeue(index: int, penalty: bool) -> None:
        if not penalty:
            # Innocent victim of someone else's timeout: the attempt was
            # charged at submit time, refund it.
            states[index]["attempts"] = int(states[index]["attempts"]) - 1
        states[index]["state"] = "pending"
        states[index]["updated_at"] = time.time()
        report.retries += 1
        queue.append(index)

    def rebuild_after_failure() -> None:
        nonlocal pool
        if pool is not None:
            _stop_pool(pool)
            pool = None
        report.pool_rebuilds += 1
        delay = min(backoff_max, backoff_base * (2 ** (report.pool_rebuilds - 1)))
        if delay > 0:
            time.sleep(delay)
        emit()

    run_span = obs.span(f"run_shards:{prefix}")
    run_span.__enter__()
    try:
        while queue or inflight:
            if serial_only:
                while queue:
                    run_serial(queue.popleft(), "computed")
                continue

            if pool is None:
                try:
                    pool = ProcessPoolExecutor(max_workers=workers)
                except (OSError, ValueError):
                    # No usable multiprocessing here — finish serially.
                    serial_only = True
                    continue

            pool_broke = False
            while queue and len(inflight) < workers:
                index = queue.popleft()
                if int(states[index]["attempts"]) >= max_attempts:
                    report.serial_fallbacks += 1
                    run_serial(index, "serial")
                    continue
                states[index]["attempts"] = int(states[index]["attempts"]) + 1
                states[index]["state"] = "running"
                states[index]["updated_at"] = time.time()
                try:
                    future = pool.submit(
                        _shard_call, (worker, payloads[index], index, plan)
                    )
                except BrokenExecutor:
                    requeue(index, penalty=False)
                    pool_broke = True
                    break
                deadline = (
                    time.monotonic() + timeout if timeout is not None else None
                )
                inflight[future] = (index, deadline)

            if not pool_broke and inflight:
                tick = max(0.0, heartbeat)
                deadlines = [d for _, d in inflight.values() if d is not None]
                if deadlines:
                    tick = min(
                        tick, max(0.0, min(deadlines) - time.monotonic())
                    )
                done, _ = wait(
                    list(inflight), timeout=tick, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index, _ = inflight.pop(future)
                    try:
                        value, telemetry = future.result()
                    except BrokenExecutor:
                        pool_broke = True
                        requeue(index, penalty=True)
                    except Exception:
                        # The worker raised for real.  Charge the attempt and
                        # retry; once attempts run out, the serial fallback
                        # reproduces (and propagates) the error in-parent.
                        requeue(index, penalty=True)
                    else:
                        # Merge the worker's piggybacked telemetry exactly
                        # once, before the part is persisted/delivered.
                        obs.merge_telemetry(telemetry)
                        complete(index, value, "computed")

            if pool_broke:
                for future, (index, _) in list(inflight.items()):
                    # The breakage killed these futures too; the executor
                    # cannot say which shard was guilty, so every in-flight
                    # shard is charged its attempt and re-queued.
                    requeue(index, penalty=True)
                inflight.clear()
                rebuild_after_failure()
                continue

            if timeout is not None and inflight:
                now = time.monotonic()
                expired = [
                    (future, index)
                    for future, (index, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                if expired:
                    report.timeouts += len(expired)
                    expired_futures = {future for future, _ in expired}
                    for future, index in expired:
                        requeue(index, penalty=True)
                        states[index]["state"] = "timed_out"
                    for future, (index, _) in list(inflight.items()):
                        if future not in expired_futures:
                            requeue(index, penalty=False)
                    inflight.clear()
                    # Killing the pool is the only way to stop a running
                    # task; the innocents were re-queued without penalty.
                    rebuild_after_failure()
                    continue

            if time.monotonic() - last_beat >= heartbeat:
                emit()
    finally:
        if pool is not None:
            _stop_pool(pool)
        run_span.__exit__(None, None, None)

    finished = True
    emit()
    return report
