"""Shared high-throughput execution engine for the stability computations.

Every headline computation of the reproduction — pairwise-stability checks
that probe each single-edge toggle (Definitions 1–3), equilibrium censuses
over all small topologies, and the decentralised dynamics of Section 5 —
bottoms out in the same two primitives: *per-vertex distance sums* of a
graph and *edge-toggle deltas* of those sums.  This package centralises
both, so the core/analysis/experiments layers never re-derive them ad hoc:

:class:`DistanceOracle`
    An incremental distance engine with an LRU-bounded per-graph cache.
    The caching contract is:

    * ``distance_sums(g)`` / ``distance_sum(g, v)`` — per-source distance
      sums, computed once per (graph, source) via the word-parallel bitset
      BFS of :mod:`repro.graphs.distances` and memoised under the graph's
      value identity (graphs are immutable and hashable, so a cache hit can
      never observe a stale value);
    * ``addition_saving(g, (u, v), w)`` — the decrease of ``w``'s distance
      cost from adding non-edge ``(u, v)``.  Answered *without any BFS*
      from the cached distance vectors of the two endpoints, using the
      unweighted single-edge identity
      ``d'(w, k) = min(d(w, k), 1 + d(other, k))``;
    * ``removal_increase(g, (u, v), w)`` — the increase of ``w``'s distance
      cost from severing edge ``(u, v)``.  Recomputed for the single
      affected source ``w`` with a forbidden-edge bitset BFS and memoised.

    All values are numerically identical to recomputing from scratch with
    :func:`repro.graphs.distance_sum` — the oracle is a cache, never an
    approximation — which the property-based equivalence tests assert.

:func:`batch_stability_deltas`
    A vectorised NumPy backend that answers *every* single-link deviation
    probe of a whole batch of graphs with a handful of batched boolean
    matrix products (see :mod:`repro.engine.batch`).  Probes can be
    orbit-pruned (one representative per orbit of ordered vertex pairs,
    results expanded across the orbit): the per-graph BFS paths (no NumPy,
    or ``n > 63``) prune automatically whenever automorphism data is
    memoised on the graph, while the vectorised path keeps full tensor
    probing unless ``use_orbits=True`` is passed — a tensor-slice probe is
    cheaper than the per-orbit bookkeeping (see the batch module docstring
    for the measured economics).  Numerically identical to the oracle path
    for every setting; falls back to it when NumPy is unavailable.

:func:`parallel_map`
    A process-pool fan-out with a deterministic serial fallback.  ``jobs``
    semantics are shared across the library: ``None``/``0``/``1`` run
    serially in input order; ``jobs > 1`` uses a process pool but still
    returns results in input order, so parallel and serial runs are
    bit-identical.  Environments without working multiprocessing degrade to
    the serial path automatically (salvaging chunks that completed before a
    pool broke).

:func:`run_shards`
    The fault-tolerant shard work-queue coordinator behind every
    ``build_streamed(shard_dir=...)`` and the ensemble block runner:
    individual futures with per-shard timeouts, bounded retries with
    exponential backoff and a serial fallback, checksummed + config-
    fingerprinted shard resume, and a heartbeat progress manifest (see
    :mod:`repro.engine.shardwork`; fault injection for its recovery paths
    lives in :mod:`repro.engine.faults`).
"""

from .batch import (
    batch_delta_columns,
    batch_stability_deltas,
    batch_ucg_columns,
    batch_weighted_columns,
    numpy_available,
    validate_weight_matrix,
)
from .oracle import DistanceOracle, get_default_oracle
from .pool import chunk_evenly, parallel_map, resolve_jobs
from .ucg import ucg_alpha_sets, ucg_engine_available, weighted_ucg_t_sets
from .shardwork import (
    ShardRunReport,
    config_fingerprint,
    content_checksum,
    run_shards,
)
from .streaming import StreamingEnsembleStats, streaming_available

__all__ = [
    "DistanceOracle",
    "ShardRunReport",
    "StreamingEnsembleStats",
    "batch_delta_columns",
    "batch_stability_deltas",
    "batch_ucg_columns",
    "batch_weighted_columns",
    "chunk_evenly",
    "config_fingerprint",
    "content_checksum",
    "get_default_oracle",
    "numpy_available",
    "parallel_map",
    "resolve_jobs",
    "run_shards",
    "streaming_available",
    "ucg_alpha_sets",
    "ucg_engine_available",
    "validate_weight_matrix",
    "weighted_ucg_t_sets",
]
