"""Vectorised, orbit-pruned UCG Nash-supportability engine.

:func:`repro.core.unilateral.ucg_nash_alpha_set` decides graph-level Nash
supportability of the unilateral game by backtracking over edge
orientations, recomputing a best-response α-interval per ``(player, owned
set)``.  That per-graph search is exact but it is the last per-graph
bottleneck in the library: at ``n = 7`` the full census costs minutes and at
``n = 8`` it was simply never run.  This module replaces it with a batched
pipeline that produces the *identical* :class:`AlphaIntervalSet` per graph
— float-for-float, interval-for-interval — at a fraction of the cost:

1. **Interval tables, not interval calls.**  For a player ``p`` the
   best-response interval of owning ``T ⊆ N(p)`` depends only on the
   *opponent-bought* neighbour mask ``A = N(p) \\ T``: the deviation
   candidates are ``C = V \\ ({p} ∪ A)`` and every purchase set ``S ⊆ C``
   contributes a constraint through ``D_p(A ∪ S)``, the distance sum from
   ``p`` when its neighbour set is ``A ∪ S``.  All ``2^n`` values of
   ``D_p(·)`` come from one vertex-deleted all-pairs distance pass (batched
   boolean matmuls, exactly the :mod:`repro.engine.batch` frontier idiom)
   followed by a subset-min DP, and the per-``A`` interval endpoints reduce
   to size-grouped superset minima (an n-pass sum-over-subsets transform).
   Division by the (positive) purchase-count difference is weakly monotone,
   so taking the group extremum *before* the division produces bit-identical
   endpoints to the reference's per-subset fold.

2. **Vertex-orbit pruning.**  ``D_p`` tables (and, in the scalar game, the
   final interval tables) of automorphic players are permuted copies of each
   other: ``table_{σp}[σ(A)] = table_p[A]``.  When a graph carries a
   memoised canonical record (the census generator always does), tables are
   computed for one representative per vertex orbit and expanded by a
   mask-permutation gather.

3. **Frontier-DP orientation search.**  Backtracking over orientations is
   replaced by a dynamic program over vertices: the state is, for every
   not-yet-processed vertex, the set of earlier neighbours whose shared edge
   was deferred to it (``n`` bits per vertex, packed into one int), and the
   value is the exact union of the running α-interval intersections over
   every orientation prefix reaching that state.  States are additionally
   quotiented by a per-vertex *future-equivalence*: two inherited masks that
   generate the same (interval, deferral) options under every possible
   further deferral are interchangeable, which collapses the state space of
   vertex-transitive dense graphs (``K_8`` drops from ~10^6 raw states to a
   few hundred).  Suffix hull pruning drops — never trims — intervals that
   cannot intersect the remaining players' feasible hulls.

The weighted game (:func:`weighted_ucg_t_sets`) shares the model-independent
``D_p`` tables (distances are unweighted hops) and replaces purchase counts
by exact link-cost sums: a high-bit DP replays
:meth:`CostModel.player_link_cost`'s ascending left fold bit-for-bit, with
:class:`UniformCost`'s ``α·|S|`` closed form special-cased, so the weighted
endpoints match the per-graph reference exactly as well.

Everything falls back to the backtracking reference when NumPy is missing
or ``n`` is outside the table-friendly range — the reference path is always
available and is what every test asserts against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # soft dependency, mirroring repro.engine.batch
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from .. import obs
from ..graphs.isomorphism import cached_canonical_record, canonical_record

INFINITY = float("inf")

#: Largest ``n`` the table pipeline handles (2^n-entry tables per player).
_MAX_TABLE_N = 12

#: Row budget per internal batch: bounds the (rows, 2^n, n) float32 DP
#: tensor and the (rows, n, 2^n) float64 superset-min tensor to ~tens of MB.
_TABLE_BYTE_BUDGET = 96 << 20


def ucg_engine_available() -> bool:
    """Whether the vectorised UCG engine can run (NumPy importable)."""
    return _np is not None


# --------------------------------------------------------------------------- #
# Orbit plans: one representative player per vertex orbit + mask gathers
# --------------------------------------------------------------------------- #


def _mask_image(perm: Sequence[int], n: int) -> List[int]:
    """``img[mask]`` = image of ``mask`` under the vertex permutation."""
    size = 1 << n
    img = [0] * size
    for mask in range(1, size):
        low = mask & -mask
        img[mask] = img[mask ^ low] | (1 << perm[low.bit_length() - 1])
    return img


def _orbit_plan(graph, use_orbits: Optional[bool], image_cache: Dict):
    """``(reps, per_player)`` for one graph.

    ``reps`` lists the players whose tables must actually be computed;
    ``per_player[p]`` is ``(rep, gather)`` where ``gather`` is the
    ``σ^{-1}`` mask-image array turning the representative's table into
    ``p``'s (``None`` for representatives).  ``use_orbits`` mirrors
    :func:`repro.engine.batch.batch_stability_deltas`: ``None`` prunes only
    when the canonical record is already memoised, ``True`` forces the
    canonical search, ``False`` disables pruning.
    """
    n = graph.n
    trivial = list(range(n)), [(p, None) for p in range(n)]
    if use_orbits is False or n <= 1:
        return trivial
    record = (
        canonical_record(graph) if use_orbits else cached_canonical_record(graph)
    )
    if record is None or not record.generators:
        return trivial
    gens = record.generators
    assign: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    reps: List[int] = []
    identity = tuple(range(n))
    for v in range(n):
        if v in assign:
            continue
        reps.append(v)
        assign[v] = (v, identity)
        queue = [v]
        while queue:
            x = queue.pop()
            sigma_x = assign[x][1]
            for g in gens:
                y = g[x]
                if y not in assign:
                    # (g ∘ σ_x)(v) = g(x) = y keeps the transversal property.
                    assign[y] = (v, tuple(g[sigma_x[i]] for i in range(n)))
                    queue.append(y)
    if len(reps) == n:
        return trivial
    per_player = []
    for p in range(n):
        rep, sigma = assign[p]
        if p == rep:
            per_player.append((rep, None))
            continue
        inverse = [0] * n
        for i, image in enumerate(sigma):
            inverse[image] = i
        key = (n, tuple(inverse))
        gather = image_cache.get(key)
        if gather is None:
            gather = _np.asarray(_mask_image(inverse, n), dtype=_np.int64)
            image_cache[key] = gather
        per_player.append((rep, gather))
    return reps, per_player


# --------------------------------------------------------------------------- #
# Distance-sum tables: D_p(B) for every neighbour mask B, batched
# --------------------------------------------------------------------------- #


def _popcounts(n: int):
    masks = _np.arange(1 << n, dtype=_np.int64)
    pop = _np.zeros(1 << n, dtype=_np.int64)
    for b in range(n):
        pop += (masks >> b) & 1
    return pop


def _vertex_deleted_distances(graphs, rows_idx, n: int):
    """Hop distances within ``G - p`` for every requested ``(graph, p)`` row.

    Returns ``dist[r, k, j]`` (``inf`` when unreachable) computed by the
    lock-step frontier matmul of :func:`repro.engine.batch._batch_group`,
    with row/column ``p`` zeroed out of each adjacency copy.
    """
    np = _np
    R = len(rows_idx)
    rows = np.array(
        [graphs[gi].adjacency_rows() for gi, _ in rows_idx], dtype=np.int64
    )
    A = ((rows[:, :, None] >> np.arange(n)[None, None, :]) & 1).astype(np.uint8)
    p_arr = np.asarray([p for _, p in rows_idx], dtype=np.int64)
    rr = np.arange(R)
    A[rr, p_arr, :] = 0
    A[rr, :, p_arr] = 0
    eye = np.eye(n, dtype=bool)
    visited = np.broadcast_to(eye, (R, n, n)).copy()
    frontier = visited.astype(np.uint8)
    dist = np.full((R, n, n), np.inf)
    dist[:, eye] = 0.0
    for level in range(1, n):
        nxt = (np.matmul(frontier, A) > 0) & ~visited
        if not nxt.any():
            break
        dist[nxt] = float(level)
        visited |= nxt
        frontier = nxt.astype(np.uint8)
    return dist, p_arr


def _distance_sum_tables(graphs, rows_idx, n: int):
    """``Dsum[r, B]`` = Σ_{j≠p} min_{k∈B} (1 + d_{G-p}(k, j)) as float64.

    ``D_p(B)`` is the distance sum from ``p`` when its neighbour set is
    exactly ``B`` (shortest paths from ``p`` never revisit ``p``, so the
    remainder of each path lives in ``G - p``); integer-valued (or ``inf``)
    and therefore exact in the float32 min-DP and the float64 sum.
    """
    np = _np
    dist, p_arr = _vertex_deleted_distances(graphs, rows_idx, n)
    R = dist.shape[0]
    size = 1 << n
    rows16 = (1.0 + dist).astype(np.float32)
    rr = np.arange(R)
    rows16[rr, p_arr, :] = np.float32(np.inf)  # masks containing p: poisoned
    table = np.full((R, size, n), np.inf, dtype=np.float32)
    for mask in range(1, size):
        low = mask & -mask
        np.minimum(
            table[:, mask ^ low, :],
            rows16[:, low.bit_length() - 1, :],
            out=table[:, mask, :],
        )
    # j = p contributes nothing to the sum (and makes D_p(∅) = 0 at n = 1).
    table[rr, :, p_arr] = 0.0
    dsum = table.sum(axis=2, dtype=np.float64)
    return dsum, p_arr


# --------------------------------------------------------------------------- #
# Scalar interval tables: lo/hi/empty per (player row, opponent mask A)
# --------------------------------------------------------------------------- #


def _scalar_interval_tables(dsum, p_arr, nbr_arr, n: int):
    """Per-row ``(lo, hi, empty)`` tables over every opponent mask ``A``.

    Exactly :func:`repro.core.unilateral.ownership_best_response_interval`
    vectorised: constraints are grouped by the size ``m`` of the deviation
    neighbour set ``B ⊇ A`` and reduced through per-size superset minima —
    ``-Δ_min/(m - deg)`` reproduces the reference quotients bit-for-bit
    because IEEE division by a fixed signed integer is monotone in the
    numerator and ``(-x)/(-d) ≡ x/d``.
    """
    np = _np
    R, size = dsum.shape
    pop = _popcounts(n)
    masks = np.arange(size, dtype=np.int64)
    contains_p = ((masks[None, :] >> p_arr[:, None]) & 1).astype(bool)
    dvalid = np.where(contains_p, np.inf, dsum)
    sizes = np.arange(n, dtype=np.int64)
    selector = pop[None, :] == sizes[:, None]  # (n, size)
    grouped = np.where(selector[None, :, :], dvalid[:, None, :], np.inf)
    for b in range(n):  # superset-min sum-over-subsets, one bit per pass
        view = grouped.reshape(R, n, size >> (b + 1), 2, 1 << b)
        np.minimum(view[..., 0, :], view[..., 1, :], out=view[..., 0, :])
    base = dsum[np.arange(R), nbr_arr]
    deg = pop[nbr_arr]
    with np.errstate(invalid="ignore"):
        delta = grouped - base[:, None, None]
    np.nan_to_num(delta, copy=False, nan=0.0, posinf=np.inf, neginf=-np.inf)
    denom = (sizes[None, :, None] - deg[:, None, None]).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        quotients = np.negative(delta) / denom
    above = sizes[None, :, None] > deg[:, None, None]
    below = sizes[None, :, None] < deg[:, None, None]
    lo = np.maximum(
        np.where(above, quotients, -np.inf).max(axis=1), 0.0
    )
    hi = np.where(below, quotients, np.inf).min(axis=1)
    equal = np.take_along_axis(delta, deg[:, None, None], axis=1)[:, 0, :]
    empty = equal < -1e-12
    return lo, hi, empty


def _expand_rows(tables, plans, row_of, n: int):
    """Gather per-representative row tables into full ``(G·n, size)`` arrays."""
    np = _np
    size = tables[0].shape[1]
    G = len(plans)
    src = np.empty(G * n, dtype=np.int64)
    gather = np.empty((G * n, size), dtype=np.int64)
    identity = np.arange(size, dtype=np.int64)
    for gi, (reps, per_player) in enumerate(plans):
        for p in range(n):
            rep, image = per_player[p]
            row = gi * n + p
            src[row] = row_of[(gi, rep)]
            gather[row] = identity if image is None else image
    return [table[src[:, None], gather] for table in tables]


# --------------------------------------------------------------------------- #
# Exact interval-list algebra for the orientation DP
# --------------------------------------------------------------------------- #


def _union_interval_lists(a, b):
    """Exact union of two sorted, disjoint ``(lo, hi)`` lists.

    Only *touching or overlapping* intervals are glued (no tolerance):
    mid-search merging must preserve the union's point set exactly, and the
    final :class:`AlphaIntervalSet` construction applies the reference's
    ``1e-12`` gap merge — which depends only on that point set.
    """
    if not a:
        return b
    if not b:
        return a
    merged = []
    ia = ib = 0
    la, lb = len(a), len(b)
    cur_lo = cur_hi = None
    while ia < la or ib < lb:
        if ib >= lb or (ia < la and a[ia][0] <= b[ib][0]):
            nxt_lo, nxt_hi = a[ia]
            ia += 1
        else:
            nxt_lo, nxt_hi = b[ib]
            ib += 1
        if cur_lo is None:
            cur_lo, cur_hi = nxt_lo, nxt_hi
        elif nxt_lo <= cur_hi:
            if nxt_hi > cur_hi:
                cur_hi = nxt_hi
        else:
            merged.append((cur_lo, cur_hi))
            cur_lo, cur_hi = nxt_lo, nxt_hi
    merged.append((cur_lo, cur_hi))
    return merged


# --------------------------------------------------------------------------- #
# Orientation search: class-quotiented frontier DP over vertices
# --------------------------------------------------------------------------- #


def _submasks(mask: int) -> List[int]:
    """Every submask of ``mask``, empty set first (deterministic order)."""
    subs = [0]
    rest = mask
    while rest:
        bit = rest & -rest
        rest ^= bit
        subs += [s | bit for s in subs]
    return subs


def _vertex_classes(v: int, nbr: int, lo_row, hi_row, ok_row):
    """Future-equivalence classes of ``v``'s inherited-ownership masks.

    Two inherited masks ``I, I'`` (earlier neighbours that deferred their
    shared edge to ``v``) are interchangeable for the rest of the search iff
    they generate the same set of ``(interval, deferred-mask)`` options
    under *every* further deferral ``D``: the class signature is the tuple
    of option-set ids of ``I ∪ D`` over all ``D``.  This is compositional
    (``I ≡ I' ⇒ I∪D ≡ I'∪D``), so transitions live on class ids.  Returns
    ``(options_by_class, transitions)`` where ``transitions[cls][src]`` is
    the class after vertex ``src`` defers its shared edge, and class 0 is
    always the empty inherited mask.
    """
    below = (1 << v) - 1
    earlier = nbr & below
    local = nbr & ~below & ~(1 << v)
    j_list = _submasks(earlier)
    local_subs = _submasks(local)
    sig_ids: Dict = {}
    sig_of: Dict[int, int] = {}
    opts_of: Dict[int, list] = {}
    for inherited in j_list:
        options = []
        for kept in local_subs:
            owned = inherited | kept
            opponents = nbr ^ owned
            if ok_row[opponents]:
                options.append(
                    (lo_row[opponents], hi_row[opponents], local ^ kept)
                )
        key = frozenset(options)
        sig_of[inherited] = sig_ids.setdefault(key, len(sig_ids))
        opts_of[inherited] = options
    if len(sig_ids) == len(j_list):
        # Every mask behaves distinctly: identity quotient, skip the
        # (quadratic in 2^|earlier|) signature-tuple construction.
        cls_of = {inherited: idx for idx, inherited in enumerate(j_list)}
    else:
        class_ids: Dict = {}
        cls_of = {}
        for inherited in j_list:
            signature = tuple(sig_of[inherited | d] for d in j_list)
            cls_of[inherited] = class_ids.setdefault(signature, len(class_ids))
    count = max(cls_of.values()) + 1
    options_by_class = [None] * count
    transitions = [dict() for _ in range(count)]
    for inherited in j_list:
        cls = cls_of[inherited]
        if options_by_class[cls] is None:
            options_by_class[cls] = opts_of[inherited]
        rest = earlier & ~inherited
        while rest:
            bit = rest & -rest
            rest ^= bit
            transitions[cls][bit.bit_length() - 1] = cls_of[inherited | bit]
    return options_by_class, transitions


def _orientation_union(n, nbrs, lo_rows, hi_rows, ok_rows, hull_lo, hull_hi):
    """Union over edge orientations of per-player interval intersections.

    The exact DP replacement for
    :func:`repro.core.unilateral.orientation_interval_search`: identical
    player order, identical per-step ``(max lo, min hi)`` intersections,
    value lists kept as exact unions.  Returns the raw ``(lo, hi)`` list
    (sorted, disjoint) to be wrapped in an :class:`AlphaIntervalSet`.
    """
    suffix_lo = [-INFINITY] * (n + 1)
    suffix_hi = [INFINITY] * (n + 1)
    for u in range(n - 1, -1, -1):
        prev_lo, prev_hi = suffix_lo[u + 1], suffix_hi[u + 1]
        suffix_lo[u] = hull_lo[u] if hull_lo[u] > prev_lo else prev_lo
        suffix_hi[u] = hull_hi[u] if hull_hi[u] < prev_hi else prev_hi
    if suffix_lo[0] > suffix_hi[0]:
        return []
    classes = [
        _vertex_classes(v, nbrs[v], lo_rows[v], hi_rows[v], ok_rows[v])
        for v in range(n)
    ]
    slot = (1 << n) - 1
    states = {0: [(0.0, INFINITY)]}
    for u in range(n):
        options_by_class = classes[u][0]
        shl, shh = suffix_lo[u + 1], suffix_hi[u + 1]
        new_states: Dict[int, list] = {}
        for key, intervals in states.items():
            opts = options_by_class[key & slot]
            if not opts:
                continue
            rest = key >> n
            for ilo, ihi, deferred in opts:
                out = None
                for l, h in intervals:
                    if ilo > l:
                        l = ilo
                    if ihi < h:
                        h = ihi
                    if l > h or l > shh or h < shl:
                        continue
                    if out is None:
                        out = [(l, h)]
                    else:
                        out.append((l, h))
                if out is None:
                    continue
                nk = rest
                d = deferred
                while d:
                    bit = d & -d
                    d ^= bit
                    w = bit.bit_length() - 1
                    shift = (w - u - 1) * n
                    cls = (nk >> shift) & slot
                    ncls = classes[w][1][cls][u]
                    if ncls != cls:
                        nk ^= (cls ^ ncls) << shift
                cur = new_states.get(nk)
                new_states[nk] = (
                    out if cur is None else _union_interval_lists(cur, out)
                )
        states = new_states
        if not states:
            return []
    final: list = []
    for intervals in states.values():
        final = _union_interval_lists(final, intervals)
    return final


# --------------------------------------------------------------------------- #
# Per-graph assembly: hull precheck + search over the expanded tables
# --------------------------------------------------------------------------- #


def _chunk_rows(graphs, use_orbits):
    """Orbit plans + representative row bookkeeping for one same-``n`` chunk."""
    image_cache: Dict = {}
    plans = [_orbit_plan(g, use_orbits, image_cache) for g in graphs]
    rows_idx: List[Tuple[int, int]] = []
    row_of: Dict[Tuple[int, int], int] = {}
    for gi, (reps, _) in enumerate(plans):
        for p in reps:
            row_of[(gi, p)] = len(rows_idx)
            rows_idx.append((gi, p))
    return plans, rows_idx, row_of


def _hulls_and_masks(lo_full, hi_full, empty_full, nbr_full, n: int):
    """Validity masks, per-player hulls and the per-graph feasibility test."""
    np = _np
    size = lo_full.shape[1]
    masks = np.arange(size, dtype=np.int64)
    valid = (masks[None, :] & ~nbr_full[:, None]) == 0
    ok = valid & ~empty_full & (lo_full <= hi_full)
    G = lo_full.shape[0] // n
    player_ok = ok.any(axis=1).reshape(G, n)
    hull_lo = np.where(ok, lo_full, np.inf).min(axis=1).reshape(G, n)
    hull_hi = np.where(ok, hi_full, -np.inf).max(axis=1).reshape(G, n)
    graph_ok = player_ok.all(axis=1) & (
        hull_lo.max(axis=1) <= hull_hi.min(axis=1)
    )
    return ok, hull_lo, hull_hi, graph_ok


def _search_graph(graph, gi, n, lo_full, hi_full, ok_full, hull_lo, hull_hi):
    lo_rows = lo_full[gi * n : (gi + 1) * n].tolist()
    hi_rows = hi_full[gi * n : (gi + 1) * n].tolist()
    ok_rows = ok_full[gi * n : (gi + 1) * n].tolist()
    return _orientation_union(
        n,
        list(graph.adjacency_rows()),
        lo_rows,
        hi_rows,
        ok_rows,
        hull_lo[gi].tolist(),
        hull_hi[gi].tolist(),
    )


def _interval_set(pairs):
    from ..core.stability_intervals import AlphaInterval, AlphaIntervalSet

    return AlphaIntervalSet([AlphaInterval(lo, hi) for lo, hi in pairs])


def _full_set():
    from ..core.stability_intervals import AlphaIntervalSet, FULL_ALPHA_RANGE

    return AlphaIntervalSet((FULL_ALPHA_RANGE,))


def _scalar_chunk_sets(graphs, use_orbits):
    """Engine-path Nash α-sets for one same-``n`` chunk (``2 <= n``)."""
    np = _np
    n = graphs[0].n
    plans, rows_idx, row_of = _chunk_rows(graphs, use_orbits)
    dsum, p_arr = _distance_sum_tables(graphs, rows_idx, n)
    nbr_arr = np.asarray(
        [graphs[gi].adjacency_rows()[p] for gi, p in rows_idx], dtype=np.int64
    )
    lo, hi, empty = _scalar_interval_tables(dsum, p_arr, nbr_arr, n)
    lo_full, hi_full, empty_full = _expand_rows(
        [lo, hi, empty], plans, row_of, n
    )
    nbr_full = np.asarray(
        [g.adjacency_rows()[p] for g in graphs for p in range(n)],
        dtype=np.int64,
    )
    ok_full, hull_lo, hull_hi, graph_ok = _hulls_and_masks(
        lo_full, hi_full, empty_full, nbr_full, n
    )
    results = []
    for gi, graph in enumerate(graphs):
        if not graph_ok[gi]:
            results.append(_interval_set([]))
            continue
        pairs = _search_graph(
            graph, gi, n, lo_full, hi_full, ok_full, hull_lo, hull_hi
        )
        results.append(_interval_set(pairs))
    return results


def _row_budget(n: int) -> int:
    per_row = (1 << n) * n * 12  # float32 DP tensor + float64 superset-min
    return max(n, min(4096, _TABLE_BYTE_BUDGET // max(per_row, 1)))


@obs.timed_kernel("ucg_alpha_sets")
def ucg_alpha_sets(
    graphs,
    oracle=None,
    use_orbits: Optional[bool] = None,
) -> List:
    """Nash-supportability α-sets of many graphs, engine-batched.

    Element-for-element float-exact against
    :func:`repro.core.unilateral.ucg_nash_alpha_set` (the per-graph
    backtracking reference, asserted in the test suite and the parity
    smoke); falls back to it per graph when NumPy is unavailable or ``n``
    exceeds the table range.  Results are memoised on each
    :class:`~repro.graphs.graph.Graph` instance (edge mutations return new
    instances, so memos can never go stale).
    """
    graphs = list(graphs)
    results: List = [None] * len(graphs)
    pending_by_n: Dict[int, List[int]] = {}
    for i, graph in enumerate(graphs):
        cached = getattr(graph, "_ucg_set", None)
        if cached is not None:
            results[i] = _interval_set(cached)
        elif graph.n <= 1:
            results[i] = _full_set()
            graph._ucg_set = tuple(
                (iv.lo, iv.hi) for iv in results[i].intervals
            )
        else:
            pending_by_n.setdefault(graph.n, []).append(i)
    fallback: List[int] = []
    for n, indices in sorted(pending_by_n.items()):
        if _np is None or n > _MAX_TABLE_N:
            fallback.extend(indices)
            continue
        budget = max(1, _row_budget(n) // n)
        for start in range(0, len(indices), budget):
            batch = indices[start : start + budget]
            sets = _scalar_chunk_sets([graphs[i] for i in batch], use_orbits)
            for i, interval_set in zip(batch, sets):
                results[i] = interval_set
                graphs[i]._ucg_set = tuple(
                    (iv.lo, iv.hi) for iv in interval_set.intervals
                )
    if fallback:
        from ..core.unilateral import ucg_nash_alpha_set

        for i in fallback:
            results[i] = ucg_nash_alpha_set(graphs[i], oracle=oracle)
    return results


# --------------------------------------------------------------------------- #
# Weighted game: shared D_p tables + exact link-cost sums
# --------------------------------------------------------------------------- #


def _link_cost_table(model, n: int, player: int, pop):
    """``wsum[S]`` = ``model.player_link_cost(player, targets(S))``, exact.

    Three branches, each replaying the reference float-for-float: the
    uniform closed form ``α·|S|``, a high-bit DP that unrolls to the base
    class's ascending left fold, and a per-subset model call for custom
    overrides (always exact, never fast).
    """
    np = _np
    from ..costmodels.models import CostModel, UniformCost

    size = 1 << n
    if type(model) is UniformCost:
        return model.alpha * pop.astype(np.float64)
    if type(model).player_link_cost is CostModel.player_link_cost:
        weights = [
            model.weight(player, v) if v != player else 0.0 for v in range(n)
        ]
        table = [0.0] * size
        for mask in range(1, size):
            high = mask.bit_length() - 1
            table[mask] = table[mask ^ (1 << high)] + weights[high]
        return np.asarray(table, dtype=np.float64)
    table = [
        model.player_link_cost(
            player, tuple(v for v in range(n) if (mask >> v) & 1)
        )
        for mask in range(size)
    ]
    return np.asarray(table, dtype=np.float64)


def _weighted_player_rows(
    n, player, nbr, dsum_row, wsum, base, submask_cache
):
    """``(lo, hi, ok)`` rows over opponent masks for one weighted player.

    Vectorises :func:`repro.costmodels.stability.weighted_ownership_interval`
    per ownership set: candidates, deltas and weight differences are
    evaluated for every purchase set at once; max/min over the identical
    quotient multiset reproduce the reference's running fold exactly.
    """
    np = _np
    size = 1 << n
    full = size - 1
    lo_row = [0.0] * size
    hi_row = [0.0] * size
    ok_row = [False] * size
    hull_lo, hull_hi = INFINITY, -INFINITY
    base_inf = base == INFINITY
    owned = nbr
    while True:
        opponents = nbr ^ owned
        candidates = full & ~(opponents | (1 << player))
        subs = submask_cache.get(candidates)
        if subs is None:
            subs = np.asarray(_submasks(candidates), dtype=np.int64)
            submask_cache[candidates] = subs
        deltas = dsum_row[subs | opponents] - base
        if base_inf:
            deltas = np.where(np.isnan(deltas), 0.0, deltas)
        dw = wsum[subs] - wsum[owned]
        positive = dw > 0.0
        negative = dw < 0.0
        empty = bool(
            (deltas[~positive & ~negative] < -1e-12).any()
        )
        lo = 0.0
        if not empty and positive.any():
            grow = float((np.negative(deltas[positive]) / dw[positive]).max())
            if grow > lo:
                lo = grow
        hi = INFINITY
        if not empty and negative.any():
            shrink = float(
                (deltas[negative] / np.negative(dw[negative])).min()
            )
            if shrink < hi:
                hi = shrink
        if not empty and lo <= hi:
            lo_row[opponents] = lo
            hi_row[opponents] = hi
            ok_row[opponents] = True
            if lo < hull_lo:
                hull_lo = lo
            if hi > hull_hi:
                hull_hi = hi
        if owned == 0:
            break
        owned = (owned - 1) & nbr
    return lo_row, hi_row, ok_row, hull_lo, hull_hi


def _weighted_chunk_sets(graphs, model, use_orbits):
    """Engine-path weighted Nash t-sets for one same-``n`` chunk."""
    np = _np
    n = graphs[0].n
    pop = _popcounts(n)
    plans, rows_idx, row_of = _chunk_rows(graphs, use_orbits)
    dsum, _ = _distance_sum_tables(graphs, rows_idx, n)
    (dsum_full,) = _expand_rows([dsum], plans, row_of, n)
    with np.errstate(invalid="ignore"):
        pass
    results = []
    submask_cache: Dict[int, object] = {}
    wsum_tables = [
        _link_cost_table(model, n, player, pop) for player in range(n)
    ]
    for gi, graph in enumerate(graphs):
        nbrs = list(graph.adjacency_rows())
        lo_rows, hi_rows, ok_rows = [], [], []
        hull_lo, hull_hi = [], []
        feasible = True
        for player in range(n):
            row = dsum_full[gi * n + player]
            base = float(row[nbrs[player]])
            with np.errstate(invalid="ignore"):
                lo_row, hi_row, ok_row, h_lo, h_hi = _weighted_player_rows(
                    n,
                    player,
                    nbrs[player],
                    row,
                    wsum_tables[player],
                    base,
                    submask_cache,
                )
            lo_rows.append(lo_row)
            hi_rows.append(hi_row)
            ok_rows.append(ok_row)
            hull_lo.append(h_lo)
            hull_hi.append(h_hi)
            if h_lo > h_hi:  # no feasible ownership at all
                feasible = False
                break
        if not feasible or max(hull_lo) > min(hull_hi):
            results.append(_interval_set([]))
            continue
        pairs = _orientation_union(
            n, nbrs, lo_rows, hi_rows, ok_rows, hull_lo, hull_hi
        )
        results.append(_interval_set(pairs))
    return results


@obs.timed_kernel("weighted_ucg_t_sets")
def weighted_ucg_t_sets(
    graphs,
    model,
    oracle=None,
    use_orbits: Optional[bool] = None,
) -> List:
    """Weighted Nash-supportability t-sets of many graphs, engine-batched.

    Element-for-element float-exact against
    :func:`repro.costmodels.stability.weighted_ucg_nash_t_set`; the
    model-independent distance tables are shared across players via the
    orbit gather (weights break symmetry, so only the distance layer is
    orbit-pruned).  Falls back to the per-graph reference when NumPy is
    unavailable or ``n`` exceeds the table range.  No per-instance memo:
    results depend on the cost model, not just the graph.
    """
    graphs = list(graphs)
    results: List = [None] * len(graphs)
    pending_by_n: Dict[int, List[int]] = {}
    for i, graph in enumerate(graphs):
        if graph.n <= 1:
            results[i] = _full_set()
        else:
            pending_by_n.setdefault(graph.n, []).append(i)
    fallback: List[int] = []
    for n, indices in sorted(pending_by_n.items()):
        if _np is None or n > _MAX_TABLE_N:
            fallback.extend(indices)
            continue
        budget = max(1, _row_budget(n) // n)
        for start in range(0, len(indices), budget):
            batch = indices[start : start + budget]
            sets = _weighted_chunk_sets(
                [graphs[i] for i in batch], model, use_orbits
            )
            for i, interval_set in zip(batch, sets):
                results[i] = interval_set
    if fallback:
        from ..costmodels.stability import weighted_ucg_nash_t_set

        for i in fallback:
            results[i] = weighted_ucg_nash_t_set(
                graphs[i], model, oracle=oracle
            )
    return results
