"""Process-pool fan-out with a deterministic serial fallback.

The censuses and sampled experiments are embarrassingly parallel over
candidate graphs (or random starts), so the library funnels every fan-out
through :func:`parallel_map`.  The contract is that the *result is
independent of ``jobs``*: outputs are returned in input order, workers are
pure functions of their item, and any environment where a process pool
cannot be created (restricted sandboxes, missing semaphores) silently
degrades to the serial path.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument to a worker count.

    ``None``, ``0`` and ``1`` mean serial execution; positive values request
    that many workers; any negative value means "one worker per CPU".
    """
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def chunk_evenly(items: Sequence[Item], pieces: int) -> List[List[Item]]:
    """Split ``items`` into at most ``pieces`` contiguous, near-equal chunks.

    Preserves order (concatenating the chunks reproduces ``items``), never
    returns empty chunks, and is deterministic — the building block for
    fan-outs whose workers batch their share instead of taking one item at a
    time.
    """
    items = list(items)
    if pieces < 1:
        raise ValueError("pieces must be positive")
    pieces = min(pieces, len(items))
    if pieces <= 1:
        return [items] if items else []
    size, leftover = divmod(len(items), pieces)
    chunks = []
    start = 0
    for piece in range(pieces):
        end = start + size + (1 if piece < leftover else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def parallel_map(
    fn: Callable[[Item], Result],
    items: Iterable[Item],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[Result]:
    """Map ``fn`` over ``items``, optionally fanning out over processes.

    Results are always returned in input order, so callers get identical
    output for any ``jobs`` value.  ``fn`` and the items must be picklable
    when ``jobs > 1``; if the pool cannot be created or breaks before
    producing results, the computation falls back to the deterministic
    serial path.
    """
    items = list(items)
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (BrokenExecutor, OSError, PermissionError, pickle.PicklingError):
        # No usable multiprocessing in this environment - degrade gracefully.
        return [fn(item) for item in items]
