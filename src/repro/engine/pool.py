"""Process-pool fan-out with a deterministic serial fallback.

The censuses and sampled experiments are embarrassingly parallel over
candidate graphs (or random starts), so the library funnels every fan-out
through :func:`parallel_map`.  The contract is that the *result is
independent of ``jobs``*: outputs are returned in input order, workers are
pure functions of their item, and any environment where a process pool
cannot be created (restricted sandboxes, missing semaphores) silently
degrades to the serial path.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument to a worker count.

    ``None``, ``0`` and ``1`` mean serial execution; positive values request
    that many workers; any negative value means "one worker per CPU".
    """
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def chunk_evenly(items: Sequence[Item], pieces: int) -> List[List[Item]]:
    """Split ``items`` into at most ``pieces`` contiguous, near-equal chunks.

    Preserves order (concatenating the chunks reproduces ``items``), never
    returns empty chunks, and is deterministic — the building block for
    fan-outs whose workers batch their share instead of taking one item at a
    time.
    """
    items = list(items)
    if pieces < 1:
        raise ValueError("pieces must be positive")
    pieces = min(pieces, len(items))
    if pieces <= 1:
        return [items] if items else []
    size, leftover = divmod(len(items), pieces)
    chunks = []
    start = 0
    for piece in range(pieces):
        end = start + size + (1 if piece < leftover else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def _apply_chunk(task):
    """Module-level chunk worker (must be picklable by reference).

    Returns ``(results, telemetry)`` where ``telemetry`` is the worker
    registry's drained metric/span deltas (or ``None``): the piggyback
    envelope the coordinator merges exactly once per completed chunk.
    """
    from .. import obs

    fn, chunk = task
    results = [fn(item) for item in chunk]
    return results, obs.drain_telemetry()


def parallel_map(
    fn: Callable[[Item], Result],
    items: Iterable[Item],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[Result]:
    """Map ``fn`` over ``items``, optionally fanning out over processes.

    Results are always returned in input order, so callers get identical
    output for any ``jobs`` value.  ``fn`` and the items must be picklable
    when ``jobs > 1``.  Chunks are submitted as individual futures, so if
    the pool breaks mid-run (a worker died) or cannot be created at all,
    completed chunks are *salvaged* and only the incomplete remainder is
    recomputed serially — with a :class:`RuntimeWarning`, because a broken
    pool on a healthy machine is worth investigating.  Exceptions raised by
    ``fn`` itself still propagate unchanged.
    """
    items = list(items)
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    chunks = [items[start : start + chunksize] for start in range(0, len(items), chunksize)]
    completed: dict = {}
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_apply_chunk, (fn, chunk)): position
                for position, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                completed[futures[future]] = future.result()
    except (BrokenExecutor, OSError, pickle.PicklingError) as error:
        # Pool-infrastructure failure (dead worker, no semaphores, unpicklable
        # fn): keep what finished, recompute only the rest serially.  fn's own
        # exceptions are NOT caught here — they propagate to the caller.
        warnings.warn(
            f"process pool failed after {len(completed)}/{len(chunks)} chunks "
            f"({type(error).__name__}: {error}); computing the remaining "
            f"{len(chunks) - len(completed)} serially",
            RuntimeWarning,
            stacklevel=2,
        )
    from .. import obs

    results: List[Result] = []
    for position, chunk in enumerate(chunks):
        if position in completed:
            chunk_results, telemetry = completed[position]
            obs.merge_telemetry(telemetry)
            results.extend(chunk_results)
        else:
            # Serial recompute records straight into this process's
            # registry — nothing to merge.
            results.extend(fn(item) for item in chunk)
    return results
