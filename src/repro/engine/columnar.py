"""Columnar (struct-of-arrays) NumPy kernels for whole-α-grid census queries.

The censuses of Section 5 decide, for every isomorphism class and every link
cost on a grid, whether the class is an equilibrium.  Per
:class:`~repro.analysis.census.GraphRecord` that is a Python loop over dicts;
this module provides the vectorised counterpart operating on **ragged
columnar** data: per-class variable-length payloads (per-edge minimum removal
increases, per-non-edge saving pairs, UCG α-interval endpoints) are stored as
flat value arrays plus a CSR-style ``indptr`` offset array, and a whole α-grid
is answered with a handful of broadcast comparisons and segmented reductions.

The numeric contract is **bit-identity** with the record path:

* every comparison uses exactly the scalar expression of
  :meth:`PairwiseStabilityProfile.violations_at` /
  :meth:`AlphaInterval.contains` (including which side of the comparison the
  tolerance is folded into), evaluated elementwise in float64;
* value columns may be stored as float32 — every BCG deviation payoff is an
  integer-valued float (or ``±inf``) far below 2**24, so the float32 round
  trip is exact — and are upcast to float64 before any comparison.

:class:`repro.analysis.store.CensusStore` is the consumer; the kernels live
here so the engine layer owns all NumPy-heavy code and the store stays a thin
schema + orchestration layer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

try:  # NumPy ships with the dev toolchain but must stay optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from .. import obs
from ..graphs.graph import Graph


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "the columnar census kernels require NumPy; install numpy or use "
            "the per-record EquilibriumCensus path instead"
        )
    return _np


# --------------------------------------------------------------------------- #
# Segmented (CSR) reductions
# --------------------------------------------------------------------------- #


def segment_any(flags, indptr):
    """OR-reduce a flat boolean array over CSR segments (empty → ``False``).

    ``flags[indptr[i]:indptr[i+1]]`` is segment ``i``; the result has one
    boolean per segment.
    """
    np = _require_numpy()
    counts = np.diff(indptr)
    out = np.zeros(counts.shape[0], dtype=bool)
    if flags.shape[0] == 0 or counts.shape[0] == 0:
        return out
    # reduceat over the non-empty starts only: empty segments have zero
    # width, so consecutive non-empty starts still tile the flat array
    # exactly (reduceat rejects start == len, and an empty start clipped
    # into range would truncate the *preceding* segment's reduction).
    nonempty = counts > 0
    reduced = np.logical_or.reduceat(flags, indptr[:-1][nonempty])
    out[nonempty] = reduced
    return out


def _segment_reduce(values, indptr, ufunc, empty: float):
    np = _require_numpy()
    counts = np.diff(indptr)
    out = np.full(counts.shape[0], empty, dtype=np.float64)
    if values.shape[0] == 0 or counts.shape[0] == 0:
        return out
    values = values.astype(np.float64, copy=False)
    nonempty = counts > 0
    reduced = ufunc.reduceat(values, indptr[:-1][nonempty])
    out[nonempty] = reduced
    return out


def segment_min(values, indptr, empty: float = float("inf")):
    """MIN-reduce a flat value array over CSR segments (empty → ``empty``)."""
    np = _require_numpy()
    return _segment_reduce(values, indptr, np.minimum, empty)


def segment_max(values, indptr, empty: float = float("-inf")):
    """MAX-reduce a flat value array over CSR segments (empty → ``empty``)."""
    np = _require_numpy()
    return _segment_reduce(values, indptr, np.maximum, empty)


def csr_invariant_errors(name: str, values_len: int, indptr, classes: int) -> List[str]:
    """Check one ragged column's CSR invariants; return human-readable errors.

    A valid layout has ``len(indptr) == classes + 1``, ``indptr[0] == 0``,
    a monotone non-decreasing ``indptr``, and ``indptr[-1]`` equal to the
    flat value length — everything the segmented kernels assume without
    checking.  Used by the stores' ``verify()`` audit.
    """
    np = _require_numpy()
    indptr = np.asarray(indptr)
    errors: List[str] = []
    if indptr.ndim != 1 or indptr.shape[0] != classes + 1:
        errors.append(
            f"{name}: indptr has shape {indptr.shape}, expected ({classes + 1},)"
        )
        return errors
    if classes >= 0 and indptr.shape[0] and int(indptr[0]) != 0:
        errors.append(f"{name}: indptr[0] == {int(indptr[0])}, expected 0")
    if indptr.shape[0] > 1 and bool(np.any(np.diff(indptr) < 0)):
        errors.append(f"{name}: indptr is not monotone non-decreasing")
    if indptr.shape[0] and int(indptr[-1]) != values_len:
        errors.append(
            f"{name}: indptr[-1] == {int(indptr[-1])} but {values_len} values"
        )
    return errors


def gather_segments(values, indptr, order):
    """Reorder CSR segments by ``order``; returns ``(values, indptr)``.

    Segment ``order[j]`` of the input becomes segment ``j`` of the output —
    the ragged-column counterpart of ``dense[order]``.
    """
    np = _require_numpy()
    counts = np.diff(indptr)
    new_counts = counts[order]
    new_indptr = np.zeros(new_counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_indptr[1:])
    total = int(new_indptr[-1])
    if total == 0:
        return values[:0], new_indptr
    starts = indptr[:-1][order]
    flat = np.repeat(starts - new_indptr[:-1], new_counts) + np.arange(
        total, dtype=np.int64
    )
    return values[flat], new_indptr


def concat_csr(columns: Sequence[Tuple]) -> Tuple:
    """Concatenate ``(values, indptr)`` CSR columns, rebasing the offsets."""
    np = _require_numpy()
    if not columns:
        return np.zeros(0), np.zeros(1, dtype=np.int64)
    values = np.concatenate([v for v, _ in columns])
    parts = [np.zeros(1, dtype=np.int64)]
    offset = 0
    for _, indptr in columns:
        parts.append(np.asarray(indptr[1:], dtype=np.int64) + offset)
        offset += int(indptr[-1])
    return values, np.concatenate(parts)


# --------------------------------------------------------------------------- #
# α-grid equilibrium masks
# --------------------------------------------------------------------------- #

#: Tolerance of the exact Definition 3 checks (matches violations_at).
BCG_TOL = 1e-12
#: Tolerance of the UCG interval membership test (matches AlphaInterval.contains).
UCG_TOL = 1e-9


@obs.timed_kernel("bcg_stable_mask")
def bcg_stable_mask(rem_min, add_lo, add_hi, add_indptr, alphas):
    """Pairwise stability (exact Definition 3) of every class at every ``α``.

    Parameters
    ----------
    rem_min:
        Per-class minimum removal increase over every (edge, endpoint) pair
        (``inf`` for edgeless classes).
    add_lo, add_hi, add_indptr:
        Ragged per-non-edge ``(min, max)`` addition-saving pairs in CSR
        layout, one segment per class.
    alphas:
        Link-cost grid.

    Returns
    -------
    ``bool[n_classes, n_alphas]`` — bit-identical to evaluating
    :meth:`PairwiseStabilityProfile.is_stable_at` per class per grid point:
    a class is stable at ``α`` iff no removal increase is below ``α - tol``
    and no non-edge has ``max > α + tol`` with ``min >= α - tol``.
    """
    np = _require_numpy()
    rem_min = np.asarray(rem_min, dtype=np.float64)
    lo = np.asarray(add_lo).astype(np.float64, copy=False)
    hi = np.asarray(add_hi).astype(np.float64, copy=False)
    alpha_list = [float(a) for a in alphas]
    out = np.empty((rem_min.shape[0], len(alpha_list)), dtype=bool)
    for column, alpha in enumerate(alpha_list):
        below = alpha - BCG_TOL
        above = alpha + BCG_TOL
        severs = rem_min < below
        adds = segment_any((hi > above) & (lo >= below), add_indptr)
        np.logical_not(severs | adds, out=out[:, column])
    return out


@obs.timed_kernel("ucg_nash_mask")
def ucg_nash_mask(iv_lo, iv_hi, iv_indptr, alphas):
    """UCG Nash-supportability of every class at every ``α``.

    Bit-identical to :meth:`AlphaIntervalSet.contains` per class per grid
    point: membership in any stored closed interval, with the tolerance
    folded into the *endpoint* side of each comparison exactly as
    :meth:`AlphaInterval.contains` does.
    """
    np = _require_numpy()
    lo = np.asarray(iv_lo, dtype=np.float64) - UCG_TOL
    hi = np.asarray(iv_hi, dtype=np.float64) + UCG_TOL
    alpha_list = [float(a) for a in alphas]
    n_classes = iv_indptr.shape[0] - 1
    out = np.empty((n_classes, len(alpha_list)), dtype=bool)
    for column, alpha in enumerate(alpha_list):
        out[:, column] = segment_any((lo <= alpha) & (alpha <= hi), iv_indptr)
    return out


def ucg_interval_columns(interval_sets) -> Tuple:
    """Pack per-class :class:`AlphaIntervalSet` results into CSR columns.

    Returns ``(lo, hi, indptr)``: flat float64 endpoint arrays plus the
    ``int64`` CSR offsets, one segment per class in input order — the exact
    layout :class:`~repro.analysis.store.CensusStore` persists, so a store
    round-trip reproduces every endpoint bit-for-bit.
    """
    np = _require_numpy()
    lo: List[float] = []
    hi: List[float] = []
    indptr = np.zeros(len(interval_sets) + 1, dtype=np.int64)
    for i, interval_set in enumerate(interval_sets):
        for interval in interval_set.intervals:
            lo.append(interval.lo)
            hi.append(interval.hi)
        indptr[i + 1] = len(lo)
    return (
        np.asarray(lo, dtype=np.float64),
        np.asarray(hi, dtype=np.float64),
        indptr,
    )


def weighted_ucg_windows(iv_lo, iv_hi, iv_indptr) -> Tuple:
    """Per-class UCG supportability windows ``(t_min, t_max)`` from CSR columns.

    The hull of each class's stored interval set: ``t_min`` is the smallest
    supportable threshold, ``t_max`` the largest.  Classes with no interval
    report ``(inf, -inf)`` — an empty window with ``t_min > t_max``, so
    window emptiness is a plain comparison downstream.  Works unchanged for
    scalar α-columns (the scalar game is the ``w ≡ 1`` special case).
    """
    np = _require_numpy()
    lo = np.asarray(iv_lo).astype(np.float64, copy=False)
    hi = np.asarray(iv_hi).astype(np.float64, copy=False)
    return (
        segment_min(lo, iv_indptr, empty=float("inf")),
        segment_max(hi, iv_indptr, empty=float("-inf")),
    )


def _check_weight_columns(*weight_arrays) -> None:
    """Reject weighted coefficient columns the kernels cannot divide by.

    The weighted kernels compute ``Δ / w`` windows and ``t·w`` thresholds;
    a zero, negative or non-finite coefficient would silently turn whole
    mask/window columns into NaN/inf.  Raises a clear :class:`ValueError`
    instead (the columns normally come pre-validated from
    :func:`repro.engine.batch.batch_weighted_columns`, but persisted
    artifacts and hand-built columns enter here directly).
    """
    np = _require_numpy()
    for weights in weight_arrays:
        weights = np.asarray(weights)
        if weights.size and not bool(
            np.all((weights > 0.0) & np.isfinite(weights))
        ):
            bad = weights[~((weights > 0.0) & np.isfinite(weights))][0]
            raise ValueError(
                "weighted kernels need strictly positive, finite "
                f"coefficients; got a weight column entry {float(bad)!r}"
            )


@obs.timed_kernel("weighted_bcg_stable_mask")
def weighted_bcg_stable_mask(
    rem_w, rem_delta, rem_indptr,
    add_w_u, add_s_u, add_w_v, add_s_v, add_indptr,
    ts,
):
    """Weighted pairwise stability of every class at every scale ``t``.

    The heterogeneous-α counterpart of :func:`bcg_stable_mask`: each probe
    carries its own coefficient ``w`` (see
    :func:`repro.engine.batch.batch_weighted_columns` for the column
    layout), and the class is stable under ``C = t·W`` iff no removal probe
    has ``Δ < t·w - tol`` and no non-edge has one endpoint with
    ``save > t·w + tol`` while the other has ``save >= t·w - tol``.

    Every comparison keeps the exact scalar expression shape of
    :meth:`WeightedStabilityProfile.violations_at` (which in turn mirrors
    :meth:`PairwiseStabilityProfile.violations_at`), so with unit weights
    and ``ts`` equal to the α-grid the mask is bit-identical to
    :func:`bcg_stable_mask`.

    Returns ``bool[n_classes, n_ts]``.
    """
    np = _require_numpy()
    _check_weight_columns(rem_w, add_w_u, add_w_v)
    rem_w = np.asarray(rem_w).astype(np.float64, copy=False)
    rem_delta = np.asarray(rem_delta).astype(np.float64, copy=False)
    w_u = np.asarray(add_w_u).astype(np.float64, copy=False)
    s_u = np.asarray(add_s_u).astype(np.float64, copy=False)
    w_v = np.asarray(add_w_v).astype(np.float64, copy=False)
    s_v = np.asarray(add_s_v).astype(np.float64, copy=False)
    t_list = [float(t) for t in ts]
    n_classes = rem_indptr.shape[0] - 1
    out = np.empty((n_classes, len(t_list)), dtype=bool)
    for column, t in enumerate(t_list):
        severs = segment_any(rem_delta < t * rem_w - BCG_TOL, rem_indptr)
        adds = segment_any(
            ((s_u > t * w_u + BCG_TOL) & (s_v >= t * w_v - BCG_TOL))
            | ((s_v > t * w_v + BCG_TOL) & (s_u >= t * w_u - BCG_TOL)),
            add_indptr,
        )
        np.logical_not(severs | adds, out=out[:, column])
    return out


@obs.timed_kernel("weighted_stability_windows")
def weighted_stability_windows(
    rem_w, rem_delta, rem_indptr,
    add_w_u, add_s_u, add_w_v, add_s_v, add_indptr,
):
    """Per-class weighted Lemma 2 windows ``(t_min, t_max)`` in the scale.

    ``t_max`` is the per-class minimum ``Δ / w`` over removal probes
    (``inf`` for edgeless classes); ``t_min`` is the largest
    least-interested-endpoint ``save / w`` over the class's non-edges
    (clamped at 0).  With unit weights this is exactly
    :func:`stability_windows`; per class it equals
    :meth:`WeightedStabilityProfile.stability_t_interval`.
    """
    np = _require_numpy()
    _check_weight_columns(rem_w, add_w_u, add_w_v)
    rem_w = np.asarray(rem_w).astype(np.float64, copy=False)
    rem_delta = np.asarray(rem_delta).astype(np.float64, copy=False)
    t_max = segment_min(rem_delta / rem_w, rem_indptr)
    ratio = np.minimum(
        np.asarray(add_s_u).astype(np.float64, copy=False)
        / np.asarray(add_w_u).astype(np.float64, copy=False),
        np.asarray(add_s_v).astype(np.float64, copy=False)
        / np.asarray(add_w_v).astype(np.float64, copy=False),
    )
    t_min = np.maximum(segment_max(ratio, add_indptr, empty=0.0), 0.0)
    return t_min, t_max


def _segment_any_stack(flags, indptr):
    """OR-reduce a ``(K, P)`` boolean stack over CSR segments of axis 1.

    The K-row counterpart of :func:`segment_any`: segment ``i`` of every row
    is ``flags[:, indptr[i]:indptr[i+1]]`` and the result is
    ``bool[K, n_segments]`` (empty segments → ``False``).
    """
    np = _require_numpy()
    counts = np.diff(indptr)
    rows = flags.shape[0]
    out = np.zeros((rows, counts.shape[0]), dtype=bool)
    if flags.shape[1] == 0 or counts.shape[0] == 0:
        return out
    nonempty = counts > 0
    reduced = np.logical_or.reduceat(flags, indptr[:-1][nonempty], axis=1)
    out[:, nonempty] = reduced
    return out


def _segment_reduce_stack(values, indptr, ufunc, empty: float):
    np = _require_numpy()
    counts = np.diff(indptr)
    rows = values.shape[0]
    out = np.full((rows, counts.shape[0]), empty, dtype=np.float64)
    if values.shape[1] == 0 or counts.shape[0] == 0:
        return out
    values = values.astype(np.float64, copy=False)
    nonempty = counts > 0
    reduced = ufunc.reduceat(values, indptr[:-1][nonempty], axis=1)
    out[:, nonempty] = reduced
    return out


def stacked_weight_columns(weight_matrices, rem_pay, rem_other, add_u, add_v):
    """Gather per-draw probe coefficients into dense ``(K, P)`` weight stacks.

    ``weight_matrices`` is a ``(K, n, n)`` stack of dense coefficient
    matrices (one per draw, each a ``CostModel.coefficient_matrix``);
    ``rem_pay``/``rem_other`` index the paying and receiving endpoint of
    every removal probe and ``add_u``/``add_v`` the endpoints of every
    addition probe (the :class:`~repro.analysis.delta_store.DeltaStore`
    endpoint columns).  Returns
    ``(rem_w[K, P_rem], add_w_u[K, P_add], add_w_v[K, P_add])`` — exactly
    the coefficient columns :func:`repro.engine.batch.batch_weighted_columns`
    would emit for each draw, gathered in one fancy-indexing pass instead of
    K per-draw Python assembly loops.
    """
    np = _require_numpy()
    stack = np.asarray(weight_matrices, dtype=np.float64)
    if stack.ndim == 2:
        stack = stack[None, :, :]
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise ValueError(
            "weight_matrices must be a (K, n, n) stack of square matrices, "
            f"got shape {stack.shape}"
        )
    rem_pay = np.asarray(rem_pay, dtype=np.intp)
    rem_other = np.asarray(rem_other, dtype=np.intp)
    add_u = np.asarray(add_u, dtype=np.intp)
    add_v = np.asarray(add_v, dtype=np.intp)
    rem_w = stack[:, rem_pay, rem_other]
    add_w_u = stack[:, add_u, add_v]
    add_w_v = stack[:, add_v, add_u]
    return rem_w, add_w_u, add_w_v


@obs.timed_kernel("weighted_bcg_stable_mask_multi")
def weighted_bcg_stable_mask_multi(
    rem_delta, rem_indptr, add_s_u, add_s_v, add_indptr,
    rem_w, add_w_u, add_w_v,
    ts,
):
    """Weighted pairwise stability of K draws × all classes × a ``t`` grid.

    The multi-draw counterpart of :func:`weighted_bcg_stable_mask`: the
    Δdist columns (``rem_delta``, ``add_s_u``, ``add_s_v``) are shared by
    every draw (they depend only on topology), while each draw brings its
    own ``(K, P)`` coefficient stacks from :func:`stacked_weight_columns`.
    Every comparison is the *same elementwise float64 expression* as the
    per-draw kernel — broadcasting over the K axis adds no arithmetic — so
    row ``k`` of the result is bit-identical to calling
    :func:`weighted_bcg_stable_mask` with draw ``k``'s columns.

    Returns ``bool[K, n_classes, n_ts]``.
    """
    np = _require_numpy()
    _check_weight_columns(rem_w, add_w_u, add_w_v)
    rem_w = np.asarray(rem_w).astype(np.float64, copy=False)
    w_u = np.asarray(add_w_u).astype(np.float64, copy=False)
    w_v = np.asarray(add_w_v).astype(np.float64, copy=False)
    rem_delta = np.asarray(rem_delta).astype(np.float64, copy=False)[None, :]
    s_u = np.asarray(add_s_u).astype(np.float64, copy=False)[None, :]
    s_v = np.asarray(add_s_v).astype(np.float64, copy=False)[None, :]
    t_list = [float(t) for t in ts]
    draws = rem_w.shape[0]
    n_classes = rem_indptr.shape[0] - 1
    out = np.empty((draws, n_classes, len(t_list)), dtype=bool)
    for column, t in enumerate(t_list):
        severs = _segment_any_stack(rem_delta < t * rem_w - BCG_TOL, rem_indptr)
        adds = _segment_any_stack(
            ((s_u > t * w_u + BCG_TOL) & (s_v >= t * w_v - BCG_TOL))
            | ((s_v > t * w_v + BCG_TOL) & (s_u >= t * w_u - BCG_TOL)),
            add_indptr,
        )
        np.logical_not(severs | adds, out=out[:, :, column])
    return out


@obs.timed_kernel("weighted_stability_windows_multi")
def weighted_stability_windows_multi(
    rem_delta, rem_indptr, add_s_u, add_s_v, add_indptr,
    rem_w, add_w_u, add_w_v,
):
    """Per-class weighted windows ``(t_min, t_max)`` for K draws at once.

    The multi-draw counterpart of :func:`weighted_stability_windows` over
    shared Δdist columns and ``(K, P)`` coefficient stacks; row ``k`` is
    bit-identical to the per-draw kernel on draw ``k``'s columns (same
    elementwise divisions, same ``reduceat`` reductions — min/max are
    order-insensitive).  Returns ``(t_min[K, C], t_max[K, C])``.
    """
    np = _require_numpy()
    _check_weight_columns(rem_w, add_w_u, add_w_v)
    rem_w = np.asarray(rem_w).astype(np.float64, copy=False)
    rem_delta = np.asarray(rem_delta).astype(np.float64, copy=False)[None, :]
    t_max = _segment_reduce_stack(
        rem_delta / rem_w, rem_indptr, np.minimum, float("inf")
    )
    ratio = np.minimum(
        np.asarray(add_s_u).astype(np.float64, copy=False)[None, :]
        / np.asarray(add_w_u).astype(np.float64, copy=False),
        np.asarray(add_s_v).astype(np.float64, copy=False)[None, :]
        / np.asarray(add_w_v).astype(np.float64, copy=False),
    )
    t_min = np.maximum(_segment_reduce_stack(ratio, add_indptr, np.maximum, 0.0), 0.0)
    return t_min, t_max


@obs.timed_kernel("stability_windows")
def stability_windows(rem_min, add_lo, add_indptr):
    """Per-class Lemma 2 windows ``(α_min, α_max)`` from the columns.

    ``α_max`` is the per-class minimum removal increase; ``α_min`` is the
    largest least-interested-endpoint saving over the class's non-edges
    (clamped at 0, like :attr:`PairwiseStabilityProfile.alpha_min`).
    """
    np = _require_numpy()
    alpha_max = np.asarray(rem_min, dtype=np.float64)
    alpha_min = np.maximum(segment_max(add_lo, add_indptr, empty=0.0), 0.0)
    return alpha_min, alpha_max


# --------------------------------------------------------------------------- #
# Ensemble aggregation
# --------------------------------------------------------------------------- #


def ensemble_stats(values, indptr, quantiles: Sequence[float] = (0.25, 0.5, 0.75)):
    """Per-position mean/std/min/max/quantiles over equal-length segments.

    The ensemble runner concatenates one value row per seeded draw (per-``t``
    stable counts, per-class window endpoints) into a flat array with a CSR
    ``indptr``; this kernel aggregates **across draws at each position**.
    All segments must have the same length ``L`` (an ensemble is a stack, not
    a ragged family) — violating rows raise instead of aggregating garbage.

    Returns a dict of plain Python lists of length ``L``: ``mean``, ``std``
    (population, ``ddof=0``), ``min``, ``max``, and ``quantiles`` — a
    ``{q: [...]}`` mapping using NumPy's default linear interpolation.  One
    deterministic vectorised pass, identical for any worker count upstream.
    """
    np = _require_numpy()
    values = np.asarray(values, dtype=np.float64)
    indptr = np.asarray(indptr, dtype=np.int64)
    counts = np.diff(indptr)
    draws = counts.shape[0]
    if draws == 0:
        raise ValueError("ensemble aggregation needs at least one draw")
    if not bool(np.all(counts == counts[0])):
        raise ValueError(
            "ensemble segments must all have the same length, got lengths "
            f"{sorted(set(counts.tolist()))}"
        )
    stacked = values[indptr[0]:indptr[-1]].reshape(draws, int(counts[0]))
    # Positions that are inf in every draw (e.g. the t_max window of a tree
    # class, stable for all large scales) have mean inf and an undefined
    # spread: std/quantile interpolation legitimately produce nan there, so
    # the inf-minus-inf warnings are expected, not numerical accidents.
    with np.errstate(invalid="ignore"):
        return {
            "mean": stacked.mean(axis=0).tolist(),
            "std": stacked.std(axis=0).tolist(),
            "min": stacked.min(axis=0).tolist(),
            "max": stacked.max(axis=0).tolist(),
            "quantiles": {
                float(q): np.quantile(stacked, float(q), axis=0).tolist()
                for q in quantiles
            },
        }


# --------------------------------------------------------------------------- #
# Packed upper-triangle certificates
# --------------------------------------------------------------------------- #


def certificate_words(n: int) -> int:
    """Number of little-endian 64-bit words per packed certificate."""
    return (n * (n - 1) // 2 + 63) // 64


def pack_certificates(bitstrings: Sequence[int], n: int):
    """Pack upper-triangle adjacency bitstrings into a ``uint64[C, W]`` array.

    Bit ``k`` of a bitstring (the k-th vertex pair in lexicographic order,
    as produced by :meth:`Graph.adjacency_bitstring`) lands in bit
    ``k % 64`` of word ``k // 64``.
    """
    np = _require_numpy()
    words = certificate_words(n)
    out = np.zeros((len(bitstrings), words), dtype=np.uint64)
    mask = (1 << 64) - 1
    for row, bits in enumerate(bitstrings):
        for w in range(words):
            out[row, w] = (bits >> (64 * w)) & mask
    return out


def unpack_certificate(word_row, n: int) -> int:
    """The Python-int upper-triangle bitstring of one packed certificate."""
    bits = 0
    for w, word in enumerate(word_row.tolist()):
        bits |= int(word) << (64 * w)
    return bits


def certificate_to_graph(word_row, n: int) -> Graph:
    """Rebuild the labelled :class:`Graph` encoded by one packed certificate."""
    bits = unpack_certificate(word_row, n)
    edges = []
    k = 0
    for u in range(n):
        for v in range(u + 1, n):
            if (bits >> k) & 1:
                edges.append((u, v))
            k += 1
    return Graph(n, edges)


def canonical_sort_indices(num_edges, cert_words, n: int):
    """The permutation sorting classes into ``class_sort_key`` order.

    :func:`repro.graphs.enumeration.class_sort_key` orders classes by edge
    count, then lexicographically by the sorted edge list.  On packed
    certificates the tie-break is equivalent to: at the first vertex pair
    (in lexicographic pair order) where two classes differ, the class
    *containing* that pair comes first.  That is an ascending lexicographic
    comparison of the **inverted** bit sequence read from pair 0 upward, so
    the permutation falls out of one ``np.lexsort`` over the inverted,
    big-endian-packed certificate bytes.
    """
    np = _require_numpy()
    num_edges = np.asarray(num_edges)
    n_classes = num_edges.shape[0]
    pair_count = n * (n - 1) // 2
    keys: List = []
    if pair_count and n_classes:
        little = np.ascontiguousarray(cert_words, dtype="<u8")
        bytes_view = little.view(np.uint8).reshape(n_classes, -1)
        bits = np.unpackbits(bytes_view, axis=1, bitorder="little")[:, :pair_count]
        packed = np.packbits(1 - bits, axis=1, bitorder="big")
        # np.lexsort treats the *last* key as primary: byte 0 (pairs 0..7)
        # is the most significant tie-break, num_edges the primary key.
        keys.extend(packed[:, b] for b in range(packed.shape[1] - 1, -1, -1))
    keys.append(num_edges)
    return np.lexsort(keys)
