"""The incremental distance oracle backing the stability computations.

See the package docstring of :mod:`repro.engine` for the caching contract.
The oracle deliberately lives *below* :mod:`repro.core`: it knows nothing
about games or link costs, only about hop-distance sums of immutable graphs
and how those sums respond to a single-edge toggle.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..graphs.distances import (
    INFINITY,
    _rows_without_edge,
    bfs_distances,
    bitset_distance_sum,
)
from ..graphs.graph import Graph, normalize_edge
from ..graphs.properties import bridges

Edge = Tuple[int, int]

EndpointKey = Tuple[Edge, int]
DeltaTables = Tuple[Dict[EndpointKey, float], Dict[EndpointKey, float]]


def distance_delta(after: float, before: float) -> float:
    """``after - before`` with the paper's ``∞`` conventions made explicit.

    When both quantities are infinite the player cost does not change (an
    unreachable player stays unreachable), so the delta is 0; mixed cases
    propagate the sign of the infinite term.  This keeps the exact
    Definition 2/3 checks meaningful on disconnected graphs.
    """
    if after == INFINITY and before == INFINITY:
        return 0.0
    return after - before


def removal_probe(
    graph: Graph, edge: Edge, source: int, base: float, bridge_edges
) -> float:
    """Exact removal increase for one ``(edge, source)`` probe.

    The single authoritative per-probe implementation shared by the oracle's
    batched :meth:`DistanceOracle.stability_deltas` pass and the
    orbit-pruned path of :mod:`repro.engine.batch`: severing a *bridge*
    disconnects the source from the far side (``∞``, or 0 when the source's
    cost was already infinite); any other edge costs one forbidden-edge
    bitset BFS.
    """
    if edge in bridge_edges:
        return INFINITY if base != INFINITY else 0.0
    masked = _rows_without_edge(graph, edge)
    return distance_delta(bitset_distance_sum(masked, graph.n, source), base)


def addition_probe(
    vector: List[float], shifted_other: List[float], base: float
) -> float:
    """Exact addition saving for one ``(non-edge, source)`` probe.

    ``shifted_other`` is the other endpoint's distance vector plus one; with
    a single new edge the updated distances from the source are exactly
    ``min(d_source, 1 + d_other)``, so no BFS is needed.  Shared by the
    oracle and the orbit-pruned batch path.
    """
    return distance_delta(base, sum(map(min, vector, shifted_other)))


class _GraphEntry:
    """Per-graph memo: distance vectors, distance sums, toggle-delta tables."""

    __slots__ = ("vectors", "sums", "removal", "profile")

    def __init__(self, n: int) -> None:
        self.vectors: Dict[int, List[float]] = {}
        self.sums: List[Optional[float]] = [None] * n
        self.removal: Dict[EndpointKey, float] = {}
        self.profile: Optional[DeltaTables] = None


class DistanceOracle:
    """Caches per-graph distance sums and answers edge-toggle deltas.

    Parameters
    ----------
    max_graphs:
        Upper bound on the number of graphs whose derived data is retained
        (least-recently-used eviction).  Long dynamics runs visit thousands
        of transient graphs, so the cache must not grow without bound;
        censuses touch each graph a bounded number of times and fit easily.
    """

    def __init__(self, max_graphs: int = 4096) -> None:
        if max_graphs < 1:
            raise ValueError("max_graphs must be positive")
        self._max_graphs = max_graphs
        self._entries: "OrderedDict[Graph, _GraphEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #

    def _entry(self, graph: Graph) -> _GraphEntry:
        entry = self._entries.get(graph)
        if entry is None:
            entry = _GraphEntry(graph.n)
            self._entries[graph] = entry
            if len(self._entries) > self._max_graphs:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(graph)
        return entry

    def clear(self) -> None:
        """Drop every cached graph (used by cold-start benchmarks)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Base quantities
    # ------------------------------------------------------------------ #

    def distance_vector(self, graph: Graph, source: int) -> List[float]:
        """Cached single-source distance vector of ``graph`` from ``source``."""
        entry = self._entry(graph)
        vector = entry.vectors.get(source)
        if vector is None:
            self.misses += 1
            vector = bfs_distances(graph, source)
            entry.vectors[source] = vector
            if entry.sums[source] is None:
                entry.sums[source] = sum(vector)
        else:
            self.hits += 1
        return vector

    def distance_sum(self, graph: Graph, source: int) -> float:
        """Cached distance sum of ``graph`` from ``source``."""
        if not graph.n:
            return 0.0
        entry = self._entry(graph)
        value = entry.sums[source]
        if value is None:
            self.misses += 1
            value = bitset_distance_sum(graph.adjacency_rows(), graph.n, source)
            entry.sums[source] = value
        else:
            self.hits += 1
        return value

    def distance_sums(self, graph: Graph) -> List[float]:
        """Per-vertex distance sums (cached)."""
        return [self.distance_sum(graph, source) for source in range(graph.n)]

    # ------------------------------------------------------------------ #
    # Edge-toggle deltas
    # ------------------------------------------------------------------ #

    def addition_saving(self, graph: Graph, edge: Edge, endpoint: int) -> float:
        """Decrease of ``endpoint``'s distance cost from adding non-edge ``edge``.

        Answered from the two cached endpoint distance vectors without any
        BFS: with a single new edge ``{u, v}`` the updated distances from
        ``u`` are exactly ``min(d(u, k), 1 + d(v, k))``.
        """
        edge = normalize_edge(*edge)
        entry = self._entry(graph)
        if entry.profile is not None:
            self.hits += 1
            return entry.profile[1][(edge, endpoint)]
        u, v = edge
        other = v if endpoint == u else u
        d_end = self.distance_vector(graph, endpoint)
        d_other = self.distance_vector(graph, other)
        new_sum = 0
        for k in range(graph.n):
            through = 1 + d_other[k]
            direct = d_end[k]
            new_sum += through if through < direct else direct
        base = self.distance_sum(graph, endpoint)
        return distance_delta(base, new_sum)

    def removal_increase(self, graph: Graph, edge: Edge, endpoint: int) -> float:
        """Increase of ``endpoint``'s distance cost from severing ``edge``.

        Recomputes the single affected source with a forbidden-edge bitset
        BFS; memoised per ``(edge, endpoint)``.
        """
        edge = normalize_edge(*edge)
        entry = self._entry(graph)
        if entry.profile is not None:
            self.hits += 1
            return entry.profile[0][(edge, endpoint)]
        key = (edge, endpoint)
        value = entry.removal.get(key)
        if value is None:
            self.misses += 1
            rows = _rows_without_edge(graph, edge)
            without = bitset_distance_sum(rows, graph.n, endpoint)
            value = distance_delta(without, self.distance_sum(graph, endpoint))
            entry.removal[key] = value
        else:
            self.hits += 1
        return value

    def cached_stability_deltas(self, graph: Graph) -> Optional[DeltaTables]:
        """The memoised deviation tables if present (fresh copies), else ``None``.

        Lets external probe strategies (e.g. the orbit-pruned per-graph path
        of :mod:`repro.engine.batch`) reuse a profile that
        :meth:`stability_deltas` already computed without recomputing it.
        """
        entry = self._entries.get(graph)
        if entry is None or entry.profile is None:
            return None
        self._entries.move_to_end(graph)
        self.hits += 1
        return (dict(entry.profile[0]), dict(entry.profile[1]))

    def store_stability_deltas(
        self,
        graph: Graph,
        removal: Dict[EndpointKey, float],
        addition: Dict[EndpointKey, float],
    ) -> None:
        """Seed the per-graph profile memo with externally computed tables.

        The inverse of :meth:`cached_stability_deltas`: a caller that derived
        the complete deviation tables some other exact way (orbit expansion,
        the vectorised batch kernel) deposits them so later
        :meth:`stability_deltas` calls hit the cache.  Stored copies are
        private to the oracle.
        """
        entry = self._entry(graph)
        if entry.profile is None:
            entry.profile = (dict(removal), dict(addition))

    def stability_deltas(self, graph: Graph) -> DeltaTables:
        """All single-link deviation payoffs of ``graph`` in one batched pass.

        Returns ``(removal_increase, addition_saving)`` tables keyed by
        ``((u, v), endpoint)`` — exactly the payload of a
        :class:`~repro.core.stability_intervals.PairwiseStabilityProfile` —
        computed with the cheapest exact strategy per probe:

        * every endpoint distance vector is computed once (``n`` BFS total);
        * severing a *bridge* disconnects the endpoint from the far side, so
          the removal increase is ``∞`` (or 0 when the endpoint's cost was
          already infinite) without any BFS;
        * non-bridge removals run one single-source bitset BFS;
        * additions never run a BFS: ``min(d_w, 1 + d_other)`` is folded at C
          speed over the two cached vectors.

        The tables are memoised per graph, so censuses and repeated interval
        queries pay the batch exactly once.  The returned dicts are fresh
        copies owned by the caller; mutating them cannot corrupt the cache.
        """
        entry = self._entry(graph)
        if entry.profile is not None:
            self.hits += 1
            return (dict(entry.profile[0]), dict(entry.profile[1]))
        self.misses += 1
        n = graph.n

        vectors = []
        for source in range(n):
            vector = entry.vectors.get(source)
            if vector is None:
                vector = bfs_distances(graph, source)
                entry.vectors[source] = vector
            vectors.append(vector)
        sums = [sum(vector) for vector in vectors]
        entry.sums = list(sums)
        shifted = [[d + 1 for d in vector] for vector in vectors]

        removal: Dict[EndpointKey, float] = {}
        bridge_edges = set(bridges(graph))
        for (u, v) in graph.sorted_edges():
            for endpoint in (u, v):
                removal[((u, v), endpoint)] = removal_probe(
                    graph, (u, v), endpoint, sums[endpoint], bridge_edges
                )

        addition: Dict[EndpointKey, float] = {}
        for (u, v) in graph.non_edges():
            addition[((u, v), u)] = addition_probe(vectors[u], shifted[v], sums[u])
            addition[((u, v), v)] = addition_probe(vectors[v], shifted[u], sums[v])

        entry.profile = (removal, addition)
        return (dict(removal), dict(addition))

    def toggle_delta(self, graph: Graph, edge: Edge, endpoint: int) -> float:
        """Signed change of ``endpoint``'s distance cost from toggling ``edge``.

        Positive for a removal that hurts, negative for an addition that
        helps — the uniform probe used by the dynamics layers.
        """
        u, v = edge
        if graph.has_edge(u, v):
            return self.removal_increase(graph, edge, endpoint)
        return -self.addition_saving(graph, edge, endpoint)


#: Process-wide default oracle shared by the core layers when the caller does
#: not manage one explicitly.  Worker processes of the parallel pool each get
#: their own copy (module state is per-process).
_DEFAULT_ORACLE: Optional[DistanceOracle] = None


def get_default_oracle() -> DistanceOracle:
    """The shared process-wide :class:`DistanceOracle` instance."""
    global _DEFAULT_ORACLE
    if _DEFAULT_ORACLE is None:
        _DEFAULT_ORACLE = DistanceOracle()
    return _DEFAULT_ORACLE
