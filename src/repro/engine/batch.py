"""Vectorised, orbit-pruned batch backend for stability-delta computation.

The exhaustive censuses ask the same question — "all single-link deviation
payoffs of this graph" — hundreds of thousands of times for same-sized
graphs.  Instead of running thousands of tiny per-probe BFS traversals in the
interpreter, this module stacks *every probe of every graph* into dense NumPy
tensors and runs the whole census as a handful of batched boolean matrix
products:

* all-pairs hop distances for a group of ``G`` graphs on ``n`` vertices are
  ``diameter``-many batched ``(G, n, n) @ (G, n, n)`` frontier expansions;
* every edge-removal probe of every graph becomes one slice of a single
  ``(P, n, n)`` tensor whose BFS levels advance in lock-step;
* every edge-addition probe is answered with one vectorised
  ``min(d_u, 1 + d_v)`` reduction over the all-pairs matrix — no BFS at all.

On top of the tensorisation, probes can be **orbit-pruned**: the deviation
payoff of endpoint ``u`` toggling ``{u, v}`` is constant on each automorphism
orbit of ordered vertex pairs (see
:func:`repro.graphs.isomorphism.ordered_pair_orbits`), so only one
representative per orbit needs evaluating, with the result expanded across
the orbit — cutting the probe count by the graph's symmetry factor.  Where
pruning pays depends on the backend, and the ``use_orbits=None`` default
follows the measured economics:

* on the **per-graph paths** (NumPy missing, or ``n > 63``) every removal
  probe is a real BFS, so pruning engages automatically whenever the
  symmetry data is already memoised on the graph instance (as it is for
  every graph produced by the canonical-augmentation enumerator) — no
  caller ever pays a canonical search it did not already need;
* on the **vectorised path** a probe is one slice of a batched tensor and
  costs less than the per-orbit Python bookkeeping it would save
  (benchmarked at n = 7..9), so the default keeps full tensor probing and
  pruning runs only on explicit request (``use_orbits=True``).

The numeric contract is identical to :class:`repro.engine.DistanceOracle`
(and therefore to the seed's per-probe BFS): hop counts, ``inf`` for
unreachable pairs, and the ``∞ - ∞ = 0`` delta convention.  Orbit expansion
is exact, not approximate: orbit-mates are relabellings of the same probe and
all quantities are integer-valued (or infinite), so expanded tables are
bit-identical to full probing.  When NumPy is unavailable the functions
transparently fall back to the per-graph oracle path, so the engine never
*requires* the dependency.
"""

from __future__ import annotations

import functools
import math
from typing import Dict, List, Optional, Sequence, Tuple

try:  # NumPy ships with the toolchain but the engine must not require it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from .. import obs
from ..graphs.graph import Graph
from ..graphs.isomorphism import (
    cached_canonical_record,
    canonical_record,
    ordered_pair_orbits,
)
from ..graphs.properties import bridges
from .oracle import (
    DeltaTables,
    DistanceOracle,
    addition_probe,
    get_default_oracle,
    removal_probe,
)

Edge = Tuple[int, int]

#: Per-n interned ``((u, v), endpoint)`` key tuples.  The n = 9 census holds
#: profiles for ~261k graphs whose delta tables all share the same key space;
#: interning the tuples keeps one copy per (pair, endpoint) instead of one
#: per graph.
_KEY_TABLES: Dict[int, Dict[Tuple[int, int, int], Tuple[Edge, int]]] = {}

#: An orbit-pruned probe plan: ``(removal_orbits, addition_orbits)`` where
#: each orbit is a list of ordered pairs ``(endpoint, other)`` sharing one
#: deviation value.
ProbePlan = Tuple[List[List[Tuple[int, int]]], List[List[Tuple[int, int]]]]


def numpy_available() -> bool:
    """Whether the vectorised batch backend can run."""
    return _np is not None


def _instrument_batch(name: str):
    """Telemetry wrapper for the batch entry points (graphs come first).

    Each call observes its wall seconds into
    ``repro_kernel_seconds{kernel=name}`` and tallies the batch size and
    vertex-pair probe volume (``n·(n-1)/2`` per graph — the upper bound a
    full-probing pass evaluates).  One flag check when disabled; the raw
    function stays reachable as ``__wrapped__`` for the bench ceiling.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(graphs, *args, **kwargs):
            if not obs.metrics_enabled():
                return fn(graphs, *args, **kwargs)
            graphs = list(graphs)
            obs.counter(
                "repro_kernel_graphs_total",
                "Graphs processed per batch-kernel call",
                kernel=name,
            ).inc(len(graphs))
            obs.counter(
                "repro_kernel_probes_total",
                "Vertex-pair probes submitted per batch kernel",
                kernel=name,
            ).inc(sum(g.n * (g.n - 1) // 2 for g in graphs))
            with obs.histogram(
                "repro_kernel_seconds",
                "Wall seconds per vectorised-kernel call",
                kernel=name,
            ).time():
                return fn(graphs, *args, **kwargs)

        return wrapper

    return decorate


def _endpoint_keys(n: int) -> Dict[Tuple[int, int, int], Tuple[Edge, int]]:
    table = _KEY_TABLES.get(n)
    if table is None:
        table = {}
        for u in range(n):
            for v in range(u + 1, n):
                edge = (u, v)
                table[(u, v, u)] = (edge, u)
                table[(u, v, v)] = (edge, v)
        _KEY_TABLES[n] = table
    return table


def _orbit_key(keys, a: int, b: int) -> Tuple[Edge, int]:
    """Interned ``((min, max), a)`` key for the ordered probe pair ``(a, b)``."""
    return keys[(a, b, a) if a < b else (b, a, a)]


def _probe_plan(graph: Graph, use_orbits: Optional[bool]) -> Optional[ProbePlan]:
    """The orbit-pruned probe plan for ``graph``, or ``None`` for full probing.

    ``use_orbits=None`` (auto) prunes only when the canonical record is
    already memoised on the instance; ``True`` forces the canonical search;
    ``False`` disables pruning.  Graphs with a trivial automorphism group
    gain nothing from pruning and always use full probing.
    """
    if use_orbits is False or graph.n <= 1:
        return None
    record = (
        canonical_record(graph) if use_orbits else cached_canonical_record(graph)
    )
    if record is None or not record.generators:
        return None
    removal: List[List[Tuple[int, int]]] = []
    addition: List[List[Tuple[int, int]]] = []
    for orbit in ordered_pair_orbits(graph, record):
        u, v = orbit[0]
        (removal if graph.has_edge(u, v) else addition).append(orbit)
    return (removal, addition)


@_instrument_batch("batch_stability_deltas")
def batch_stability_deltas(
    graphs: Sequence[Graph],
    oracle: Optional[DistanceOracle] = None,
    use_orbits: Optional[bool] = None,
    return_totals: bool = False,
):
    """``[oracle.stability_deltas(g) for g in graphs]``, but batched.

    Graphs are grouped by vertex count and each group is processed with the
    tensorised kernels below; the per-graph paths (no NumPy, or ``n > 63``)
    probe one representative per automorphism orbit where symmetry data is
    available (see :func:`_probe_plan` and the module docstring for the
    ``use_orbits`` semantics).  Outputs are numerically identical to the
    per-graph oracle path for every setting and returned in input order.

    With ``return_totals=True`` each result is a ``(tables, total)`` pair
    where ``total`` is the graph's total ordered-pair distance sum (equal to
    :func:`repro.graphs.total_distance`, ``inf`` for disconnected graphs).
    The vectorised path reads it off the all-pairs tensor it already built;
    the per-graph paths answer it from the oracle's cached sums — either
    way the columnar census store gets it without a second all-pairs pass.
    """
    if _np is None:
        if oracle is None:
            oracle = get_default_oracle()
        results = []
        for graph in graphs:
            tables = _per_graph_deltas(graph, _probe_plan(graph, use_orbits), oracle)
            results.append(
                (tables, _oracle_total(graph, oracle)) if return_totals else tables
            )
        return results

    # On the vectorised path a probe is one tensor slice: cheaper than the
    # per-orbit bookkeeping pruning would add, so auto mode probes fully.
    vector_orbits = True if use_orbits else False

    results: List[Optional[DeltaTables]] = [None] * len(graphs)
    groups: Dict[int, List[int]] = {}
    for index, graph in enumerate(graphs):
        groups.setdefault(graph.n, []).append(index)
    for n, indices in groups.items():
        if n <= 1:
            for index in indices:
                results[index] = (({}, {}), 0.0) if return_totals else ({}, {})
            continue
        if n > 63:
            # Adjacency rows no longer fit an int64 lane; answer these
            # through the per-graph oracle instead of the tensor path.
            if oracle is None:
                oracle = get_default_oracle()
            for index in indices:
                graph = graphs[index]
                tables = _per_graph_deltas(
                    graph, _probe_plan(graph, use_orbits), oracle
                )
                results[index] = (
                    (tables, _oracle_total(graph, oracle)) if return_totals else tables
                )
            continue
        group = [graphs[i] for i in indices]
        plans = [_probe_plan(graph, vector_orbits) for graph in group]
        tables, totals = _batch_group(group, n, plans)
        for index, table, total in zip(indices, tables, totals):
            results[index] = (table, total) if return_totals else table
    return results


def validate_weight_matrix(
    weight_matrix: Sequence[Sequence[float]],
) -> Sequence[Sequence[float]]:
    """Check a dense weight matrix is usable by the weighted kernels.

    The weighted kernels divide deviation payoffs by the coefficients
    (``Δ / w`` stability windows), so a zero, negative or non-finite entry
    would silently propagate NaN/inf through every downstream mask instead
    of failing at the call site.  Requires a square matrix with a zero
    diagonal and strictly positive, finite off-diagonal entries; returns
    the matrix unchanged.  Symmetry is *not* required (per-player models
    are asymmetric).
    """
    n = len(weight_matrix)
    for i, row in enumerate(weight_matrix):
        if len(row) != n:
            raise ValueError(
                f"the weight matrix must be square; row {i} has {len(row)} "
                f"entries for n = {n}"
            )
        for j, value in enumerate(row):
            value = float(value)
            if i == j:
                if value != 0.0:
                    raise ValueError(
                        f"the weight-matrix diagonal must be zero, got "
                        f"W[{i}][{i}] = {value!r}"
                    )
            elif not (value > 0.0 and math.isfinite(value)):
                raise ValueError(
                    f"weighted kernels need strictly positive, finite "
                    f"coefficients; got W[{i}][{j}] = {value!r}"
                )
    return weight_matrix


@_instrument_batch("batch_delta_columns")
def batch_delta_columns(
    graphs: Sequence[Graph],
    oracle: Optional[DistanceOracle] = None,
    use_orbits: Optional[bool] = None,
):
    """Model-independent per-probe Δdist columns with endpoint indices.

    The weighted sweeps pair every deviation payoff with a coefficient
    ``w(payer, other)``, but the payoffs themselves depend only on the
    topology — re-deriving them per cost model (or per ensemble draw) is
    the dominant waste of a mega-ensemble.  This function runs the
    boolean-matmul delta tensorisation (:func:`batch_stability_deltas`)
    once and emits the *weight-free* half of the weighted columns, plus the
    probe endpoint indices any later coefficient gather needs:

    * ``rem_delta, rem_pay, rem_other, rem_indptr`` — one entry per
      (edge, endpoint) removal probe, two per edge in ``sorted_edges``
      order (endpoint ``u`` paying first, then ``v``); probe ``p``'s
      coefficient under a matrix ``W`` is ``W[rem_pay[p]][rem_other[p]]``;
    * ``add_s_u, add_s_v, add_u, add_v, add_indptr`` — one savings pair
      per non-edge in ``non_edges`` order, with the endpoint indices
      (coefficients ``W[add_u][add_v]`` and ``W[add_v][add_u]``);
    * ``num_edges, dist_total`` — dense per-graph columns for aggregates.

    Δ/savings values are stored float32 (every BCG deviation payoff is an
    integer-valued float far below 2**24, or ``±inf``, so the round trip is
    exact — the same contract as the columnar census store); endpoint
    indices are int32.  Requires NumPy.
    """
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "batch_delta_columns requires NumPy; use "
            "repro.costmodels.weighted_stability_profile per graph instead"
        )
    np = _np
    results = batch_stability_deltas(
        graphs, oracle=oracle, use_orbits=use_orbits, return_totals=True
    )
    num_edges: List[int] = []
    dist_total: List[float] = []
    rem_delta: List[float] = []
    rem_pay: List[int] = []
    rem_other: List[int] = []
    rem_counts: List[int] = []
    add_s_u: List[float] = []
    add_s_v: List[float] = []
    add_u: List[int] = []
    add_v: List[int] = []
    add_counts: List[int] = []
    for graph, ((removal, addition), total) in zip(graphs, results):
        num_edges.append(graph.num_edges)
        dist_total.append(float(total))
        edges = graph.sorted_edges()
        for (u, v) in edges:
            rem_pay.append(u)
            rem_other.append(v)
            rem_delta.append(removal[((u, v), u)])
            rem_pay.append(v)
            rem_other.append(u)
            rem_delta.append(removal[((u, v), v)])
        rem_counts.append(2 * len(edges))
        non_edges = graph.non_edges()
        for (u, v) in non_edges:
            add_u.append(u)
            add_v.append(v)
            add_s_u.append(addition[((u, v), u)])
            add_s_v.append(addition[((u, v), v)])
        add_counts.append(len(non_edges))

    def indptr(counts: List[int]):
        out = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(np.asarray(counts, dtype=np.int64), out=out[1:])
        return out

    return {
        "num_edges": np.asarray(num_edges, dtype=np.int32),
        "dist_total": np.asarray(dist_total, dtype=np.float64),
        "rem_delta": np.asarray(rem_delta, dtype=np.float32),
        "rem_pay": np.asarray(rem_pay, dtype=np.int32),
        "rem_other": np.asarray(rem_other, dtype=np.int32),
        "rem_indptr": indptr(rem_counts),
        "add_s_u": np.asarray(add_s_u, dtype=np.float32),
        "add_s_v": np.asarray(add_s_v, dtype=np.float32),
        "add_u": np.asarray(add_u, dtype=np.int32),
        "add_v": np.asarray(add_v, dtype=np.int32),
        "add_indptr": indptr(add_counts),
    }


@_instrument_batch("batch_weighted_columns")
def batch_weighted_columns(
    graphs: Sequence[Graph],
    weight_matrix: Sequence[Sequence[float]],
    oracle: Optional[DistanceOracle] = None,
    use_orbits: Optional[bool] = None,
):
    """Weighted per-probe coefficient columns for a same-model batch of graphs.

    The heterogeneous-α sweeps ask, per graph and per scale ``t``, the same
    per-probe comparisons the scalar censuses ask per ``α`` — except every
    probe carries its own coefficient ``w`` from ``weight_matrix``
    (``weight_matrix[payer][other]`` is the price the paying endpoint faces
    for the pair).  Implemented as :func:`batch_delta_columns` (one delta
    tensorisation pass, model-independent) plus a dense coefficient gather
    at the stored endpoint indices, emitting ragged CSR columns ready for
    the weighted grid kernels in :mod:`repro.engine.columnar`:

    * ``rem_w, rem_delta, rem_indptr`` — one entry per (edge, endpoint)
      removal probe, two per edge in ``sorted_edges`` order (endpoint ``u``
      then ``v``);
    * ``add_w_u, add_s_u, add_w_v, add_s_v, add_indptr`` — one 4-tuple of
      values per non-edge in ``non_edges`` order (each endpoint's price and
      addition saving);
    * ``num_edges, dist_total`` — dense per-graph columns for aggregates.

    All emitted value columns are float64 (weights are arbitrary user
    floats; the float32 Δ storage of the delta pass is upcast exactly —
    every payoff is an integer-valued float or ``±inf``).  Requires NumPy,
    like the columnar kernels that consume the output; the per-graph
    fallback for NumPy-less environments is
    :class:`repro.costmodels.stability.WeightedStabilityProfile`.
    """
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "batch_weighted_columns requires NumPy; use "
            "repro.costmodels.weighted_stability_profile per graph instead"
        )
    np = _np
    validate_weight_matrix(weight_matrix)
    columns = batch_delta_columns(graphs, oracle=oracle, use_orbits=use_orbits)
    # reshape keeps the n = 0 edge case indexable (asarray([]) is 1-D).
    players = len(weight_matrix)
    matrix = np.asarray(weight_matrix, dtype=np.float64).reshape(players, players)
    return {
        "num_edges": columns["num_edges"],
        "dist_total": columns["dist_total"],
        "rem_w": matrix[columns["rem_pay"], columns["rem_other"]],
        "rem_delta": columns["rem_delta"].astype(np.float64),
        "rem_indptr": columns["rem_indptr"],
        "add_w_u": matrix[columns["add_u"], columns["add_v"]],
        "add_s_u": columns["add_s_u"].astype(np.float64),
        "add_w_v": matrix[columns["add_v"], columns["add_u"]],
        "add_s_v": columns["add_s_v"].astype(np.float64),
        "add_indptr": columns["add_indptr"],
    }


@_instrument_batch("batch_ucg_columns")
def batch_ucg_columns(
    graphs: Sequence[Graph],
    model=None,
    oracle: Optional[DistanceOracle] = None,
    use_orbits: Optional[bool] = None,
):
    """UCG interval-endpoint CSR columns for a batch of graphs.

    Runs the vectorised orientation engine (:mod:`repro.engine.ucg`) over
    the whole batch — scalar α-intervals when ``model`` is ``None``,
    weighted t-intervals for a :class:`~repro.costmodels.models.CostModel`
    otherwise — and packs the per-graph :class:`AlphaIntervalSet` results
    into the ``ucg_lo``/``ucg_hi``/``ucg_indptr`` layout both stores
    persist.  Endpoints are element-for-element float-exact against the
    per-graph backtracking references (``ucg_nash_alpha_set`` /
    ``weighted_ucg_nash_t_set``), which remain the NumPy-less fallback of
    the engine itself.
    """
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "batch_ucg_columns requires NumPy; use "
            "repro.core.ucg_nash_alpha_set per graph instead"
        )
    from .columnar import ucg_interval_columns
    from .ucg import ucg_alpha_sets, weighted_ucg_t_sets

    if model is None:
        sets = ucg_alpha_sets(graphs, oracle=oracle, use_orbits=use_orbits)
    else:
        sets = weighted_ucg_t_sets(
            graphs, model, oracle=oracle, use_orbits=use_orbits
        )
    lo, hi, indptr = ucg_interval_columns(sets)
    return {"ucg_lo": lo, "ucg_hi": hi, "ucg_indptr": indptr}


def _oracle_total(graph: Graph, oracle: DistanceOracle) -> float:
    """Total ordered-pair distance sum via the oracle's cached per-source sums.

    After :func:`_per_graph_deltas` every source sum the stability pass
    touched is already memoised, so this is at worst a handful of extra
    single-source bitset BFS runs (none at all on the full-probe path).
    """
    return float(sum(oracle.distance_sum(graph, v) for v in range(graph.n)))


def _per_graph_deltas(
    graph: Graph, plan: Optional[ProbePlan], oracle: DistanceOracle
) -> DeltaTables:
    """Per-graph deviation tables, honouring an orbit-pruned probe plan.

    The pruned path evaluates the same per-probe primitives as
    :meth:`DistanceOracle.stability_deltas`
    (:func:`repro.engine.oracle.removal_probe` /
    :func:`~repro.engine.oracle.addition_probe`, so the exact-delta contract
    lives in one place) — but only one representative per orbit, so it does
    strictly less work than full probing whenever the graph has any
    symmetry.
    """
    if plan is None:
        return oracle.stability_deltas(graph)
    cached = oracle.cached_stability_deltas(graph)
    if cached is not None:
        return cached
    keys = _endpoint_keys(graph.n)
    removal_orbits, addition_orbits = plan
    vectors: Dict[int, List[float]] = {}
    shifted: Dict[int, List[float]] = {}
    sums: Dict[int, float] = {}

    def base_sum(vertex: int) -> float:
        value = sums.get(vertex)
        if value is None:
            vector = oracle.distance_vector(graph, vertex)
            vectors[vertex] = vector
            value = sum(vector)
            sums[vertex] = value
        return value

    removal: Dict[Tuple[Edge, int], float] = {}
    bridge_edges = set(bridges(graph)) if removal_orbits else set()
    for orbit in removal_orbits:
        u, v = orbit[0]
        edge = (u, v) if u < v else (v, u)
        value = removal_probe(graph, edge, u, base_sum(u), bridge_edges)
        for a, b in orbit:
            removal[_orbit_key(keys, a, b)] = value

    addition: Dict[Tuple[Edge, int], float] = {}
    for orbit in addition_orbits:
        u, v = orbit[0]
        base = base_sum(u)
        base_sum(v)
        shifted_v = shifted.get(v)
        if shifted_v is None:
            shifted_v = [d + 1 for d in vectors[v]]
            shifted[v] = shifted_v
        value = addition_probe(vectors[u], shifted_v, base)
        for a, b in orbit:
            addition[_orbit_key(keys, a, b)] = value
    oracle.store_stability_deltas(graph, removal, addition)
    return (removal, addition)


def _removal_without_sums(A, n, probe_g, probe_u, probe_v, sources):
    """Post-removal distance sums for a batch of (graph, edge, source) probes.

    Deletes edge ``(probe_u, probe_v)`` from each probe's adjacency slice and
    runs all the single-source BFS levels in lock-step; returns the new
    distance sum per probe (``inf`` when the source no longer reaches every
    vertex).
    """
    np = _np
    P = probe_g.size
    T = A[probe_g].copy()
    arange = np.arange(P)
    T[arange, probe_u, probe_v] = 0
    T[arange, probe_v, probe_u] = 0

    reach = np.zeros((P, n), dtype=bool)
    reach[arange, sources] = True
    front = reach.astype(A.dtype)
    totals = np.zeros(P)
    for level in range(1, n):
        nxt = (np.matmul(front[:, None, :], T)[:, 0, :] > 0) & ~reach
        if not nxt.any():
            break
        totals += level * nxt.sum(axis=1)
        reach |= nxt
        front = nxt.astype(A.dtype)
    return np.where(reach.sum(axis=1) == n, totals, np.inf)


def _batch_group(
    graphs: Sequence[Graph], n: int, plans: Sequence[Optional[ProbePlan]]
) -> Tuple[List[DeltaTables], List[float]]:
    """Stability deltas (and total distance sums) for a same-``n`` group."""
    np = _np
    G = len(graphs)
    keys = _endpoint_keys(n)

    # (G, n) adjacency rows as integers -> (G, n, n) dense 0/1 tensor.  The
    # caller guarantees n <= 63, so every row fits an int64 lane and uint8
    # accumulators cannot overflow in the frontier matmuls (counts <= n).
    count_dtype = np.uint8
    rows = np.array([g.adjacency_rows() for g in graphs], dtype=np.int64)
    A = ((rows[:, :, None] >> np.arange(n)[None, None, :]) & 1).astype(count_dtype)

    # All-pairs distances for every graph: lock-step frontier expansion.
    eye = np.eye(n, dtype=bool)
    visited = np.broadcast_to(eye, (G, n, n)).copy()
    frontier = visited.astype(count_dtype)
    D = np.full((G, n, n), np.inf)
    D[:, eye] = 0.0
    for level in range(1, n):
        nxt = (np.matmul(frontier, A) > 0) & ~visited
        if not nxt.any():
            break
        D[nxt] = level
        visited |= nxt
        frontier = nxt.astype(count_dtype)
    S = D.sum(axis=2)  # per-source distance sums, inf when disconnected

    triu = np.triu(np.ones((n, n), dtype=bool), k=1)

    removal_tables: List[Dict] = [{} for _ in range(G)]
    addition_tables: List[Dict] = [{} for _ in range(G)]

    plain = np.zeros(G, dtype=bool)
    for i, plan in enumerate(plans):
        if plan is None:
            plain[i] = True

    # ------------------------------------------------------------------ #
    # Plain graphs — full probing: one tensor slice per (edge, endpoint).
    # ------------------------------------------------------------------ #
    edge_g, edge_u, edge_v = np.nonzero(
        (A > 0) & triu[None, :, :] & plain[:, None, None]
    )
    E = edge_g.size
    if E:
        # Both endpoints of every edge: probe p and probe p + E share an edge.
        probe_g = np.concatenate([edge_g, edge_g])
        probe_u = np.concatenate([edge_u, edge_u])
        probe_v = np.concatenate([edge_v, edge_v])
        sources = np.concatenate([edge_u, edge_v])
        without = _removal_without_sums(A, n, probe_g, probe_u, probe_v, sources)

        base = S[probe_g, sources]
        with np.errstate(invalid="ignore"):
            deltas = np.where(
                np.isinf(without) & np.isinf(base), 0.0, without - base
            )

        # One pass over the edges assembles both endpoint entries, sharing
        # the interned key tuples between graphs.
        for g_i, u_i, v_i, delta_u, delta_v in zip(
            edge_g.tolist(),
            edge_u.tolist(),
            edge_v.tolist(),
            deltas[:E].tolist(),
            deltas[E:].tolist(),
        ):
            table = removal_tables[g_i]
            table[keys[(u_i, v_i, u_i)]] = delta_u
            table[keys[(u_i, v_i, v_i)]] = delta_v

    # Addition probes for plain graphs: pure reductions over the all-pairs
    # matrix.
    non_g, non_u, non_v = np.nonzero(
        (A == 0) & triu[None, :, :] & plain[:, None, None]
    )
    if non_g.size:
        new_u = np.minimum(D[non_g, non_u, :], 1.0 + D[non_g, non_v, :]).sum(axis=1)
        new_v = np.minimum(D[non_g, non_v, :], 1.0 + D[non_g, non_u, :]).sum(axis=1)
        base_u = S[non_g, non_u]
        base_v = S[non_g, non_v]
        with np.errstate(invalid="ignore"):
            save_u = np.where(np.isinf(base_u) & np.isinf(new_u), 0.0, base_u - new_u)
            save_v = np.where(np.isinf(base_v) & np.isinf(new_v), 0.0, base_v - new_v)

        for g_i, u_i, v_i, s_u, s_v in zip(
            non_g.tolist(),
            non_u.tolist(),
            non_v.tolist(),
            save_u.tolist(),
            save_v.tolist(),
        ):
            table = addition_tables[g_i]
            table[keys[(u_i, v_i, u_i)]] = s_u
            table[keys[(u_i, v_i, v_i)]] = s_v

    # ------------------------------------------------------------------ #
    # Orbit-pruned graphs: one probe per orbit representative, results
    # expanded across the orbit.
    # ------------------------------------------------------------------ #
    rem_refs: List[Tuple[int, List[Tuple[int, int]]]] = []
    add_refs: List[Tuple[int, List[Tuple[int, int]]]] = []
    for i, plan in enumerate(plans):
        if plan is None:
            continue
        removal_orbits, addition_orbits = plan
        for orbit in removal_orbits:
            rem_refs.append((i, orbit))
        for orbit in addition_orbits:
            add_refs.append((i, orbit))

    if rem_refs:
        probe_g = np.array([i for i, orbit in rem_refs], dtype=np.intp)
        probe_u = np.array([orbit[0][0] for _, orbit in rem_refs], dtype=np.intp)
        probe_v = np.array([orbit[0][1] for _, orbit in rem_refs], dtype=np.intp)
        without = _removal_without_sums(A, n, probe_g, probe_u, probe_v, probe_u)
        base = S[probe_g, probe_u]
        with np.errstate(invalid="ignore"):
            deltas = np.where(
                np.isinf(without) & np.isinf(base), 0.0, without - base
            )
        for (g_i, orbit), delta in zip(rem_refs, deltas.tolist()):
            table = removal_tables[g_i]
            for a, b in orbit:
                table[_orbit_key(keys, a, b)] = delta

    if add_refs:
        probe_g = np.array([i for i, orbit in add_refs], dtype=np.intp)
        probe_u = np.array([orbit[0][0] for _, orbit in add_refs], dtype=np.intp)
        probe_v = np.array([orbit[0][1] for _, orbit in add_refs], dtype=np.intp)
        new_sum = np.minimum(
            D[probe_g, probe_u, :], 1.0 + D[probe_g, probe_v, :]
        ).sum(axis=1)
        base = S[probe_g, probe_u]
        with np.errstate(invalid="ignore"):
            savings = np.where(
                np.isinf(base) & np.isinf(new_sum), 0.0, base - new_sum
            )
        for (g_i, orbit), saving in zip(add_refs, savings.tolist()):
            table = addition_tables[g_i]
            for a, b in orbit:
                table[_orbit_key(keys, a, b)] = saving

    # Per-graph total distance over ordered pairs (inf when disconnected):
    # distances are exact small integers, so the reduction order is
    # irrelevant and the value matches repro.graphs.total_distance exactly.
    totals = S.sum(axis=1).tolist()
    return list(zip(removal_tables, addition_tables)), totals
