"""Vectorised batch backend for stability-delta computation.

The exhaustive censuses ask the same question — "all single-link deviation
payoffs of this graph" — hundreds of times for same-sized graphs.  Instead
of running thousands of tiny per-probe BFS traversals in the interpreter,
this module stacks *every probe of every graph* into dense NumPy tensors and
runs the whole census as a handful of batched boolean matrix products:

* all-pairs hop distances for a group of ``G`` graphs on ``n`` vertices are
  ``diameter``-many batched ``(G, n, n) @ (G, n, n)`` frontier expansions;
* every edge-removal probe of every graph becomes one slice of a single
  ``(P, n, n)`` tensor whose BFS levels advance in lock-step;
* every edge-addition probe is answered with one vectorised
  ``min(d_u, 1 + d_v)`` reduction over the all-pairs matrix — no BFS at all.

The numeric contract is identical to :class:`repro.engine.DistanceOracle`
(and therefore to the seed's per-probe BFS): hop counts, ``inf`` for
unreachable pairs, and the ``∞ - ∞ = 0`` delta convention.  When NumPy is
unavailable the functions transparently fall back to the per-graph oracle
path, so the engine never *requires* the dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # NumPy ships with the toolchain but the engine must not require it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from ..graphs.distances import INFINITY
from ..graphs.graph import Graph
from .oracle import DeltaTables, DistanceOracle, get_default_oracle

Edge = Tuple[int, int]


def numpy_available() -> bool:
    """Whether the vectorised batch backend can run."""
    return _np is not None


def batch_stability_deltas(
    graphs: Sequence[Graph], oracle: Optional[DistanceOracle] = None
) -> List[DeltaTables]:
    """``[oracle.stability_deltas(g) for g in graphs]``, but batched.

    Graphs are grouped by vertex count and each group is processed with the
    tensorised kernels below; outputs are numerically identical to the
    per-graph oracle path and returned in input order.  Falls back to the
    oracle when NumPy is missing.
    """
    if _np is None:
        if oracle is None:
            oracle = get_default_oracle()
        return [oracle.stability_deltas(g) for g in graphs]

    results: List[Optional[DeltaTables]] = [None] * len(graphs)
    groups: Dict[int, List[int]] = {}
    for index, graph in enumerate(graphs):
        groups.setdefault(graph.n, []).append(index)
    for n, indices in groups.items():
        if n <= 1:
            for index in indices:
                results[index] = ({}, {})
            continue
        if n > 63:
            # Adjacency rows no longer fit an int64 lane; answer these
            # through the per-graph oracle instead of the tensor path.
            if oracle is None:
                oracle = get_default_oracle()
            for index in indices:
                results[index] = oracle.stability_deltas(graphs[index])
            continue
        tables = _batch_group([graphs[i] for i in indices], n)
        for index, table in zip(indices, tables):
            results[index] = table
    return results


def _batch_group(graphs: Sequence[Graph], n: int) -> List[DeltaTables]:
    """Stability deltas for a group of graphs that share a vertex count."""
    np = _np
    G = len(graphs)

    # (G, n) adjacency rows as integers -> (G, n, n) dense 0/1 tensor.  The
    # caller guarantees n <= 63, so every row fits an int64 lane and uint8
    # accumulators cannot overflow in the frontier matmuls (counts <= n).
    count_dtype = np.uint8
    rows = np.array([g.adjacency_rows() for g in graphs], dtype=np.int64)
    A = ((rows[:, :, None] >> np.arange(n)[None, None, :]) & 1).astype(count_dtype)

    # All-pairs distances for every graph: lock-step frontier expansion.
    eye = np.eye(n, dtype=bool)
    visited = np.broadcast_to(eye, (G, n, n)).copy()
    frontier = visited.astype(count_dtype)
    D = np.full((G, n, n), np.inf)
    D[:, eye] = 0.0
    for level in range(1, n):
        nxt = (np.matmul(frontier, A) > 0) & ~visited
        if not nxt.any():
            break
        D[nxt] = level
        visited |= nxt
        frontier = nxt.astype(count_dtype)
    S = D.sum(axis=2)  # per-source distance sums, inf when disconnected

    triu = np.triu(np.ones((n, n), dtype=bool), k=1)

    removal_tables: List[Dict] = [{} for _ in range(G)]
    addition_tables: List[Dict] = [{} for _ in range(G)]

    # ------------------------------------------------------------------ #
    # Removal probes: one tensor slice per (edge, endpoint).
    # ------------------------------------------------------------------ #
    edge_g, edge_u, edge_v = np.nonzero((A > 0) & triu[None, :, :])
    E = edge_g.size
    if E:
        # Both endpoints of every edge: probe p and probe p + E share an edge.
        probe_g = np.concatenate([edge_g, edge_g])
        probe_u = np.concatenate([edge_u, edge_u])
        probe_v = np.concatenate([edge_v, edge_v])
        sources = np.concatenate([edge_u, edge_v])
        P = probe_g.size

        T = A[probe_g].copy()
        arange = np.arange(P)
        T[arange, probe_u, probe_v] = 0
        T[arange, probe_v, probe_u] = 0

        reach = np.zeros((P, n), dtype=bool)
        reach[arange, sources] = True
        front = reach.astype(count_dtype)
        totals = np.zeros(P)
        for level in range(1, n):
            nxt = (np.matmul(front[:, None, :], T)[:, 0, :] > 0) & ~reach
            if not nxt.any():
                break
            totals += level * nxt.sum(axis=1)
            reach |= nxt
            front = nxt.astype(count_dtype)
        without = np.where(reach.sum(axis=1) == n, totals, np.inf)

        base = S[probe_g, sources]
        with np.errstate(invalid="ignore"):
            deltas = np.where(
                np.isinf(without) & np.isinf(base), 0.0, without - base
            )

        # One pass over the edges assembles both endpoint entries, sharing
        # the edge tuple between the two keys.
        for g_i, u_i, v_i, delta_u, delta_v in zip(
            edge_g.tolist(),
            edge_u.tolist(),
            edge_v.tolist(),
            deltas[:E].tolist(),
            deltas[E:].tolist(),
        ):
            edge = (u_i, v_i)
            table = removal_tables[g_i]
            table[(edge, u_i)] = delta_u
            table[(edge, v_i)] = delta_v

    # ------------------------------------------------------------------ #
    # Addition probes: pure reductions over the all-pairs matrix.
    # ------------------------------------------------------------------ #
    non_g, non_u, non_v = np.nonzero((A == 0) & triu[None, :, :])
    if non_g.size:
        new_u = np.minimum(D[non_g, non_u, :], 1.0 + D[non_g, non_v, :]).sum(axis=1)
        new_v = np.minimum(D[non_g, non_v, :], 1.0 + D[non_g, non_u, :]).sum(axis=1)
        base_u = S[non_g, non_u]
        base_v = S[non_g, non_v]
        with np.errstate(invalid="ignore"):
            save_u = np.where(np.isinf(base_u) & np.isinf(new_u), 0.0, base_u - new_u)
            save_v = np.where(np.isinf(base_v) & np.isinf(new_v), 0.0, base_v - new_v)

        for g_i, u_i, v_i, s_u, s_v in zip(
            non_g.tolist(),
            non_u.tolist(),
            non_v.tolist(),
            save_u.tolist(),
            save_v.tolist(),
        ):
            edge = (u_i, v_i)
            table = addition_tables[g_i]
            table[(edge, u_i)] = s_u
            table[(edge, v_i)] = s_v

    return list(zip(removal_tables, addition_tables))
