"""Streaming ensemble aggregation: bounded-memory per-position statistics.

:func:`~repro.engine.columnar.ensemble_stats` aggregates a stack of
per-draw rows (per-``t`` stable counts, per-class window endpoints) — but
it needs the whole ``(draws, L)`` stack resident, so ensemble size is
bounded by memory, not time.  At ``n = 8`` the window-endpoint stack alone
costs ``2 × draws × 11117 × 8`` bytes: ~178 MB for a 1000-draw run and
growing linearly from there.  :class:`StreamingEnsembleStats` replaces the
stack with O(``L``) state so the ensemble runner can aggregate draws as
they arrive and discard them.

The accuracy contract is regime-split and explicit:

* **exact regime** (``count <= exact_buffer``, default 64) — rows are
  buffered and :meth:`finalize` computes through the *same expressions* as
  :func:`ensemble_stats`, so every statistic (quantiles included) is
  bit-identical to the dense aggregation.  Small ensembles — including
  every pre-existing test — lose nothing;
* **streaming regime** (past the buffer) — the buffer is flushed into
  running state.  ``mean``/``min``/``max`` remain **bit-exact**: NumPy's
  axis-0 reduction of a C-order stack performs the same left-to-right
  per-position adds as our row-sequential accumulation, and min/max are
  order-insensitive.  ``std`` switches from the two-pass formula to
  ``sqrt(E[x²] − E[x]²)`` (agreement ~1e-12 in the tests, ``nan`` wherever
  the dense path is ``nan``).  Quantiles come from one vectorised P²
  sketch per (quantile, position) — 5 markers each, initialised from the
  first five finite observations and nudged by parabolic-else-linear
  marker moves — combined at :meth:`finalize` with per-position ``±inf`` /
  ``nan`` tallies through NumPy's own linear-interpolation rank rule, so
  all-infinite positions (the ``t_max`` window of a tree class) degrade to
  the same ``inf``/``nan`` pattern as :func:`ensemble_stats`.

State size is independent of the number of draws — ``state_nbytes`` is
the peak-memory proxy asserted by the amortised-ensemble benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

try:  # NumPy backs all streaming state; the aggregator refuses to run without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

#: Quantiles reported by default (quartiles + median, as ensemble_stats).
DEFAULT_QUANTILES = (0.25, 0.5, 0.75)

#: Draw-count threshold below which aggregation stays dense and bit-exact.
DEFAULT_EXACT_BUFFER = 64


def streaming_available() -> bool:
    """Whether the streaming aggregator can be used (NumPy importable)."""
    return _np is not None


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised only on minimal installs
        raise RuntimeError(
            "StreamingEnsembleStats requires NumPy; aggregate with "
            "repro.engine.columnar.ensemble_stats instead"
        )
    return _np


class _P2Sketch:
    """Vectorised P² quantile estimator: one 5-marker sketch per position.

    The classic Jain–Chlamtac algorithm, run column-parallel: ``heights``
    and ``npos`` are ``(5, L)`` arrays and every marker adjustment is a
    masked vector operation, so feeding one row costs O(L) regardless of
    how many positions move.  Only *finite* observations are fed here —
    the owner tracks ``±inf``/``nan`` tallies and recombines at finalize.
    """

    __slots__ = ("q", "heights", "npos", "_dn", "_rows")

    def __init__(self, q: float, length: int) -> None:
        np = _require_numpy()
        self.q = float(q)
        self.heights = np.zeros((5, length), dtype=np.float64)
        self.npos = np.zeros((5, length), dtype=np.int64)
        self._dn = np.array(
            [0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0]
        )
        self._rows = np.arange(5)[:, None]

    def init_columns(self, cols, sorted_block) -> None:
        """Seed columns ``cols`` from their first five finite values (sorted)."""
        np = _np
        self.heights[:, cols] = sorted_block
        self.npos[:, cols] = np.arange(1, 6, dtype=np.int64)[:, None]

    def add(self, values, mask, fin_counts) -> None:
        """Fold one row's finite values (at ``mask``) into the markers.

        ``fin_counts`` is the per-position finite count *including* this
        row, i.e. the P² observation count after the insertion.
        """
        np = _np
        idx = np.where(mask)[0]
        if idx.size == 0:
            return
        v = values[idx]
        h = self.heights[:, idx]
        npos = self.npos[:, idx]

        # Locate the cell: k in 0..3 with h[k] <= v < h[k+1]; clamp the
        # extremes into the end cells, moving the end marker onto v.
        count_le = (h <= v).sum(axis=0)
        below = count_le == 0
        above = count_le == 5
        k = np.clip(count_le - 1, 0, 3)
        h[0, below] = v[below]
        h[4, above] = v[above]
        npos += self._rows > k

        desired = 1.0 + (fin_counts[idx] - 1.0) * self._dn[:, None]
        for i in (1, 2, 3):
            d = desired[i] - npos[i]
            gap_up = npos[i + 1] - npos[i]
            gap_dn = npos[i - 1] - npos[i]
            move_up = (d >= 1.0) & (gap_up > 1)
            move_dn = (d <= -1.0) & (gap_dn < -1)
            move = move_up | move_dn
            if not move.any():
                continue
            s = np.where(move_up, 1.0, -1.0)
            ni = npos[i].astype(np.float64)
            nim = npos[i - 1].astype(np.float64)
            nip = npos[i + 1].astype(np.float64)
            hi = h[i]
            him = h[i - 1]
            hip = h[i + 1]
            # Divisors are only guaranteed nonzero where `move` holds; the
            # other lanes are masked out below, so silence their noise.
            with np.errstate(divide="ignore", invalid="ignore"):
                parab = hi + s / (nip - nim) * (
                    (ni - nim + s) * (hip - hi) / (nip - ni)
                    + (nip - ni - s) * (hi - him) / (ni - nim)
                )
                h_adj = np.where(s > 0.0, hip, him)
                n_adj = np.where(s > 0.0, nip, nim)
                linear = hi + s * (h_adj - hi) / (n_adj - ni)
            use_parab = (him < parab) & (parab < hip)
            moved = np.where(use_parab, parab, linear)
            h[i] = np.where(move, moved, hi)
            npos[i] += np.where(move, s, 0.0).astype(np.int64)

        self.heights[:, idx] = h
        self.npos[:, idx] = npos

    def estimate(self):
        """Current q-quantile estimate per position (the centre marker)."""
        return self.heights[2].copy()

    @property
    def nbytes(self) -> int:
        return self.heights.nbytes + self.npos.nbytes


class StreamingEnsembleStats:
    """Running per-position mean/std/min/max/quantiles over equal rows.

    Feed ``(batch, length)`` blocks of draw rows with :meth:`update` (in
    draw order — the result is then independent of how the caller batches
    them) and collect an :func:`ensemble_stats`-shaped dict from
    :meth:`finalize`.  See the module docstring for the exact-vs-sketch
    accuracy contract.
    """

    def __init__(
        self,
        length: int,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_buffer: int = DEFAULT_EXACT_BUFFER,
    ) -> None:
        np = _require_numpy()
        if length < 0:
            raise ValueError("length must be non-negative")
        if exact_buffer < 0:
            raise ValueError("exact_buffer must be non-negative")
        self.length = int(length)
        self.quantiles = tuple(float(q) for q in quantiles)
        self.exact_buffer = int(exact_buffer)
        self.count = 0
        self._buffer: Optional[List] = []
        # Streaming state (allocated lazily at the first buffer flush).
        self._sum = None
        self._sumsq = None
        self._min = None
        self._max = None
        self._neg = None
        self._pos = None
        self._nan = None
        self._fin = None
        self._init_buf = None
        self._sketches: List[_P2Sketch] = []

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def update(self, rows) -> None:
        """Fold a ``(batch, length)`` block of draw rows into the state."""
        np = _np
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.length:
            raise ValueError(
                f"expected rows of shape (batch, {self.length}), "
                f"got {rows.shape}"
            )
        self.count += rows.shape[0]
        if self._buffer is not None:
            self._buffer.append(rows)
            if self.count > self.exact_buffer:
                self._flush_buffer()
            return
        for row in rows:
            self._stream_row(row)

    def _flush_buffer(self) -> None:
        np = _np
        L = self.length
        self._sum = np.zeros(L, dtype=np.float64)
        self._sumsq = np.zeros(L, dtype=np.float64)
        self._min = np.full(L, np.inf)
        self._max = np.full(L, -np.inf)
        self._neg = np.zeros(L, dtype=np.int64)
        self._pos = np.zeros(L, dtype=np.int64)
        self._nan = np.zeros(L, dtype=np.int64)
        self._fin = np.zeros(L, dtype=np.int64)
        self._init_buf = np.zeros((5, L), dtype=np.float64)
        self._sketches = [_P2Sketch(q, L) for q in self.quantiles]
        buffered, self._buffer = self._buffer, None
        for block in buffered:
            for row in block:
                self._stream_row(row)

    def _stream_row(self, row) -> None:
        np = _np
        # Row-sequential accumulation: identical, add for add, to NumPy's
        # axis-0 reduction of the dense stack — this is what keeps the
        # streamed mean bit-exact past the buffer.
        self._sum = self._sum + row
        self._sumsq = self._sumsq + row * row
        np.minimum(self._min, row, out=self._min)
        np.maximum(self._max, row, out=self._max)

        isnan = np.isnan(row)
        isneg = row == -np.inf
        ispos = row == np.inf
        finite = ~(isnan | isneg | ispos)
        self._nan += isnan
        self._neg += isneg
        self._pos += ispos
        pre = self._fin.copy()
        self._fin += finite

        filling = np.where(finite & (pre < 5))[0]
        if filling.size:
            self._init_buf[pre[filling], filling] = row[filling]
            full = filling[self._fin[filling] == 5]
            if full.size:
                block = np.sort(self._init_buf[:, full], axis=0)
                for sketch in self._sketches:
                    sketch.init_columns(full, block)
        streaming = finite & (pre >= 5)
        if streaming.any():
            for sketch in self._sketches:
                sketch.add(row, streaming, self._fin)

    # ------------------------------------------------------------------ #
    # Finalize
    # ------------------------------------------------------------------ #

    def finalize(self) -> Dict[str, object]:
        """The :func:`ensemble_stats`-shaped aggregate of everything fed."""
        np = _np
        if self.count == 0:
            raise ValueError("ensemble aggregation needs at least one draw")
        if self._buffer is not None:
            # Exact regime: same expressions as ensemble_stats, bit for bit.
            stacked = np.concatenate(self._buffer, axis=0)
            with np.errstate(invalid="ignore"):
                return {
                    "mean": stacked.mean(axis=0).tolist(),
                    "std": stacked.std(axis=0).tolist(),
                    "min": stacked.min(axis=0).tolist(),
                    "max": stacked.max(axis=0).tolist(),
                    "quantiles": {
                        float(q): np.quantile(stacked, float(q), axis=0).tolist()
                        for q in self.quantiles
                    },
                }
        K = float(self.count)
        with np.errstate(invalid="ignore"):
            mean = self._sum / K
            variance = np.maximum(self._sumsq / K - mean * mean, 0.0)
            # inf - inf (and any nan ingested) must surface as nan, exactly
            # as the dense two-pass std does.
            variance = np.where(np.isnan(self._sumsq / K - mean * mean),
                                np.nan, variance)
            std = np.sqrt(variance)
            quantile_rows = {
                q: self._finalize_quantile(q, sketch)
                for q, sketch in zip(self.quantiles, self._sketches)
            }
        return {
            "mean": mean.tolist(),
            "std": std.tolist(),
            "min": self._min.tolist(),
            "max": self._max.tolist(),
            "quantiles": {q: row.tolist() for q, row in quantile_rows.items()},
        }

    def _finalize_quantile(self, q: float, sketch: _P2Sketch):
        """Combine the finite-part sketch with the ±inf/nan tallies.

        Conceptually sorts the virtual per-position sample
        ``[-inf]*neg + finites + [+inf]*pos``, reads ranks ``q*(K-1)`` with
        NumPy's linear-interpolation formula, and substitutes the sketch
        estimate for any rank landing in the finite run.  Positions whose
        sample is entirely finite reduce to the plain sketch estimate;
        entirely-infinite positions reproduce ensemble_stats' inf/nan
        behaviour; mixed positions are approximate (the sketch stands in
        for every finite rank).
        """
        np = _np
        est = sketch.estimate()
        # Positions with fewer than 5 finite values never initialised their
        # markers — their finite part is still dense in the init buffer.
        partial = np.where((self._fin > 0) & (self._fin < 5))[0]
        for col in partial:
            vals = np.sort(self._init_buf[: self._fin[col], col])
            est[col] = np.quantile(vals, q)

        rank = q * (self.count - 1)
        lo = np.floor(rank)
        hi = np.ceil(rank)
        frac = rank - lo
        fin_end = self._neg + self._fin

        def rank_value(idx):
            return np.where(
                idx < self._neg,
                -np.inf,
                np.where(idx >= fin_end, np.inf, est),
            )

        a = rank_value(lo)
        b = rank_value(hi)
        with np.errstate(invalid="ignore"):
            diff = b - a
            out = np.where(
                frac >= 0.5, b - diff * (1.0 - frac), a + diff * frac
            )
        out = np.where(self._nan > 0, np.nan, out)
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def state_nbytes(self) -> int:
        """Resident bytes of aggregation state (the peak-memory proxy).

        In the exact regime this counts the buffered rows (bounded by
        ``exact_buffer``); in the streaming regime it is O(length) and
        independent of how many draws were fed.
        """
        if self._buffer is not None:
            return sum(block.nbytes for block in self._buffer)
        arrays = (
            self._sum, self._sumsq, self._min, self._max,
            self._neg, self._pos, self._nan, self._fin, self._init_buf,
        )
        total = sum(array.nbytes for array in arrays)
        return total + sum(sketch.nbytes for sketch in self._sketches)
