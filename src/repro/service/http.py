"""Stdlib-asyncio HTTP transport for the query service.

A deliberately small HTTP/1.1 server over ``asyncio`` streams — no new
runtime dependencies — that exposes a :class:`~repro.service.api.QueryAPI`
over JSON:

========================================  =====================================
``GET /healthz``                          liveness + version + artifact count
``GET /metrics``                          Prometheus text exposition (verbatim
                                          :func:`repro.obs.to_prometheus`)
``GET /stats``                            full telemetry JSON snapshot
``GET /artifacts``                        catalog listing
``GET /artifacts/<id>``                   one artifact's summary dict
``POST /v1/query/grid``                   figure / grid-aggregate queries
``POST /v1/query/windows``                per-class stability windows
``POST /v1/query/ensemble-stats``         seeded scenario ensemble statistics
========================================  =====================================

Request handling is async, but every query body runs in a
:class:`~concurrent.futures.ThreadPoolExecutor` via ``run_in_executor`` —
which is what lets the :class:`~repro.service.batching.GridBatcher` see
genuinely concurrent threads and coalesce them into shared kernel calls.
The event loop itself never blocks on NumPy.

Shutdown is graceful: SIGTERM/SIGINT stop the listener, in-flight requests
get a drain grace period, then the loop exits.  Binding port ``0`` picks a
free port and prints the actual one (used by the smoke test and benches).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from .. import obs
from .._version import __version__
from .api import QueryAPI
from .batching import GridBatcher
from .catalog import ArtifactCatalog

__all__ = ["ArtifactServer", "start_in_thread"]

#: Upper bound on request body size (JSON query payloads are tiny).
MAX_BODY = 4 * 1024 * 1024

#: Path label used for unrouted requests so the metrics cardinality stays
#: bounded no matter what clients probe.
_UNROUTED = "<unrouted>"


class HTTPError(Exception):
    """An error with a definite HTTP status (rendered as a JSON body)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ArtifactServer:
    """The asyncio HTTP front of a :class:`QueryAPI`.

    Parameters
    ----------
    api:
        The query layer to serve.  Defaults to a fresh path-resolving API.
    host, port:
        Bind address; port ``0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    threads:
        Size of the compute pool queries run on.  More threads means more
        concurrent kernel work *and* more coalescing opportunity.
    drain_grace:
        Seconds to wait for in-flight requests during shutdown.
    """

    def __init__(
        self,
        api: Optional[QueryAPI] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        threads: int = 4,
        drain_grace: float = 5.0,
    ) -> None:
        self.api = api if api is not None else QueryAPI()
        self.host = host
        self.port = int(port)
        self.threads = max(1, int(threads))
        self.drain_grace = float(drain_grace)
        self.started = threading.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stop: Optional[asyncio.Event] = None
        self._inflight = 0
        self._start_time = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def run(self, install_signals: bool = False) -> None:
        """Serve until :meth:`shutdown` (or a signal) stops the loop."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.threads, thread_name_prefix="repro-query"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._start_time = time.monotonic()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self._stop.set)
        self.started.set()
        try:
            await self._stop.wait()
        finally:
            await self._drain()

    def shutdown(self) -> None:
        """Request a graceful stop (safe to call from any thread)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _drain(self) -> None:
        """Stop accepting, wait out in-flight requests, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.drain_grace
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self.started.clear()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                status, payload, content_type = await self._dispatch(
                    method, path, body
                )
                await self._write_response(
                    writer, status, payload, content_type, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise HTTPError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, str]:
        path = path.split("?", 1)[0]
        route = self._route_label(method, path)
        self._inflight += 1
        obs.gauge(
            "repro_http_inflight_requests", "Requests currently being served"
        ).set(self._inflight)
        start = time.perf_counter()
        try:
            status, payload, content_type = await self._answer(
                method, path, body
            )
        except HTTPError as error:
            status = error.status
            payload = _json_bytes({"error": str(error), "status": status})
            content_type = "application/json"
        except Exception as error:  # noqa: BLE001 - served as 500
            status = 500
            payload = _json_bytes(
                {"error": f"{type(error).__name__}: {error}", "status": 500}
            )
            content_type = "application/json"
        finally:
            self._inflight -= 1
            obs.gauge(
                "repro_http_inflight_requests",
                "Requests currently being served",
            ).set(self._inflight)
        obs.counter(
            "repro_http_requests_total",
            "HTTP requests served",
            path=route,
            status=str(status),
        ).inc()
        obs.histogram(
            "repro_http_request_seconds",
            "HTTP request latency",
            path=route,
        ).observe(time.perf_counter() - start)
        return status, payload, content_type

    def _route_label(self, method: str, path: str) -> str:
        """A bounded-cardinality metrics label for the request path."""
        if path.startswith("/artifacts/"):
            return "/artifacts/{id}"
        if path in (
            "/healthz",
            "/metrics",
            "/stats",
            "/artifacts",
            "/v1/query/grid",
            "/v1/query/windows",
            "/v1/query/ensemble-stats",
        ):
            return path
        return _UNROUTED

    async def _answer(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, str]:
        if path == "/healthz":
            _require(method, "GET")
            return 200, _json_bytes(self._health()), "application/json"
        if path == "/metrics":
            _require(method, "GET")
            text = await self._compute(obs.to_prometheus)
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4"
        if path == "/stats":
            _require(method, "GET")
            result = await self._compute(self.api.stats)
            return 200, _json_bytes(result), "application/json"
        if path == "/artifacts":
            _require(method, "GET")
            self.api.catalog.refresh()
            return (
                200,
                _json_bytes({"artifacts": self.api.artifacts()}),
                "application/json",
            )
        if path.startswith("/artifacts/"):
            _require(method, "GET")
            ref = path[len("/artifacts/"):]
            result = await self._compute(self._artifact_detail, ref)
            return 200, _json_bytes(result), "application/json"
        if path == "/v1/query/grid":
            _require(method, "POST")
            result = await self._compute(self._query_grid, _parse_json(body))
            return 200, _json_bytes(result), "application/json"
        if path == "/v1/query/windows":
            _require(method, "POST")
            result = await self._compute(
                self._query_windows, _parse_json(body)
            )
            return 200, _json_bytes(result), "application/json"
        if path == "/v1/query/ensemble-stats":
            _require(method, "POST")
            result = await self._compute(
                self._query_ensemble, _parse_json(body)
            )
            return 200, _json_bytes(result), "application/json"
        raise HTTPError(404, f"no route for {path}")

    async def _compute(self, fn, *args):
        """Run a query body on the compute pool; translate ValueError/KeyError.

        Every potentially-expensive call goes through here so the event
        loop stays free and concurrent requests genuinely overlap on
        threads (which is what the grid batcher coalesces).
        """
        try:
            return await self._loop.run_in_executor(
                self._pool, lambda: fn(*args)
            )
        except KeyError as error:
            raise HTTPError(404, f"unknown artifact {error.args[0]!r}")
        except (ValueError, FileNotFoundError) as error:
            raise HTTPError(400, str(error))

    # ------------------------------------------------------------------ #
    # Endpoint bodies (run on the compute pool)
    # ------------------------------------------------------------------ #

    def _health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "version": __version__,
            "artifacts": len(self.api.catalog),
            "uptime_seconds": time.monotonic() - self._start_time,
        }

    def _artifact_detail(self, ref: str) -> Dict[str, object]:
        info = self.api.catalog.info(ref)
        return {
            "artifact": info.as_dict(),
            "summary": self.api.summary(ref),
        }

    def _query_grid(self, request: Dict[str, object]) -> Dict[str, object]:
        """``/v1/query/grid`` body — figure series or raw grid aggregates.

        ``{"artifact": id, "quantity": ..., "points": N}`` answers the
        CLI-identical figure payload; adding ``"alphas": [...]`` (with an
        optional ``"game"``) answers raw grid aggregates on that exact
        grid instead.
        """
        ref = _required_field(request, "artifact")
        if "alphas" in request:
            alphas = request["alphas"]
            if not isinstance(alphas, list) or not alphas:
                raise HTTPError(400, "'alphas' must be a non-empty list")
            return self.api.grid_aggregates(
                ref, alphas, str(request.get("game", "bcg"))
            )
        return self.api.figure(
            ref,
            quantity=str(request.get("quantity", "average_poa")),
            points=int(request.get("points", 24)),
        )

    def _query_windows(self, request: Dict[str, object]) -> Dict[str, object]:
        ref = _required_field(request, "artifact")
        return self.api.windows(ref, game=str(request.get("game", "bcg")))

    def _query_ensemble(self, request: Dict[str, object]) -> Dict[str, object]:
        return self.api.ensemble_stats(
            scenario=str(request.get("scenario", "random_weights")),
            n=int(request.get("n", 6)),
            draws=int(request.get("draws", 8)),
            seed=int(request.get("seed", 0)),
            grid=int(request.get("grid", 8)),
            delta=request.get("delta"),
        )


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #


def _json_bytes(payload) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _parse_json(body: bytes) -> Dict[str, object]:
    if not body:
        return {}
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise HTTPError(400, f"invalid JSON body: {error}")
    if not isinstance(parsed, dict):
        raise HTTPError(400, "request body must be a JSON object")
    return parsed


def _required_field(request: Dict[str, object], name: str):
    value = request.get(name)
    if value is None:
        raise HTTPError(400, f"missing required field {name!r}")
    return value


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise HTTPError(405, f"use {expected}")


def start_in_thread(
    api: Optional[QueryAPI] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    threads: int = 4,
    drain_grace: float = 5.0,
):
    """Run an :class:`ArtifactServer` on a daemon thread (tests, benches).

    Returns ``(server, thread)`` once the listener is bound — read the
    actual port from ``server.port``.  Stop with ``server.shutdown()``
    then ``thread.join()``.
    """
    server = ArtifactServer(
        api=api, host=host, port=port, threads=threads, drain_grace=drain_grace
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run()),
        name="repro-artifact-server",
        daemon=True,
    )
    thread.start()
    if not server.started.wait(timeout=10.0):
        raise RuntimeError("artifact server failed to start within 10 s")
    return server, thread


def serve_forever(
    root: Optional[str],
    host: str = "127.0.0.1",
    port: int = 8973,
    threads: int = 4,
    batch_window: float = 0.005,
    mmap: bool = True,
    drain_grace: float = 5.0,
) -> int:
    """Blocking entry point behind ``repro serve`` (installs signal handlers)."""
    catalog = ArtifactCatalog(root=root, mmap=mmap)
    batcher = GridBatcher(window=batch_window) if batch_window > 0 else None
    api = QueryAPI(catalog, batcher=batcher)
    server = ArtifactServer(
        api=api, host=host, port=port, threads=threads, drain_grace=drain_grace
    )

    async def _main() -> None:
        task = asyncio.create_task(server.run(install_signals=True))
        await asyncio.sleep(0)  # let run() bind before announcing
        while not server.started.is_set() and not task.done():
            await asyncio.sleep(0.005)
        if server.started.is_set():
            print(
                f"serving {len(catalog)} artifact(s) on "
                f"http://{server.host}:{server.port}",
                flush=True,
            )
        await task

    asyncio.run(_main())
    return 0
