"""repro.service — census-as-a-service: the layered query stack.

Three layers, each importable on its own:

- :mod:`repro.service.catalog` — artifact discovery and thread-safe
  loading (:class:`ArtifactCatalog`), on top of the process-wide store
  LRUs.
- :mod:`repro.service.api` — the transport-free :class:`QueryAPI`: every
  question the CLI, tests, benches and the HTTP server ask of census /
  weighted / delta artifacts, answered as plain dicts and ndarrays.
- :mod:`repro.service.http` — a stdlib-``asyncio`` JSON/HTTP front
  (:class:`ArtifactServer`) plus :func:`start_in_thread` for in-process
  testing.

:class:`GridBatcher` (:mod:`repro.service.batching`) slots between the
API and the kernels to coalesce concurrent grid requests into shared
vectorised calls — bit-exactly, because every grid kernel in the library
answers each grid point as an independent column.
"""

from .api import QueryAPI  # noqa: F401
from .batching import BatchStats, GridBatcher  # noqa: F401
from .catalog import ArtifactCatalog, ArtifactInfo, KINDS  # noqa: F401
from .http import ArtifactServer, serve_forever, start_in_thread  # noqa: F401

__all__ = [
    "ArtifactCatalog",
    "ArtifactInfo",
    "ArtifactServer",
    "BatchStats",
    "GridBatcher",
    "KINDS",
    "QueryAPI",
    "serve_forever",
    "start_in_thread",
]
