"""Request coalescing for concurrent grid queries.

Every columnar grid kernel in this library (``bcg_stable_mask``,
``ucg_nash_mask``, ``weighted_bcg_stable_mask`` and the aggregate wrappers
around them) answers each grid point as an **independent column**: the mask
for α-column ``j`` is a function of the stored probe columns and ``alphas[j]``
alone.  That makes coalescing free and exact — evaluating the union of two
requests' grids in one kernel call and handing each caller its own columns
back is bit-identical to two separate calls, and the PR-6 stacked-``K``
kernels already pay near-nothing for the extra columns.

:class:`GridBatcher` exploits this for the query service: concurrent
requests against the same ``(artifact, game)`` pair that arrive within a
bounded wait window are merged into **one** vectorised kernel call.  The
first thread to arrive becomes the batch *leader*: it waits up to
``window`` seconds (returning early once ``max_batch`` requests joined),
deduplicates the union grid, runs the compute callable once, and
distributes per-caller column slices.  Followers block on the batch event
and never touch the kernel.  A compute error propagates to every caller in
the batch.

The batcher is transport-free — :class:`~repro.service.api.QueryAPI` calls
it from whatever threads the server (or a test hammer) runs requests on.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Sequence, Tuple

from .. import obs

__all__ = ["GridBatcher", "BatchStats"]


def _slice_columns(result, indices: List[int]):
    """Select per-alpha columns ``indices`` from a batched kernel result.

    Supports the two shapes every grid query in the library returns: a
    2-D ndarray with one column per grid point (masks), and a dict whose
    values are per-grid-point lists (aggregates).  Scalar / non-sequence
    dict entries are passed through unchanged.
    """
    if isinstance(result, dict):
        out = {}
        for key, value in result.items():
            if isinstance(value, list):
                out[key] = [value[i] for i in indices]
            else:
                out[key] = value
        return out
    # ndarray-like: [classes, n_alphas] -> the caller's columns, in order.
    return result[:, indices]


class _Batch:
    """One in-flight coalescing window for a single key."""

    __slots__ = ("requests", "event", "result", "error", "closed", "full")

    def __init__(self) -> None:
        self.requests: List[List[float]] = []
        self.event = threading.Event()  # set when the result is ready
        self.full = threading.Event()  # set when max_batch was reached
        self.result = None
        self.error: BaseException | None = None
        self.closed = False


class BatchStats:
    """Point-in-time batcher tallies (mirrored into ``repro.obs``)."""

    def __init__(self, batches: int, requests: int, coalesced: int) -> None:
        self.batches = batches
        self.requests = requests
        self.coalesced = coalesced

    def as_dict(self) -> Dict[str, int]:
        return {
            "batches": self.batches,
            "requests": self.requests,
            "coalesced": self.coalesced,
        }


class GridBatcher:
    """Coalesce concurrent per-key grid requests into shared kernel calls.

    Parameters
    ----------
    window:
        Seconds the batch leader waits for followers before computing.
        ``0`` disables coalescing entirely (every submit computes
        immediately) — the parity-testing baseline.
    max_batch:
        Requests per batch at which the leader stops waiting early.
    """

    def __init__(self, window: float = 0.005, max_batch: int = 64) -> None:
        if window < 0:
            raise ValueError("window must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._lock = threading.Lock()
        self._pending: Dict[object, _Batch] = {}
        self._batches = 0
        self._requests = 0
        self._coalesced = 0

    # ------------------------------------------------------------------ #

    def submit(
        self,
        key: object,
        alphas: Sequence[float],
        compute: Callable[[List[float]], object],
    ):
        """Evaluate ``compute`` over ``alphas``, sharing work under ``key``.

        ``key`` must identify everything that determines the kernel besides
        the grid itself (artifact identity and game, in practice); two
        submits may share a kernel call only when their keys are equal.
        ``compute`` receives the merged, deduplicated grid and must return
        a per-column result (ndarray columns or dict of per-column lists).
        The return value is exactly ``compute(list(alphas))`` — bit-for-bit
        — however many requests were coalesced.
        """
        alphas = [float(a) for a in alphas]
        if self.window == 0.0:
            with self._lock:
                self._batches += 1
                self._requests += 1
            self._observe(1)
            return compute(alphas)

        with self._lock:
            self._requests += 1
            batch = self._pending.get(key)
            if batch is None or batch.closed:
                batch = _Batch()
                self._pending[key] = batch
                leader = True
            else:
                leader = False
            index = len(batch.requests)
            batch.requests.append(alphas)
            if len(batch.requests) >= self.max_batch:
                batch.closed = True
                batch.full.set()

        if leader:
            self._run_batch(key, batch, compute)
        else:
            batch.event.wait()
        if batch.error is not None:
            raise batch.error
        merged, slices = batch.result
        return _slice_columns(merged, slices[index])

    # ------------------------------------------------------------------ #

    def _run_batch(self, key: object, batch: _Batch, compute) -> None:
        """Leader body: wait out the window, compute once, publish.

        Every request in a batch carries an equivalent compute closure by
        construction (the key pins artifact + game + query type); the
        leader's closure is the one that runs.
        """
        batch.full.wait(self.window)
        with self._lock:
            batch.closed = True
            if self._pending.get(key) is batch:
                del self._pending[key]
            requests = list(batch.requests)
            self._batches += 1
            if len(requests) > 1:
                self._coalesced += len(requests)
        grid, slices = _merge_grids(requests)
        try:
            start = time.perf_counter()
            result = compute(grid)
            obs.histogram(
                "repro_service_batch_kernel_seconds",
                "Wall seconds per coalesced kernel call",
            ).observe(time.perf_counter() - start)
            batch.result = (result, slices)
        except BaseException as error:  # propagate to every caller
            batch.error = error
        finally:
            self._observe(len(requests))
            batch.event.set()

    def _observe(self, size: int) -> None:
        obs.histogram(
            "repro_service_batch_size",
            "Requests answered per coalesced kernel call",
        ).observe(size)
        if size > 1:
            obs.counter(
                "repro_service_coalesced_requests_total",
                "Requests that shared a kernel call with at least one other",
            ).inc(size)

    def stats(self) -> BatchStats:
        """Tallies so far: batches run, requests seen, requests coalesced."""
        with self._lock:
            return BatchStats(self._batches, self._requests, self._coalesced)


def _merge_grids(
    requests: List[List[float]],
) -> Tuple[List[float], List[List[int]]]:
    """Union the request grids; map each request to merged-column indices.

    Duplicate grid points (within or across requests) are evaluated once.
    Floats are deduplicated by exact equality — the kernels are pure
    functions of the float value, so equal inputs give identical columns.
    """
    merged: List[float] = []
    position: Dict[float, int] = {}
    slices: List[List[int]] = []
    for alphas in requests:
        indices = []
        for alpha in alphas:
            at = position.get(alpha)
            if at is None:
                at = len(merged)
                position[alpha] = at
                merged.append(alpha)
            indices.append(at)
        slices.append(indices)
    return merged, slices
