"""The transport-free query layer of census-as-a-service.

:class:`QueryAPI` is the one surface through which presentation code — the
CLI subcommands, the asyncio HTTP server, tests and benchmarks — asks
questions of census, weighted and delta artifacts.  It speaks artifact
**ids** (resolved by an :class:`~repro.service.catalog.ArtifactCatalog`)
and returns plain dicts, lists and ndarrays; it never renders tables, never
parses HTTP, and callers never touch store internals.

Every answer is produced by the same vectorised kernels the stores expose
directly, so responses are bit-identical to single-threaded direct kernel
calls — including when an attached
:class:`~repro.service.batching.GridBatcher` coalesces concurrent grid
requests into shared kernel calls (the kernels are per-column independent;
the batcher only merges and re-slices grids).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import obs
from .._version import __version__
from ..analysis.figure_series import census_figure_series, figure_to_payload
from ..analysis.report import (
    delta_store_summary_dict,
    store_summary_dict,
    weighted_store_summary_dict,
)
from ..analysis.scenarios import available_scenarios, default_t_grid
from ..analysis.sweeps import log_spaced_alphas
from .batching import GridBatcher
from .catalog import ArtifactCatalog

__all__ = ["QueryAPI"]


def _tolist(values) -> list:
    """A JSON-safe list from an ndarray / list of numpy scalars."""
    if hasattr(values, "tolist"):
        return values.tolist()
    return [float(v) for v in values]


def _stats_payload(stats: Dict[str, object]) -> Dict[str, object]:
    """An ensemble stats dict with JSON-safe lists and string quantile keys."""
    payload = {
        key: _tolist(value)
        for key, value in stats.items()
        if key != "quantiles"
    }
    payload["quantiles"] = {
        str(q): _tolist(values) for q, values in stats["quantiles"].items()
    }
    return payload


class QueryAPI:
    """Layered query API over an artifact catalog.

    Parameters
    ----------
    catalog:
        The artifact I/O layer.  Defaults to an empty catalog that
        resolves bare filesystem paths on demand — which is how the CLI
        subcommands run against a single ``--load`` artifact.
    batcher:
        Optional :class:`GridBatcher`.  When present, grid-shaped queries
        (masks, aggregates, weighted sweeps) are routed through it so
        concurrent requests against the same artifact coalesce; when
        absent every call computes immediately.  Results are identical
        either way.
    """

    def __init__(
        self,
        catalog: Optional[ArtifactCatalog] = None,
        batcher: Optional[GridBatcher] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else ArtifactCatalog()
        self.batcher = batcher

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def version(self) -> str:
        """The library version the service is running."""
        return __version__

    def artifacts(self) -> List[Dict[str, object]]:
        """The catalog listing as plain dicts (cheap; nothing is loaded)."""
        return [info.as_dict() for info in self.catalog.list()]

    def summary(self, ref: str) -> Dict[str, object]:
        """The machine-readable artifact summary (kind-tagged).

        The same shape :func:`repro.analysis.report.format_store_summary`
        renders, so the CLI table and the service JSON can never drift.
        """
        info, store = self.catalog.get(ref)
        if info.kind == "census":
            return store_summary_dict(store, source=info.path)
        if info.kind == "weighted":
            return weighted_store_summary_dict(store, source=info.path)
        return delta_store_summary_dict(store, source=info.path)

    def verify(self, ref: str) -> Dict[str, object]:
        """The artifact's own audit (checksum + structural invariants)."""
        _info, store = self.catalog.get(ref)
        return store.verify()

    def stats(self) -> Dict[str, object]:
        """The process telemetry snapshot (metrics + spans + version)."""
        return obs.snapshot()

    # ------------------------------------------------------------------ #
    # Census (scalar-α) queries
    # ------------------------------------------------------------------ #

    def _batched(self, key, alphas, compute):
        if self.batcher is None:
            return compute([float(a) for a in alphas])
        return self.batcher.submit(key, alphas, compute)

    def grid_mask(self, ref: str, alphas: Sequence[float], game: str = "bcg"):
        """``bool[n_classes, n_alphas]`` equilibrium membership on a grid.

        ``game="bcg"`` is exact Definition 3 pairwise stability,
        ``game="ucg"`` Nash supportability — the store's own
        :meth:`~repro.analysis.store.CensusStore.stable_mask`.
        """
        store = self.catalog.get_census(ref)
        info = self.catalog.info(ref)
        return self._batched(
            (info.id, "census-mask", game),
            alphas,
            lambda merged: store.stable_mask(merged, game),
        )

    def grid_aggregates(
        self, ref: str, alphas: Sequence[float], game: str = "bcg"
    ) -> Dict[str, list]:
        """Whole-grid Figure 2/3 aggregates (counts, PoA, link counts)."""
        store = self.catalog.get_census(ref)
        info = self.catalog.info(ref)
        result = self._batched(
            (info.id, "census-agg", game),
            alphas,
            lambda merged: store.grid_aggregates(merged, game),
        )
        result = dict(result)
        result["alphas"] = [float(a) for a in alphas]
        result["game"] = game
        return result

    def figure(
        self, ref: str, quantity: str = "average_poa", points: int = 24
    ) -> Dict[str, object]:
        """The ``census --load --grid`` figure series as a plain payload.

        Replicates the CLI path exactly: the same
        :func:`~repro.analysis.sweeps.log_spaced_alphas` cost grid, the
        same :func:`~repro.analysis.figure_series.census_figure_series`
        construction — with the aggregates routed through the batcher, so
        concurrent figure requests share kernel calls without changing a
        single output element.
        """
        store = self.catalog.get_census(ref)
        costs = log_spaced_alphas(0.4, 2.0 * store.n * store.n, max(2, points))
        figure = census_figure_series(
            store,
            quantity,
            costs,
            aggregates=lambda alphas, game: self.grid_aggregates(
                ref, alphas, game
            ),
        )
        payload = figure_to_payload(figure)
        payload["points"] = len(costs)
        return payload

    def windows(self, ref: str, game: str = "bcg") -> Dict[str, object]:
        """Per-class stability windows of a census or weighted artifact.

        Census artifacts answer the BCG Lemma 2 ``(α_min, α_max)`` pairs;
        weighted artifacts answer the scale-grid twin ``(t_min, t_max)``
        (``game="ucg"`` for the UCG supportability hulls where the
        artifact carries UCG columns).
        """
        info, store = self.catalog.get(ref)
        if info.kind == "census":
            if game != "bcg":
                raise ValueError(
                    "census artifacts answer BCG windows; use grid_mask "
                    "with game='ucg' for UCG membership"
                )
            lo, hi = store.stability_windows()
            axis = "alpha"
        elif info.kind == "weighted":
            if game == "ucg":
                lo, hi = store.ucg_windows()
            else:
                lo, hi = store.stability_windows()
            axis = "t"
        else:
            raise ValueError(
                "delta artifacts are model-free; query windows through a "
                "census or weighted artifact"
            )
        return {
            "kind": info.kind,
            "game": game,
            "classes": len(store),
            f"{axis}_min": _tolist(lo),
            f"{axis}_max": _tolist(hi),
        }

    # ------------------------------------------------------------------ #
    # Weighted (scenario) queries
    # ------------------------------------------------------------------ #

    def weighted_grid(
        self,
        ref: str,
        ts: Optional[Sequence[float]] = None,
        points: int = 8,
        ucg: bool = False,
    ) -> Dict[str, object]:
        """The ``scenarios --load`` sweep table as a plain payload.

        Stable counts, average links and average social cost per scale
        grid point — float-exact against the in-memory sweep — plus the
        UCG Nash counts when ``ucg`` is requested and the artifact
        carries the columns.
        """
        store = self.catalog.get_weighted(ref)
        info = self.catalog.info(ref)
        if ts is None:
            ts = default_t_grid(store.n, points)
        result = self._batched(
            (info.id, "weighted-agg"),
            ts,
            lambda merged: store.aggregates(merged),
        )
        result = dict(result)
        if ucg:
            counts = self._batched(
                (info.id, "weighted-ucg"),
                ts,
                lambda merged: {"ucg_counts": store.ucg_nash_counts(merged)},
            )
            result["ucg_counts"] = counts["ucg_counts"]
        result["scenario"] = (store.scenario_params or {}).get("name")
        return result

    # ------------------------------------------------------------------ #
    # Delta / ensemble queries
    # ------------------------------------------------------------------ #

    def delta_counts(
        self,
        ref: str,
        scenario: str,
        seeds: Sequence[int],
        ts: Optional[Sequence[float]] = None,
        points: int = 8,
        params: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Per-draw stable counts straight off a delta artifact.

        One stacked-kernel call answers every seed at once
        (:meth:`DeltaStore.stable_counts_multi`), row-for-row
        bit-identical to building each draw's weighted store and counting.
        """
        from ..analysis.scenarios import build_scenario

        delta = self.catalog.get_delta(ref)
        if ts is None:
            ts = default_t_grid(delta.n, points)
        ts = [float(t) for t in ts]
        matrices = [
            build_scenario(
                scenario, delta.n, seed=int(seed), **dict(params or {})
            ).model.coefficient_matrix(delta.n)
            for seed in seeds
        ]
        counts = delta.stable_counts_multi(matrices, ts)
        return {
            "scenario": scenario,
            "n": delta.n,
            "seeds": [int(s) for s in seeds],
            "ts": ts,
            "counts": counts.tolist(),
        }

    def ensemble_stats(
        self,
        scenario: str = "random_weights",
        n: int = 6,
        draws: int = 8,
        seed: int = 0,
        grid: int = 8,
        delta: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> Dict[str, object]:
        """Aggregated seeded-ensemble statistics as a plain payload.

        Runs :func:`repro.analysis.ensembles.run_ensemble` — ``delta``
        may name a delta artifact in the catalog to amortise the
        deviation analysis across requests.
        """
        from ..analysis.ensembles import run_ensemble

        if scenario not in available_scenarios():
            raise ValueError(
                f"unknown scenario {scenario!r}; available: "
                f"{', '.join(available_scenarios())}"
            )
        kwargs = {}
        if delta is not None:
            kwargs["delta"] = self.catalog.get_delta(delta)
        result = run_ensemble(
            scenario=scenario,
            n=n,
            draws=draws,
            seed=seed,
            grid=grid,
            jobs=jobs,
            **kwargs,
        )
        return {
            "scenario": result.scenario,
            "n": result.n,
            "draws": result.draws,
            "seed": result.seed,
            "seeds": list(result.seeds),
            "ts": list(result.ts),
            "classes": result.classes,
            "counts": _tolist(result.counts),
            "count_stats": _stats_payload(result.count_stats),
            "t_min_stats": _stats_payload(result.t_min_stats),
            "t_max_stats": _stats_payload(result.t_max_stats),
        }
