"""Artifact discovery and thread-safe loading for the query service.

:class:`ArtifactCatalog` is the I/O layer of census-as-a-service: it owns
*which* artifacts exist (a directory scan keyed by each artifact's embedded
schema tag) and *how* they are materialised (the process-wide, thread-safe
store LRUs — :func:`~repro.analysis.store.cached_store`,
:func:`~repro.analysis.delta_store.cached_delta_store` and
:func:`~repro.analysis.weighted_store.cached_weighted_store` — with
memory-mapped columns by default, so a multi-hundred-MB artifact never
enters resident memory for the sake of one query).  Everything above it
(:class:`~repro.service.api.QueryAPI`, the HTTP server, the CLI) talks in
artifact **ids** and never touches paths, formats or store constructors.

Discovery is cheap: the directory format reads ``meta.json`` and the npz
format reads only the zip's header entries for the small metadata arrays —
no column data is loaded until a query actually asks for the artifact.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..analysis import delta_store as _delta_store
from ..analysis import store as _store
from ..analysis import weighted_store as _weighted_store
from ..analysis.delta_store import cached_delta_store
from ..analysis.store import LOAD_ERRORS, cached_store
from ..analysis.weighted_store import cached_weighted_store

__all__ = ["ArtifactCatalog", "ArtifactInfo", "KINDS"]

#: Schema tag → catalog kind for every artifact family the service mounts.
_SCHEMA_KINDS = {
    _store.SCHEMA: "census",
    _weighted_store.SCHEMA: "weighted",
    _delta_store.SCHEMA: "delta",
}

#: The artifact kinds a catalog can hold.
KINDS = tuple(sorted(_SCHEMA_KINDS.values()))


@dataclass(frozen=True)
class ArtifactInfo:
    """One discovered artifact: identity and cheap metadata, no columns."""

    id: str
    kind: str  # "census" | "weighted" | "delta"
    path: str
    format: str  # "npz" | "dir"
    n: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "kind": self.kind,
            "path": self.path,
            "format": self.format,
            "n": self.n,
        }


def _peek_artifact(path: str) -> Optional[Tuple[str, str, int]]:
    """``(kind, format, n)`` of the artifact at ``path``, or ``None``.

    Foreign, corrupt or unrecognised files are skipped silently — a serve
    directory may legitimately hold manifests, metrics dumps or shard
    spools next to the artifacts.
    """
    try:
        if os.path.isdir(path):
            meta_path = os.path.join(path, "meta.json")
            if not os.path.isfile(meta_path):
                return None
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            kind = _SCHEMA_KINDS.get(meta.get("schema"))
            if kind is None or "n" not in meta:
                return None
            return kind, "dir", int(meta["n"])
        if not str(path).endswith(".npz"):
            return None
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - minimal installs
            return None
        with np.load(path, allow_pickle=False) as data:
            if "schema" not in data or "n" not in data:
                return None
            kind = _SCHEMA_KINDS.get(str(data["schema"]))
            if kind is None:
                return None
            return kind, "npz", int(data["n"])
    except LOAD_ERRORS:
        return None


class ArtifactCatalog:
    """Discovers artifacts under a root and serves loaded stores by id.

    All methods are thread-safe: an :class:`threading.RLock` guards the
    registry and the underlying store caches carry their own shared lock.
    Ids are paths relative to ``root`` (or absolute for artifacts
    registered explicitly with :meth:`add`), so they are stable across
    restarts of the server process.
    """

    def __init__(self, root: Optional[str] = None, mmap: bool = True) -> None:
        self.root = os.path.abspath(root) if root else None
        self.mmap = bool(mmap)
        self._lock = threading.RLock()
        self._artifacts: Dict[str, ArtifactInfo] = {}
        if self.root is not None:
            self.refresh()

    # ------------------------------------------------------------------ #
    # Discovery / registry
    # ------------------------------------------------------------------ #

    def refresh(self) -> List[ArtifactInfo]:
        """Re-scan ``root`` for artifacts; returns the current listing.

        Entries registered via :meth:`add` survive refreshes; entries that
        vanished from disk are dropped.
        """
        with self._lock:
            if self.root is not None:
                if not os.path.isdir(self.root):
                    raise FileNotFoundError(
                        f"artifact directory {self.root!r} does not exist"
                    )
                found: Dict[str, ArtifactInfo] = {}
                for name in sorted(os.listdir(self.root)):
                    path = os.path.join(self.root, name)
                    peeked = _peek_artifact(path)
                    if peeked is None:
                        continue
                    kind, format, n = peeked
                    found[name] = ArtifactInfo(
                        id=name, kind=kind, path=path, format=format, n=n
                    )
                # Keep explicit out-of-root registrations, drop stale scans.
                for art_id, info in self._artifacts.items():
                    if art_id not in found and os.path.exists(info.path):
                        if self.root is None or not info.path.startswith(
                            self.root + os.sep
                        ):
                            found[art_id] = info
                self._artifacts = found
            self._set_gauges()
            return list(self._artifacts.values())

    def add(self, path: str, art_id: Optional[str] = None) -> ArtifactInfo:
        """Register one artifact by path (id defaults to the path itself)."""
        path = os.path.abspath(path)
        peeked = _peek_artifact(path)
        if peeked is None:
            raise ValueError(f"{path!r} is not a recognised artifact")
        kind, format, n = peeked
        info = ArtifactInfo(
            id=art_id if art_id is not None else path,
            kind=kind,
            path=path,
            format=format,
            n=n,
        )
        with self._lock:
            self._artifacts[info.id] = info
            self._set_gauges()
        return info

    def list(self) -> List[ArtifactInfo]:
        """Every known artifact, id-sorted."""
        with self._lock:
            return sorted(self._artifacts.values(), key=lambda a: a.id)

    def info(self, ref: str) -> ArtifactInfo:
        """The registry entry for ``ref`` (an id, or a registerable path)."""
        with self._lock:
            found = self._artifacts.get(ref)
            if found is not None:
                return found
            # Fall back to treating the ref as a filesystem path; this is
            # what lets the CLI run against a bare artifact file with no
            # serve directory configured.
            if os.path.exists(ref):
                return self.add(ref)
            raise KeyError(f"unknown artifact {ref!r}")

    def __len__(self) -> int:
        with self._lock:
            return len(self._artifacts)

    def _set_gauges(self) -> None:
        counts = {kind: 0 for kind in KINDS}
        for info in self._artifacts.values():
            counts[info.kind] += 1
        for kind, count in counts.items():
            obs.gauge(
                "repro_catalog_artifacts",
                "Artifacts registered in the service catalog",
                kind=kind,
            ).set(count)

    # ------------------------------------------------------------------ #
    # Loading (through the shared thread-safe LRUs)
    # ------------------------------------------------------------------ #

    def get(self, ref: str):
        """``(info, store)`` for ``ref``, loaded through the shared LRU.

        Directory-format artifacts are memory-mapped when the catalog was
        built with ``mmap=True`` (the default); npz artifacts load
        resident — both land in the same bounded cache, so repeated
        queries against one artifact never re-read the disk.
        """
        info = self.info(ref)
        mmap = self.mmap and info.format == "dir"
        if info.kind == "census":
            return info, cached_store(path=info.path, mmap=mmap)
        if info.kind == "weighted":
            return info, cached_weighted_store(info.path, mmap=mmap)
        return info, cached_delta_store(path=info.path, mmap=mmap)

    def get_census(self, ref: str):
        """The :class:`CensusStore` at ``ref`` (kind-checked)."""
        return self._get_kind(ref, "census")

    def get_weighted(self, ref: str):
        """The :class:`WeightedStore` at ``ref`` (kind-checked)."""
        return self._get_kind(ref, "weighted")

    def get_delta(self, ref: str):
        """The :class:`DeltaStore` at ``ref`` (kind-checked)."""
        return self._get_kind(ref, "delta")

    def _get_kind(self, ref: str, kind: str):
        info, store = self.get(ref)
        if info.kind != kind:
            raise ValueError(
                f"artifact {info.id!r} is a {info.kind} store; this query "
                f"needs a {kind} store"
            )
        return store
