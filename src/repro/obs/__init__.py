"""repro.obs — the telemetry spine: metrics, spans, progress, export.

The package is dependency-free (NumPy is optional, used only for P²
histogram quantiles) and must never import :mod:`repro.engine` at module
level — the engine imports *us* from its hot paths.

Quick tour::

    from repro import obs

    REQS = obs.counter("repro_requests_total", "Requests served")
    LAT = obs.histogram("repro_request_seconds", "Request latency")

    with obs.span("serve"):
        with LAT.time():
            REQS.inc()
            ...

    print(obs.to_prometheus())          # text exposition
    obs.write_metrics("metrics.json")   # JSON snapshot (spans included)

Worker piggyback (what ``parallel_map`` / ``run_shards`` do)::

    payload = obs.drain_telemetry()      # in the worker, after the chunk
    obs.merge_telemetry(payload)         # in the coordinator, exactly once

Kill-switch: ``REPRO_METRICS=0`` in the environment (or
:func:`set_metrics_enabled(False)`) makes every factory return shared
no-op objects and every live instrument refuse to record.
"""

from __future__ import annotations

import json
import os as _osmod
from typing import Optional

from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    counter,
    gauge,
    get_registry,
    histogram,
    metrics_enabled,
    prometheus_from_snapshot,
    set_metrics_enabled,
    timed_kernel,
)
from .progress import ProgressReporter  # noqa: F401
from .tracing import (  # noqa: F401
    NOOP_SPAN,
    SpanTracer,
    get_tracer,
    render_span_tree,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "NOOP_SPAN",
    "ProgressReporter",
    "SpanTracer",
    "counter",
    "drain_telemetry",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "merge_telemetry",
    "metrics_enabled",
    "prometheus_from_snapshot",
    "record_artifact_io",
    "render_span_tree",
    "reset_telemetry",
    "set_metrics_enabled",
    "snapshot",
    "span",
    "timed_kernel",
    "to_json",
    "to_prometheus",
    "write_metrics",
]


def snapshot() -> dict:
    """Combined plain-data snapshot: metrics plus the span tree.

    Stamped with ``repro_version`` so exported telemetry records which
    library build produced it.
    """
    from .._version import __version__

    payload = get_registry().to_json()
    payload["spans"] = get_tracer().snapshot()
    payload["repro_version"] = __version__
    return payload


def to_json() -> dict:
    """Alias of :func:`snapshot` (mirrors the registry method name)."""
    return snapshot()


def to_prometheus() -> str:
    """Prometheus text exposition of the global registry."""
    return get_registry().to_prometheus()


def write_metrics(path: str) -> None:
    """Write the current telemetry to ``path``.

    ``*.json`` gets the full JSON snapshot (metrics + spans); any other
    suffix gets the Prometheus text exposition.
    """
    if str(path).endswith(".json"):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus())


def drain_telemetry() -> Optional[dict]:
    """Take all pending metric deltas and the span tree (worker side).

    Returns a picklable envelope for :func:`merge_telemetry`, or ``None``
    when nothing was recorded since the last drain (or telemetry is off).
    """
    metrics = get_registry().drain_deltas()
    spans = get_tracer().drain()
    if metrics is None and spans is None:
        return None
    return {"metrics": metrics, "spans": spans}


def merge_telemetry(payload: Optional[dict]) -> None:
    """Fold a :func:`drain_telemetry` envelope in (coordinator side)."""
    if not payload:
        return
    get_registry().merge_deltas(payload.get("metrics"))
    get_tracer().merge(payload.get("spans"))


def reset_telemetry() -> None:
    """Drop every instrument and span (tests, fresh benchmark runs)."""
    get_registry().clear()
    get_tracer().clear()


def _discard_inherited_telemetry() -> None:
    """Drop pending deltas in a freshly forked child.

    Forked pool workers inherit the parent registry *including* its
    undrained deltas; without this hook the first drain in each worker
    would ship the parent's pending work back to the parent, which would
    merge its own telemetry a second time.  Spawned workers start clean
    and are unaffected.
    """
    try:
        get_registry().drain_deltas()
        get_tracer().drain()
    except Exception:  # pragma: no cover - must never break a fork
        pass


if hasattr(_osmod, "register_at_fork"):
    _osmod.register_at_fork(after_in_child=_discard_inherited_telemetry)


def _path_bytes(path: str) -> int:
    import os

    if os.path.isdir(path):
        return sum(
            os.path.getsize(os.path.join(root, name))
            for root, _dirs, files in os.walk(path)
            for name in files
        )
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def record_artifact_io(op: str, store: str, path: str, seconds: float) -> None:
    """Tally one artifact ``save``/``load``: count, bytes on disk, seconds.

    Shared by the census/delta/weighted store persistence layers (the
    ``store`` label distinguishes them).  Bytes are measured from the
    written/read path, so the directory format counts all its column
    files.  No-op when telemetry is disabled.
    """
    if not metrics_enabled():
        return
    direction = "written" if op == "save" else "read"
    counter(
        f"repro_artifact_{op}s_total", f"Artifact {op} operations",
        store=store,
    ).inc()
    counter(
        f"repro_artifact_bytes_{direction}_total",
        f"Artifact bytes {direction} on disk",
        store=store,
    ).inc(_path_bytes(path))
    histogram(
        f"repro_artifact_{op}_seconds", f"Wall seconds per artifact {op}",
        store=store,
    ).observe(seconds)
