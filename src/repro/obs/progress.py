"""One progress renderer for every sharded build.

``census``, ``scenarios`` and ``ensemble`` used to carry near-identical
``--progress`` stderr printers; :class:`ProgressReporter` replaces them
with a single callable that consumes :func:`repro.engine.run_shards`
manifest snapshots and prints one consistent line per runner event —
done/total, resume/retry/timeout tallies, the observed completion rate
and an ETA derived from the heartbeat timestamps.

The reporter is deliberately *stateless between runs*: rate and ETA come
straight out of each snapshot (``computed`` shards over the
``updated_at - started_at`` wall clock), so a resumed build reports the
rate of the work it actually did rather than an average polluted by
shards it skipped.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO


def _format_eta(seconds: float) -> str:
    if seconds != seconds or seconds == float("inf"):
        return "?"
    seconds = int(seconds + 0.5)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """A ``progress=`` callback for :func:`repro.engine.run_shards`.

    Prints ``[label] done/total done (resumed R, retries T, timeouts O)
    rate/s eta E`` to ``stream`` (stderr by default) on every snapshot.
    The label defaults to the snapshot's shard ``prefix`` so the three
    CLI surfaces stay distinguishable while sharing one format.
    """

    def __init__(
        self,
        label: Optional[str] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.label = label
        self.stream = stream

    def __call__(self, snapshot: dict) -> None:
        label = self.label or snapshot.get("prefix") or "shards"
        total = snapshot.get("total", 0)
        done = snapshot.get("done", 0)
        computed = snapshot.get("computed", 0)
        line = (
            f"[{label}] {done}/{total} done "
            f"(resumed {snapshot.get('resumed', 0)}, "
            f"retries {snapshot.get('retries', 0)}, "
            f"timeouts {snapshot.get('timeouts', 0)})"
        )
        elapsed = (
            snapshot.get("updated_at", 0.0) - snapshot.get("started_at", 0.0)
        )
        if computed > 0 and elapsed > 0:
            rate = computed / elapsed
            remaining = max(total - done, 0)
            line += (
                f" rate {rate:.2f}/s eta {_format_eta(remaining / rate)}"
            )
        elif done < total:
            line += " rate ?/s eta ?"
        stream = self.stream if self.stream is not None else sys.stderr
        print(line, file=stream)
