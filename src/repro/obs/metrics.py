"""Process-global metrics registry: labelled counters, gauges, histograms.

Everything in this module is dependency-free on purpose — the telemetry
spine must load (and stay honest) on minimal installs where NumPy is
absent.  NumPy is touched in exactly one optional place: histogram
quantiles past the exact buffer reuse the vectorised P² marker sketch of
:class:`repro.engine.streaming._P2Sketch` (one 5-marker column per
quantile), imported lazily at the first flush so no import cycle and no
hard dependency exist.

Design contract, shared with :mod:`repro.obs.tracing`:

* **one kill-switch** — ``REPRO_METRICS=0`` (or ``false``/``off``/``no``)
  at process start makes every factory hand out a *shared no-op object*
  and every already-created instrument refuse to record, so hot kernels
  pay one attribute check per instrumentation site and nothing else.  The
  bench ceiling in ``benchmarks/bench_engine.py`` (``telemetry`` section,
  schema v9) enforces that the disabled path stays within 5% of calling
  the raw kernels;
* **merge-exact deltas** — every instrument accumulates a *pending* delta
  alongside its value.  :meth:`MetricsRegistry.drain_deltas` atomically
  takes the pending state (a picklable dict) and
  :meth:`MetricsRegistry.merge_deltas` folds it into another process's
  registry, summing counters and histogram tallies **exactly once** per
  drained payload — this is how pool workers piggyback their telemetry
  onto :func:`repro.engine.parallel_map` / :func:`repro.engine.run_shards`
  chunk results (a crashed worker's undelivered pending state dies with
  it; the retried attempt records afresh, so nothing double-counts);
* **histogram accuracy regimes** — fixed log buckets are exact tallies;
  quantiles are exact (order-statistic interpolation, NumPy's linear
  rule) while the observation count is within ``exact_buffer`` and P²
  marker estimates beyond.  Worker deltas carry raw samples up to
  :data:`SAMPLE_CAP` per drain; bucket/count/sum merging is always exact,
  sketch feeding is exact up to the cap (census/ensemble chunks observe
  a handful of kernel timings each, far below it).

Exposition: :meth:`MetricsRegistry.to_json` snapshots everything as plain
data and :func:`prometheus_from_snapshot` renders the standard text
format (histograms as cumulative ``_bucket{le=...}`` series plus
``_sum``/``_count``); :meth:`MetricsRegistry.to_prometheus` composes the
two, so a snapshot saved to JSON re-renders bit-identically later
(``repro stats`` relies on this).
"""

from __future__ import annotations

import bisect
import math
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Environment kill-switch; any of these values disables telemetry.
METRICS_ENV = "REPRO_METRICS"
_FALSEY = ("0", "false", "off", "no")

#: Default histogram log-buckets (seconds-flavoured: 1µs … 1000s).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0
)

#: Quantiles a histogram tracks by default.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

#: Observation count below which histogram quantiles are exact.
DEFAULT_EXACT_BUFFER = 64

#: Raw observations shipped per histogram per drain (see module docstring).
SAMPLE_CAP = 4096

#: Snapshot schema tag (written into every to_json payload).
SNAPSHOT_SCHEMA = "repro-metrics"
SNAPSHOT_VERSION = 1


class _State:
    """Mutable module state (a class so instruments share one lookup)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = (
            os.environ.get(METRICS_ENV, "1").strip().lower() not in _FALSEY
        )


_STATE = _State()


def metrics_enabled() -> bool:
    """Whether telemetry records anything in this process."""
    return _STATE.enabled


def set_metrics_enabled(enabled: bool) -> bool:
    """Flip the kill-switch at runtime; returns the previous value.

    Existing instruments stop (or resume) recording immediately; factory
    calls made while disabled return the shared no-op objects.  The
    environment variable is only read once, at import — this is the
    programmatic override (tests, benchmarks).
    """
    previous = _STATE.enabled
    _STATE.enabled = bool(enabled)
    return previous


# --------------------------------------------------------------------------- #
# No-op instruments (shared singletons handed out while disabled)
# --------------------------------------------------------------------------- #


class _NoopTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class NoopInstrument:
    """Absorbs every instrument method; one shared instance per kind."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NoopTimer:
        return NOOP_TIMER

    def quantile(self, q: float) -> float:
        return float("nan")


NOOP_TIMER = _NoopTimer()
NOOP_COUNTER = NoopInstrument()
NOOP_GAUGE = NoopInstrument()
NOOP_HISTOGRAM = NoopInstrument()


# --------------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------------- #


class _Timer:
    """Context manager feeding one wall-clock duration into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self):
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        import time

        self._histogram.observe(time.perf_counter() - self._start)
        return False


class Counter:
    """Monotonically increasing value (plus its pending merge delta)."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_value", "_pending")

    def __init__(self, name: str, help: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels)
        self._value = 0.0
        self._pending = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount
        self._pending += amount

    def _drain(self) -> Optional[dict]:
        if self._pending == 0.0:
            return None
        delta, self._pending = self._pending, 0.0
        return {"value": delta}

    def _merge(self, delta: dict) -> None:
        # Merged amounts stay pending too, so a mid-tier coordinator that
        # is itself drained forwards its workers' contributions upward.
        self._value += delta["value"]
        self._pending += delta["value"]

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Gauge:
    """A value that can go both ways (pool depth, heartbeat timestamps)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_value", "_dirty")

    def __init__(self, name: str, help: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels)
        self._value = 0.0
        self._dirty = False

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        if not _STATE.enabled:
            return
        self._value = float(value)
        self._dirty = True

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.enabled:
            return
        self._value += amount
        self._dirty = True

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _drain(self) -> Optional[dict]:
        if not self._dirty:
            return None
        self._dirty = False
        return {"value": self._value}

    def _merge(self, delta: dict) -> None:
        # Gauges are instantaneous readings: the merged (worker) value
        # wins, matching Prometheus' last-write semantics.
        self._value = delta["value"]
        self._dirty = True

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self._value,
        }


class _ScalarP2Bank:
    """One P² 5-marker sketch per quantile, fed scalar-at-a-time.

    A thin single-position adapter over the vectorised
    :class:`repro.engine.streaming._P2Sketch` (imported lazily; requires
    NumPy).  Raises :class:`RuntimeError` when NumPy is unavailable — the
    owning histogram then falls back to bucket interpolation.
    """

    __slots__ = ("_np", "_sketches", "_quantiles", "_init", "_fin")

    def __init__(self, quantiles: Sequence[float]) -> None:
        from ..engine.streaming import _P2Sketch, streaming_available

        if not streaming_available():
            raise RuntimeError("P2 quantile sketches require NumPy")
        import numpy

        self._np = numpy
        self._quantiles = tuple(quantiles)
        self._sketches = [_P2Sketch(q, 1) for q in self._quantiles]
        self._init: List[float] = []
        self._fin = 0

    def add(self, value: float) -> None:
        np = self._np
        self._fin += 1
        if self._fin <= 5:
            self._init.append(value)
            if self._fin == 5:
                block = np.sort(np.asarray(self._init, dtype=np.float64))[:, None]
                cols = np.zeros(1, dtype=np.int64)
                for sketch in self._sketches:
                    sketch.init_columns(cols, block)
            return
        values = np.asarray([value], dtype=np.float64)
        mask = np.ones(1, dtype=bool)
        fin_counts = np.asarray([self._fin], dtype=np.int64)
        for sketch in self._sketches:
            sketch.add(values, mask, fin_counts)

    def estimate(self, q: float) -> float:
        if self._fin == 0:
            return float("nan")
        if self._fin < 5:
            return _exact_quantile(sorted(self._init), q)
        for quantile, sketch in zip(self._quantiles, self._sketches):
            if quantile == q:
                return float(sketch.estimate()[0])
        raise ValueError(
            f"quantile {q} is not tracked by this histogram "
            f"(tracked: {self._quantiles})"
        )


def _exact_quantile(sorted_values: List[float], q: float) -> float:
    """NumPy's linear-interpolation quantile of an already sorted list."""
    k = len(sorted_values)
    if k == 0:
        return float("nan")
    rank = q * (k - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac


class Histogram:
    """Fixed log-buckets + regime-split quantiles (exact, then P² sketch).

    Observations below ``exact_buffer`` are buffered and quantiles are
    exact order statistics; past the buffer the values flush into one P²
    sketch per tracked quantile (bucket tallies, count, sum, min and max
    stay exact forever).  Non-finite observations count toward
    ``count``/``sum``/extrema and the overflow bucket but never feed the
    sketches.
    """

    kind = "histogram"
    __slots__ = (
        "name", "help", "labels", "buckets", "quantiles", "exact_buffer",
        "count", "sum", "min", "max", "_bucket_counts", "_buffer", "_bank",
        "_bank_failed", "_pending",
    )

    def __init__(
        self,
        name: str,
        help: str,
        labels: Dict[str, str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_buffer: int = DEFAULT_EXACT_BUFFER,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.quantiles = tuple(float(q) for q in quantiles)
        self.exact_buffer = int(exact_buffer)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # One tally per bound plus the +inf overflow slot.
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._buffer: Optional[List[float]] = []
        self._bank: Optional[_ScalarP2Bank] = None
        self._bank_failed = False
        self._pending = self._empty_delta()

    def _empty_delta(self) -> dict:
        return {
            "count": 0,
            "sum": 0.0,
            "min": float("inf"),
            "max": float("-inf"),
            "bucket_counts": [0] * (len(self.buckets) + 1),
            "samples": [],
        }

    def observe(self, value: float) -> None:
        if not _STATE.enabled:
            return
        value = float(value)
        self._record(value)
        pending = self._pending
        pending["count"] += 1
        pending["sum"] += value
        if value < pending["min"]:
            pending["min"] = value
        if value > pending["max"]:
            pending["max"] = value
        pending["bucket_counts"][self._bucket_index(value)] += 1
        if len(pending["samples"]) < SAMPLE_CAP:
            pending["samples"].append(value)

    def time(self) -> _Timer:
        """``with histogram.time(): ...`` observes the block's wall time."""
        if not _STATE.enabled:
            return NOOP_TIMER
        return _Timer(self)

    def _bucket_index(self, value: float) -> int:
        if value != value:  # NaN lands in the overflow slot
            return len(self.buckets)
        return bisect.bisect_left(self.buckets, value)

    def _record(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._bucket_counts[self._bucket_index(value)] += 1
        if not math.isfinite(value):
            return
        if self._buffer is not None:
            self._buffer.append(value)
            if len(self._buffer) > self.exact_buffer:
                self._flush_buffer()
            return
        self._feed_bank(value)

    def _flush_buffer(self) -> None:
        buffered, self._buffer = self._buffer, None
        for value in buffered:
            self._feed_bank(value)

    def _feed_bank(self, value: float) -> None:
        if self._bank is None:
            if self._bank_failed:
                return
            try:
                self._bank = _ScalarP2Bank(self.quantiles)
            except RuntimeError:
                # No NumPy: quantiles degrade to bucket interpolation.
                self._bank_failed = True
                return
        self._bank.add(value)

    # ---------------------------- queries ----------------------------- #

    def quantile(self, q: float) -> float:
        """The q-quantile estimate under the regime-split contract."""
        q = float(q)
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantiles live in [0, 1]")
        if self._buffer is not None:
            return _exact_quantile(sorted(self._buffer), q)
        if self._bank is not None:
            return self._bank.estimate(q)
        return self._bucket_quantile(q)

    def _bucket_quantile(self, q: float) -> float:
        """Linear interpolation inside the bucket holding rank ``q``."""
        if self.count == 0:
            return float("nan")
        target = q * self.count
        running = 0
        lower = 0.0 if self.buckets[0] > 0 else self.buckets[0]
        for bound, tally in zip(self.buckets, self._bucket_counts):
            if tally and running + tally >= target:
                frac = (target - running) / tally
                return lower + (bound - lower) * frac
            running += tally
            lower = bound
        return self.max if math.isfinite(self.max) else lower

    # ------------------------- drain / merge -------------------------- #

    def _drain(self) -> Optional[dict]:
        if self._pending["count"] == 0:
            return None
        delta, self._pending = self._pending, self._empty_delta()
        delta["buckets"] = self.buckets
        delta["quantiles"] = self.quantiles
        return delta

    def _merge(self, delta: dict) -> None:
        if tuple(delta.get("buckets", self.buckets)) != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge deltas with "
                "different bucket bounds"
            )
        self.count += delta["count"]
        self.sum += delta["sum"]
        if delta["min"] < self.min:
            self.min = delta["min"]
        if delta["max"] > self.max:
            self.max = delta["max"]
        for index, tally in enumerate(delta["bucket_counts"]):
            self._bucket_counts[index] += tally
        for value in delta["samples"]:
            if math.isfinite(value):
                if self._buffer is not None:
                    self._buffer.append(value)
                    if len(self._buffer) > self.exact_buffer:
                        self._flush_buffer()
                else:
                    self._feed_bank(value)
        pending = self._pending
        pending["count"] += delta["count"]
        pending["sum"] += delta["sum"]
        if delta["min"] < pending["min"]:
            pending["min"] = delta["min"]
        if delta["max"] > pending["max"]:
            pending["max"] = delta["max"]
        for index, tally in enumerate(delta["bucket_counts"]):
            pending["bucket_counts"][index] += tally
        room = SAMPLE_CAP - len(pending["samples"])
        if room > 0:
            pending["samples"].extend(delta["samples"][:room])

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": list(self.buckets),
            "bucket_counts": list(self._bucket_counts),
            "quantiles": {
                str(q): self.quantile(q) for q in self.quantiles
            },
        }


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home of every instrument, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._instruments: Dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str, labels: Dict[str, str], **options):
        if not _STATE.enabled:
            return _NOOPS[cls.kind]
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = cls(name, help, labels, **options)
                    self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_buffer: int = DEFAULT_EXACT_BUFFER,
        **labels,
    ) -> Histogram:
        return self._get(
            Histogram, name, help, labels,
            buckets=buckets, quantiles=quantiles, exact_buffer=exact_buffer,
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def clear(self) -> None:
        """Drop every instrument (tests and cold-start benchmarks)."""
        with self._lock:
            self._instruments.clear()

    # ------------------------- drain / merge -------------------------- #

    def drain_deltas(self) -> Optional[dict]:
        """Take (and reset) every instrument's pending delta.

        Returns a picklable ``{(name, labels_tuple): payload}`` dict, or
        ``None`` when nothing changed since the last drain — the envelope
        pool workers piggyback onto their chunk results.
        """
        if not _STATE.enabled:
            return None
        out = {}
        with self._lock:
            instruments = list(self._instruments.items())
        for key, instrument in instruments:
            delta = instrument._drain()
            if delta is not None:
                delta["kind"] = instrument.kind
                delta["help"] = instrument.help
                out[key] = delta
        return out or None

    def merge_deltas(self, deltas: Optional[dict]) -> None:
        """Fold a :meth:`drain_deltas` payload into this registry.

        Missing instruments are created with the payload's configuration,
        so a coordinator that never touched a metric still aggregates its
        workers' series.  A ``None`` payload is a no-op.
        """
        if not deltas or not _STATE.enabled:
            return
        for (name, label_items), payload in deltas.items():
            kind = payload["kind"]
            labels = dict(label_items)
            if kind == "histogram":
                instrument = self.histogram(
                    name,
                    help=payload.get("help", ""),
                    buckets=payload.get("buckets", DEFAULT_BUCKETS),
                    quantiles=payload.get("quantiles", DEFAULT_QUANTILES),
                    **labels,
                )
            elif kind == "gauge":
                instrument = self.gauge(name, help=payload.get("help", ""), **labels)
            else:
                instrument = self.counter(name, help=payload.get("help", ""), **labels)
            instrument._merge(payload)

    # --------------------------- exposition --------------------------- #

    def to_json(self) -> dict:
        """Plain-data snapshot of every instrument (JSON-serialisable)."""
        with self._lock:
            instruments = list(self._instruments.values())
        return {
            "schema": SNAPSHOT_SCHEMA,
            "version": SNAPSHOT_VERSION,
            "enabled": _STATE.enabled,
            "metrics": [
                instrument._snapshot() for instrument in instruments
            ],
        }

    def to_prometheus(self) -> str:
        """The Prometheus text exposition of the current state."""
        return prometheus_from_snapshot(self.to_json())


_NOOPS = {
    "counter": NOOP_COUNTER,
    "gauge": NOOP_GAUGE,
    "histogram": NOOP_HISTOGRAM,
}


# --------------------------------------------------------------------------- #
# Prometheus text rendering (pure function of a snapshot)
# --------------------------------------------------------------------------- #


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_from_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.to_json` snapshot as exposition text.

    Families are emitted name-sorted with one ``# HELP``/``# TYPE`` header
    each; histograms follow the standard cumulative-bucket convention
    (``name_bucket{le="..."}`` plus ``name_sum`` / ``name_count``).
    Quantile estimates live only in the JSON snapshot — Prometheus users
    derive quantiles from the buckets via ``histogram_quantile``.
    """
    families: Dict[str, List[dict]] = {}
    for entry in snapshot.get("metrics", []):
        families.setdefault(entry["name"], []).append(entry)
    lines: List[str] = []
    for name in sorted(families):
        members = families[name]
        kind = members[0]["kind"]
        help_text = next((m["help"] for m in members if m.get("help")), "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for member in sorted(
            members, key=lambda m: sorted(m["labels"].items())
        ):
            labels = member["labels"]
            if kind == "histogram":
                running = 0
                for bound, tally in zip(
                    member["buckets"], member["bucket_counts"]
                ):
                    running += tally
                    bucket_labels = dict(labels, le=_format_value(bound))
                    lines.append(
                        f"{name}_bucket{_label_text(bucket_labels)} {running}"
                    )
                total = running + member["bucket_counts"][-1]
                inf_labels = dict(labels, le="+Inf")
                lines.append(f"{name}_bucket{_label_text(inf_labels)} {total}")
                lines.append(
                    f"{name}_sum{_label_text(labels)} "
                    f"{_format_value(member['sum'])}"
                )
                lines.append(f"{name}_count{_label_text(labels)} {total}")
            else:
                lines.append(
                    f"{name}{_label_text(labels)} "
                    f"{_format_value(member['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------- #
# The process-global registry + module-level conveniences
# --------------------------------------------------------------------------- #


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every instrumentation site records into."""
    return _REGISTRY


def counter(name: str, help: str = "", **labels) -> Counter:
    """Get-or-create a counter in the global registry."""
    return _REGISTRY.counter(name, help=help, **labels)


def gauge(name: str, help: str = "", **labels) -> Gauge:
    """Get-or-create a gauge in the global registry."""
    return _REGISTRY.gauge(name, help=help, **labels)


def histogram(name: str, help: str = "", **options) -> Histogram:
    """Get-or-create a histogram in the global registry."""
    return _REGISTRY.histogram(name, help=help, **options)


#: The one histogram family every engine kernel reports wall seconds into.
KERNEL_SECONDS = "repro_kernel_seconds"
KERNEL_SECONDS_HELP = "Wall seconds per vectorised-kernel call"


def timed_kernel(name: str):
    """Decorator: time each call into ``repro_kernel_seconds{kernel=name}``.

    The wrapper costs one flag check when telemetry is disabled and keeps
    the raw function reachable as ``__wrapped__`` — the benchmark overhead
    ceiling compares the two.
    """
    import functools

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _STATE.enabled:
                return fn(*args, **kwargs)
            with _REGISTRY.histogram(
                KERNEL_SECONDS, help=KERNEL_SECONDS_HELP, kernel=name
            ).time():
                return fn(*args, **kwargs)

        return wrapper

    return decorate
