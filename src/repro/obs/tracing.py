"""Hierarchical span tracing: wall/CPU timing trees around hot paths.

``with span("census.build"):`` opens a node under the thread's current
span; nested ``span(...)`` blocks attach as children, and repeated visits
to the same path aggregate in place (count, total/min/max wall seconds,
total CPU seconds) rather than growing an unbounded event log.  The
result is a compact tree keyed by slash-joined paths, rendered with
:func:`render_span_tree` or exported through the registry-style
``snapshot`` / ``drain`` / ``merge`` trio so pool workers can piggyback
their subtree totals onto chunk results exactly like metric deltas
(see :mod:`repro.obs.metrics` for the exactly-once contract).

The tracer honours the same ``REPRO_METRICS`` kill-switch: when disabled,
:func:`span` returns a shared no-op context manager and nothing records.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from .metrics import _STATE

#: Path separator between nested span names.
SEP = "/"


class SpanNode:
    """Aggregated timings for one span path (and its children)."""

    __slots__ = ("name", "count", "wall", "cpu", "min_wall", "max_wall", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.min_wall = float("inf")
        self.max_wall = float("-inf")
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def record(self, wall: float, cpu: float) -> None:
        self.count += 1
        self.wall += wall
        self.cpu += cpu
        if wall < self.min_wall:
            self.min_wall = wall
        if wall > self.max_wall:
            self.max_wall = wall

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "count": self.count,
            "wall": self.wall,
            "cpu": self.cpu,
        }
        if self.count:
            out["min_wall"] = self.min_wall
            out["max_wall"] = self.max_wall
        if self.children:
            out["children"] = [
                child.to_dict() for child in self.children.values()
            ]
        return out

    def merge(self, payload: dict) -> None:
        self.count += payload["count"]
        self.wall += payload["wall"]
        self.cpu += payload["cpu"]
        if payload["count"]:
            if payload["min_wall"] < self.min_wall:
                self.min_wall = payload["min_wall"]
            if payload["max_wall"] > self.max_wall:
                self.max_wall = payload["max_wall"]
        for child_payload in payload.get("children", ()):
            self.child(child_payload["name"]).merge(child_payload)

    def is_empty(self) -> bool:
        return self.count == 0 and not self.children


class _NoopSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


NOOP_SPAN = _NoopSpan()


class _Span:
    """The live context manager: pushes onto the thread's span stack."""

    __slots__ = ("_tracer", "_name", "_wall0", "_cpu0")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self):
        self._tracer._push(self._name)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info):
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self._tracer._pop(self._name, wall, cpu)
        return False


class SpanTracer:
    """Per-process tracer holding one aggregated tree per thread.

    Each thread keeps its own stack (spans opened on different threads
    never nest into each other); the trees all hang off one shared root
    whose direct children are merged across threads on export.  Spans are
    re-entrant — ``span("a")`` inside ``span("a")`` produces an ``a/a``
    path, which is the honest shape for recursive instrumented calls.
    """

    def __init__(self) -> None:
        self._root = SpanNode("")
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = [self._root]
        return stack

    def span(self, name: str):
        """Open (or no-op, when disabled) a span named ``name``."""
        if not _STATE.enabled:
            return NOOP_SPAN
        return _Span(self, name)

    def _push(self, name: str) -> None:
        stack = self._stack()
        with self._lock:
            stack.append(stack[-1].child(name))

    def _pop(self, name: str, wall: float, cpu: float) -> None:
        stack = self._stack()
        if len(stack) < 2 or stack[-1].name != name:
            # A mismatched exit (e.g. a span closed on a different thread)
            # must never corrupt the tree; drop the sample instead.
            return
        node = stack.pop()
        with self._lock:
            node.record(wall, cpu)

    # ------------------------ export / transport ----------------------- #

    def snapshot(self) -> dict:
        """Plain-data copy of the whole span tree (JSON-serialisable)."""
        with self._lock:
            return self._root.to_dict()

    def drain(self) -> Optional[dict]:
        """Take the tree (leaving the tracer empty); ``None`` when bare.

        The returned payload is what workers piggyback next to their
        metric deltas; fold it back in with :meth:`merge`.
        """
        if not _STATE.enabled:
            return None
        with self._lock:
            if self._root.is_empty():
                return None
            payload = self._root.to_dict()
            # Reset in place so open spans (nodes still referenced from
            # thread stacks) keep recording into the same objects.
            for node in list(self._root.children.values()):
                if _detach_if_idle(node):
                    del self._root.children[node.name]
        return payload

    def merge(self, payload: Optional[dict]) -> None:
        """Fold a :meth:`drain`/:meth:`snapshot` payload into this tree."""
        if not payload or not _STATE.enabled:
            return
        with self._lock:
            self._root.merge(payload)

    def clear(self) -> None:
        with self._lock:
            self._root = SpanNode("")
        self._local = threading.local()


def _detach_if_idle(node: SpanNode) -> bool:
    """Zero a drained subtree; True when the node can be dropped outright.

    Nodes still on some thread's stack (an open span) must survive with
    their identity so the eventual ``record`` lands somewhere; we zero
    their totals and keep them.
    """
    for child in list(node.children.values()):
        if _detach_if_idle(child):
            del node.children[child.name]
    node.count = 0
    node.wall = 0.0
    node.cpu = 0.0
    node.min_wall = float("inf")
    node.max_wall = float("-inf")
    return not node.children


# --------------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------------- #


def _format_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f}ms"
    return f"{value * 1e6:.0f}us"


def render_span_tree(snapshot: dict) -> str:
    """Render a :meth:`SpanTracer.snapshot` payload as an aligned table.

    One row per span path, indented by depth, with call count, total and
    mean wall seconds, and total CPU seconds.
    """
    rows: List[tuple] = []

    def walk(node: dict, depth: int) -> None:
        if node.get("name"):
            count = node["count"]
            wall = node["wall"]
            mean = wall / count if count else 0.0
            rows.append((
                "  " * depth + node["name"],
                str(count),
                _format_seconds(wall),
                _format_seconds(mean),
                _format_seconds(node["cpu"]),
            ))
        for child in node.get("children", ()):
            walk(child, depth + (1 if node.get("name") else 0))

    walk(snapshot, 0)
    if not rows:
        return "(no spans recorded)"
    header = ("span", "count", "wall", "mean", "cpu")
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(header)))
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# The process-global tracer
# --------------------------------------------------------------------------- #


_TRACER = SpanTracer()


def get_tracer() -> SpanTracer:
    """The process-global tracer every ``span(...)`` call records into."""
    return _TRACER


def span(name: str):
    """Open a span named ``name`` in the global tracer (no-op if disabled)."""
    return _TRACER.span(name)
