"""Command-line interface: ``python -m repro.cli <experiment> [...]``.

Examples
--------
List the available experiments::

    python -m repro.cli --list

Reproduce Figure 2 and Lemma 6::

    python -m repro.cli figure2 lemma6

Run everything (slow — builds the exhaustive censuses)::

    python -m repro.cli --all

Build, persist and query a columnar census artifact::

    python -m repro.cli census --n 7 --save census7.npz
    python -m repro.cli census --load census7.npz --grid 24 --quantity average_poa
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from . import obs
from .experiments import available_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the experiments CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures and results of Corbo & Parkes (PODC 2005), "
            "'The Price of Selfish Behavior in Bilateral Network Formation'."
        ),
        epilog=(
            "Subcommands: 'census' builds, saves, loads and queries columnar "
            "equilibrium-census artifacts; 'scenarios' sweeps heterogeneous "
            "link-cost scenarios (and persists/queries weighted artifacts); "
            "'ensemble' aggregates seeded scenario draws; 'stats' renders "
            "telemetry snapshots; 'serve' exposes artifacts over JSON/HTTP "
            "and 'query' is its client — see '<subcommand> --help'."
        ),
    )
    from ._version import __version__

    parser.add_argument(
        "--version", action="version", version=__version__,
        help="print the library version and exit",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiment ids and exit",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="run every registered experiment",
    )
    parser.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the one-line pass/fail summaries",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan censuses and sampled sweeps out over N worker processes "
            "(default: serial; negative: one worker per CPU); results are "
            "identical for any value"
        ),
    )
    parser.add_argument(
        "--sampled",
        action="store_true",
        help=(
            "also run the dynamics-sampled paper-sized variant of experiments "
            "that offer one (figure2, figure3)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help=(
            "override the sampling seed of dynamics-sampled experiment "
            "variants (use with --sampled)"
        ),
    )
    return parser


def build_census_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``census`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments census",
        description=(
            "Build, save, load and query columnar equilibrium-census "
            "artifacts (CensusStore)."
        ),
    )
    parser.add_argument(
        "--n", type=int, default=None, metavar="N",
        help="number of players to build the census for (omit with --load)",
    )
    parser.add_argument(
        "--load", metavar="PATH", default=None,
        help="load an existing artifact instead of building one",
    )
    parser.add_argument(
        "--save", metavar="PATH", default=None,
        help="persist the store after building (*.npz or a directory)",
    )
    parser.add_argument(
        "--format", choices=("npz", "dir"), default=None,
        help="on-disk layout for --save (default: inferred from the path)",
    )
    parser.add_argument(
        "--mmap", action="store_true",
        help="memory-map the columns when loading a directory artifact",
    )
    parser.add_argument(
        "--ucg",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "include the vectorised UCG orientation analysis when building "
            "(default: on; --no-ucg for a BCG-only artifact)"
        ),
    )
    parser.add_argument(
        "--streamed", action="store_true",
        help="build by streaming the sharded generation tree (large n)",
    )
    parser.add_argument(
        "--shard-dir", metavar="DIR", default=None,
        help="with --streamed: persist/resume per-shard column chunks here",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "with --streamed: kill and re-queue any shard attempt that "
            "runs longer than this"
        ),
    )
    parser.add_argument(
        "--shard-retries", type=int, default=None, metavar="N",
        help=(
            "with --streamed: pool attempts per shard beyond the first "
            "before the in-parent serial fallback (default: 2)"
        ),
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="with --streamed: print shard progress/retry tallies to stderr",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help=(
            "audit the artifact (content checksum + CSR invariants) after "
            "building or loading; exit 1 on failure"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan the build out over N worker processes (negative: per CPU)",
    )
    parser.add_argument(
        "--grid", type=int, default=0, metavar="POINTS",
        help="also print a vectorised figure series over a log α-grid",
    )
    parser.add_argument(
        "--quantity", default="average_poa",
        choices=("average_poa", "worst_poa", "average_links"),
        help="which figure quantity --grid tabulates (default: average_poa)",
    )
    parser.add_argument(
        "--save-deltas", metavar="PATH", default=None,
        help=(
            "also persist the model-independent delta artifact (DeltaStore) "
            "for this n — the shared input of amortised ensembles "
            "(*.npz or a directory)"
        ),
    )
    _add_telemetry_flags(parser)
    return parser


def build_scenarios_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``scenarios`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments scenarios",
        description=(
            "Sweep heterogeneous link-cost scenarios (per-player / per-edge "
            "α) over a scale grid: at every grid point t the games are "
            "played on C = t·W."
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the registered scenario names and exit",
    )
    parser.add_argument(
        "--name", default=None, metavar="SCENARIO",
        help="scenario to sweep (see --list)",
    )
    parser.add_argument(
        "--n", type=int, default=None, metavar="N",
        help="number of players (default: 6; not valid with --load)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="seed for randomised scenarios (default: 0; not valid with --load)",
    )
    parser.add_argument(
        "--grid", type=int, default=8, metavar="POINTS",
        help="number of log-spaced scale grid points (default: 8)",
    )
    parser.add_argument(
        "--ucg",
        action="store_true",
        help=(
            "also run the weighted UCG orientation analysis (vectorised "
            "engine); with --save/--load the UCG t-interval columns are "
            "persisted in / reported from the artifact"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan the UCG analysis out over N worker processes",
    )
    parser.add_argument(
        "--save", metavar="PATH", default=None,
        help=(
            "persist the sweep as a weighted-store artifact (*.npz or a "
            "directory) and answer the table from it (add --ucg for UCG "
            "columns)"
        ),
    )
    parser.add_argument(
        "--load", metavar="PATH", default=None,
        help=(
            "query an existing weighted-store artifact instead of sweeping "
            "(no deviation analysis is recomputed)"
        ),
    )
    parser.add_argument(
        "--format", choices=("npz", "dir"), default=None,
        help="on-disk layout for --save (default: inferred from the path)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help=(
            "with --save/--load: audit the artifact (content checksum + "
            "CSR invariants); exit 1 on failure"
        ),
    )
    parser.add_argument(
        "--streamed", action="store_true",
        help=(
            "with --save: build the artifact by streaming the sharded "
            "generation tree instead of holding every class in memory"
        ),
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="with --streamed: print shard progress/retry tallies to stderr",
    )
    _add_telemetry_flags(parser)
    return parser


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared --metrics-out / --trace telemetry flags."""
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help=(
            "write the run's telemetry to FILE on exit: *.json gets the "
            "JSON snapshot (metrics + spans), anything else the "
            "Prometheus text exposition"
        ),
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print the hierarchical span timing table to stderr on exit",
    )


def _finish_telemetry(args: argparse.Namespace) -> None:
    """Honour --trace / --metrics-out after a subcommand body ran."""
    if getattr(args, "trace", False):
        tree = obs.render_span_tree(obs.get_tracer().snapshot())
        if tree:
            print(tree, file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        try:
            obs.write_metrics(metrics_out)
        except OSError as error:
            print(f"cannot write {metrics_out}: {error}", file=sys.stderr)


def _report_verify(audit, label: str) -> int:
    """Print a verify() audit; returns the process exit code share (0/1)."""
    if audit["ok"]:
        print(
            f"verify {label}: ok ({audit['classes']} classes, "
            f"checksum {audit['checksum']})"
        )
        return 0
    print(f"verify {label}: FAILED", file=sys.stderr)
    for error in audit["errors"]:
        print(f"  {error}", file=sys.stderr)
    return 1


def _print_weighted_table(ts, counts, links, social, ucg_counts=None) -> None:
    from .analysis.report import format_table

    headers = ["t", "#stable_bcg", "avg_links", "avg_social_cost"]
    if ucg_counts is not None:
        headers.append("#nash_ucg")
    rows = []
    for k, t in enumerate(ts):
        row = [t, counts[k], links[k], social[k]]
        if ucg_counts is not None:
            row.append(ucg_counts[k])
        rows.append(row)
    print()
    print(format_table(headers, rows))


def scenarios_main(argv: List[str]) -> int:
    """Run the ``scenarios`` subcommand; returns a process exit code."""
    parser = build_scenarios_parser()
    args = parser.parse_args(argv)
    try:
        with obs.span("cli:scenarios"):
            return _scenarios_run(parser, args)
    finally:
        _finish_telemetry(args)


def _scenarios_run(parser: argparse.ArgumentParser, args) -> int:
    from .analysis.report import format_table, format_weighted_store_summary
    from .analysis.scenarios import (
        available_scenarios,
        build_scenario,
        default_t_grid,
        scenario_sweep,
    )
    from .analysis.weighted_store import WeightedStore, weighted_store_available

    if args.list:
        for name in available_scenarios():
            print(name)
        return 0
    if (args.save or args.load) and not weighted_store_available():
        print("weighted-store artifacts require NumPy", file=sys.stderr)
        return 2
    if args.verify and not (args.save or args.load):
        print("--verify audits an artifact; add --save or --load", file=sys.stderr)
        return 2
    if args.streamed and not args.save:
        print("--streamed builds an artifact; add --save", file=sys.stderr)
        return 2
    if args.progress and not args.streamed:
        print("--progress requires --streamed", file=sys.stderr)
        return 2

    if args.load is not None:
        # The artifact fixes the scenario, n, seed and model entirely —
        # accepting (and ignoring) the build flags would let the output be
        # misread as a sweep of whatever the user typed.
        conflicting = [
            flag
            for flag, value in (
                ("--name", args.name),
                ("--save", args.save),
                ("--n", args.n),
                ("--seed", args.seed),
                ("--jobs", args.jobs),
                ("--format", args.format),
            )
            if value is not None
        ]
        if conflicting:
            print(
                "--load queries an existing artifact; it takes no "
                + "/".join(conflicting),
                file=sys.stderr,
            )
            return 2
        opened = _open_query_api(args.load, "weighted")
        if isinstance(opened, int):
            return opened
        api, summary = opened
        print(format_weighted_store_summary(summary, source=args.load))
        if args.verify and _report_verify(api.verify(args.load), args.load):
            return 1
        if args.ucg and not summary["include_ucg"]:
            print(
                f"{args.load} carries no UCG columns; rebuild the artifact "
                "with scenarios --ucg --save",
                file=sys.stderr,
            )
            return 2
        grid = api.weighted_grid(args.load, points=args.grid, ucg=args.ucg)
        _print_weighted_table(
            grid["ts"],
            grid["bcg_counts"],
            grid["average_links"],
            grid["average_social_cost"],
            ucg_counts=grid["ucg_counts"] if args.ucg else None,
        )
        return 0

    if args.name is None:
        parser.print_usage(sys.stderr)
        print("one of --list, --name and --load is required", file=sys.stderr)
        return 2
    n = 6 if args.n is None else args.n
    seed = 0 if args.seed is None else args.seed
    if n < 2:
        print("scenarios need at least two players", file=sys.stderr)
        return 2
    try:
        scenario = build_scenario(args.name, n, seed=seed)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    model = scenario.model
    if args.save is not None:
        # Fail on an unwritable destination in milliseconds, not after the
        # whole deviation-analysis build has run.
        parent = os.path.dirname(os.path.abspath(args.save))
        if not os.path.isdir(parent) or not os.access(parent, os.W_OK):
            print(
                f"cannot save {args.save}: directory {parent} is not writable",
                file=sys.stderr,
            )
            return 2
        # Build the columns once, answer the table from them, persist them:
        # the artifact *is* the sweep, so the printed numbers and any later
        # --load query come from identical columns.
        store = WeightedStore.from_scenario(
            scenario,
            jobs=args.jobs,
            include_ucg=args.ucg,
            streamed=args.streamed,
            progress=obs.ProgressReporter() if args.progress else None,
        )
        print(
            f"scenario {scenario.name}: n = {scenario.n}, "
            f"{model.kind} cost model, {len(store)} connected classes"
        )
        print(f"  {scenario.description}")
        try:
            written = store.save(args.save, format=args.format)
        except OSError as error:
            print(f"cannot save {args.save}: {error}", file=sys.stderr)
            return 2
        print(f"saved to {written}")
        if args.verify and _report_verify(store.verify(), written):
            return 1
        ts = default_t_grid(scenario.n, args.grid)
        aggregates = store.aggregates(ts)
        _print_weighted_table(
            ts,
            aggregates["bcg_counts"],
            aggregates["average_links"],
            aggregates["average_social_cost"],
            ucg_counts=store.ucg_nash_counts(ts) if args.ucg else None,
        )
        return 0

    result = scenario_sweep(
        scenario, grid=args.grid, include_ucg=args.ucg, jobs=args.jobs
    )
    print(
        f"scenario {scenario.name}: n = {scenario.n}, "
        f"{model.kind} cost model, {len(result.graphs)} connected classes"
    )
    print(f"  {scenario.description}")
    headers = ["t", "#stable_bcg", "avg_links", "avg_social_cost"]
    if args.ucg:
        headers.append("#nash_ucg")
    rows = []
    for k, t in enumerate(result.ts):
        row = [
            t,
            result.bcg_counts[k],
            result.average_links[k],
            result.average_social_cost[k],
        ]
        if args.ucg:
            row.append(result.ucg_counts[k])
        rows.append(row)
    print()
    print(format_table(headers, rows))
    return 0


def build_ensemble_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``ensemble`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments ensemble",
        description=(
            "Aggregate stability statistics over many seeded draws of a "
            "heterogeneous link-cost scenario: draw k plays seed+k, draws "
            "fan out over worker processes, and per-scale stable counts "
            "are summarised as mean/std/quantiles."
        ),
    )
    parser.add_argument(
        "--scenario", default="random_weights", metavar="NAME",
        help="registered scenario to draw from (default: random_weights)",
    )
    parser.add_argument(
        "--n", type=int, default=6, metavar="N",
        help="number of players (default: 6)",
    )
    parser.add_argument(
        "--draws", type=int, default=8, metavar="K",
        help="number of seeded draws (default: 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="base seed; draw k uses seed S+k (default: 0)",
    )
    parser.add_argument(
        "--grid", type=int, default=8, metavar="POINTS",
        help="number of log-spaced scale grid points (default: 8)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan the draws out over N worker processes (negative: per CPU)",
    )
    parser.add_argument(
        "--save-dir", metavar="DIR", default=None,
        help=(
            "persist one weighted-store artifact per draw here (existing "
            "matching artifacts are loaded instead of recomputed)"
        ),
    )
    parser.add_argument(
        "--format", choices=("npz", "dir"), default="npz",
        help="artifact layout under --save-dir (default: npz)",
    )
    parser.add_argument(
        "--delta-cache", metavar="PATH", default=None,
        help=(
            "persistent shared delta artifact: loaded (mmapped when a "
            "directory) if it exists, built once and saved there if not"
        ),
    )
    parser.add_argument(
        "--batch-draws", type=int, default=None, metavar="B",
        help="draws answered per stacked-kernel block (default: 16)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print draw-block progress/retry tallies to stderr",
    )
    _add_telemetry_flags(parser)
    return parser


def ensemble_main(argv: List[str]) -> int:
    """Run the ``ensemble`` subcommand; returns a process exit code."""
    parser = build_ensemble_parser()
    args = parser.parse_args(argv)
    try:
        with obs.span("cli:ensemble"):
            return _ensemble_run(parser, args)
    finally:
        _finish_telemetry(args)


def _ensemble_run(parser: argparse.ArgumentParser, args) -> int:
    from .analysis.ensembles import run_ensemble
    from .analysis.report import format_table
    from .analysis.scenarios import available_scenarios
    from .analysis.weighted_store import weighted_store_available

    if not weighted_store_available():
        print("the ensemble runner requires NumPy", file=sys.stderr)
        return 2
    if args.scenario not in available_scenarios():
        print(
            f"unknown scenario {args.scenario!r}; available: "
            f"{', '.join(available_scenarios())}",
            file=sys.stderr,
        )
        return 2
    if args.n < 2:
        print("scenarios need at least two players", file=sys.stderr)
        return 2
    if args.draws < 1:
        print("an ensemble needs at least one draw", file=sys.stderr)
        return 2

    if args.batch_draws is not None and args.batch_draws < 1:
        print("--batch-draws must be positive", file=sys.stderr)
        return 2

    extra = {}
    if args.batch_draws is not None:
        extra["batch_draws"] = args.batch_draws
    if args.progress:
        extra["progress"] = obs.ProgressReporter()
    try:
        result = run_ensemble(
            scenario=args.scenario,
            n=args.n,
            draws=args.draws,
            seed=args.seed,
            grid=args.grid,
            jobs=args.jobs,
            save_dir=args.save_dir,
            save_format=args.format,
            delta_cache=args.delta_cache,
            **extra,
        )
    except (OSError, ValueError) as error:
        print(f"cannot run the ensemble: {error}", file=sys.stderr)
        return 2
    print(
        f"ensemble {result.scenario}: n = {result.n}, {result.draws} draws "
        f"(seeds {result.seeds[0]}..{result.seeds[-1]}), "
        f"{result.classes} connected classes"
    )
    print(f"  draws: resumed {result.resumed}, computed {result.recomputed}")
    if args.delta_cache:
        print(f"  delta cache: {args.delta_cache}")
    if result.artifact_paths:
        print(f"  artifacts: {len(result.artifact_paths)} under {args.save_dir}")
    stats = result.count_stats
    quantiles = stats["quantiles"]
    rows = [
        [
            t,
            stats["mean"][k],
            stats["std"][k],
            stats["min"][k],
            quantiles[0.25][k],
            quantiles[0.5][k],
            quantiles[0.75][k],
            stats["max"][k],
        ]
        for k, t in enumerate(result.ts)
    ]
    print()
    print(
        format_table(
            ["t", "mean", "std", "min", "q25", "median", "q75", "max"], rows
        )
    )
    return 0


def census_main(argv: List[str]) -> int:
    """Run the ``census`` subcommand; returns a process exit code."""
    parser = build_census_parser()
    args = parser.parse_args(argv)
    try:
        with obs.span("cli:census"):
            return _census_run(parser, args)
    finally:
        _finish_telemetry(args)


def _census_run(parser: argparse.ArgumentParser, args) -> int:
    from .analysis.figure_series import census_figure_series
    from .analysis.report import format_figure, format_store_summary
    from .analysis.store import CensusStore, store_available
    from .analysis.sweeps import log_spaced_alphas

    if not store_available():
        print("the census store requires NumPy", file=sys.stderr)
        return 2
    if (args.n is None) == (args.load is None):
        parser.print_usage(sys.stderr)
        print("exactly one of --n and --load is required", file=sys.stderr)
        return 2
    for flag, value in (
        ("--shard-dir", args.shard_dir),
        ("--shard-timeout", args.shard_timeout),
        ("--shard-retries", args.shard_retries),
        ("--progress", args.progress or None),
    ):
        if value is not None and not args.streamed:
            print(f"{flag} requires --streamed", file=sys.stderr)
            return 2

    if args.load is not None:
        return _census_query(args)
    else:
        build = CensusStore.build_streamed if args.streamed else CensusStore.build
        kwargs = {"include_ucg": args.ucg, "jobs": args.jobs}
        if args.shard_dir:
            kwargs["shard_dir"] = args.shard_dir
        if args.streamed:
            kwargs["timeout"] = args.shard_timeout
            kwargs["max_retries"] = args.shard_retries
            if args.progress:
                kwargs["progress"] = obs.ProgressReporter()
        try:
            store = build(args.n, **kwargs)
        except (OSError, ValueError) as error:
            print(f"cannot build the n = {args.n} census: {error}", file=sys.stderr)
            return 2
        source = f"built in-process (n = {args.n})"
    print(format_store_summary(store, source=source))

    if args.verify and _report_verify(store.verify(), source):
        return 1

    if args.save is not None:
        try:
            written = store.save(args.save, format=args.format)
        except OSError as error:
            print(f"cannot save {args.save}: {error}", file=sys.stderr)
            return 2
        print(f"saved to {written}")

    if args.save_deltas is not None:
        from .analysis.delta_store import DeltaStore

        build_deltas = (
            DeltaStore.build_streamed if args.streamed else DeltaStore.build
        )
        try:
            deltas = build_deltas(store.n, jobs=args.jobs)
            written = deltas.save(args.save_deltas)
        except (OSError, ValueError) as error:
            print(f"cannot save {args.save_deltas}: {error}", file=sys.stderr)
            return 2
        summary = deltas.summary()
        print(
            f"delta artifact: {summary['classes']} classes, "
            f"{summary['removal_probes']} removal + "
            f"{summary['addition_probes']} addition probes, "
            f"saved to {written}"
        )

    if args.grid:
        costs = log_spaced_alphas(0.4, 2.0 * store.n * store.n, max(2, args.grid))
        print()
        if store.include_ucg:
            figure = census_figure_series(store, args.quantity, costs)
            print(
                format_figure(figure, f"{args.quantity} over {len(costs)} grid points")
            )
        else:
            # BCG-only artifact (the include_ucg=False large-n case): print
            # the one-game grid straight off the vectorised aggregates.
            from .analysis.report import format_table

            aggregates = store.grid_aggregates(costs, "bcg")
            rows = [
                [alpha, value, count]
                for alpha, value, count in zip(
                    costs, aggregates[args.quantity], aggregates["counts"]
                )
            ]
            print(f"{args.quantity} (BCG only; artifact has no UCG columns)")
            print(format_table(["alpha", args.quantity, "#eq_bcg"], rows))
    return 0


def _open_query_api(path: str, kind: str, mmap: bool = False):
    """``(api, summary) | exit_code`` for one CLI ``--load`` artifact.

    Every ``--load`` subcommand goes through the same
    :class:`~repro.service.QueryAPI` the HTTP server runs on, so the CLI
    table and the served JSON are computed by one code path.
    """
    from .analysis.store import LOAD_ERRORS
    from .service import ArtifactCatalog, QueryAPI

    api = QueryAPI(ArtifactCatalog(mmap=mmap))
    try:
        info = api.catalog.info(path)
        if info.kind != kind:
            print(
                f"cannot load {path}: artifact is a {info.kind} store, "
                f"not a {kind} store",
                file=sys.stderr,
            )
            return 2
        summary = api.summary(path)
    except KeyError as error:
        print(f"cannot load {path}: {error.args[0]}", file=sys.stderr)
        return 2
    except LOAD_ERRORS as error:
        print(f"cannot load {path}: {error}", file=sys.stderr)
        return 2
    return api, summary


def _census_query(args) -> int:
    """The ``census --load`` body, answered through the query service."""
    from .analysis.figure_series import figure_from_payload
    from .analysis.report import (
        format_figure,
        format_store_summary,
        format_table,
    )
    from .analysis.sweeps import log_spaced_alphas

    opened = _open_query_api(args.load, "census", mmap=args.mmap)
    if isinstance(opened, int):
        return opened
    api, summary = opened
    print(format_store_summary(summary, source=args.load))

    if args.verify and _report_verify(api.verify(args.load), args.load):
        return 1

    if args.save is not None:
        # Re-saving through the service keeps --load --save working (e.g.
        # npz -> dir conversions) off the same loaded columns.
        _info, store = api.catalog.get(args.load)
        try:
            written = store.save(args.save, format=args.format)
        except OSError as error:
            print(f"cannot save {args.save}: {error}", file=sys.stderr)
            return 2
        print(f"saved to {written}")

    if args.save_deltas is not None:
        from .analysis.delta_store import DeltaStore

        build_deltas = (
            DeltaStore.build_streamed if args.streamed else DeltaStore.build
        )
        try:
            deltas = build_deltas(summary["n"], jobs=args.jobs)
            written = deltas.save(args.save_deltas)
        except (OSError, ValueError) as error:
            print(f"cannot save {args.save_deltas}: {error}", file=sys.stderr)
            return 2
        delta_summary = deltas.summary()
        print(
            f"delta artifact: {delta_summary['classes']} classes, "
            f"{delta_summary['removal_probes']} removal + "
            f"{delta_summary['addition_probes']} addition probes, "
            f"saved to {written}"
        )

    if args.grid:
        print()
        if summary["include_ucg"]:
            payload = api.figure(args.load, args.quantity, args.grid)
            figure = figure_from_payload(payload)
            print(
                format_figure(
                    figure,
                    f"{args.quantity} over {payload['points']} grid points",
                )
            )
        else:
            # BCG-only artifact (the include_ucg=False large-n case): print
            # the one-game grid straight off the vectorised aggregates.
            n = summary["n"]
            costs = log_spaced_alphas(0.4, 2.0 * n * n, max(2, args.grid))
            aggregates = api.grid_aggregates(args.load, costs, "bcg")
            rows = [
                [alpha, value, count]
                for alpha, value, count in zip(
                    costs, aggregates[args.quantity], aggregates["counts"]
                )
            ]
            print(f"{args.quantity} (BCG only; artifact has no UCG columns)")
            print(format_table(["alpha", args.quantity, "#eq_bcg"], rows))
    return 0


def build_stats_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``stats`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments stats",
        description=(
            "Render telemetry: either a --metrics-out *.json snapshot "
            "written by another run, or this process's own registry."
        ),
    )
    parser.add_argument(
        "snapshot", nargs="?", default=None, metavar="FILE",
        help=(
            "a JSON telemetry snapshot to render (omit to render the "
            "current process's registry — mostly useful under --format "
            "prom/json for piping)"
        ),
    )
    parser.add_argument(
        "--format", choices=("table", "prom", "json"), default="table",
        help=(
            "output style: human-readable table (default), Prometheus "
            "text exposition, or the JSON snapshot itself"
        ),
    )
    return parser


def _format_metric_value(entry: dict) -> str:
    """One-cell summary of a snapshot metric entry, by kind."""
    if entry["kind"] == "histogram":
        parts = [f"count={entry['count']:g}", f"sum={entry['sum']:g}"]
        for q, value in sorted(entry.get("quantiles", {}).items()):
            if value is not None:
                parts.append(f"p{str(round(float(q) * 100))}={value:.3g}")
        return " ".join(parts)
    value = entry["value"]
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return f"{value:g}"


def stats_main(argv: List[str]) -> int:
    """Run the ``stats`` subcommand; returns a process exit code."""
    parser = build_stats_parser()
    args = parser.parse_args(argv)
    if args.snapshot is not None:
        try:
            with open(args.snapshot, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"cannot read {args.snapshot}: {error}", file=sys.stderr)
            return 2
        if not isinstance(payload, dict) or "metrics" not in payload:
            print(
                f"{args.snapshot} is not a repro telemetry snapshot "
                "(write one with --metrics-out FILE.json)",
                file=sys.stderr,
            )
            return 2
    else:
        payload = obs.snapshot()

    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.format == "prom":
        sys.stdout.write(obs.prometheus_from_snapshot(payload))
        return 0

    from .analysis.report import format_table

    entries = sorted(
        payload.get("metrics", []),
        key=lambda e: (e["name"], sorted(e["labels"].items())),
    )
    if entries:
        rows = [
            [
                entry["name"],
                entry["kind"],
                ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
                or "-",
                _format_metric_value(entry),
            ]
            for entry in entries
        ]
        print(format_table(["metric", "kind", "labels", "value"], rows))
    else:
        print("no metrics recorded")
    spans = payload.get("spans")
    if spans and spans.get("children"):
        print()
        print(obs.render_span_tree(spans))
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description=(
            "Serve census / weighted / delta artifacts over JSON/HTTP "
            "(stdlib asyncio, no extra dependencies): /healthz, /metrics "
            "(Prometheus), /artifacts and /v1/query/* endpoints, with "
            "concurrent grid queries coalesced into shared kernel calls."
        ),
    )
    parser.add_argument(
        "--dir", required=True, metavar="DIR",
        help="directory of artifacts to discover and serve",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8973, metavar="PORT",
        help="bind port; 0 picks a free one and prints it (default: 8973)",
    )
    parser.add_argument(
        "--threads", type=int, default=4, metavar="N",
        help="compute threads answering queries (default: 4)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.005, metavar="SECONDS",
        help=(
            "how long the first of a burst of grid requests waits for "
            "companions before computing; 0 disables coalescing "
            "(default: 0.005)"
        ),
    )
    parser.add_argument(
        "--no-mmap", action="store_true",
        help="load directory artifacts resident instead of memory-mapped",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=5.0, metavar="SECONDS",
        help="shutdown grace period for in-flight requests (default: 5)",
    )
    return parser


def serve_main(argv: List[str]) -> int:
    """Run the ``serve`` subcommand; returns a process exit code."""
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    from .service.http import serve_forever

    try:
        return serve_forever(
            args.dir,
            host=args.host,
            port=args.port,
            threads=args.threads,
            batch_window=args.batch_window,
            mmap=not args.no_mmap,
            drain_grace=args.drain_grace,
        )
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2


def build_query_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``query`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments query",
        description=(
            "Query a running artifact server (see 'serve').  'grid' "
            "renders the identical table 'census --load --grid' prints, "
            "so server answers are directly diffable against local ones."
        ),
    )
    parser.add_argument(
        "what",
        choices=(
            "health", "artifacts", "summary", "grid", "windows", "ensemble",
        ),
        help="which endpoint to query",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8973", metavar="URL",
        help="server base URL (default: http://127.0.0.1:8973)",
    )
    parser.add_argument(
        "--artifact", default=None, metavar="ID",
        help="artifact id (as listed by 'query artifacts')",
    )
    parser.add_argument(
        "--quantity", default="average_poa",
        choices=("average_poa", "worst_poa", "average_links"),
        help="figure quantity for 'grid' (default: average_poa)",
    )
    parser.add_argument(
        "--points", type=int, default=24, metavar="N",
        help="grid points for 'grid' (default: 24)",
    )
    parser.add_argument(
        "--game", default="bcg", choices=("bcg", "ucg"),
        help="game for 'windows' (default: bcg)",
    )
    parser.add_argument(
        "--scenario", default="random_weights", metavar="NAME",
        help="scenario for 'ensemble' (default: random_weights)",
    )
    parser.add_argument("--n", type=int, default=6, metavar="N")
    parser.add_argument("--draws", type=int, default=8, metavar="K")
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument("--grid", type=int, default=8, metavar="POINTS")
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw JSON response instead of a rendered table",
    )
    return parser


def _http_json(url: str, payload: Optional[dict] = None):
    """One GET/POST round-trip returning the decoded JSON body."""
    import urllib.request

    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def query_main(argv: List[str]) -> int:
    """Run the ``query`` subcommand; returns a process exit code."""
    import urllib.error

    parser = build_query_parser()
    args = parser.parse_args(argv)
    base = args.url.rstrip("/")
    needs_artifact = args.what in ("summary", "grid", "windows")
    if needs_artifact and args.artifact is None:
        print(f"'{args.what}' needs --artifact", file=sys.stderr)
        return 2
    try:
        payload = _query_request(base, args)
    except urllib.error.HTTPError as error:
        try:
            detail = json.loads(error.read().decode("utf-8")).get("error")
        except (ValueError, OSError):
            detail = None
        print(
            f"server error {error.code}: {detail or error.reason}",
            file=sys.stderr,
        )
        return 1
    except (urllib.error.URLError, OSError) as error:
        print(f"cannot reach {base}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    _render_query_response(args, payload)
    return 0


def _query_request(base: str, args) -> dict:
    """Dispatch one ``query`` subcommand to the server."""
    if args.what == "health":
        return _http_json(base + "/healthz")
    if args.what == "artifacts":
        return _http_json(base + "/artifacts")
    if args.what == "summary":
        return _http_json(base + "/artifacts/" + args.artifact)
    if args.what == "grid":
        return _http_json(
            base + "/v1/query/grid",
            {
                "artifact": args.artifact,
                "quantity": args.quantity,
                "points": args.points,
            },
        )
    if args.what == "windows":
        return _http_json(
            base + "/v1/query/windows",
            {"artifact": args.artifact, "game": args.game},
        )
    return _http_json(
        base + "/v1/query/ensemble-stats",
        {
            "scenario": args.scenario,
            "n": args.n,
            "draws": args.draws,
            "seed": args.seed,
            "grid": args.grid,
        },
    )


def _render_query_response(args, payload: dict) -> None:
    """Human-readable rendering of a ``query`` response."""
    from .analysis.report import format_table

    if args.what == "health":
        print(
            f"status {payload['status']}, version {payload['version']}, "
            f"{payload['artifacts']} artifact(s), up "
            f"{payload['uptime_seconds']:.1f}s"
        )
    elif args.what == "artifacts":
        rows = [
            [art["id"], art["kind"], art["n"], art["format"]]
            for art in payload["artifacts"]
        ]
        print(format_table(["id", "kind", "n", "format"], rows))
    elif args.what == "summary":
        from .analysis.report import (
            format_store_summary,
            format_weighted_store_summary,
        )

        summary = payload["summary"]
        if summary["kind"] == "census":
            print(format_store_summary(summary))
        elif summary["kind"] == "weighted":
            print(format_weighted_store_summary(summary))
        else:
            print(json.dumps(summary, indent=2, sort_keys=True))
    elif args.what == "grid":
        # Render through the same FigureData path the census subcommand
        # uses, with the same title — the tables are byte-identical.
        from .analysis.figure_series import figure_from_payload
        from .analysis.report import format_figure

        figure = figure_from_payload(payload)
        print(
            format_figure(
                figure,
                f"{args.quantity} over {payload['points']} grid points",
            )
        )
    elif args.what == "windows":
        axis = "alpha" if payload["kind"] == "census" else "t"
        lo, hi = payload[f"{axis}_min"], payload[f"{axis}_max"]
        rows = [
            [k, lo[k], hi[k]] for k in range(payload["classes"])
        ]
        print(
            format_table(["class", f"{axis}_min", f"{axis}_max"], rows)
        )
    else:  # ensemble
        stats = payload["count_stats"]
        quantiles = stats["quantiles"]
        rows = [
            [
                t,
                stats["mean"][k],
                stats["std"][k],
                stats["min"][k],
                quantiles["0.25"][k],
                quantiles["0.5"][k],
                quantiles["0.75"][k],
                stats["max"][k],
            ]
            for k, t in enumerate(payload["ts"])
        ]
        print(
            f"ensemble {payload['scenario']}: n = {payload['n']}, "
            f"{payload['draws']} draws, {payload['classes']} connected "
            "classes"
        )
        print()
        print(
            format_table(
                ["t", "mean", "std", "min", "q25", "median", "q75", "max"],
                rows,
            )
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("--version", "-V"):
        from ._version import __version__

        print(__version__)
        return 0
    if argv and argv[0] == "census":
        return census_main(list(argv[1:]))
    if argv and argv[0] == "scenarios":
        return scenarios_main(list(argv[1:]))
    if argv and argv[0] == "ensemble":
        return ensemble_main(list(argv[1:]))
    if argv and argv[0] == "stats":
        return stats_main(list(argv[1:]))
    if argv and argv[0] == "serve":
        return serve_main(list(argv[1:]))
    if argv and argv[0] == "query":
        return query_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    ids = list(args.experiments)
    if args.all:
        ids = available_experiments()
    if not ids:
        parser.print_help()
        return 2

    exit_code = 0
    for experiment_id in ids:
        try:
            result = run_experiment(
                experiment_id,
                jobs=args.jobs,
                seed=args.seed,
                sampled=args.sampled,
            )
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        if args.summary_only:
            print(result.summary())
        else:
            print(result.render())
            print()
        if not result.all_passed:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/filter (e.g. `repro stats ... | head`) closed the
        # pipe early; redirect stdout at the fd level so the interpreter's
        # shutdown flush does not traceback, and exit like a SIGPIPE death.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
