"""Command-line interface: ``python -m repro.cli <experiment> [...]``.

Examples
--------
List the available experiments::

    python -m repro.cli --list

Reproduce Figure 2 and Lemma 6::

    python -m repro.cli figure2 lemma6

Run everything (slow — builds the exhaustive censuses)::

    python -m repro.cli --all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import available_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the experiments CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures and results of Corbo & Parkes (PODC 2005), "
            "'The Price of Selfish Behavior in Bilateral Network Formation'."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiment ids and exit",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="run every registered experiment",
    )
    parser.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the one-line pass/fail summaries",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan censuses and sampled sweeps out over N worker processes "
            "(default: serial; negative: one worker per CPU); results are "
            "identical for any value"
        ),
    )
    parser.add_argument(
        "--sampled",
        action="store_true",
        help=(
            "also run the dynamics-sampled paper-sized variant of experiments "
            "that offer one (figure2, figure3)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help=(
            "override the sampling seed of dynamics-sampled experiment "
            "variants (use with --sampled)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    ids = list(args.experiments)
    if args.all:
        ids = available_experiments()
    if not ids:
        parser.print_help()
        return 2

    exit_code = 0
    for experiment_id in ids:
        try:
            result = run_experiment(
                experiment_id,
                jobs=args.jobs,
                seed=args.seed,
                sampled=args.sampled,
            )
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        if args.summary_only:
            print(result.summary())
        else:
            print(result.render())
            print()
        if not result.all_passed:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
